"""Tests for the simulated nvidia-smi / Perfmon2 counters."""

import pytest

from repro.perf.model import PerformanceModel, Placement
from repro.prototype.monitors import DRAMBandwidthMonitor, NVLinkCounterMonitor

from tests.conftest import make_job


@pytest.fixture
def perf(minsky):
    return PerformanceModel(minsky)


def pack_monitor(perf, **job_kwargs):
    job = make_job(**job_kwargs)
    gpus = tuple(perf.placement_gpus(job, Placement.PACK))
    return NVLinkCounterMonitor(perf, job, gpus)


class TestNVLinkCounter:
    def test_counter_monotone(self, perf):
        mon = pack_monitor(perf, batch_size=1, iterations=4000)
        reads = [mon.read(t) for t in (0.0, 5.0, 10.0, 60.0)]
        assert reads == sorted(reads)
        assert reads[0] == 0.0

    def test_bandwidth_positive_while_running(self, perf):
        mon = pack_monitor(perf, batch_size=1, iterations=4000)
        assert mon.bandwidth_gbs(10.0) > 10.0

    def test_bandwidth_zero_after_completion(self, perf):
        mon = pack_monitor(perf, batch_size=1, iterations=10)
        mon.bandwidth_gbs(100.0)  # advance past the end
        assert mon.bandwidth_gbs(200.0) == pytest.approx(0.0, abs=0.2)

    def test_backwards_read_rejected(self, perf):
        mon = pack_monitor(perf, batch_size=1)
        mon.bandwidth_gbs(10.0)
        with pytest.raises(ValueError):
            mon.read(5.0)

    def test_tiny_batch_outpaces_big(self, perf):
        tiny = pack_monitor(perf, batch_size=1, iterations=4000)
        big = pack_monitor(perf, batch_size=128, iterations=4000)
        assert tiny.read(60.0) > 4 * big.read(60.0)


class TestDRAMMonitor:
    def test_bandwidth_during_run(self, perf):
        job = make_job(batch_size=1, iterations=4000)
        gpus = tuple(perf.placement_gpus(job, Placement.PACK))
        mon = DRAMBandwidthMonitor(perf, job, gpus)
        assert mon.bandwidth_gbs(10.0) > 0.0

    def test_out_of_range_zero(self, perf):
        job = make_job(batch_size=1, iterations=10)
        gpus = tuple(perf.placement_gpus(job, Placement.PACK))
        mon = DRAMBandwidthMonitor(perf, job, gpus)
        assert mon.bandwidth_gbs(10_000.0) == 0.0
