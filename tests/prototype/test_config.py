"""Tests for INI configuration parsing (paper Appendix A.3)."""

import pytest

from repro.prototype.config import (
    AlgorithmConfig,
    ConfigError,
    SystemConfig,
    load_algorithm_config,
    load_system_config,
    write_sample_configs,
)


class TestSystemConfig:
    def test_parse_full(self, tmp_path):
        path = tmp_path / "sys-config.ini"
        path.write_text(
            "[system]\n"
            "simulation = false\n"
            "machine = dgx1\n"
            "machines = 4\n"
            "manifest = jobs.json\n"
            "scheduler_interval = 2.5\n"
        )
        cfg = load_system_config(path)
        assert not cfg.simulation
        assert cfg.machine == "dgx1"
        assert cfg.n_machines == 4
        assert cfg.manifest_path == "jobs.json"
        assert cfg.scheduler_interval_s == 2.5

    def test_defaults(self, tmp_path):
        path = tmp_path / "sys-config.ini"
        path.write_text("[system]\n")
        cfg = load_system_config(path)
        assert cfg.simulation and cfg.machine == "power8-minsky"

    def test_missing_section_rejected(self, tmp_path):
        path = tmp_path / "sys-config.ini"
        path.write_text("[other]\nx = 1\n")
        with pytest.raises(ConfigError, match="system"):
            load_system_config(path)

    def test_bad_value_rejected(self, tmp_path):
        path = tmp_path / "sys-config.ini"
        path.write_text("[system]\nmachines = many\n")
        with pytest.raises(ConfigError):
            load_system_config(path)

    def test_topology_factory_single_machine(self):
        topo = SystemConfig(machine="power8-minsky").topology_factory()()
        assert len(topo.gpus()) == 4

    def test_topology_factory_cluster(self):
        topo = SystemConfig(machine="dgx1", n_machines=2).topology_factory()()
        assert len(topo.gpus()) == 16

    def test_unknown_machine_rejected(self):
        with pytest.raises(ConfigError, match="unknown machine"):
            SystemConfig(machine="tpu-pod").topology_factory()


class TestAlgorithmConfig:
    def test_parse(self, tmp_path):
        path = tmp_path / "topo-config.ini"
        path.write_text(
            "[scheduler]\n"
            "algorithm = TOPO-AWARE-P\n"
            "alpha_cc = 0.5\n"
            "alpha_b = 0.25\n"
            "alpha_d = 0.25\n"
            "max_postponements = 7\n"
        )
        cfg = load_algorithm_config(path)
        assert cfg.name == "TOPO-AWARE-P"
        assert cfg.alpha_cc == 0.5
        assert cfg.max_postponements == 7
        assert cfg.utility_params().alpha_cc == 0.5

    def test_missing_algorithm_rejected(self, tmp_path):
        path = tmp_path / "x-config.ini"
        path.write_text("[scheduler]\nalpha_cc = 0.3\n")
        with pytest.raises(ConfigError, match="algorithm"):
            load_algorithm_config(path)

    def test_bad_weights_rejected(self, tmp_path):
        path = tmp_path / "x-config.ini"
        path.write_text("[scheduler]\nalgorithm = BF\nalpha_cc = 0.9\n")
        with pytest.raises(ValueError):
            load_algorithm_config(path)

    def test_make_scheduler(self):
        cfg = AlgorithmConfig(name="TOPO-AWARE-P", max_postponements=3)
        sched = cfg.make_scheduler()
        assert sched.name == "TOPO-AWARE-P"
        assert sched.max_postponements == 3


class TestSamples:
    def test_sample_configs_loadable(self, tmp_path):
        paths = write_sample_configs(tmp_path)
        assert len(paths) == 5
        load_system_config(tmp_path / "sys-config.ini")
        for algo in ("fcfs", "bf", "topo-aware", "topo-aware-p"):
            cfg = load_algorithm_config(tmp_path / f"{algo}-config.ini")
            cfg.make_scheduler()
