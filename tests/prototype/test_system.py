"""End-to-end tests of the prototype main loop."""

import pytest

from repro.analysis.scenarios import table1_jobs
from repro.prototype.config import (
    AlgorithmConfig,
    SystemConfig,
    write_sample_configs,
)
from repro.prototype.system import PrototypeSystem
from repro.schedulers import make_scheduler
from repro.sim.engine import Simulator
from repro.topology.builders import power8_minsky
from repro.workload.manifest import dump_manifest


class TestConstruction:
    def test_requires_algorithms(self):
        with pytest.raises(ValueError, match="algorithm"):
            PrototypeSystem(SystemConfig(), [], jobs=table1_jobs())

    def test_requires_jobs_or_manifest(self):
        with pytest.raises(ValueError, match="manifest"):
            PrototypeSystem(SystemConfig(), [AlgorithmConfig("BF")])

    def test_loads_manifest_from_config(self, tmp_path):
        manifest = tmp_path / "jobs.json"
        dump_manifest(table1_jobs(), manifest)
        system = PrototypeSystem(
            SystemConfig(manifest_path=str(manifest)),
            [AlgorithmConfig("BF")],
        )
        assert len(system.jobs) == 6

    def test_from_config_dir(self, tmp_path):
        write_sample_configs(tmp_path)
        system = PrototypeSystem.from_config_dir(tmp_path, jobs=table1_jobs())
        names = [a.name for a in system.algorithms]
        assert sorted(names) == ["BF", "FCFS", "TOPO-AWARE", "TOPO-AWARE-P"]

    def test_missing_sys_config_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            PrototypeSystem.from_config_dir(tmp_path, jobs=table1_jobs())


class TestRun:
    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("cfg")
        write_sample_configs(tmp)
        system = PrototypeSystem.from_config_dir(tmp, jobs=table1_jobs())
        return system.run()

    def test_one_run_per_algorithm(self, runs):
        assert len(runs) == 4

    def test_all_jobs_finish(self, runs):
        for run in runs:
            for rec in run.result.records:
                assert rec.finished_at is not None

    def test_commands_generated_for_placed_jobs(self, runs):
        for run in runs:
            assert set(run.commands) == {f"job{i}" for i in range(6)}
            for cmd in run.commands.values():
                assert "CUDA_VISIBLE_DEVICES=" in cmd
                assert "caffe train" in cmd

    def test_monitors_attached(self, runs):
        for run in runs:
            assert set(run.monitors) == set(run.commands)

    def test_matches_direct_simulation(self, runs):
        """The prototype path is the validated simulation (Figure 9)."""
        for run in runs:
            name = run.result.scheduler_name
            direct = Simulator(
                power8_minsky(), make_scheduler(name), table1_jobs()
            ).run()
            for rec in run.result.records:
                ref = direct.record_of(rec.job.job_id)
                assert rec.finished_at == pytest.approx(ref.finished_at)
                assert rec.gpus == ref.gpus

    def test_topo_aware_beats_greedy_makespan(self, runs):
        """The paper's headline on the Table 1 scenario."""
        spans = {r.result.scheduler_name: r.result.makespan for r in runs}
        assert spans["TOPO-AWARE-P"] < spans["BF"]
        assert spans["TOPO-AWARE-P"] < spans["FCFS"]
        speedup = spans["BF"] / spans["TOPO-AWARE-P"]
        assert 1.15 <= speedup <= 1.45  # paper: ~1.30x
