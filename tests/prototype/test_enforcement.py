"""Tests asserting the literal enforcement command lines (Section 5.1)."""

import pytest

from repro.prototype.enforcement import (
    enforcement_plan,
    launch_command,
    launch_environment,
    numa_binding,
)
from repro.workload.job import Job, ModelType

from tests.conftest import make_job


class TestEnvironment:
    def test_cuda_device_order_always_pci(self, minsky):
        env = launch_environment(minsky, ["m0/gpu0"])
        assert env["CUDA_DEVICE_ORDER"] == "PCI_BUS_ID"

    def test_visible_devices_sorted_indices(self, minsky):
        env = launch_environment(minsky, ["m0/gpu3", "m0/gpu1"])
        assert env["CUDA_VISIBLE_DEVICES"] == "1,3"

    def test_empty_allocation_rejected(self, minsky):
        with pytest.raises(ValueError):
            launch_environment(minsky, [])


class TestNumaBinding:
    def test_same_socket_binds(self, minsky):
        assert (
            numa_binding(minsky, ["m0/gpu0", "m0/gpu1"])
            == "numactl --cpunodebind=0 --membind=0"
        )
        assert (
            numa_binding(minsky, ["m0/gpu2", "m0/gpu3"])
            == "numactl --cpunodebind=1 --membind=1"
        )

    def test_cross_socket_not_bound(self, minsky):
        assert numa_binding(minsky, ["m0/gpu0", "m0/gpu2"]) is None


class TestLaunchCommand:
    def test_packed_job_full_line(self, minsky):
        job = Job("j", ModelType.ALEXNET, 1, 2)
        cmd = launch_command(minsky, job, ["m0/gpu0", "m0/gpu1"])
        assert cmd == (
            "CUDA_DEVICE_ORDER=PCI_BUS_ID CUDA_VISIBLE_DEVICES=0,1 "
            "numactl --cpunodebind=0 --membind=0 "
            "caffe train --solver=solvers/alexnet_b1.prototxt --gpu=0,1"
        )

    def test_spread_job_skips_numactl(self, minsky):
        job = Job("j", ModelType.GOOGLENET, 32, 2)
        cmd = launch_command(minsky, job, ["m0/gpu0", "m0/gpu2"])
        assert "numactl" not in cmd
        assert "CUDA_VISIBLE_DEVICES=0,2" in cmd
        assert "googlenet_b32" in cmd

    def test_custom_template(self, minsky):
        job = Job("j", ModelType.CAFFEREF, 4, 1)
        cmd = launch_command(
            minsky, job, ["m0/gpu3"],
            command_template="train.py --model {model} --iters {iterations} --gpu {gpus}",
        )
        assert "--model cafferef" in cmd
        assert "--iters 4000" in cmd
        assert "--gpu 3" in cmd

    def test_plan_covers_all_jobs(self, minsky):
        a = make_job("a", num_gpus=1)
        b = make_job("b", num_gpus=1)
        plan = enforcement_plan(
            minsky, {"a": (a, ["m0/gpu0"]), "b": (b, ["m0/gpu2"])}
        )
        assert set(plan) == {"a", "b"}
        assert "CUDA_VISIBLE_DEVICES=0" in plan["a"]
        assert "CUDA_VISIBLE_DEVICES=2" in plan["b"]
