"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.analysis.scenarios import table1_jobs
from repro.prototype.config import write_sample_configs
from repro.workload.manifest import dump_manifest


class TestTopoCommand:
    def test_summary(self, capsys):
        assert main(["topo", "--machine", "power8-minsky"]) == 0
        out = capsys.readouterr().out
        assert "p2p islands" in out and "m0/gpu3" in out

    def test_matrix_output(self, capsys):
        assert main(["topo", "--machine", "dgx1", "--matrix"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("\tGPU0") and "NV1" in out

    def test_numactl_output(self, capsys):
        assert main(["topo", "--numactl"]) == 0
        assert "node distances" in capsys.readouterr().out

    def test_unknown_machine_rejected(self):
        with pytest.raises(SystemExit):
            main(["topo", "--machine", "tpu"])


class TestSimulateAndCompare:
    def test_simulate_prints_summary(self, capsys):
        code = main(
            ["simulate", "--jobs", "10", "--machines", "2",
             "--scheduler", "BF", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan_s" in out and "scheduler: BF" in out

    def test_simulate_fastpath_flags_change_no_result(self, capsys):
        def scheduling_facts(text):
            # all summary lines except wall-clock timings, which vary
            return [ln for ln in text.splitlines() if "time_s" not in ln]

        args = ["simulate", "--jobs", "10", "--machines", "3",
                "--scheduler", "TOPO-AWARE", "--seed", "1"]
        assert main(args) == 0
        fast = capsys.readouterr().out
        assert main(args + ["--no-incremental-drb", "--no-prefilter"]) == 0
        off = capsys.readouterr().out
        assert scheduling_facts(fast) == scheduling_facts(off)

    def test_compare_prints_all_policies(self, capsys):
        code = main(["compare", "--jobs", "10", "--machines", "2", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("BF", "FCFS", "TOPO-AWARE", "TOPO-AWARE-P",
                     "TOPO-AWARE-PM"):
            assert name in out

    def test_single_machine_mode(self, capsys):
        code = main(["simulate", "--jobs", "5", "--machines", "1", "--seed", "2"])
        assert code == 0

    def test_new_schedulers_available(self, capsys):
        for name in ("SJF", "EASY-BACKFILL"):
            code = main(
                ["simulate", "--jobs", "8", "--machines", "2",
                 "--scheduler", name, "--seed", "3"]
            )
            assert code == 0
            assert f"scheduler: {name}" in capsys.readouterr().out

    def test_new_machines_available(self, capsys):
        for machine in ("dgx2", "power9-ac922"):
            assert main(["topo", "--machine", machine]) == 0
            out = capsys.readouterr().out
            assert "p2p islands" in out

    def test_scheduler_name_is_case_insensitive(self, capsys):
        code = main(
            ["simulate", "--jobs", "5", "--machines", "1",
             "--scheduler", "topo-aware-p", "--seed", "1"]
        )
        assert code == 0
        assert "scheduler: TOPO-AWARE-P" in capsys.readouterr().out

    def test_simulate_gantt(self, capsys):
        code = main(
            ["simulate", "--jobs", "5", "--machines", "1",
             "--scheduler", "TOPO-AWARE", "--seed", "1", "--gantt"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[TOPO-AWARE]" in out and "legend:" in out

    def test_compare_gantt_renders_panel_per_policy(self, capsys):
        code = main(
            ["compare", "--jobs", "5", "--machines", "1", "--seed", "1",
             "--gantt"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("BF", "FCFS", "TOPO-AWARE", "TOPO-AWARE-P",
                     "TOPO-AWARE-PM"):
            assert f"[{name}]" in out


class TestTelemetryFlags:
    def test_simulate_writes_all_three_sinks(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.prom"
        events = tmp_path / "events.jsonl"
        trace = tmp_path / "trace.jsonl"
        code = main(
            ["simulate", "--jobs", "5", "--machines", "1",
             "--scheduler", "topo-aware-p", "--seed", "7",
             "--metrics-out", str(metrics),
             "--events-out", str(events),
             "--trace-out", str(trace)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"metrics written to {metrics}" in out
        assert "events written to" in out and "spans written to" in out

        from repro.obs import parse_prometheus, read_events, read_trace

        families = parse_prometheus(metrics.read_text())
        assert len(families) >= 12
        assert "repro_decision_latency_seconds" in families
        events_list = read_events(events)
        assert {e["type"] for e in events_list} >= {
            "run_start", "arrival", "place", "finish", "run_end"
        }
        spans = read_trace(trace)
        assert any(s["name"] == "sched.propose" for s in spans)

    def test_metrics_json_suffix(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "metrics.json"
        code = main(
            ["simulate", "--jobs", "5", "--machines", "1", "--seed", "7",
             "--metrics-out", str(metrics)]
        )
        assert code == 0
        payload = json.loads(metrics.read_text())
        assert any(f["name"] == "repro_queue_depth" for f in payload["families"])

    def test_compare_aggregates_all_policies(self, tmp_path, capsys):
        metrics = tmp_path / "m.prom"
        events = tmp_path / "e.jsonl"
        code = main(
            ["compare", "--jobs", "5", "--machines", "1", "--seed", "7",
             "--metrics-out", str(metrics), "--events-out", str(events)]
        )
        assert code == 0
        from repro.obs import parse_prometheus, read_events

        families = parse_prometheus(metrics.read_text())
        arrived = families["repro_jobs_arrived_total"]["samples"]
        schedulers = {s["labels"]["scheduler"] for s in arrived}
        assert schedulers == {
            "BF", "FCFS", "TOPO-AWARE", "TOPO-AWARE-P", "TOPO-AWARE-PM"
        }
        events_list = read_events(events)
        assert {e["scheduler"] for e in events_list} == schedulers

    def test_trace_summarize_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(
            ["simulate", "--jobs", "5", "--machines", "1",
             "--scheduler", "TOPO-AWARE-P", "--seed", "7",
             "--trace-out", str(trace)]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "=== job" in out and "sched.propose" in out

    def test_trace_summarize_job_filter(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        main(
            ["simulate", "--jobs", "5", "--machines", "1", "--seed", "7",
             "--trace-out", str(trace)]
        )
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace), "--job", "job0"]) == 0
        out = capsys.readouterr().out
        assert "=== job0" in out and "=== job1" not in out

    def test_no_flags_no_files(self, tmp_path, capsys):
        code = main(["simulate", "--jobs", "5", "--machines", "1", "--seed", "7"])
        assert code == 0
        assert "written to" not in capsys.readouterr().out


class TestRunCommand:
    def test_prototype_run_from_configs(self, tmp_path, capsys):
        write_sample_configs(tmp_path)
        manifest = tmp_path / "jobs.json"
        dump_manifest(table1_jobs(), manifest)
        code = main(
            ["run", "--config-dir", str(tmp_path), "--manifest", str(manifest)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TOPO-AWARE-P" in out and "job3" in out


class TestFiguresCommand:
    def test_writes_result_files(self, tmp_path, capsys):
        code = main(["figures", "--out", str(tmp_path)])
        assert code == 0
        names = {p.name for p in tmp_path.glob("*.txt")}
        assert "fig4_pack_vs_spread.txt" in names
        assert "fig8_prototype.txt" in names

    def test_renders_svg_figures(self, tmp_path, capsys):
        code = main(["figures", "--svg", str(tmp_path / "svg")])
        assert code == 0
        names = {p.name for p in (tmp_path / "svg").glob("*.svg")}
        assert "fig4_pack_vs_spread.svg" in names
        assert "fig6_collocation.svg" in names


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_module_entry_point_exists(self):
        import repro.__main__  # noqa: F401  -- imports (and exits) only under -m


class TestObservabilityCLI:
    def write_trace(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(
            ["simulate", "--jobs", "5", "--machines", "1",
             "--scheduler", "TOPO-AWARE", "--seed", "7",
             "--trace-out", str(trace)]
        ) == 0
        return trace

    def test_trace_export_writes_chrome_json(self, tmp_path, capsys):
        import json

        trace = self.write_trace(tmp_path)
        capsys.readouterr()
        out = tmp_path / "t.chrome.json"
        assert main(["trace", "export", str(trace), "--out", str(out)]) == 0
        assert "exported to" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert events and all("ts" in e and "dur" in e for e in events)

    def test_trace_export_default_output_name(self, tmp_path, capsys):
        trace = self.write_trace(tmp_path)
        capsys.readouterr()
        assert main(["trace", "export", str(trace)]) == 0
        assert (tmp_path / "trace.chrome.json").exists()

    def test_trace_profile_prints_tables(self, tmp_path, capsys):
        trace = self.write_trace(tmp_path)
        capsys.readouterr()
        assert main(["trace", "profile", str(trace), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "per-phase aggregate" in out
        assert "sched.propose" in out
        assert "critical path:" in out

    def test_trace_profile_job_filter(self, tmp_path, capsys):
        trace = self.write_trace(tmp_path)
        capsys.readouterr()
        assert main(["trace", "profile", str(trace), "--job", "job0"]) == 0
        assert "job0" in capsys.readouterr().out

    @pytest.mark.parametrize("sub", ["summarize", "export", "profile"])
    def test_trace_missing_file_exits_2(self, sub, tmp_path, capsys):
        code = main(["trace", sub, str(tmp_path / "absent.jsonl")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and err.count("\n") == 1

    @pytest.mark.parametrize("sub", ["summarize", "export", "profile"])
    def test_trace_invalid_schema_exits_2(self, sub, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": 99, "kind": "span"}\n')
        assert main(["trace", sub, str(bad)]) == 2
        assert "unsupported trace schema" in capsys.readouterr().err

    def test_trace_not_json_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json at all\n")
        assert main(["trace", "summarize", str(bad)]) == 2
        assert "not JSON" in capsys.readouterr().err

    def test_simulate_serve_prints_endpoints_and_exits(self, capsys):
        code = main(
            ["simulate", "--jobs", "5", "--machines", "1", "--seed", "7",
             "--serve", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "introspection server listening on http://127.0.0.1:" in out
        assert "/metrics /healthz /state /alerts" in out

    def test_simulate_watchdog_summary_and_quantiles(self, capsys):
        code = main(
            ["simulate", "--jobs", "10", "--machines", "1", "--seed", "7",
             "--scheduler", "TOPO-AWARE", "--watchdog"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slo_alerts_fired: 0" in out
        assert "queue_wait_p50_s" in out and "queue_wait_p95_s" in out

    def test_simulate_slo_rules_fire_and_print(self, tmp_path, capsys):
        import json

        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps({"rules": [
            {"name": "any-queue", "signal": "queue_depth", "op": ">=",
             "threshold": 0, "severity": "warning"}
        ]}))
        code = main(
            ["simulate", "--jobs", "5", "--machines", "1", "--seed", "7",
             "--slo-rules", str(rules)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slo_alerts_fired: 1" in out
        assert "ALERT [warning] any-queue: queue_depth >= 0" in out

    def test_simulate_bad_slo_rules_exits_2(self, tmp_path, capsys):
        rules = tmp_path / "rules.json"
        rules.write_text("{broken")
        code = main(
            ["simulate", "--jobs", "5", "--machines", "1", "--seed", "7",
             "--slo-rules", str(rules)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: --slo-rules:")

    def test_simulate_missing_slo_rules_exits_2(self, tmp_path, capsys):
        code = main(
            ["simulate", "--jobs", "5", "--machines", "1", "--seed", "7",
             "--slo-rules", str(tmp_path / "absent.json")]
        )
        assert code == 2
        assert "error: --slo-rules:" in capsys.readouterr().err

    def test_compare_watchdog_prints_per_policy_lines(self, capsys):
        code = main(
            ["compare", "--jobs", "5", "--machines", "1", "--seed", "7",
             "--watchdog"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("BF", "FCFS", "TOPO-AWARE", "TOPO-AWARE-P",
                     "TOPO-AWARE-PM"):
            assert f"[{name}] slo_alerts_fired: 0" in out
