"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.analysis.scenarios import table1_jobs
from repro.prototype.config import write_sample_configs
from repro.workload.manifest import dump_manifest


class TestTopoCommand:
    def test_summary(self, capsys):
        assert main(["topo", "--machine", "power8-minsky"]) == 0
        out = capsys.readouterr().out
        assert "p2p islands" in out and "m0/gpu3" in out

    def test_matrix_output(self, capsys):
        assert main(["topo", "--machine", "dgx1", "--matrix"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("\tGPU0") and "NV1" in out

    def test_numactl_output(self, capsys):
        assert main(["topo", "--numactl"]) == 0
        assert "node distances" in capsys.readouterr().out

    def test_unknown_machine_rejected(self):
        with pytest.raises(SystemExit):
            main(["topo", "--machine", "tpu"])


class TestSimulateAndCompare:
    def test_simulate_prints_summary(self, capsys):
        code = main(
            ["simulate", "--jobs", "10", "--machines", "2",
             "--scheduler", "BF", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan_s" in out and "scheduler: BF" in out

    def test_compare_prints_all_policies(self, capsys):
        code = main(["compare", "--jobs", "10", "--machines", "2", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("BF", "FCFS", "TOPO-AWARE", "TOPO-AWARE-P"):
            assert name in out

    def test_single_machine_mode(self, capsys):
        code = main(["simulate", "--jobs", "5", "--machines", "1", "--seed", "2"])
        assert code == 0

    def test_new_schedulers_available(self, capsys):
        for name in ("SJF", "EASY-BACKFILL"):
            code = main(
                ["simulate", "--jobs", "8", "--machines", "2",
                 "--scheduler", name, "--seed", "3"]
            )
            assert code == 0
            assert f"scheduler: {name}" in capsys.readouterr().out

    def test_new_machines_available(self, capsys):
        for machine in ("dgx2", "power9-ac922"):
            assert main(["topo", "--machine", machine]) == 0
            out = capsys.readouterr().out
            assert "p2p islands" in out


class TestRunCommand:
    def test_prototype_run_from_configs(self, tmp_path, capsys):
        write_sample_configs(tmp_path)
        manifest = tmp_path / "jobs.json"
        dump_manifest(table1_jobs(), manifest)
        code = main(
            ["run", "--config-dir", str(tmp_path), "--manifest", str(manifest)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TOPO-AWARE-P" in out and "job3" in out


class TestFiguresCommand:
    def test_writes_result_files(self, tmp_path, capsys):
        code = main(["figures", "--out", str(tmp_path)])
        assert code == 0
        names = {p.name for p in tmp_path.glob("*.txt")}
        assert "fig4_pack_vs_spread.txt" in names
        assert "fig8_prototype.txt" in names

    def test_renders_svg_figures(self, tmp_path, capsys):
        code = main(["figures", "--svg", str(tmp_path / "svg")])
        assert code == 0
        names = {p.name for p in (tmp_path / "svg").glob("*.svg")}
        assert "fig4_pack_vs_spread.svg" in names
        assert "fig6_collocation.svg" in names


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_module_entry_point_exists(self):
        import repro.__main__  # noqa: F401  -- imports (and exits) only under -m
