"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.core.placement import PlacementEngine
from repro.topology.allocation import AllocationState
from repro.topology.builders import cluster, dgx1, power8_minsky, power8_pcie_k80
from repro.workload.job import Job, ModelType
from repro.workload.profiles import default_database


@pytest.fixture
def minsky():
    return power8_minsky()


@pytest.fixture
def dgx():
    return dgx1()


@pytest.fixture
def pcie_machine():
    return power8_pcie_k80()


@pytest.fixture
def small_cluster():
    return cluster(3)


@pytest.fixture
def alloc(minsky):
    return AllocationState(minsky)


@pytest.fixture
def engine(minsky, alloc):
    return PlacementEngine(minsky, alloc)


@pytest.fixture(scope="session")
def profiles():
    return default_database()


def make_job(
    job_id: str = "j",
    model: ModelType = ModelType.ALEXNET,
    batch_size: int = 1,
    num_gpus: int = 2,
    **kwargs,
) -> Job:
    return Job(job_id, model, batch_size, num_gpus, **kwargs)
