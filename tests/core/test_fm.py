"""Tests for the Fiduccia-Mattheyses bipartitioner."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fm import affinity_from_distance, cut_weight, fm_bipartition


def clique(n: int, w: float = 1.0) -> dict:
    return {
        i: {j: w for j in range(n) if j != i}
        for i in range(n)
    }


def two_clusters(k: int, intra: float = 10.0, inter: float = 0.1) -> tuple[list, dict]:
    """2k vertices in two dense clusters joined by weak edges."""
    vertices = list(range(2 * k))
    aff: dict = {v: {} for v in vertices}
    for group in (range(k), range(k, 2 * k)):
        for i in group:
            for j in group:
                if i != j:
                    aff[i][j] = intra
    for i in range(k):
        aff[i][i + k] = inter
        aff[i + k][i] = inter
    return vertices, aff


class TestBasics:
    def test_two_vertices(self):
        result = fm_bipartition([0, 1], {0: {1: 1.0}, 1: {0: 1.0}})
        assert sorted(result.side0 + result.side1) == [0, 1]
        assert len(result.side0) == len(result.side1) == 1

    def test_too_few_vertices_rejected(self):
        with pytest.raises(ValueError):
            fm_bipartition([0], {})

    def test_finds_natural_cut(self):
        vertices, aff = two_clusters(4)
        # adversarial initial: interleaved
        initial = (vertices[::2], vertices[1::2])
        result = fm_bipartition(vertices, aff, initial=initial)
        sides = {frozenset(result.side0), frozenset(result.side1)}
        assert frozenset(range(4)) in sides
        assert result.cut == pytest.approx(4 * 0.1)

    def test_never_worse_than_initial(self):
        vertices, aff = two_clusters(3)
        initial = (vertices[::2], vertices[1::2])
        initial_cut = cut_weight(aff, set(initial[0]), set(initial[1]))
        result = fm_bipartition(vertices, aff, initial=initial)
        assert result.cut <= initial_cut + 1e-9

    def test_deterministic(self):
        vertices, aff = two_clusters(4)
        a = fm_bipartition(vertices, aff)
        b = fm_bipartition(vertices, aff)
        assert a.side0 == b.side0 and a.side1 == b.side1

    def test_side_of(self):
        result = fm_bipartition([0, 1], {0: {1: 1.0}, 1: {0: 1.0}})
        assert result.side_of(result.side0[0]) == 0
        with pytest.raises(KeyError):
            result.side_of(99)


class TestCapacities:
    def test_capacity_respected(self):
        vertices, aff = two_clusters(3)
        result = fm_bipartition(vertices, aff, capacities=(4, 4))
        assert len(result.side0) <= 4 and len(result.side1) <= 4

    def test_both_sides_nonempty(self):
        # even on a uniform clique, no side may be emptied
        result = fm_bipartition(list(range(5)), clique(5))
        assert len(result.side0) >= 1 and len(result.side1) >= 1

    def test_infeasible_capacities_rejected(self):
        with pytest.raises(ValueError, match="capacities"):
            fm_bipartition([0, 1, 2], clique(3), capacities=(1, 1))

    def test_initial_exceeding_capacity_rejected(self):
        with pytest.raises(ValueError, match="exceed"):
            fm_bipartition(
                [0, 1, 2],
                clique(3),
                initial=([0, 1, 2], []),
                capacities=(2, 2),
            )


class TestValidation:
    def test_asymmetric_affinity_rejected(self):
        with pytest.raises(ValueError, match="symmetric"):
            fm_bipartition([0, 1], {0: {1: 1.0}, 1: {0: 2.0}})

    def test_negative_affinity_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            fm_bipartition([0, 1], {0: {1: -1.0}, 1: {0: -1.0}})

    def test_unknown_vertex_in_affinity_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            fm_bipartition([0, 1], {0: {9: 1.0}, 9: {0: 1.0}})

    def test_incomplete_initial_rejected(self):
        with pytest.raises(ValueError, match="cover"):
            fm_bipartition([0, 1, 2], clique(3), initial=([0], [1]))

    def test_overlapping_initial_rejected(self):
        with pytest.raises(ValueError, match="both"):
            fm_bipartition([0, 1], {0: {1: 1.0}, 1: {0: 1.0}}, initial=([0, 1], [1]))


class TestAffinityFromDistance:
    def test_inverse_distance(self):
        aff = affinity_from_distance([0, 1], {(0, 1): 4.0})
        assert aff[0][1] == pytest.approx(0.25)
        assert aff[1][0] == pytest.approx(0.25)

    def test_missing_pair_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            affinity_from_distance([0, 1, 2], {(0, 1): 1.0})

    def test_non_positive_distance_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            affinity_from_distance([0, 1], {(0, 1): 0.0})


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=n * (n - 1) // 2,
            max_size=n * (n - 1) // 2,
        )
    )
    aff: dict = {i: {} for i in range(n)}
    idx = 0
    for i in range(n):
        for j in range(i + 1, n):
            w = weights[idx]
            idx += 1
            if w > 0:
                aff[i][j] = w
                aff[j][i] = w
    return list(range(n)), aff


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_graphs())
    def test_partition_is_exact_cover(self, graph):
        vertices, aff = graph
        result = fm_bipartition(vertices, aff)
        assert sorted(result.side0 + result.side1) == sorted(vertices)
        assert not set(result.side0) & set(result.side1)

    @settings(max_examples=60, deadline=None)
    @given(random_graphs())
    def test_cut_not_worse_than_default_initial(self, graph):
        vertices, aff = graph
        half = (len(vertices) + 1) // 2
        init0, init1 = vertices[:half], vertices[half:]
        initial_cut = cut_weight(aff, set(init0), set(init1))
        result = fm_bipartition(vertices, aff)
        assert result.cut <= initial_cut + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(random_graphs())
    def test_reported_cut_is_consistent(self, graph):
        vertices, aff = graph
        result = fm_bipartition(vertices, aff)
        assert result.cut == pytest.approx(
            cut_weight(aff, set(result.side0), set(result.side1))
        )
