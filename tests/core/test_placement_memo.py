"""Placement-memo behaviour: hits, invalidation, bounds, equivalence.

The memo must be an invisible optimisation: every answer it replays
has to be field-for-field what a cold engine would compute.  Entries
are keyed on the identity-precise free pool, so a changed pool misses
while a pool that *returns* to a previously seen state replays the
warm answer across allocation epochs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.placement import PlacementEngine
from repro.topology.allocation import AllocationState
from repro.topology.builders import cluster
from repro.workload.job import ModelType

from tests.conftest import make_job


def _solution_fields(solution):
    if solution is None:
        return None
    return (
        solution.gpus,
        dict(solution.task_mapping),
        solution.metrics,
        solution.pool,
        solution.p2p,
    )


class TestMemoHits:
    def test_second_identical_propose_hits(self, minsky):
        engine = PlacementEngine(minsky, AllocationState(minsky))
        job_a = make_job("a", num_gpus=2)
        job_b = make_job("b", num_gpus=2)
        first = engine.propose(job_a)
        second = engine.propose(job_b)
        assert engine.stats.misses == 1
        assert engine.stats.hits == 1
        # identical placement, re-labelled for the asking job
        assert first.job_id == "a" and second.job_id == "b"
        assert _solution_fields(first) == _solution_fields(second)

    def test_no_fit_is_memoised_too(self, minsky):
        engine = PlacementEngine(minsky, AllocationState(minsky))
        giant = make_job("g", num_gpus=5)  # minsky has 4 GPUs
        assert engine.propose(giant) is None
        assert engine.propose(make_job("g2", num_gpus=5)) is None
        assert engine.stats.hits == 1 and engine.stats.misses == 1

    def test_different_class_misses(self, minsky):
        engine = PlacementEngine(minsky, AllocationState(minsky))
        engine.propose(make_job("a", num_gpus=2))
        engine.propose(make_job("b", num_gpus=1))
        assert engine.stats.misses == 2 and engine.stats.hits == 0

    def test_hit_rate(self, minsky):
        engine = PlacementEngine(minsky, AllocationState(minsky))
        assert engine.stats.hit_rate == 0.0
        engine.propose(make_job("a", num_gpus=2))
        engine.propose(make_job("b", num_gpus=2))
        assert engine.stats.hit_rate == pytest.approx(0.5)


class TestInvalidation:
    def test_allocate_flushes(self, minsky):
        alloc = AllocationState(minsky)
        engine = PlacementEngine(minsky, alloc)
        engine.propose(make_job("a", num_gpus=2))
        alloc.allocate("other", minsky.gpus()[:1])
        engine.propose(make_job("b", num_gpus=2))
        assert engine.stats.misses == 2
        assert engine.stats.hits == 0
        assert engine.stats.invalidations == 1

    def test_release_flushes(self, minsky):
        alloc = AllocationState(minsky)
        engine = PlacementEngine(minsky, alloc)
        alloc.allocate("other", minsky.gpus()[:1])
        engine.propose(make_job("a", num_gpus=2))
        alloc.release("other")
        engine.propose(make_job("b", num_gpus=2))
        assert engine.stats.misses == 2 and engine.stats.hits == 0

    def test_machine_health_flushes(self):
        topo = cluster(2)
        alloc = AllocationState(topo)
        engine = PlacementEngine(topo, alloc)
        engine.propose(make_job("a", num_gpus=2))
        down = topo.machines()[1]
        alloc.set_machine_down(down)
        solution = engine.propose(make_job("b", num_gpus=2))
        assert engine.stats.misses == 2 and engine.stats.hits == 0
        assert down not in {topo.machine_of(g) for g in solution.gpus}

    def test_enforce_flushes_own_memo(self, minsky):
        engine = PlacementEngine(minsky, AllocationState(minsky))
        solution = engine.propose(make_job("a", num_gpus=2))
        engine.enforce(solution)
        engine.propose(make_job("b", num_gpus=2))
        assert engine.stats.misses == 2 and engine.stats.hits == 0


class TestCrossEpochReplay:
    """Entries survive epoch rotations: a pool that returns to a
    previously seen identity replays the warm answer."""

    def test_release_back_to_seen_pool_hits(self, minsky):
        alloc = AllocationState(minsky)
        engine = PlacementEngine(minsky, alloc)
        engine.propose(make_job("a", num_gpus=2))
        alloc.allocate("other", minsky.gpus()[:1])
        alloc.release("other")  # pool identity restored
        second = engine.propose(make_job("b", num_gpus=2))
        assert engine.stats.hits == 1 and engine.stats.misses == 1
        assert second.job_id == "b"

    def test_heartbeat_keeps_memo_warm(self):
        topo = cluster(2)
        alloc = AllocationState(topo)
        engine = PlacementEngine(topo, alloc)
        engine.propose(make_job("a", num_gpus=2))
        alloc.set_machine_up(topo.machines()[0])  # health no-op
        engine.propose(make_job("b", num_gpus=2))
        assert engine.stats.hits == 1
        assert engine.stats.invalidations == 0

    def test_different_pool_identity_misses_even_at_equal_counts(self):
        # same free *count* but different free *GPUs*: must miss, the
        # seed engine would compute over a different candidate pool
        topo = cluster(2)
        alloc = AllocationState(topo)
        engine = PlacementEngine(topo, alloc)
        gpus = topo.gpus(machine=topo.machines()[0])
        alloc.allocate("x", gpus[:1])
        engine.propose(make_job("a", num_gpus=2))
        alloc.release("x")
        alloc.allocate("y", gpus[1:2])
        engine.propose(make_job("b", num_gpus=2))
        assert engine.stats.hits == 0 and engine.stats.misses == 2

    def test_co_runner_order_is_part_of_the_key(self, minsky):
        # interference sums are float accumulations: visiting co-runners
        # in a different order may change the bit pattern, so order is
        # pinned in the key and a reordered view must miss
        alloc = AllocationState(minsky)
        engine = PlacementEngine(minsky, alloc)
        gpus = minsky.gpus()
        alloc.allocate("r1", gpus[:1])
        alloc.allocate("r2", gpus[1:2])
        co = {
            "r1": (make_job("r1", num_gpus=1), frozenset(gpus[:1])),
            "r2": (make_job("r2", num_gpus=1), frozenset(gpus[1:2])),
        }
        rev = {k: co[k] for k in reversed(list(co))}
        engine.propose(make_job("a", num_gpus=2), co)
        engine.propose(make_job("b", num_gpus=2), rev)
        assert engine.stats.hits == 0 and engine.stats.misses == 2


class TestBounds:
    def test_memo_is_lru_bounded(self, minsky):
        engine = PlacementEngine(minsky, AllocationState(minsky), memo_size=3)
        for n in (1, 2, 3, 4):
            engine.propose(make_job(f"j{n}", num_gpus=n))
        assert len(engine._memo) == 3
        # the oldest class (num_gpus=1) was evicted: proposing it again misses
        engine.propose(make_job("again", num_gpus=1))
        assert engine.stats.hits == 0

    def test_memo_size_zero_disables(self, minsky):
        engine = PlacementEngine(minsky, AllocationState(minsky), memo_size=0)
        engine.propose(make_job("a", num_gpus=2))
        engine.propose(make_job("b", num_gpus=2))
        assert engine.stats.hits == 0 and engine.stats.misses == 0
        assert len(engine._memo) == 0


class TestEquivalence:
    """Memoised and cold engines must agree on every proposal."""

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(list(ModelType)),
                st.sampled_from([1, 2, 4, 8]),
                st.integers(min_value=1, max_value=4),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_memo_vs_cold_propose(self, specs):
        topo = cluster(2)
        alloc = AllocationState(topo)
        warm = PlacementEngine(topo, alloc)
        cold = PlacementEngine(topo, alloc, memo_size=0)
        for i, (model, batch, n_gpus) in enumerate(specs):
            job = make_job(f"j{i}", model=model, batch_size=batch, num_gpus=n_gpus)
            assert _solution_fields(warm.propose(job)) == _solution_fields(
                cold.propose(job)
            )
        assert warm.stats.lookups == len(specs)

    def test_memo_vs_cold_through_allocation_churn(self, minsky):
        alloc = AllocationState(minsky)
        warm = PlacementEngine(minsky, alloc)
        cold = PlacementEngine(minsky, alloc, memo_size=0)
        placed = []
        for i in range(4):
            job = make_job(f"j{i}", num_gpus=1)
            a, b = warm.propose(job), cold.propose(job)
            assert _solution_fields(a) == _solution_fields(b)
            if a is not None:
                warm.enforce(a)
                placed.append(job.job_id)
        for job_id in placed:
            alloc.release(job_id)
            job = make_job(f"after-{job_id}", num_gpus=2)
            assert _solution_fields(warm.propose(job)) == _solution_fields(
                cold.propose(job)
            )
