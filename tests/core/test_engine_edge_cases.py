"""Edge-case coverage for the placement engine on clusters."""

import pytest

from repro.core.placement import PlacementEngine
from repro.core.utility import UtilityParams
from repro.perf.calibration import MachineKind
from repro.perf.model import PerformanceModel
from repro.topology.allocation import AllocationState
from repro.topology.builders import cluster, power8_minsky, power8_pcie_k80

from tests.conftest import make_job


class TestPoolCapping:
    def test_max_pools_limits_drb_evaluations(self, monkeypatch):
        """With many eligible machines only max_pools get a full DRB
        evaluation (large-cluster tractability)."""
        topo = cluster(24)
        engine = PlacementEngine(topo, AllocationState(topo))
        calls = []
        original = engine._solve_pool

        def counting(job, graph, pool, co):
            calls.append(pool.machines)
            return original(job, graph, pool, co)

        monkeypatch.setattr(engine, "_solve_pool", counting)
        # big-batch job: no placement reaches utility 1.0's early break?
        # it will -- an empty machine is perfect; so force imperfection
        # by occupying one GPU everywhere
        for m in topo.machines():
            engine.alloc.allocate(f"sq-{m}", [topo.gpus(machine=m)[1]])
        sol = engine.propose(make_job(num_gpus=2, batch_size=1))
        assert sol is not None
        assert len(calls) <= engine.max_pools

    def test_early_break_on_perfect_placement(self, monkeypatch):
        topo = cluster(24)
        engine = PlacementEngine(topo, AllocationState(topo))
        calls = []
        original = engine._solve_pool

        def counting(job, graph, pool, co):
            calls.append(pool.machines)
            return original(job, graph, pool, co)

        monkeypatch.setattr(engine, "_solve_pool", counting)
        sol = engine.propose(make_job(num_gpus=2, batch_size=1))
        assert sol.utility == pytest.approx(1.0)
        assert len(calls) == 1  # first empty machine is already perfect


class TestHeterogeneousClusters:
    @pytest.fixture
    def hetero(self):
        def builder(mid):
            return power8_minsky(mid) if mid == "m0" else power8_pcie_k80(mid)

        return cluster(2, builder)

    def test_machine_kinds_inferred_per_machine(self, hetero):
        perf = PerformanceModel(hetero)
        assert perf.machine_kind("m0") is MachineKind.NVLINK_P100
        assert perf.machine_kind("m1") is MachineKind.PCIE_K80

    def test_same_job_slower_on_k80_machine(self, hetero):
        perf = PerformanceModel(hetero)
        job = make_job(num_gpus=2, batch_size=8)
        fast = perf.solo_exec_time(job, hetero.gpus(machine="m0")[:2])
        slow = perf.solo_exec_time(job, hetero.gpus(machine="m1")[:2])
        assert slow > 2 * fast

    def test_engine_places_on_best_available(self, hetero):
        """Utility is topology-relative, so both machines can score
        well; the engine must at least produce a valid P2P placement."""
        engine = PlacementEngine(hetero, AllocationState(hetero))
        sol = engine.propose(make_job(num_gpus=2, batch_size=1))
        assert sol is not None and sol.p2p


class TestUtilityParamPlumbing:
    def test_custom_params_change_decisions(self, minsky):
        alloc = AllocationState(minsky)
        alloc.allocate("noisy", ["m0/gpu0"])
        noisy = make_job("noisy", batch_size=1, num_gpus=1)
        co = {"noisy": (noisy, frozenset(["m0/gpu0"]))}
        frag_only = PlacementEngine(
            minsky,
            alloc,
            params=UtilityParams(alpha_cc=0.0, alpha_b=0.0, alpha_d=1.0),
        )
        sol = frag_only.propose(make_job("j", num_gpus=1, batch_size=1), co)
        # pure fragmentation objective packs next to the noisy job
        assert sol.gpus == ("m0/gpu1",)

    def test_interference_max_controls_sensitivity(self, minsky):
        alloc = AllocationState(minsky)
        engine = PlacementEngine(
            minsky, alloc, params=UtilityParams(interference_max=1.01)
        )
        noisy = make_job("noisy", batch_size=1, num_gpus=2)
        alloc.allocate("noisy", ["m0/gpu0", "m0/gpu1"])
        co = {"noisy": (noisy, frozenset(["m0/gpu0", "m0/gpu1"]))}
        sol = engine.propose(make_job("j", num_gpus=2, batch_size=1), co)
        # with a hair-trigger normaliser, even residual DRAM contention
        # saturates the interference term; utility still in [0, 1]
        assert 0.0 <= sol.utility <= 1.0


class TestDegenerateInputs:
    def test_engine_on_single_gpu_machine(self):
        from repro.topology.builders import machine

        topo = machine("solo", sockets=1, gpus_per_socket=1)
        engine = PlacementEngine(topo, AllocationState(topo))
        sol = engine.propose(make_job(num_gpus=1))
        assert sol.gpus == ("solo/gpu0",)
        assert sol.utility > 0.5

    def test_reference_bandwidth_fallback(self):
        from repro.topology.builders import machine

        topo = machine("solo", sockets=1, gpus_per_socket=1)
        engine = PlacementEngine(topo, AllocationState(topo))
        # single GPU -> no pairs -> fallback reference bandwidth of 1.0
        graph = engine.job_graph(make_job(num_gpus=1))
        assert graph.n_edges() == 0
