"""Tests for hierarchy-guided physical bipartitioning."""

import pytest

from repro.core.bipartition import gpu_affinity, physical_bipartition
from repro.topology.builders import cluster, machine
from repro.topology.links import LinkSpec


class TestHierarchySplits:
    def test_minsky_splits_at_socket(self, minsky):
        p0, p1 = physical_bipartition(minsky, minsky.gpus())
        assert {p0, p1} == {
            ("m0/gpu0", "m0/gpu1"),
            ("m0/gpu2", "m0/gpu3"),
        }

    def test_dgx_splits_at_socket(self, dgx):
        p0, p1 = physical_bipartition(dgx, dgx.gpus())
        sockets0 = {dgx.socket_of(g) for g in p0}
        sockets1 = {dgx.socket_of(g) for g in p1}
        assert len(sockets0) == len(sockets1) == 1
        assert sockets0 != sockets1

    def test_cluster_splits_at_machine(self, small_cluster):
        gpus = small_cluster.gpus(machine="m0") + small_cluster.gpus(machine="m1")
        p0, p1 = physical_bipartition(small_cluster, gpus)
        m0 = {small_cluster.machine_of(g) for g in p0}
        m1 = {small_cluster.machine_of(g) for g in p1}
        assert m0 != m1 and len(m0) == len(m1) == 1

    def test_uneven_fragment_keeps_socket_atomic(self, minsky):
        # 3 free GPUs: socket0 intact, socket1 fragmented
        pool = ["m0/gpu0", "m0/gpu1", "m0/gpu3"]
        p0, p1 = physical_bipartition(minsky, pool)
        sides = {p0, p1}
        assert ("m0/gpu0", "m0/gpu1") in sides
        assert ("m0/gpu3",) in sides

    def test_three_machines_grouped_two_one(self, small_cluster):
        p0, p1 = physical_bipartition(small_cluster, small_cluster.gpus())
        machines0 = {small_cluster.machine_of(g) for g in p0}
        machines1 = {small_cluster.machine_of(g) for g in p1}
        assert machines0.isdisjoint(machines1)
        assert {len(machines0), len(machines1)} == {1, 2}


class TestFlatRegions:
    def test_two_gpus_trivial(self, minsky):
        p0, p1 = physical_bipartition(minsky, ["m0/gpu1", "m0/gpu0"])
        assert p0 == ("m0/gpu0",) and p1 == ("m0/gpu1",)

    def test_single_gpu_rejected(self, minsky):
        with pytest.raises(ValueError):
            physical_bipartition(minsky, ["m0/gpu0"])

    def test_flat_clique_balanced_halves(self):
        # one socket, 4 NVLink-cliqued GPUs: FM fallback splits evenly-ish
        topo = machine("mx", sockets=1, gpus_per_socket=4, peer_link=LinkSpec.nvlink(1))
        p0, p1 = physical_bipartition(topo, topo.gpus())
        assert len(p0) + len(p1) == 4
        assert len(p0) >= 1 and len(p1) >= 1

    def test_deterministic(self, dgx):
        a = physical_bipartition(dgx, dgx.gpus())
        b = physical_bipartition(dgx, dgx.gpus())
        assert a == b


class TestAffinity:
    def test_affinity_inverse_distance(self, minsky):
        aff = gpu_affinity(minsky, minsky.gpus())
        assert aff["m0/gpu0"]["m0/gpu1"] == pytest.approx(1.0)  # distance 1
        assert aff["m0/gpu0"]["m0/gpu2"] == pytest.approx(1.0 / 42.0)

    def test_affinity_symmetric(self, dgx):
        aff = gpu_affinity(dgx, dgx.gpus())
        for u, nbrs in aff.items():
            for v, w in nbrs.items():
                assert aff[v][u] == w
