"""Tests for host filtering (filterHostsByConstraints)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.constraints import (
    CandidatePool,
    CandidatePrefilter,
    PrefilterStats,
    filter_hosts,
    machine_bus_capacity,
)
from repro.topology.allocation import AllocationState
from repro.topology.builders import cluster, power8_minsky

from tests.conftest import make_job


class TestCapacityFilter:
    def test_empty_machine_eligible(self, minsky, alloc):
        pools = filter_hosts(minsky, alloc, make_job(num_gpus=2))
        assert len(pools) == 1
        assert len(pools[0].gpus) == 4

    def test_insufficient_gpus_filtered(self, minsky, alloc):
        alloc.allocate("x", ["m0/gpu0", "m0/gpu1", "m0/gpu2"])
        assert filter_hosts(minsky, alloc, make_job(num_gpus=2)) == []

    def test_pool_contains_only_free_gpus(self, minsky, alloc):
        alloc.allocate("x", ["m0/gpu0"])
        pools = filter_hosts(minsky, alloc, make_job(num_gpus=2))
        assert "m0/gpu0" not in pools[0].gpus

    def test_tightest_machine_first(self):
        topo = cluster(2)
        alloc = AllocationState(topo)
        alloc.allocate("x", ["m0/gpu0", "m0/gpu1"])
        pools = filter_hosts(topo, alloc, make_job(num_gpus=2))
        assert pools[0].machines == ("m0",)  # 2 free, tighter than m1's 4


class TestBandwidthConstraint:
    def test_saturated_machine_filtered(self, minsky, alloc, profiles):
        """t_bw <= p_bw: enough tiny-batch jobs exhaust the bus budget."""
        capacity = machine_bus_capacity(minsky, "m0")
        co = {}
        demand_each = profiles.for_job(make_job(batch_size=1)).avg_demand_gbs
        n_needed = int(capacity / demand_each) + 1
        # synthetic co-runners that each burn one GPU's worth of demand
        topo2 = power8_minsky("m0")
        for i in range(2):
            job = make_job(f"busy{i}", batch_size=1, num_gpus=1)
            alloc.allocate(f"busy{i}", [f"m0/gpu{i}"])
            co[f"busy{i}"] = (job, frozenset([f"m0/gpu{i}"]))
        if n_needed <= 2:
            assert filter_hosts(minsky, alloc, make_job(batch_size=1)) == []
        else:
            # capacity still available: machine stays eligible
            assert filter_hosts(minsky, alloc, make_job(batch_size=1)) != []

    def test_bus_capacity_value(self, minsky):
        # 4 GPUs x dual NVLink uplink (40 GB/s)
        assert machine_bus_capacity(minsky, "m0") == pytest.approx(160.0)


class TestAntiCollocation:
    def test_needs_distinct_sockets(self, minsky, alloc):
        alloc.allocate("x", ["m0/gpu2", "m0/gpu3"])  # socket1 gone
        job = make_job(num_gpus=2, anti_collocation=True)
        assert filter_hosts(minsky, alloc, job) == []

    def test_eligible_with_free_domains(self, minsky, alloc):
        job = make_job(num_gpus=2, anti_collocation=True)
        assert len(filter_hosts(minsky, alloc, job)) == 1


class TestSpanningPools:
    def test_single_node_job_never_spans(self, small_cluster):
        alloc = AllocationState(small_cluster)
        for m in small_cluster.machines():
            alloc.allocate(f"fill-{m}", small_cluster.gpus(machine=m)[:3])
        job = make_job(num_gpus=2, single_node=True)
        assert filter_hosts(small_cluster, alloc, job) == []

    def test_multi_node_job_gets_spanning_pool(self, small_cluster):
        alloc = AllocationState(small_cluster)
        for m in small_cluster.machines():
            alloc.allocate(f"fill-{m}", small_cluster.gpus(machine=m)[:3])
        job = make_job(num_gpus=2, single_node=False)
        pools = filter_hosts(small_cluster, alloc, job)
        assert len(pools) == 1 and pools[0].spans_machines
        assert len(pools[0].gpus) >= 2

    def test_spanning_pool_not_offered_when_one_machine_fits(self, small_cluster):
        alloc = AllocationState(small_cluster)
        job = make_job(num_gpus=2, single_node=False)
        pools = filter_hosts(small_cluster, alloc, job)
        assert all(not p.spans_machines for p in pools)

    def test_cluster_truly_full_returns_empty(self, small_cluster):
        alloc = AllocationState(small_cluster)
        for m in small_cluster.machines():
            alloc.allocate(f"fill-{m}", small_cluster.gpus(machine=m))
        job = make_job(num_gpus=2, single_node=False)
        assert filter_hosts(small_cluster, alloc, job) == []


class TestPrefilter:
    """Top-k fast path: same pool prefix as the exhaustive scan."""

    @settings(max_examples=25, deadline=None)
    @given(
        taken=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),  # machine
                st.integers(min_value=1, max_value=4),  # gpus taken
            ),
            max_size=12,
        ),
        need=st.integers(min_value=1, max_value=4),
        top_k=st.integers(min_value=1, max_value=10),
    )
    def test_prefix_identical_to_exhaustive(self, taken, need, top_k):
        """Capacity dominance: for any fleet state and any k, the
        prefiltered result equals the first k pools of the exhaustive
        scan — so a caller consuming at most k pools (the engine) can
        never see a different candidate set."""
        topo = cluster(10)
        alloc = AllocationState(topo)
        for i, (m_idx, n) in enumerate(taken):
            machine = f"m{m_idx}"
            free = alloc.free_gpus(machine=machine)
            if free:
                alloc.allocate(f"t{i}", free[: min(n, len(free))])
        job = make_job(num_gpus=need)
        full = filter_hosts(topo, alloc, job)
        fast = filter_hosts(
            topo, alloc, job, prefilter=CandidatePrefilter(top_k)
        )
        assert fast == full[:top_k]

    def test_engine_budget_never_loses_the_exhaustive_pick(self):
        """Adaptive k (= the engine's ``max_pools``): the host the
        exhaustive scan would hand the engine is always in the
        prefiltered set, so the proposal is bit-identical."""
        from repro.core.placement import PlacementEngine

        topo = cluster(12)
        alloc_a = AllocationState(topo)
        alloc_b = AllocationState(topo)
        # fragment the fleet so tightest-fit ordering actually matters
        for i in range(8):
            gpus = topo.gpus(machine=f"m{i}")[: (i % 4) + 1]
            alloc_a.allocate(f"f{i}", gpus)
            alloc_b.allocate(f"f{i}", gpus)
        fast = PlacementEngine(topo, alloc_a, prefilter=True,
                               incremental_drb=False)
        slow = PlacementEngine(topo, alloc_b, prefilter=False,
                               incremental_drb=False)
        assert fast.prefilter.top_k == fast.max_pools
        for need in (1, 2, 3, 4):
            job = make_job(f"probe{need}", num_gpus=need)
            a = fast.propose(job, {})
            b = slow.propose(job, {})
            assert (a is None) == (b is None)
            if a is not None:
                assert a.gpus == b.gpus
                assert a.utility == b.utility

    def test_spanning_pool_identical(self, small_cluster):
        alloc = AllocationState(small_cluster)
        for m in small_cluster.machines():
            alloc.allocate(f"fill-{m}", small_cluster.gpus(machine=m)[:3])
        job = make_job(num_gpus=2, single_node=False)
        full = filter_hosts(small_cluster, alloc, job)
        fast = filter_hosts(
            small_cluster, alloc, job, prefilter=CandidatePrefilter(8)
        )
        assert fast == full
        assert fast[0].spans_machines

    def test_stats_and_report_account_for_skipped_hosts(self):
        topo = cluster(10)
        alloc = AllocationState(topo)
        stats = PrefilterStats()
        report = {}
        job = make_job(num_gpus=1)
        pools = filter_hosts(
            topo, alloc, job,
            report=report,
            prefilter=CandidatePrefilter(2, stats),
        )
        assert len(pools) == 2  # probing stopped at k survivors
        assert stats.calls == 1
        assert stats.considered == 2
        assert stats.pruned == 8  # capacity-eligible but never probed
        assert report["prefilter"] == {"k": 2, "considered": 2, "pruned": 8}
        assert report["pruned"]["prefilter"] == 8
        assert stats.as_dict()["prune_rate"] == pytest.approx(0.8)

    def test_readonly_clone_counts_nothing(self):
        stats = PrefilterStats()
        pf = CandidatePrefilter(4, stats)
        clone = pf.readonly()
        assert clone.top_k == 4
        clone.note(10, 5)
        assert stats.calls == 0 and stats.considered == 0

    def test_top_k_must_be_positive(self):
        with pytest.raises(ValueError, match="top_k"):
            CandidatePrefilter(0)


class TestCandidatePool:
    def test_spans_machines_flag(self):
        single = CandidatePool(machines=("m0",), gpus=("m0/gpu0",))
        multi = CandidatePool(machines=("m0", "m1"), gpus=("m0/gpu0", "m1/gpu0"))
        assert not single.spans_machines
        assert multi.spans_machines
