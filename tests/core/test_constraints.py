"""Tests for host filtering (filterHostsByConstraints)."""

import pytest

from repro.core.constraints import (
    CandidatePool,
    filter_hosts,
    machine_bus_capacity,
)
from repro.topology.allocation import AllocationState
from repro.topology.builders import cluster, power8_minsky

from tests.conftest import make_job


class TestCapacityFilter:
    def test_empty_machine_eligible(self, minsky, alloc):
        pools = filter_hosts(minsky, alloc, make_job(num_gpus=2))
        assert len(pools) == 1
        assert len(pools[0].gpus) == 4

    def test_insufficient_gpus_filtered(self, minsky, alloc):
        alloc.allocate("x", ["m0/gpu0", "m0/gpu1", "m0/gpu2"])
        assert filter_hosts(minsky, alloc, make_job(num_gpus=2)) == []

    def test_pool_contains_only_free_gpus(self, minsky, alloc):
        alloc.allocate("x", ["m0/gpu0"])
        pools = filter_hosts(minsky, alloc, make_job(num_gpus=2))
        assert "m0/gpu0" not in pools[0].gpus

    def test_tightest_machine_first(self):
        topo = cluster(2)
        alloc = AllocationState(topo)
        alloc.allocate("x", ["m0/gpu0", "m0/gpu1"])
        pools = filter_hosts(topo, alloc, make_job(num_gpus=2))
        assert pools[0].machines == ("m0",)  # 2 free, tighter than m1's 4


class TestBandwidthConstraint:
    def test_saturated_machine_filtered(self, minsky, alloc, profiles):
        """t_bw <= p_bw: enough tiny-batch jobs exhaust the bus budget."""
        capacity = machine_bus_capacity(minsky, "m0")
        co = {}
        demand_each = profiles.for_job(make_job(batch_size=1)).avg_demand_gbs
        n_needed = int(capacity / demand_each) + 1
        # synthetic co-runners that each burn one GPU's worth of demand
        topo2 = power8_minsky("m0")
        for i in range(2):
            job = make_job(f"busy{i}", batch_size=1, num_gpus=1)
            alloc.allocate(f"busy{i}", [f"m0/gpu{i}"])
            co[f"busy{i}"] = (job, frozenset([f"m0/gpu{i}"]))
        if n_needed <= 2:
            assert filter_hosts(minsky, alloc, make_job(batch_size=1)) == []
        else:
            # capacity still available: machine stays eligible
            assert filter_hosts(minsky, alloc, make_job(batch_size=1)) != []

    def test_bus_capacity_value(self, minsky):
        # 4 GPUs x dual NVLink uplink (40 GB/s)
        assert machine_bus_capacity(minsky, "m0") == pytest.approx(160.0)


class TestAntiCollocation:
    def test_needs_distinct_sockets(self, minsky, alloc):
        alloc.allocate("x", ["m0/gpu2", "m0/gpu3"])  # socket1 gone
        job = make_job(num_gpus=2, anti_collocation=True)
        assert filter_hosts(minsky, alloc, job) == []

    def test_eligible_with_free_domains(self, minsky, alloc):
        job = make_job(num_gpus=2, anti_collocation=True)
        assert len(filter_hosts(minsky, alloc, job)) == 1


class TestSpanningPools:
    def test_single_node_job_never_spans(self, small_cluster):
        alloc = AllocationState(small_cluster)
        for m in small_cluster.machines():
            alloc.allocate(f"fill-{m}", small_cluster.gpus(machine=m)[:3])
        job = make_job(num_gpus=2, single_node=True)
        assert filter_hosts(small_cluster, alloc, job) == []

    def test_multi_node_job_gets_spanning_pool(self, small_cluster):
        alloc = AllocationState(small_cluster)
        for m in small_cluster.machines():
            alloc.allocate(f"fill-{m}", small_cluster.gpus(machine=m)[:3])
        job = make_job(num_gpus=2, single_node=False)
        pools = filter_hosts(small_cluster, alloc, job)
        assert len(pools) == 1 and pools[0].spans_machines
        assert len(pools[0].gpus) >= 2

    def test_spanning_pool_not_offered_when_one_machine_fits(self, small_cluster):
        alloc = AllocationState(small_cluster)
        job = make_job(num_gpus=2, single_node=False)
        pools = filter_hosts(small_cluster, alloc, job)
        assert all(not p.spans_machines for p in pools)

    def test_cluster_truly_full_returns_empty(self, small_cluster):
        alloc = AllocationState(small_cluster)
        for m in small_cluster.machines():
            alloc.allocate(f"fill-{m}", small_cluster.gpus(machine=m))
        job = make_job(num_gpus=2, single_node=False)
        assert filter_hosts(small_cluster, alloc, job) == []


class TestCandidatePool:
    def test_spans_machines_flag(self):
        single = CandidatePool(machines=("m0",), gpus=("m0/gpu0",))
        multi = CandidatePool(machines=("m0", "m1"), gpus=("m0/gpu0", "m1/gpu0"))
        assert not single.spans_machines
        assert multi.spans_machines
