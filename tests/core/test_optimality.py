"""Brute-force optimality cross-checks for the core algorithms.

Small instances are exhaustively enumerable, so we can measure how far
the heuristics land from the true optimum -- FM is a local-search
heuristic and DRB a greedy mapper, so we check bounded gaps (and exact
optimality where the structure guarantees it), not blind equality.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fm import cut_weight, fm_bipartition
from repro.core.drb import drb_map
from repro.core.utility import communication_cost
from repro.topology.allocation import AllocationState
from repro.topology.builders import dgx1, power8_minsky
from repro.workload.jobgraph import data_parallel_graph

from tests.conftest import make_job


def brute_force_min_cut(vertices, affinity, capacities):
    """Exhaustive minimum cut under the same capacity constraints."""
    cap0, cap1 = capacities
    best = float("inf")
    n = len(vertices)
    for size0 in range(max(1, n - cap1), min(cap0, n - 1) + 1):
        for side0 in itertools.combinations(vertices, size0):
            cut = cut_weight(affinity, set(side0), set(vertices) - set(side0))
            best = min(best, cut)
    return best


@st.composite
def small_graphs(draw):
    n = draw(st.integers(min_value=3, max_value=7))
    weights = draw(
        st.lists(
            st.integers(min_value=0, max_value=8),
            min_size=n * (n - 1) // 2,
            max_size=n * (n - 1) // 2,
        )
    )
    aff: dict = {i: {} for i in range(n)}
    idx = 0
    for i in range(n):
        for j in range(i + 1, n):
            w = float(weights[idx])
            idx += 1
            if w > 0:
                aff[i][j] = w
                aff[j][i] = w
    return list(range(n)), aff


class TestFMOptimality:
    @settings(max_examples=80, deadline=None)
    @given(small_graphs())
    def test_fm_result_is_single_move_optimal(self, graph):
        """FM's actual guarantee: at termination no single vertex move
        (respecting capacities) reduces the cut.  (It is NOT globally
        optimal -- hypothesis readily finds graphs where an isolated
        vertex plus the capacity bound pins FM one move away from a
        zero cut, which is inherent to the paper's chosen heuristic.)"""
        vertices, aff = graph
        n = len(vertices)
        result = fm_bipartition(vertices, aff)
        side0, side1 = set(result.side0), set(result.side1)
        for v in vertices:
            src, dst = (side0, side1) if v in side0 else (side1, side0)
            if len(dst) + 1 > n - 1:  # capacity: the other side must stay < n
                continue
            moved_src = src - {v}
            moved_dst = dst | {v}
            assert (
                cut_weight(aff, moved_src, moved_dst)
                >= result.cut - 1e-9
            ), f"moving {v} improves the cut"

    @settings(max_examples=80, deadline=None)
    @given(small_graphs())
    def test_fm_tracks_optimal_within_additive_slack(self, graph):
        """Empirical quality bound: FM lands within three heaviest-edge
        weights of the true optimum on these small graphs (a 4000-graph
        offline sweep measured a worst gap of 2x the heaviest edge)."""
        vertices, aff = graph
        n = len(vertices)
        result = fm_bipartition(vertices, aff)
        optimal = brute_force_min_cut(vertices, aff, (n - 1, n - 1))
        max_w = max(
            (w for nbrs in aff.values() for w in nbrs.values()), default=0.0
        )
        assert result.cut <= optimal + 3 * max_w + 1e-9


def brute_force_best_mapping(topo, job, pool):
    """Exhaustive minimum Eq. 3 communication cost over the pool."""
    best = float("inf")
    for combo in itertools.combinations(pool, job.num_gpus):
        best = min(best, communication_cost(topo, combo))
    return best


class TestDRBOptimality:
    @pytest.mark.parametrize("n_gpus", [2, 3, 4])
    def test_drb_comm_cost_optimal_on_empty_minsky(self, n_gpus):
        topo = power8_minsky()
        alloc = AllocationState(topo)
        job = make_job(num_gpus=n_gpus, batch_size=1)
        mapping = drb_map(
            topo, alloc, job, data_parallel_graph(job), topo.gpus(), {}
        )
        achieved = communication_cost(topo, list(mapping.values()))
        optimal = brute_force_best_mapping(topo, job, topo.gpus())
        assert achieved == pytest.approx(optimal)

    @pytest.mark.parametrize("n_gpus", [2, 3, 4])
    def test_drb_comm_cost_optimal_on_empty_dgx(self, n_gpus):
        topo = dgx1()
        alloc = AllocationState(topo)
        job = make_job(num_gpus=n_gpus, batch_size=1)
        mapping = drb_map(
            topo, alloc, job, data_parallel_graph(job), topo.gpus(), {}
        )
        achieved = communication_cost(topo, list(mapping.values()))
        optimal = brute_force_best_mapping(topo, job, topo.gpus())
        assert achieved == pytest.approx(optimal)

    @settings(max_examples=25, deadline=None)
    @given(
        busy=st.sets(st.integers(min_value=0, max_value=7), max_size=6),
        n_gpus=st.integers(min_value=1, max_value=2),
    )
    def test_drb_near_optimal_on_fragmented_dgx(self, busy, n_gpus):
        """On arbitrary fragmented pools a greedy mapper may not be
        exactly optimal, but for up to 2 GPUs it must stay within 1.5x
        of the brute-force best communication cost."""
        topo = dgx1()
        alloc = AllocationState(topo)
        pool = [g for i, g in enumerate(topo.gpus()) if i not in busy]
        if len(pool) < n_gpus:
            return
        job = make_job(num_gpus=n_gpus, batch_size=1)
        mapping = drb_map(
            topo, alloc, job, data_parallel_graph(job), pool, {}
        )
        achieved = communication_cost(topo, list(mapping.values()))
        optimal = brute_force_best_mapping(topo, job, pool)
        assert achieved <= 1.5 * optimal + 1e-9
