"""Tests for Algorithm 3: utility-based job-graph bipartitioning."""

import pytest

from repro.core.job_bipartition import ExternalRegion, job_graph_bipartition
from repro.topology.allocation import AllocationState
from repro.workload.jobgraph import JobGraph, data_parallel_graph, model_parallel_chain

from tests.conftest import make_job


def split(minsky, alloc, job, graph, p0, p1, co=None, external=()):
    return job_graph_bipartition(
        minsky,
        alloc,
        job,
        graph,
        list(graph.tasks()),
        p0,
        p1,
        co or {},
        external=external,
    )


class TestCapacity:
    def test_never_overfills_a_side(self, minsky, alloc):
        job = make_job(num_gpus=3)
        graph = data_parallel_graph(job)
        a0, a1 = split(
            minsky, alloc, job,
            graph,
            ["m0/gpu0", "m0/gpu1"],
            ["m0/gpu2"],
        )
        assert len(a0) <= 2 and len(a1) <= 1
        assert sorted(a0 + a1) == [0, 1, 2]

    def test_too_many_tasks_rejected(self, minsky, alloc):
        job = make_job(num_gpus=3)
        graph = data_parallel_graph(job)
        with pytest.raises(ValueError, match="cannot fit"):
            split(minsky, alloc, job, graph, ["m0/gpu0"], ["m0/gpu1"])


class TestCommunicationPull:
    def test_clique_stays_together(self, minsky, alloc):
        """A communication-heavy clique must land on one side."""
        job = make_job(num_gpus=2, batch_size=1)
        graph = data_parallel_graph(job)
        a0, a1 = split(
            minsky, alloc, job, graph,
            ["m0/gpu0", "m0/gpu1"],
            ["m0/gpu2", "m0/gpu3"],
        )
        assert (len(a0), len(a1)) in ((2, 0), (0, 2))

    def test_zero_comm_tasks_fill_used_side_first(self, minsky, alloc):
        """Without communication, fragmentation drives the choice."""
        alloc.allocate("other", ["m0/gpu1"])  # socket0 partially used
        job = make_job(num_gpus=1)
        graph = JobGraph(1)  # no edges
        a0, a1 = split(
            minsky, alloc, job, graph, ["m0/gpu0"], ["m0/gpu2", "m0/gpu3"]
        )
        assert a0 == (0,)  # socket0 fills up, socket1 stays whole

    def test_external_region_attracts_connected_task(self, minsky, alloc):
        """A task linked to an ancestor-fixed region moves toward it."""
        job = make_job(num_gpus=2)
        graph = model_parallel_chain(2, weight=4.0)
        # task 1 already fixed near socket1 by an ancestor split
        external = (ExternalRegion(tasks=(1,), gpus=("m0/gpu2", "m0/gpu3")),)
        a0, a1 = job_graph_bipartition(
            minsky,
            alloc,
            job,
            graph,
            [0],
            ["m0/gpu0", "m0/gpu1"],
            ["m0/gpu2", "m0/gpu3"],
            {},
            external=external,
        )
        assert a1 == (0,)  # pulled toward its chain partner


class TestInterferenceAvoidance:
    def test_prefers_quiet_side(self, minsky, alloc):
        noisy = make_job("noisy", batch_size=1)
        alloc.allocate("noisy", ["m0/gpu0"])
        co = {"noisy": (noisy, frozenset(["m0/gpu0"]))}
        job = make_job("j", num_gpus=1, batch_size=1)
        graph = JobGraph(1)
        a0, a1 = split(
            minsky, alloc, job, graph, ["m0/gpu1"], ["m0/gpu2", "m0/gpu3"], co
        )
        # side0 shares socket/DRAM with the noisy job; fragmentation
        # prefers it but interference must win for a tiny-batch job
        assert a1 == (0,)


class TestDeterminism:
    def test_heaviest_tasks_anchor_first(self, minsky, alloc):
        job = make_job(num_gpus=3)
        graph = JobGraph(3, [(0, 1, 1.0), (1, 2, 5.0)])
        a0a, a1a = split(
            minsky, alloc, job, graph, ["m0/gpu0", "m0/gpu1"], ["m0/gpu2", "m0/gpu3"]
        )
        a0b, a1b = split(
            minsky, alloc, job, graph, ["m0/gpu0", "m0/gpu1"], ["m0/gpu2", "m0/gpu3"]
        )
        assert (a0a, a1a) == (a0b, a1b)
        # the heavy pair (1,2) must share a side
        same_side = any({1, 2} <= set(side) for side in (a0a, a1a))
        assert same_side
