"""Tests for the end-to-end placement engine psi(A, P)."""

import pytest

from repro.core.placement import PlacementEngine
from repro.topology.allocation import AllocationState
from repro.topology.builders import cluster, dgx1, power8_minsky, power8_pcie_k80

from tests.conftest import make_job


class TestPropose:
    def test_empty_machine_perfect_pack(self, engine):
        sol = engine.propose(make_job(num_gpus=2, batch_size=1))
        assert sol.utility == pytest.approx(1.0)
        assert sol.p2p
        assert len(sol.gpus) == 2

    def test_full_machine_returns_none(self, minsky, alloc):
        engine = PlacementEngine(minsky, alloc)
        alloc.allocate("x", minsky.gpus())
        assert engine.propose(make_job(num_gpus=1)) is None

    def test_task_mapping_covers_tasks(self, engine):
        sol = engine.propose(make_job(num_gpus=3))
        assert sorted(sol.task_mapping) == [0, 1, 2]
        assert set(sol.task_mapping.values()) == set(sol.gpus)

    def test_fragmented_state_yields_split_with_low_utility(self, minsky, alloc):
        engine = PlacementEngine(minsky, alloc)
        alloc.allocate("a", ["m0/gpu1"])
        alloc.allocate("b", ["m0/gpu3"])
        sol = engine.propose(make_job(num_gpus=2, batch_size=1))
        assert sol is not None
        assert not sol.p2p
        assert sol.utility < 0.7

    def test_avoids_interference_when_possible(self, minsky, alloc):
        engine = PlacementEngine(minsky, alloc)
        noisy = make_job("noisy", batch_size=1, num_gpus=1)
        alloc.allocate("noisy", ["m0/gpu0"])
        co = {"noisy": (noisy, frozenset(["m0/gpu0"]))}
        sol = engine.propose(make_job("j", num_gpus=2, batch_size=1), co)
        assert sorted(sol.gpus) == ["m0/gpu2", "m0/gpu3"]

    def test_cluster_prefers_tight_machine_when_clean(self):
        topo = cluster(2)
        alloc = AllocationState(topo)
        engine = PlacementEngine(topo, alloc)
        # m0 half-used by a big-batch (quiet) job on socket0
        quiet = make_job("quiet", batch_size=128, num_gpus=2)
        alloc.allocate("quiet", ["m0/gpu0", "m0/gpu1"])
        co = {"quiet": (quiet, frozenset(["m0/gpu0", "m0/gpu1"]))}
        sol = engine.propose(make_job("j", num_gpus=2, batch_size=128), co)
        assert {topo.machine_of(g) for g in sol.gpus} == {"m0"}

    def test_best_of_multiple_pools(self):
        topo = cluster(2)
        alloc = AllocationState(topo)
        engine = PlacementEngine(topo, alloc)
        # m0 fragmented (1 GPU each socket), m1 fully free
        alloc.allocate("a", ["m0/gpu0"])
        alloc.allocate("c", ["m0/gpu2"])
        sol = engine.propose(make_job(num_gpus=2, batch_size=1))
        assert {topo.machine_of(g) for g in sol.gpus} == {"m1"}
        assert sol.p2p


class TestExplain:
    def test_first_candidate_matches_propose(self):
        topo = cluster(3)
        alloc = AllocationState(topo)
        engine = PlacementEngine(topo, alloc)
        alloc.allocate("x", ["m0/gpu1"])  # make pools non-trivial
        job = make_job(num_gpus=2, batch_size=1)
        candidates = engine.explain(job)
        proposed = engine.propose(job)
        assert candidates
        assert candidates[0].gpus == proposed.gpus
        assert candidates[0].utility == pytest.approx(proposed.utility)

    def test_candidates_sorted_by_utility(self):
        topo = cluster(3)
        alloc = AllocationState(topo)
        engine = PlacementEngine(topo, alloc)
        alloc.allocate("a", ["m0/gpu1"])
        alloc.allocate("b", ["m1/gpu1", "m1/gpu3"])
        utilities = [
            s.utility for s in engine.explain(make_job(num_gpus=2, batch_size=1))
        ]
        assert utilities == sorted(utilities, reverse=True)
        assert len(utilities) >= 2  # multiple pools were considered

    def test_empty_when_nothing_fits(self, minsky, alloc):
        engine = PlacementEngine(minsky, alloc)
        alloc.allocate("x", minsky.gpus())
        assert engine.explain(make_job(num_gpus=1)) == []


class TestAntiCollocation:
    def test_tasks_on_distinct_sockets(self, minsky, alloc):
        engine = PlacementEngine(minsky, alloc)
        sol = engine.propose(make_job(num_gpus=2, anti_collocation=True))
        sockets = {minsky.socket_of(g) for g in sol.gpus}
        assert len(sockets) == 2


class TestScoreAllocation:
    def test_scores_arbitrary_gpus(self, engine, minsky):
        sol = engine.score_allocation(
            make_job(num_gpus=2), ("m0/gpu0", "m0/gpu2")
        )
        assert not sol.p2p
        assert sol.metrics.comm_norm == 1.0

    def test_matches_propose_for_same_gpus(self, engine):
        job = make_job(num_gpus=2, batch_size=1)
        proposed = engine.propose(job)
        scored = engine.score_allocation(job, proposed.gpus)
        assert scored.utility == pytest.approx(proposed.utility)


class TestP2PAttainability:
    def test_minsky_pair_attainable(self, engine):
        assert engine.p2p_attainable(make_job(num_gpus=2, batch_size=1))

    def test_minsky_quad_not_attainable(self, engine):
        # NVLink islands on Minsky have size 2
        assert not engine.p2p_attainable(make_job(num_gpus=4, batch_size=1))

    def test_dgx_quad_attainable(self):
        topo = dgx1()
        engine = PlacementEngine(topo, AllocationState(topo))
        assert engine.p2p_attainable(make_job(num_gpus=4, batch_size=1))

    def test_non_p2p_job_always_attainable(self, engine):
        assert engine.p2p_attainable(make_job(num_gpus=4, batch_size=128))


class TestEnforceAndSatisfies:
    def test_enforce_commits(self, engine, alloc):
        job = make_job(num_gpus=2)
        sol = engine.propose(job)
        engine.enforce(sol)
        assert alloc.gpus_of(job.job_id) == set(sol.gpus)

    def test_satisfies_utility_threshold(self, engine):
        job = make_job(num_gpus=2, batch_size=1, min_utility=0.9)
        sol = engine.propose(job)
        assert sol.satisfies(job)

    def test_satisfies_rejects_missing_p2p(self, minsky, alloc):
        engine = PlacementEngine(minsky, alloc)
        alloc.allocate("a", ["m0/gpu1"])
        alloc.allocate("b", ["m0/gpu3"])
        job = make_job(num_gpus=2, batch_size=1, min_utility=0.0)
        sol = engine.propose(job)
        assert not sol.p2p
        assert not sol.satisfies(job)  # tiny batch requires P2P

    def test_satisfies_ok_without_p2p_for_big_batch(self, minsky, alloc):
        engine = PlacementEngine(minsky, alloc)
        alloc.allocate("a", ["m0/gpu1"])
        alloc.allocate("b", ["m0/gpu3"])
        job = make_job(num_gpus=2, batch_size=128, min_utility=0.0)
        sol = engine.propose(job)
        assert sol.satisfies(job)
