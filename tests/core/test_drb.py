"""Tests for Dual Recursive Bipartitioning (Algorithm 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.drb import drb_map
from repro.topology.allocation import AllocationState
from repro.topology.builders import cluster, dgx1, power8_minsky
from repro.workload.jobgraph import data_parallel_graph, model_parallel_chain

from tests.conftest import make_job


def run_drb(topo, job, pool=None, co=None, alloc=None, graph=None):
    alloc = alloc or AllocationState(topo)
    graph = graph or data_parallel_graph(job)
    return drb_map(topo, alloc, job, graph, pool or topo.gpus(), co or {})


class TestMappingValidity:
    def test_injective_and_complete(self, minsky):
        job = make_job(num_gpus=4)
        mapping = run_drb(minsky, job)
        assert sorted(mapping) == [0, 1, 2, 3]
        assert len(set(mapping.values())) == 4

    def test_pool_too_small_rejected(self, minsky):
        job = make_job(num_gpus=3)
        with pytest.raises(ValueError, match="pool"):
            run_drb(minsky, job, pool=["m0/gpu0", "m0/gpu1"])

    def test_single_task_single_gpu(self, minsky):
        job = make_job(num_gpus=1)
        mapping = run_drb(minsky, job, pool=["m0/gpu2"])
        assert mapping == {0: "m0/gpu2"}


class TestPlacementQuality:
    def test_two_tasks_pack_on_a_socket(self, minsky):
        job = make_job(num_gpus=2, batch_size=1)
        mapping = run_drb(minsky, job)
        gpus = sorted(mapping.values())
        assert minsky.socket_of(gpus[0]) == minsky.socket_of(gpus[1])

    def test_dgx_quad_lands_on_one_socket(self, dgx):
        job = make_job(num_gpus=4, batch_size=1)
        mapping = run_drb(dgx, job)
        sockets = {dgx.socket_of(g) for g in mapping.values()}
        assert len(sockets) == 1

    def test_cluster_job_stays_on_one_machine(self, small_cluster):
        job = make_job(num_gpus=4, batch_size=1)
        mapping = run_drb(small_cluster, job)
        machines = {small_cluster.machine_of(g) for g in mapping.values()}
        assert len(machines) == 1

    def test_avoids_noisy_socket(self, minsky):
        alloc = AllocationState(minsky)
        noisy = make_job("noisy", batch_size=1, num_gpus=1)
        alloc.allocate("noisy", ["m0/gpu0"])
        co = {"noisy": (noisy, frozenset(["m0/gpu0"]))}
        job = make_job("j", num_gpus=2, batch_size=1)
        mapping = run_drb(
            minsky, job, pool=["m0/gpu1", "m0/gpu2", "m0/gpu3"], co=co, alloc=alloc
        )
        assert sorted(mapping.values()) == ["m0/gpu2", "m0/gpu3"]

    def test_chain_keeps_heaviest_pair_together(self, minsky):
        """Algorithm 3 is greedy by descending degree: the middle pair
        of a 4-task chain (the heaviest communicators) must share a
        socket, whatever happens to the chain's endpoints."""
        job = make_job(num_gpus=4)
        graph = model_parallel_chain(4, weight=4.0)
        mapping = run_drb(minsky, job, graph=graph)
        socket_of_task = {
            t: minsky.socket_of(g) for t, g in mapping.items()
        }
        assert socket_of_task[1] == socket_of_task[2]
        # and the split is 2+2, not 3+1
        from collections import Counter

        sizes = sorted(Counter(socket_of_task.values()).values())
        assert sizes == [2, 2]


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        n_tasks=st.integers(min_value=1, max_value=8),
        batch=st.sampled_from([1, 4, 32, 128]),
    )
    def test_mapping_valid_on_dgx(self, n_tasks, batch):
        topo = dgx1()
        job = make_job(num_gpus=n_tasks, batch_size=batch)
        mapping = run_drb(topo, job)
        assert sorted(mapping) == list(range(n_tasks))
        gpus = list(mapping.values())
        assert len(set(gpus)) == n_tasks
        assert all(g in topo.gpus() for g in gpus)

    @settings(max_examples=20, deadline=None)
    @given(
        busy=st.sets(st.integers(min_value=0, max_value=7), max_size=5),
        n_tasks=st.integers(min_value=1, max_value=3),
    )
    def test_mapping_only_uses_pool(self, busy, n_tasks):
        topo = dgx1()
        all_gpus = topo.gpus()
        pool = [g for i, g in enumerate(all_gpus) if i not in busy]
        if len(pool) < n_tasks:
            return
        job = make_job(num_gpus=n_tasks)
        mapping = run_drb(topo, job, pool=pool)
        assert set(mapping.values()) <= set(pool)
