"""Tests for Dual Recursive Bipartitioning (Algorithm 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bipartition import physical_bipartition
from repro.core.drb import BipartitionCache, drb_map
from repro.topology.allocation import AllocationState
from repro.topology.builders import cluster, dgx1, power8_minsky
from repro.workload.jobgraph import data_parallel_graph, model_parallel_chain

from tests.conftest import make_job


def run_drb(topo, job, pool=None, co=None, alloc=None, graph=None):
    alloc = alloc or AllocationState(topo)
    graph = graph or data_parallel_graph(job)
    return drb_map(topo, alloc, job, graph, pool or topo.gpus(), co or {})


class TestMappingValidity:
    def test_injective_and_complete(self, minsky):
        job = make_job(num_gpus=4)
        mapping = run_drb(minsky, job)
        assert sorted(mapping) == [0, 1, 2, 3]
        assert len(set(mapping.values())) == 4

    def test_pool_too_small_rejected(self, minsky):
        job = make_job(num_gpus=3)
        with pytest.raises(ValueError, match="pool"):
            run_drb(minsky, job, pool=["m0/gpu0", "m0/gpu1"])

    def test_single_task_single_gpu(self, minsky):
        job = make_job(num_gpus=1)
        mapping = run_drb(minsky, job, pool=["m0/gpu2"])
        assert mapping == {0: "m0/gpu2"}


class TestPlacementQuality:
    def test_two_tasks_pack_on_a_socket(self, minsky):
        job = make_job(num_gpus=2, batch_size=1)
        mapping = run_drb(minsky, job)
        gpus = sorted(mapping.values())
        assert minsky.socket_of(gpus[0]) == minsky.socket_of(gpus[1])

    def test_dgx_quad_lands_on_one_socket(self, dgx):
        job = make_job(num_gpus=4, batch_size=1)
        mapping = run_drb(dgx, job)
        sockets = {dgx.socket_of(g) for g in mapping.values()}
        assert len(sockets) == 1

    def test_cluster_job_stays_on_one_machine(self, small_cluster):
        job = make_job(num_gpus=4, batch_size=1)
        mapping = run_drb(small_cluster, job)
        machines = {small_cluster.machine_of(g) for g in mapping.values()}
        assert len(machines) == 1

    def test_avoids_noisy_socket(self, minsky):
        alloc = AllocationState(minsky)
        noisy = make_job("noisy", batch_size=1, num_gpus=1)
        alloc.allocate("noisy", ["m0/gpu0"])
        co = {"noisy": (noisy, frozenset(["m0/gpu0"]))}
        job = make_job("j", num_gpus=2, batch_size=1)
        mapping = run_drb(
            minsky, job, pool=["m0/gpu1", "m0/gpu2", "m0/gpu3"], co=co, alloc=alloc
        )
        assert sorted(mapping.values()) == ["m0/gpu2", "m0/gpu3"]

    def test_chain_keeps_heaviest_pair_together(self, minsky):
        """Algorithm 3 is greedy by descending degree: the middle pair
        of a 4-task chain (the heaviest communicators) must share a
        socket, whatever happens to the chain's endpoints."""
        job = make_job(num_gpus=4)
        graph = model_parallel_chain(4, weight=4.0)
        mapping = run_drb(minsky, job, graph=graph)
        socket_of_task = {
            t: minsky.socket_of(g) for t, g in mapping.items()
        }
        assert socket_of_task[1] == socket_of_task[2]
        # and the split is 2+2, not 3+1
        from collections import Counter

        sizes = sorted(Counter(socket_of_task.values()).values())
        assert sizes == [2, 2]


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        n_tasks=st.integers(min_value=1, max_value=8),
        batch=st.sampled_from([1, 4, 32, 128]),
    )
    def test_mapping_valid_on_dgx(self, n_tasks, batch):
        topo = dgx1()
        job = make_job(num_gpus=n_tasks, batch_size=batch)
        mapping = run_drb(topo, job)
        assert sorted(mapping) == list(range(n_tasks))
        gpus = list(mapping.values())
        assert len(set(gpus)) == n_tasks
        assert all(g in topo.gpus() for g in gpus)

    @settings(max_examples=20, deadline=None)
    @given(
        busy=st.sets(st.integers(min_value=0, max_value=7), max_size=5),
        n_tasks=st.integers(min_value=1, max_value=3),
    )
    def test_mapping_only_uses_pool(self, busy, n_tasks):
        topo = dgx1()
        all_gpus = topo.gpus()
        pool = [g for i, g in enumerate(all_gpus) if i not in busy]
        if len(pool) < n_tasks:
            return
        job = make_job(num_gpus=n_tasks)
        mapping = run_drb(topo, job, pool=pool)
        assert set(mapping.values()) <= set(pool)


class TestBipartitionCache:
    """Incremental split tree == direct computation, always."""

    @settings(max_examples=15, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_incremental_matches_full_computation(self, rng):
        """Randomised allocate/release churn — including multi-machine
        deltas wide enough to force the full-rebuild fallback — must
        never make a cached split differ from ``physical_bipartition``
        run directly on the same pool."""
        topo = cluster(6)
        alloc = AllocationState(topo)
        cache = BipartitionCache(topo, max_patch_machines=2)
        live: list[str] = []
        for step in range(10):
            action = rng.random()
            if action < 0.5 or not live:
                # single-machine delta: the patchable common case
                machine = rng.choice(topo.machines())
                free = alloc.free_gpus(machine=machine)
                if free:
                    job_id = f"j{step}"
                    alloc.allocate(
                        job_id, rng.sample(free, k=rng.randint(1, len(free)))
                    )
                    live.append(job_id)
            elif action < 0.8:
                alloc.release(live.pop(rng.randrange(len(live))))
            else:
                # one GPU on each of 3+ machines: delta wider than
                # max_patch_machines, must fall back to a rebuild
                gpus = [
                    free[0]
                    for m in topo.machines()
                    if (free := alloc.free_gpus(machine=m))
                ]
                if len(gpus) >= 3:
                    job_id = f"wide{step}"
                    alloc.allocate(job_id, gpus[:4])
                    live.append(job_id)
            cache.sync(alloc)
            for _ in range(3):
                machines = rng.sample(topo.machines(), k=rng.randint(1, 3))
                pool = [
                    g
                    for m in machines
                    for g in alloc.free_gpus(machine=m)
                ]
                if len(pool) < 2:
                    continue
                key = tuple(sorted(pool))
                assert cache.split(pool) == physical_bipartition(topo, key)
        assert cache.stats.validation_failures == 0
        assert cache.stats.rounds_incremental + cache.stats.rounds_rebuilt > 0

    def test_survivor_reused_across_patch_round(self):
        topo = cluster(3)
        alloc = AllocationState(topo)
        cache = BipartitionCache(topo)
        cache.sync(alloc)
        pool = topo.gpus(machine="m1")
        first = cache.split(pool)
        # a delta on m0 patches the tree; the m1 entry survives and is
        # served from cache (after one integrity re-check)
        alloc.allocate("x", ["m0/gpu0"])
        cache.sync(alloc)
        assert cache.stats.rounds_incremental == 1
        assert cache.split(pool) == first
        assert cache.stats.splits_reused == 1
        # same epoch, second hit rides the validation stamp
        assert cache.split(pool) == first
        assert cache.stats.splits_reused == 2

    def test_touched_machine_entry_recomputed(self):
        topo = cluster(3)
        alloc = AllocationState(topo)
        cache = BipartitionCache(topo)
        cache.sync(alloc)
        pool = topo.gpus(machine="m1")
        cache.split(pool)
        alloc.allocate("x", ["m1/gpu0"])
        cache.sync(alloc)
        fresh = [g for g in pool if g != "m1/gpu0"]
        assert cache.split(fresh) == physical_bipartition(
            topo, tuple(sorted(fresh))
        )
        assert cache.stats.splits_reused == 0
        assert cache.stats.splits_computed == 2

    def test_wide_delta_forces_rebuild(self):
        topo = cluster(5)
        alloc = AllocationState(topo)
        cache = BipartitionCache(topo, max_patch_machines=2)
        cache.sync(alloc)  # first sync is always a rebuild
        alloc.allocate(
            "wide", [f"m{i}/gpu0" for i in range(4)]
        )  # 4 machines > max_patch_machines
        cache.sync(alloc)
        assert cache.stats.rounds_rebuilt == 2
        assert cache.stats.rounds_incremental == 0

    def test_corrupted_entry_detected_and_recomputed(self):
        """Belt-and-braces: if patching ever broke an invariant, the
        per-patch-round integrity check catches the corrupt entry,
        distrusts the tree and recomputes from scratch."""
        topo = cluster(3)
        alloc = AllocationState(topo)
        cache = BipartitionCache(topo)
        cache.sync(alloc)
        pool = topo.gpus(machine="m1")
        expected = cache.split(pool)
        key = tuple(sorted(pool))
        p0, _p1 = cache._splits[key]
        cache._splits[key] = (p0, p0)  # overlapping halves: invalid
        # advance the patch counter so the stale validation stamp no
        # longer vouches for the entry
        alloc.allocate("x", ["m0/gpu0"])
        cache.sync(alloc)
        assert cache.split(pool) == expected
        assert cache.stats.validation_failures == 1
        assert not cache._splits or key in cache._splits  # tree was rebuilt
