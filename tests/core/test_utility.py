"""Tests for Eqs. 1-5: cost, interference, fragmentation, utility."""

import pytest

from repro.core.utility import (
    SolutionMetrics,
    UtilityParams,
    comm_cost_bounds,
    communication_cost,
    evaluate_solution,
    fragmentation_after,
    normalize_interference,
    normalized_comm_cost,
    normalized_utility,
    raw_utility,
)
from repro.topology.allocation import AllocationState
from repro.topology.builders import cluster

from tests.conftest import make_job


class TestParams:
    def test_default_weights_sum_to_one(self):
        UtilityParams()

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            UtilityParams(alpha_cc=0.5, alpha_b=0.5, alpha_d=0.5)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            UtilityParams(alpha_cc=-0.2, alpha_b=0.6, alpha_d=0.6)

    def test_interference_max_must_exceed_one(self):
        with pytest.raises(ValueError):
            UtilityParams(interference_max=1.0)


class TestCommCost:
    def test_eq3_pack_vs_spread(self, minsky):
        pack = communication_cost(minsky, ["m0/gpu0", "m0/gpu1"])
        spread = communication_cost(minsky, ["m0/gpu0", "m0/gpu2"])
        assert pack == 1.0 and spread == 42.0

    def test_eq3_four_gpus(self, minsky):
        # 2 intra-socket pairs at 1 + 4 cross pairs at 42
        assert communication_cost(minsky, minsky.gpus()) == 2 * 1 + 4 * 42

    def test_bounds(self, minsky):
        best, worst = comm_cost_bounds(minsky, 2)
        assert best == 1.0 and worst == 42.0
        assert comm_cost_bounds(minsky, 1) == (0.0, 0.0)

    def test_normalized_extremes(self, minsky):
        assert normalized_comm_cost(minsky, ["m0/gpu0", "m0/gpu1"]) == 0.0
        assert normalized_comm_cost(minsky, ["m0/gpu0", "m0/gpu2"]) == 1.0
        assert normalized_comm_cost(minsky, ["m0/gpu0"]) == 0.0

    def test_cluster_bounds_span_network(self, small_cluster):
        best, worst = comm_cost_bounds(small_cluster, 2)
        assert worst > 100  # cross-machine pairs dominate


class TestFragmentation:
    def test_filling_a_socket_leaves_zero(self, minsky, alloc):
        assert fragmentation_after(minsky, alloc, ["m0/gpu0", "m0/gpu1"]) == 0.0

    def test_half_filling_leaves_half(self, minsky, alloc):
        assert fragmentation_after(minsky, alloc, ["m0/gpu0"]) == 0.5

    def test_spread_leaves_more_fragments(self, minsky, alloc):
        packed = fragmentation_after(minsky, alloc, ["m0/gpu0", "m0/gpu1"])
        spread = fragmentation_after(minsky, alloc, ["m0/gpu0", "m0/gpu2"])
        assert spread > packed

    def test_respects_existing_allocations(self, minsky, alloc):
        alloc.allocate("other", ["m0/gpu1"])
        assert fragmentation_after(minsky, alloc, ["m0/gpu0"]) == 0.0


class TestUtilityForms:
    def test_raw_utility_prefers_lower_costs(self):
        good = raw_utility(1.0, 1.0, 0.1)
        bad = raw_utility(42.0, 1.3, 0.9)
        assert good > bad

    def test_raw_utility_epsilon_guard(self):
        assert raw_utility(0.0, 1.0, 0.0) < float("inf")

    def test_normalized_utility_bounds(self):
        assert normalized_utility(0, 0, 0) == pytest.approx(1.0)
        assert normalized_utility(1, 1, 1) == pytest.approx(0.0)

    def test_normalized_utility_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            normalized_utility(1.5, 0, 0)

    def test_weights_shift_emphasis(self):
        comm_heavy = UtilityParams(alpha_cc=0.8, alpha_b=0.1, alpha_d=0.1)
        u_default = normalized_utility(1.0, 0.0, 0.0)
        u_heavy = normalized_utility(1.0, 0.0, 0.0, comm_heavy)
        assert u_heavy < u_default

    def test_normalize_interference_clamps(self):
        params = UtilityParams()
        assert normalize_interference(1.0, params) == 0.0
        assert normalize_interference(99.0, params) == 1.0
        mid = normalize_interference(1.125, params)
        assert 0.0 < mid < 1.0

    def test_objective_is_complement_of_utility(self):
        params = UtilityParams()
        metrics = SolutionMetrics(
            comm_cost=1.0,
            interference=1.1,
            fragmentation=0.3,
            comm_norm=0.2,
            interference_norm=0.4,
            fragmentation_norm=0.3,
            utility=normalized_utility(0.2, 0.4, 0.3, params),
        )
        assert metrics.objective(params) == pytest.approx(1.0 - metrics.utility)


class TestEvaluateSolution:
    def test_perfect_pack_on_empty_machine(self, minsky, alloc):
        metrics = evaluate_solution(
            minsky, alloc, make_job(), ["m0/gpu0", "m0/gpu1"], {}
        )
        assert metrics.utility == pytest.approx(1.0)
        assert metrics.interference == 1.0

    def test_split_placement_penalised(self, minsky, alloc):
        pack = evaluate_solution(
            minsky, alloc, make_job(), ["m0/gpu0", "m0/gpu1"], {}
        )
        split = evaluate_solution(
            minsky, alloc, make_job(), ["m0/gpu0", "m0/gpu2"], {}
        )
        assert split.utility < pack.utility
        assert split.comm_norm == 1.0

    def test_interference_lowers_utility(self, minsky, alloc):
        other = make_job("other", batch_size=1)
        alloc.allocate("other", ["m0/gpu1", "m0/gpu3"])
        co = {"other": (other, frozenset(["m0/gpu1", "m0/gpu3"]))}
        quiet = evaluate_solution(
            minsky, alloc, make_job(), ["m0/gpu0", "m0/gpu2"], {}
        )
        noisy = evaluate_solution(
            minsky, alloc, make_job(), ["m0/gpu0", "m0/gpu2"], co
        )
        assert noisy.utility < quiet.utility
        assert noisy.interference > 1.0
