"""Tests for job specifications and batch-class mapping."""

import pytest

from repro.workload.job import BatchClass, Job, ModelType, batch_class_of


class TestModelType:
    def test_from_string_full_names(self):
        assert ModelType.from_string("AlexNet") is ModelType.ALEXNET
        assert ModelType.from_string("cafferef") is ModelType.CAFFEREF
        assert ModelType.from_string("GOOGLENET") is ModelType.GOOGLENET

    def test_from_string_table1_aliases(self):
        # Table 1 abbreviates models as A/C/G
        assert ModelType.from_string("A") is ModelType.ALEXNET
        assert ModelType.from_string("C") is ModelType.CAFFEREF
        assert ModelType.from_string("G") is ModelType.GOOGLENET

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            ModelType.from_string("resnet")


class TestBatchClass:
    @pytest.mark.parametrize(
        "size,expected",
        [
            (1, BatchClass.TINY),
            (2, BatchClass.TINY),
            (3, BatchClass.SMALL),
            (4, BatchClass.SMALL),
            (8, BatchClass.SMALL),
            (16, BatchClass.MEDIUM),
            (32, BatchClass.MEDIUM),
            (48, BatchClass.MEDIUM),
            (64, BatchClass.BIG),
            (128, BatchClass.BIG),
        ],
    )
    def test_classification(self, size, expected):
        assert batch_class_of(size) is expected

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            batch_class_of(0)

    def test_representative_batches(self):
        assert [c.representative_batch for c in BatchClass] == [1, 4, 32, 128]

    def test_from_index_matches_generator_convention(self):
        # Section 5.3: 0=tiny, 1=small, 2=medium, 3=big
        assert BatchClass.from_index(0) is BatchClass.TINY
        assert BatchClass.from_index(3) is BatchClass.BIG
        with pytest.raises(ValueError):
            BatchClass.from_index(4)

    def test_from_string(self):
        assert BatchClass.from_string("tiny") is BatchClass.TINY
        with pytest.raises(ValueError):
            BatchClass.from_string("huge")


class TestJob:
    def test_valid_job(self):
        j = Job("j", ModelType.ALEXNET, 4, 2, min_utility=0.5, arrival_time=1.0)
        assert j.batch_class is BatchClass.SMALL

    @pytest.mark.parametrize(
        "kwargs,msg",
        [
            (dict(num_gpus=0), "num_gpus"),
            (dict(batch_size=0), "batch_size"),
            (dict(min_utility=1.5), "min_utility"),
            (dict(arrival_time=-1.0), "arrival_time"),
            (dict(iterations=0), "iterations"),
        ],
    )
    def test_validation(self, kwargs, msg):
        base = dict(
            job_id="j", model=ModelType.ALEXNET, batch_size=1, num_gpus=1
        )
        base.update(kwargs)
        with pytest.raises(ValueError, match=msg):
            Job(**base)

    def test_with_arrival_preserves_rest(self):
        j = Job("j", ModelType.GOOGLENET, 32, 4)
        j2 = j.with_arrival(99.0)
        assert j2.arrival_time == 99.0 and j2.model is j.model

    def test_describe_mentions_key_fields(self):
        text = Job("jx", ModelType.ALEXNET, 1, 2).describe()
        assert "jx" in text and "alexnet" in text and "tiny" in text


class TestRequiresP2P:
    def test_single_gpu_never_requires(self):
        assert not Job("j", ModelType.ALEXNET, 1, 1).requires_p2p

    def test_tiny_and_small_multi_gpu_require(self):
        assert Job("j", ModelType.ALEXNET, 1, 2).requires_p2p
        assert Job("j", ModelType.ALEXNET, 4, 2).requires_p2p

    def test_big_batch_does_not_require(self):
        assert not Job("j", ModelType.ALEXNET, 128, 2).requires_p2p

    def test_explicit_flag_wins(self):
        assert Job("j", ModelType.ALEXNET, 128, 2, p2p=True).requires_p2p
        assert not Job("j", ModelType.ALEXNET, 1, 2, p2p=False).requires_p2p

    def test_explicit_true_on_single_gpu_still_false(self):
        assert not Job("j", ModelType.ALEXNET, 1, 1, p2p=True).requires_p2p
