"""Tests for duration-targeted workload generation."""

import numpy as np
import pytest

from repro.perf.model import PerformanceModel, Placement
from repro.topology.builders import power8_minsky
from repro.workload.generator import GeneratorConfig, WorkloadGenerator
from repro.workload.job import ModelType


class TestDurationTargeting:
    def test_default_durations_land_in_range(self):
        """Duration-targeted jobs run 60-300 s (packed, solo) regardless
        of how expensive the drawn model/batch combination is."""
        jobs = WorkloadGenerator(seed=9).generate(200)
        topo = power8_minsky()
        perf = PerformanceModel(topo)
        durations = []
        for job in jobs:
            gpus = perf.placement_gpus(job, Placement.PACK)
            durations.append(perf.solo_exec_time(job, gpus))
        durations = np.array(durations)
        # tolerance: iterations are integer-rounded and the profile's
        # 2-GPU pack time approximates 1/4-GPU variants
        assert np.percentile(durations, 5) > 30.0
        assert np.percentile(durations, 95) < 450.0

    def test_expensive_models_get_fewer_iterations(self):
        jobs = WorkloadGenerator(seed=9).generate(400)
        by_key: dict = {}
        for j in jobs:
            by_key.setdefault((j.model, j.batch_class), []).append(j.iterations)
        cheap = by_key.get((ModelType.ALEXNET, list(by_key)[0][1]))
        # a big-batch GoogLeNet iteration costs ~100x an AlexNet-tiny one
        from repro.workload.job import BatchClass

        goog_big = by_key.get((ModelType.GOOGLENET, BatchClass.BIG))
        alex_tiny = by_key.get((ModelType.ALEXNET, BatchClass.TINY))
        if goog_big and alex_tiny:
            assert np.mean(goog_big) < 0.1 * np.mean(alex_tiny)

    def test_fixed_iterations_mode_still_works(self):
        cfg = GeneratorConfig(iterations=123)
        jobs = WorkloadGenerator(cfg, seed=1).generate(10)
        assert all(j.iterations == 123 for j in jobs)

    def test_duration_range_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(duration_range_s=(0.0, 100.0))
        with pytest.raises(ValueError):
            GeneratorConfig(duration_range_s=(100.0, 50.0))
        with pytest.raises(ValueError):
            GeneratorConfig(iterations=0)

    def test_custom_duration_range_respected(self):
        cfg = GeneratorConfig(duration_range_s=(10.0, 20.0))
        jobs = WorkloadGenerator(cfg, seed=2).generate(50)
        topo = power8_minsky()
        perf = PerformanceModel(topo)
        for job in jobs:
            gpus = perf.placement_gpus(job, Placement.PACK)
            assert perf.solo_exec_time(job, gpus) < 60.0


class TestBurstyArrivals:
    def test_mean_rate_preserved(self):
        plain = GeneratorConfig(arrival_rate_per_min=10.0)
        bursty = GeneratorConfig(arrival_rate_per_min=10.0, burstiness=3.0)
        t_plain = WorkloadGenerator(plain, seed=4).generate(3000)[-1].arrival_time
        t_bursty = WorkloadGenerator(bursty, seed=4).generate(3000)[-1].arrival_time
        assert t_bursty == pytest.approx(t_plain, rel=0.15)

    def test_bursty_gaps_have_higher_variance(self):
        plain = GeneratorConfig(arrival_rate_per_min=10.0)
        bursty = GeneratorConfig(arrival_rate_per_min=10.0, burstiness=3.0)

        def gap_cv(cfg):
            jobs = WorkloadGenerator(cfg, seed=4).generate(3000)
            gaps = np.diff([0.0] + [j.arrival_time for j in jobs])
            return gaps.std() / gaps.mean()

        # a Poisson process has CV 1; MMPP is over-dispersed
        assert gap_cv(bursty) > 1.15 > gap_cv(plain) * 1.1

    def test_deterministic(self):
        cfg = GeneratorConfig(burstiness=2.0)
        a = WorkloadGenerator(cfg, seed=1).generate(50)
        b = WorkloadGenerator(cfg, seed=1).generate(50)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(burstiness=0.5)
        with pytest.raises(ValueError):
            GeneratorConfig(burst_fraction=0.0)
