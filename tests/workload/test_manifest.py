"""Tests for JSON job manifests (the prototype's input format)."""

import pytest

from repro.workload.job import Job, ModelType
from repro.workload.manifest import (
    ManifestError,
    dump_manifest,
    dumps_manifest,
    load_manifest,
    loads_manifest,
)


MINIMAL = '{"jobs": [{"id": "a", "model": "alexnet", "batch_size": 1, "num_gpus": 2}]}'


class TestLoad:
    def test_minimal_job_gets_defaults(self):
        (job,) = loads_manifest(MINIMAL)
        assert job.job_id == "a"
        assert job.iterations == 4000
        assert job.min_utility == 0.0
        assert job.single_node

    def test_jobs_sorted_by_arrival(self):
        text = (
            '{"jobs": ['
            '{"id": "late", "model": "a", "batch_size": 1, "num_gpus": 1, "arrival_time": 9},'
            '{"id": "early", "model": "a", "batch_size": 1, "num_gpus": 1, "arrival_time": 1}'
            "]}"
        )
        jobs = loads_manifest(text)
        assert [j.job_id for j in jobs] == ["early", "late"]

    def test_invalid_json_rejected(self):
        with pytest.raises(ManifestError, match="invalid JSON"):
            loads_manifest("{nope")

    def test_missing_jobs_key_rejected(self):
        with pytest.raises(ManifestError, match="jobs"):
            loads_manifest("{}")

    def test_missing_required_key_rejected(self):
        with pytest.raises(ManifestError, match="missing keys"):
            loads_manifest('{"jobs": [{"id": "a"}]}')

    def test_unknown_key_rejected(self):
        text = (
            '{"jobs": [{"id": "a", "model": "alexnet", "batch_size": 1,'
            ' "num_gpus": 1, "gpu_count": 2}]}'
        )
        with pytest.raises(ManifestError, match="unknown keys"):
            loads_manifest(text)

    def test_duplicate_ids_rejected(self):
        text = (
            '{"jobs": ['
            '{"id": "a", "model": "alexnet", "batch_size": 1, "num_gpus": 1},'
            '{"id": "a", "model": "alexnet", "batch_size": 1, "num_gpus": 1}'
            "]}"
        )
        with pytest.raises(ManifestError, match="duplicate"):
            loads_manifest(text)

    def test_bad_value_wraps_error_with_index(self):
        text = '{"jobs": [{"id": "a", "model": "alexnet", "batch_size": 0, "num_gpus": 1}]}'
        with pytest.raises(ManifestError, match="job #0"):
            loads_manifest(text)

    def test_non_object_job_rejected(self):
        with pytest.raises(ManifestError, match="expected an object"):
            loads_manifest('{"jobs": [42]}')


class TestRoundTrip:
    def test_full_roundtrip(self, tmp_path):
        jobs = [
            Job("a", ModelType.ALEXNET, 1, 2, min_utility=0.5, arrival_time=0.51,
                iterations=100, p2p=True),
            Job("b", ModelType.GOOGLENET, 32, 1, anti_collocation=True,
                single_node=False, tags=("prod",)),
        ]
        path = tmp_path / "jobs.json"
        dump_manifest(jobs, path)
        loaded = load_manifest(path)
        # the loader sorts by arrival time; compare order-independently
        assert sorted(loaded, key=lambda j: j.job_id) == jobs

    def test_dumps_omits_default_flags(self):
        text = dumps_manifest([Job("a", ModelType.ALEXNET, 1, 1)])
        assert "anti_collocation" not in text
        assert "p2p" not in text
        assert "single_node" not in text
