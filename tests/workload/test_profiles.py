"""Tests for the profile database built from the calibration."""

import pytest

from repro.workload.job import BatchClass, Job, ModelType
from repro.workload.profiles import ProfileDatabase, default_database


class TestDatabase:
    def test_covers_every_model_batch_pair(self, profiles):
        assert len(profiles) == len(ModelType) * len(BatchClass)
        for model in ModelType:
            for bc in BatchClass:
                assert profiles.get(model, bc) is not None

    def test_for_job_uses_batch_class(self, profiles):
        job = Job("j", ModelType.ALEXNET, 2, 2)  # batch 2 -> tiny class
        assert profiles.for_job(job) is profiles.get(ModelType.ALEXNET, BatchClass.TINY)

    def test_unknown_pair_raises(self):
        db = ProfileDatabase({})
        with pytest.raises(KeyError, match="no profile"):
            db.get(ModelType.ALEXNET, BatchClass.TINY)

    def test_default_database_is_cached(self):
        assert default_database() is default_database()


class TestProfileShape:
    """The profiles must encode the paper's Section 3 findings."""

    def test_pack_speedup_declines_with_batch(self, profiles):
        speedups = [
            profiles.get(ModelType.ALEXNET, bc).pack_speedup for bc in BatchClass
        ]
        assert speedups == sorted(speedups, reverse=True)
        assert speedups[0] > 1.2  # tiny: ~1.3x
        assert speedups[-1] < 1.05  # big: parity

    def test_googlenet_barely_cares_about_placement(self, profiles):
        for bc in BatchClass:
            assert profiles.get(ModelType.GOOGLENET, bc).pack_speedup < 1.06

    def test_comm_fraction_declines_with_batch(self, profiles):
        fractions = [
            profiles.get(ModelType.ALEXNET, bc).comm_fraction for bc in BatchClass
        ]
        assert fractions == sorted(fractions, reverse=True)
        assert fractions[0] > 0.5  # tiny is communication-bound
        assert fractions[-1] < 0.1  # big is compute-bound

    def test_bandwidth_demand_declines_with_batch(self, profiles):
        demands = [
            profiles.get(ModelType.ALEXNET, bc).avg_demand_gbs for bc in BatchClass
        ]
        assert demands == sorted(demands, reverse=True)
        assert demands[0] > 20.0  # Fig 5: tiny saturates NVLink
        assert demands[-1] < 6.0  # Fig 5: big barely uses it

    def test_sensitivity_tracks_communication(self, profiles):
        tiny_alex = profiles.get(ModelType.ALEXNET, BatchClass.TINY)
        big_alex = profiles.get(ModelType.ALEXNET, BatchClass.BIG)
        tiny_goog = profiles.get(ModelType.GOOGLENET, BatchClass.TINY)
        assert tiny_alex.sensitivity > big_alex.sensitivity
        assert tiny_alex.sensitivity > tiny_goog.sensitivity

    def test_pressure_nearly_flat_for_alexnet(self, profiles):
        # Fig 6: big-batch jobs still perturb others
        tiny = profiles.get(ModelType.ALEXNET, BatchClass.TINY).pressure
        big = profiles.get(ModelType.ALEXNET, BatchClass.BIG).pressure
        assert big > 0.5 * tiny

    def test_comm_weight_matches_convention(self, profiles):
        assert profiles.get(ModelType.ALEXNET, BatchClass.TINY).comm_weight == 4.0
        assert profiles.get(ModelType.ALEXNET, BatchClass.BIG).comm_weight == 1.0

    def test_solo_time_scales_with_iterations(self, profiles):
        p = profiles.get(ModelType.ALEXNET, BatchClass.TINY)
        assert p.solo_time(200) == pytest.approx(2 * p.solo_time(100))
        assert p.solo_time(100, packed=False) > p.solo_time(100, packed=True)
