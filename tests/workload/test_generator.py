"""Tests for the Section 5.3 synthetic workload generator."""

import numpy as np
import pytest

from repro.workload.generator import GeneratorConfig, WorkloadGenerator
from repro.workload.job import BatchClass, ModelType


class TestConfigValidation:
    def test_defaults_valid(self):
        GeneratorConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(arrival_rate_per_min=0),
            dict(batch_binomial_p=1.5),
            dict(model_binomial_p=-0.1),
            dict(gpu_counts=(1, 2), gpu_count_probs=(1.0,)),
            dict(gpu_count_probs=(0.5, 0.4, 0.2)),
            dict(gpu_counts=(0, 2, 4)),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GeneratorConfig(**kwargs)


class TestGeneration:
    def test_deterministic_for_seed(self):
        a = WorkloadGenerator(seed=5).generate(20)
        b = WorkloadGenerator(seed=5).generate(20)
        assert a == b

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(seed=1).generate(20)
        b = WorkloadGenerator(seed=2).generate(20)
        assert a != b

    def test_arrivals_sorted_and_positive(self):
        jobs = WorkloadGenerator(seed=0).generate(50)
        arrivals = [j.arrival_time for j in jobs]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0

    def test_mean_interarrival_matches_rate(self):
        cfg = GeneratorConfig(arrival_rate_per_min=10.0)
        jobs = WorkloadGenerator(cfg, seed=3).generate(3000)
        gaps = np.diff([0.0] + [j.arrival_time for j in jobs])
        assert np.mean(gaps) == pytest.approx(6.0, rel=0.1)

    def test_batch_classes_follow_binomial_range(self):
        jobs = WorkloadGenerator(seed=0).generate(500)
        classes = {j.batch_class for j in jobs}
        assert classes == set(BatchClass)  # all four drawn with p=0.5
        # Binomial(3, 0.5): tiny/big ~12.5%, small/medium ~37.5%
        small = sum(1 for j in jobs if j.batch_class is BatchClass.SMALL)
        tiny = sum(1 for j in jobs if j.batch_class is BatchClass.TINY)
        assert small > tiny

    def test_models_follow_binomial(self):
        jobs = WorkloadGenerator(seed=0).generate(500)
        counts = {m: 0 for m in ModelType}
        for j in jobs:
            counts[j.model] += 1
        # Binomial(2, 0.5): CaffeRef (index 1) is the mode
        assert counts[ModelType.CAFFEREF] > counts[ModelType.ALEXNET]
        assert counts[ModelType.CAFFEREF] > counts[ModelType.GOOGLENET]

    def test_gpu_counts_from_configured_support(self):
        cfg = GeneratorConfig(gpu_counts=(2,), gpu_count_probs=(1.0,))
        jobs = WorkloadGenerator(cfg, seed=0).generate(10)
        assert all(j.num_gpus == 2 for j in jobs)

    def test_min_utility_convention(self):
        jobs = WorkloadGenerator(seed=0).generate(200)
        for j in jobs:
            expected = 0.3 if j.num_gpus == 1 else 0.5
            assert j.min_utility == expected

    def test_ids_unique_with_prefix(self):
        jobs = WorkloadGenerator(seed=0).generate(30, id_prefix="x")
        ids = [j.job_id for j in jobs]
        assert len(set(ids)) == 30 and ids[0] == "x0"

    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(seed=0).generate(0)
