"""Tests for job communication graphs."""

import pytest

from repro.workload.job import BatchClass, Job, ModelType
from repro.workload.jobgraph import (
    JobGraph,
    comm_weight,
    data_parallel_graph,
    model_parallel_chain,
    model_parallel_ring,
)


class TestCommWeight:
    def test_weights_follow_paper_convention(self):
        # Section 5.1: weights range 4 (tiny) .. 1 (big)
        assert comm_weight(BatchClass.TINY) == 4.0
        assert comm_weight(BatchClass.SMALL) == 3.0
        assert comm_weight(BatchClass.MEDIUM) == 2.0
        assert comm_weight(BatchClass.BIG) == 1.0


class TestJobGraph:
    def test_empty_graph(self):
        g = JobGraph(3)
        assert g.n_edges() == 0
        assert g.weight(0, 1) == 0.0
        assert g.total_weight() == 0.0

    def test_add_edge_symmetric(self):
        g = JobGraph(3)
        g.add_edge(2, 0, 1.5)
        assert g.weight(0, 2) == g.weight(2, 0) == 1.5

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            JobGraph(2).add_edge(1, 1, 1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            JobGraph(2).add_edge(0, 2, 1.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            JobGraph(2).add_edge(0, 1, -1.0)

    def test_zero_tasks_rejected(self):
        with pytest.raises(ValueError):
            JobGraph(0)

    def test_degree_and_weight_to(self):
        g = JobGraph(3, [(0, 1, 2.0), (0, 2, 3.0)])
        assert g.degree(0) == 5.0
        assert g.degree(1) == 2.0
        assert g.weight_to(0, [1]) == 2.0
        assert g.weight_to(0, [1, 2]) == 5.0

    def test_normalised_scales_weights(self):
        g = JobGraph(2, [(0, 1, 4.0)])
        n = g.normalised(40.0)
        assert n.weight(0, 1) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            g.normalised(0.0)

    def test_equality(self):
        a = JobGraph(2, [(0, 1, 1.0)])
        b = JobGraph(2, [(0, 1, 1.0)])
        assert a == b
        assert a != JobGraph(2, [(0, 1, 2.0)])


class TestGenerators:
    def test_data_parallel_is_uniform_clique(self):
        job = Job("j", ModelType.ALEXNET, 1, 4)
        g = data_parallel_graph(job)
        assert g.n_edges() == 6
        weights = {w for _, _, w in g.edges()}
        assert weights == {4.0}

    def test_data_parallel_weight_tracks_batch(self):
        tiny = data_parallel_graph(Job("j", ModelType.ALEXNET, 1, 2))
        big = data_parallel_graph(Job("j", ModelType.ALEXNET, 128, 2))
        assert tiny.weight(0, 1) > big.weight(0, 1)

    def test_single_gpu_job_has_no_edges(self):
        g = data_parallel_graph(Job("j", ModelType.ALEXNET, 1, 1))
        assert g.n_edges() == 0 and g.n_tasks == 1

    def test_chain_edges(self):
        g = model_parallel_chain(4, weight=2.0)
        assert g.edges() == [(0, 1, 2.0), (1, 2, 2.0), (2, 3, 2.0)]

    def test_ring_closes_chain(self):
        g = model_parallel_ring(4)
        assert g.weight(3, 0) > 0
        assert g.n_edges() == 4

    def test_two_task_ring_is_a_chain(self):
        assert model_parallel_ring(2).n_edges() == 1
