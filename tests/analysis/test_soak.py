"""Soak harness: a fast in-process run, artifact shape, verdicts."""

import json

import pytest

from repro.analysis.soak import (
    SOAK_SCHEMA_VERSION,
    SoakResult,
    SoakWindow,
    format_soak,
    run_soak,
    write_soak,
)
from repro.topology.builders import cluster


@pytest.fixture(scope="module")
def soak_result():
    """One ~1.5 s in-process soak shared by the assertions below."""
    return run_soak(
        minutes=0.025,
        window_s=0.5,
        jobs_per_burst=4,
        burst_every_s=0.4,
        seed=42,
        topo_factory=lambda: cluster(2),
    )


class TestRunSoak:
    def test_drives_daemon_and_collects_windows(self, soak_result):
        assert soak_result.watchdog_enabled is True
        assert soak_result.bursts >= 3
        assert soak_result.submitted == soak_result.bursts * 4
        assert soak_result.rejected == 0
        # periodic windows plus the terminal one
        assert len(soak_result.windows) >= 3
        assert [w.index for w in soak_result.windows] == list(
            range(len(soak_result.windows))
        )
        assert soak_result.windows[-1].submitted == soak_result.submitted

    def test_windows_carry_slo_verdicts(self, soak_result):
        for window in soak_result.windows:
            assert window.verdict in ("clean", "violations")
            assert window.alerts_fired_total >= 0
        # the default rules stay silent on this tiny workload
        assert soak_result.verdict == "clean"
        assert soak_result.alerts_fired_total == 0

    def test_timeseries_sampled_during_soak(self, soak_result):
        assert soak_result.timeseries_samples > 0
        assert soak_result.timeseries_machines == 2

    def test_artifact_schema_and_round_trip(self, soak_result, tmp_path):
        path = write_soak(soak_result, tmp_path)
        assert path.name == "SOAK_TOPO_AWARE.json"
        doc = json.loads(path.read_text())
        assert doc["schema"] == SOAK_SCHEMA_VERSION
        assert doc["soak"]["scheduler"] == "TOPO-AWARE"
        assert doc["verdict"] == "clean"
        assert set(doc["platform"]) == {"python", "machine", "system"}
        for window in doc["windows"]:
            assert set(window) >= {
                "window", "t_s", "queue_depth", "running_jobs",
                "utilization", "alerts_active", "fired_delta", "verdict",
            }

    def test_explicit_path_respected(self, soak_result, tmp_path):
        path = write_soak(soak_result, tmp_path / "custom.json")
        assert path.name == "custom.json"
        assert json.loads(path.read_text())["schema"] == SOAK_SCHEMA_VERSION

    def test_format_soak_summarises(self, soak_result):
        text = format_soak(soak_result)
        assert "verdict: clean" in text
        assert "watchdog on" in text
        assert f"bursts {soak_result.bursts}" in text


class TestVerdictLogic:
    def make_result(self, verdicts):
        result = SoakResult(
            scheduler="TOPO-AWARE", url="http://x", minutes=1.0,
            window_s=1.0, jobs_per_burst=1, burst_every_s=1.0, seed=1,
        )
        result.windows = [
            SoakWindow(index=i, t_s=float(i), submitted=0, queue_depth=0,
                       running_jobs=0, utilization=0.0, verdict=v)
            for i, v in enumerate(verdicts)
        ]
        return result

    def test_one_bad_window_taints_the_run(self):
        result = self.make_result(["clean", "violations", "clean"])
        result.verdict = (
            "clean"
            if all(w.verdict == "clean" for w in result.windows)
            else "violations"
        )
        assert result.verdict == "violations"
        assert "violations" in format_soak(result)

    def test_window_as_dict_serialisable(self):
        window = SoakWindow(
            index=0, t_s=1.234567, submitted=3, queue_depth=1,
            running_jobs=2, utilization=0.5,
            alerts_active=["qd"], alerts_fired_total=1, fired_delta=1,
            verdict="violations",
        )
        doc = window.as_dict()
        assert doc["t_s"] == 1.235
        assert doc["alerts_active"] == ["qd"]
        json.dumps(doc)
