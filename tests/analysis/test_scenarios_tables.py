"""Tests for scenario definitions and table formatting."""

import pytest

from repro.analysis.scenarios import scenario1_jobs, scenario2_jobs, table1_jobs
from repro.analysis.tables import (
    format_breakdown_table,
    format_collocation_table,
    format_speedup_table,
    format_timeline,
)
from repro.analysis.figures import fig3_breakdown, fig4_pack_vs_spread, fig6_collocation
from repro.workload.job import BatchClass, ModelType


class TestTable1:
    def test_matches_paper_configuration(self):
        jobs = table1_jobs()
        assert [j.model for j in jobs] == [
            ModelType.ALEXNET,
            ModelType.GOOGLENET,
            ModelType.ALEXNET,
            ModelType.ALEXNET,
            ModelType.ALEXNET,
            ModelType.CAFFEREF,
        ]
        assert [j.batch_size for j in jobs] == [1, 4, 1, 4, 1, 1]
        assert [j.num_gpus for j in jobs] == [1, 1, 1, 2, 2, 2]
        assert [j.min_utility for j in jobs] == [0.3, 0.3, 0.3, 0.5, 0.5, 0.5]
        assert [j.arrival_time for j in jobs] == [
            0.51, 15.03, 24.36, 25.33, 29.33, 29.89,
        ]

    def test_ids_are_stable(self):
        assert [j.job_id for j in table1_jobs()] == [f"job{i}" for i in range(6)]


class TestScenarioWorkloads:
    def test_scenario1_size_and_determinism(self):
        a = scenario1_jobs(50, seed=1)
        b = scenario1_jobs(50, seed=1)
        assert a == b and len(a) == 50

    def test_scenario2_rate_scales_with_machines(self):
        small = scenario2_jobs(500, n_machines=10, seed=0)
        large = scenario2_jobs(500, n_machines=100, seed=0)
        # same job count in less wall-clock time on the bigger cluster
        assert large[-1].arrival_time < small[-1].arrival_time

    def test_scenario_jobs_fit_machines(self):
        for j in scenario1_jobs(100, seed=2):
            assert j.num_gpus <= 4  # fits a Minsky machine


class TestFormatting:
    def test_speedup_table_mentions_models(self):
        text = format_speedup_table(fig4_pack_vs_spread(batch_sizes=(1, 8)))
        assert "alexnet" in text and "googlenet" in text

    def test_breakdown_table_complete(self):
        text = format_breakdown_table(fig3_breakdown())
        assert text.count("\n") == len(ModelType) * len(BatchClass) * 2
        assert "comm%" in text

    def test_collocation_table_square(self):
        text = format_collocation_table(fig6_collocation())
        assert text.count("\n") == len(BatchClass)

    def test_timeline_renders_placements(self):
        from repro.analysis.figures import fig8_prototype

        results = fig8_prototype()
        text = format_timeline(results["TOPO-AWARE-P"])
        assert "job3" in text and "p2p" in text
