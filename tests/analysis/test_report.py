"""Tests for the markdown reproduction report."""

import re

import pytest

from repro.analysis.report import generate_report, write_report


@pytest.fixture(scope="module")
def report_text():
    return generate_report()


class TestReport:
    def test_has_every_section(self, report_text):
        for heading in (
            "# Reproduction report",
            "## Pack vs spread (Figure 4)",
            "## Execution breakdown (Figure 3)",
            "## Co-location interference (Figure 6)",
            "## NVLink vs PCIe machines (Section 3.2)",
            "## Prototype scenario (Table 1 / Figure 8)",
            "## Scenario 1 (Figure 10)",
        ):
            assert heading in report_text

    def test_headline_numbers_in_expected_ranges(self, report_text):
        peak = float(re.search(r"Measured peak: \*\*([\d.]+)x\*\*", report_text).group(1))
        assert 1.2 <= peak <= 1.4
        speedup = float(
            re.search(r"speedup over BF: \*\*([\d.]+)x\*\*", report_text).group(1)
        )
        assert 1.15 <= speedup <= 1.45
        tiny = int(
            re.search(r"tiny\+tiny slowdown: \*\*(\d+)%\*\*", report_text).group(1)
        )
        assert 26 <= tiny <= 34

    def test_contains_gantt_chart(self, report_text):
        assert "[TOPO-AWARE-P]" in report_text
        assert "legend:" in report_text

    def test_write_report(self, tmp_path, report_text):
        path = write_report(tmp_path / "report.md")
        assert path.read_text().startswith("# Reproduction report")

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", "--out", str(tmp_path / "r.md")]) == 0
        assert (tmp_path / "r.md").exists()
        assert "report written" in capsys.readouterr().out
