"""Tests for the decision-round bench harness and ``repro bench``."""

from __future__ import annotations

import json

import pytest

from repro.analysis.bench import (
    BenchResult,
    check_equivalence,
    compare_to_baseline,
    format_bench,
    run_bench,
    write_bench,
)
from repro.cli import main


@pytest.fixture(scope="module")
def tiny_bench():
    return run_bench(
        "fig10",
        n_jobs=12,
        n_machines=2,
        schedulers=("FCFS", "TOPO-AWARE"),
        repeats=1,
    )


class TestRunBench:
    def test_rows_carry_timing_and_memo_stats(self, tiny_bench):
        assert set(tiny_bench.schedulers) == {"FCFS", "TOPO-AWARE"}
        for row in tiny_bench.schedulers.values():
            assert row["decision_rounds"] > 0
            assert row["decision_time_s"] >= 0.0
            assert row["mean_decision_time_s"] >= 0.0
            assert set(row["placement_stats"]) == {
                "hits",
                "misses",
                "invalidations",
                "hit_rate",
            }

    def test_equivalence_verified_by_default(self, tiny_bench):
        assert tiny_bench.equivalence is not None
        assert tiny_bench.equivalence["identical"] is True
        assert tiny_bench.equivalence["fastpath_off_identical"] is True
        assert tiny_bench.equivalence["drb_only_identical"] is True
        assert tiny_bench.equivalence["prefilter_only_identical"] is True

    def test_fastpath_section_reports_speedup_and_stats(self, tiny_bench):
        fp = tiny_bench.fastpath
        assert fp is not None and fp["scheduler"] == "TOPO-AWARE"
        assert fp["fast_mean_decision_time_s"] > 0.0
        assert fp["off_mean_decision_time_s"] > 0.0
        assert fp["speedup_vs_off"] == pytest.approx(
            fp["off_mean_decision_time_s"] / fp["fast_mean_decision_time_s"]
        )
        assert fp["drb_stats"]["splits_computed"] > 0
        assert fp["prefilter_stats"]["calls"] > 0
        # no external seed measurement was injected
        assert "speedup_vs_seed" not in fp

    def test_seed_baseline_recorded_verbatim(self):
        bench = run_bench(
            "fig10",
            n_jobs=12,
            n_machines=2,
            schedulers=("TOPO-AWARE",),
            repeats=1,
            verify=False,
            seed_baseline_s=1.0,
        )
        fp = bench.fastpath
        assert fp["seed_mean_decision_time_s"] == 1.0
        assert fp["speedup_vs_seed"] == pytest.approx(
            1.0 / fp["fast_mean_decision_time_s"]
        )

    def test_fig10_equivalence_has_nonzero_memo_hits(self):
        # full Fig. 10 scale: cross-epoch identity keying must actually
        # replay entries (the pool recurs, e.g. empty cluster between
        # bursts) while staying bit-identical to the cold engine
        from repro.analysis.scenarios import scenario1_jobs

        eq = check_equivalence(scenario1_jobs(100, seed=42), 5)
        assert eq["identical"] is True
        assert eq["memo_stats"]["hits"] > 0

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            run_bench("fig99")

    def test_bad_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            run_bench("fig10", n_jobs=1, n_machines=1, repeats=0)

    def test_format_is_a_table(self, tiny_bench):
        text = format_bench(tiny_bench)
        assert "bench fig10: 12 jobs / 2 machines" in text
        assert "TOPO-AWARE" in text
        assert "equivalence (TOPO-AWARE, memo vs cold): OK" in text


class TestArtifactAndBaseline:
    def test_write_round_trip(self, tiny_bench, tmp_path):
        path = write_bench(tiny_bench, tmp_path / "BENCH_test.json")
        data = json.loads(path.read_text())
        assert data["bench"] == "fig10"
        assert data["n_jobs"] == 12
        assert "TOPO-AWARE" in data["schedulers"]
        assert data["equivalence"]["identical"] is True

    def test_baseline_within_budget(self, tiny_bench, tmp_path):
        baseline = write_bench(tiny_bench, tmp_path / "base.json")
        assert compare_to_baseline(tiny_bench, baseline) == []

    def test_baseline_regression_detected(self, tiny_bench, tmp_path):
        data = json.loads(json.dumps(tiny_bench.as_dict()))
        for row in data["schedulers"].values():
            row["mean_decision_time_s"] = 1e-12  # impossibly fast baseline
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(data))
        failures = compare_to_baseline(tiny_bench, baseline, threshold=3.0)
        assert failures and all("exceeds" in f for f in failures)

    def test_unknown_baseline_schedulers_ignored(self, tiny_bench, tmp_path):
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps({"schedulers": {"OTHER": {}}}))
        assert compare_to_baseline(tiny_bench, baseline) == []

    def test_equivalence_failure_reported(self, tmp_path):
        bench = BenchResult(scale="fig10", n_jobs=1, n_machines=1, repeats=1)
        bench.equivalence = {"scheduler": "TOPO-AWARE", "identical": False}
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps({"schedulers": {}}))
        failures = compare_to_baseline(bench, baseline)
        assert any("equivalence" in f for f in failures)

    def test_fastpath_matrix_failure_reported(self, tmp_path):
        bench = BenchResult(scale="fig11", n_jobs=1, n_machines=1, repeats=1)
        bench.equivalence = {
            "scheduler": "TOPO-AWARE",
            "identical": True,
            "fastpath_off_identical": True,
            "drb_only_identical": False,
            "prefilter_only_identical": True,
        }
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps({"schedulers": {}}))
        failures = compare_to_baseline(bench, baseline)
        assert any("incremental DRB" in f for f in failures)

    def test_min_speedup_floor(self, tiny_bench, tmp_path):
        baseline = write_bench(tiny_bench, tmp_path / "base.json")
        measured = tiny_bench.fastpath["speedup_vs_off"]
        assert compare_to_baseline(
            tiny_bench, baseline, min_speedup=measured * 0.5
        ) == []
        failures = compare_to_baseline(
            tiny_bench, baseline, min_speedup=measured * 100
        )
        assert failures and any("speedup" in f for f in failures)


class TestBenchCommand:
    def test_quick_smoke(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_quick.json"
        code = main(
            ["bench", "--quick", "--jobs", "12", "--machines", "2",
             "--out", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bench fig10" in out and "memo vs cold" in out
        assert out_path.exists()

    def test_check_against_passes_itself(self, capsys, tmp_path):
        base = tmp_path / "base.json"
        assert main(
            ["bench", "--quick", "--jobs", "12", "--machines", "2",
             "--out", str(base)]
        ) == 0
        capsys.readouterr()
        code = main(
            ["bench", "--quick", "--jobs", "12", "--machines", "2",
             "--check-against", str(base), "--threshold", "25"]
        )
        assert code == 0
        assert "within 25.0x" in capsys.readouterr().out

    def test_check_against_fails_on_regression(self, capsys, tmp_path):
        base = tmp_path / "base.json"
        data = {
            "schedulers": {
                "FCFS": {"mean_decision_time_s": 1e-12},
                "TOPO-AWARE": {"mean_decision_time_s": 1e-12},
            }
        }
        base.write_text(json.dumps(data))
        code = main(
            ["bench", "--quick", "--jobs", "12", "--machines", "2",
             "--check-against", str(base)]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().err
