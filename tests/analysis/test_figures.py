"""Shape tests for every figure generator (paper-vs-measured gates).

These assertions encode the acceptance criteria of DESIGN.md: who wins,
by roughly what factor, and where crossovers fall.  The benchmarks
print the same data at full scale; here everything runs small and fast.
"""

import numpy as np
import pytest

from repro.analysis.figures import (
    fig3_breakdown,
    fig4_pack_vs_spread,
    fig5_nvlink_bandwidth,
    fig6_collocation,
    fig8_prototype,
    fig9_sim_validation,
    fig10_scenario1,
    sec32_pcie_vs_nvlink,
)
from repro.sim.metrics import slo_violations


class TestFig3:
    @pytest.fixture(scope="class")
    def data(self):
        return fig3_breakdown()

    def test_alexnet_tiny_comm_dominates(self, data):
        row = data[("alexnet", "tiny", "pack")]
        assert row["comm_fraction"] > 0.5

    def test_alexnet_big_compute_dominates(self, data):
        row = data[("alexnet", "big", "pack")]
        assert row["comm_fraction"] < 0.1

    def test_alexnet_anchor_seconds(self, data):
        # paper: ~1s compute at tiny, ~66s at big, ~2s comm (40 iters)
        tiny = data[("alexnet", "tiny", "pack")]
        big = data[("alexnet", "big", "pack")]
        assert 0.5 < tiny["compute_s"] < 2.0
        assert 55 < big["compute_s"] < 80
        assert 1.5 < tiny["comm_s"] < 3.0

    def test_comm_time_roughly_constant_across_batches(self, data):
        comms = [
            data[("alexnet", c, "pack")]["comm_s"]
            for c in ("tiny", "small", "medium", "big")
        ]
        assert max(comms) / min(comms) < 1.5

    def test_googlenet_low_comm_due_to_inception(self, data):
        goog = data[("googlenet", "tiny", "pack")]["comm_fraction"]
        alex = data[("alexnet", "tiny", "pack")]["comm_fraction"]
        assert goog < 0.3 * alex

    def test_spread_never_p2p(self, data):
        for (model, batch, strategy), row in data.items():
            if strategy == "spread":
                assert not row["p2p"]


class TestFig4:
    @pytest.fixture(scope="class")
    def data(self):
        return fig4_pack_vs_spread()

    def test_alexnet_peak_speedup(self, data):
        assert 1.2 <= max(data["alexnet"]) <= 1.4  # paper: up to ~1.30x

    def test_parity_beyond_batch_16(self, data):
        batches = data["batch_sizes"]
        for model in ("alexnet", "cafferef", "googlenet"):
            for b, s in zip(batches, data[model]):
                if b >= 16:
                    assert s < 1.1

    def test_speedups_decline_with_batch(self, data):
        for model in ("alexnet", "cafferef"):
            vals = data[model]
            assert vals == sorted(vals, reverse=True)

    def test_googlenet_flat(self, data):
        assert max(data["googlenet"]) < 1.06


class TestFig5:
    def test_series_ordering_and_levels(self):
        data = fig5_nvlink_bandwidth()
        means = {}
        for batch, (times, gbs) in data.items():
            active = gbs[gbs > 0]
            means[batch] = active.mean() if len(active) else 0.0
        assert means[1] > means[4] > means[64] > means[128]
        assert means[1] > 20.0  # tiny batches saturate NVLink
        assert means[128] < 6.0  # paper: "barely reaches ~6 GB/s"


class TestFig6:
    @pytest.fixture(scope="class")
    def data(self):
        return fig6_collocation()

    def test_paper_anchors(self, data):
        assert data[("tiny", "tiny")] == pytest.approx(0.30, abs=0.04)
        assert data[("big", "tiny")] == pytest.approx(0.24, abs=0.04)
        assert data[("big", "small")] == pytest.approx(0.21, abs=0.04)
        assert data[("big", "big")] < 0.05

    def test_matrix_symmetric(self, data):
        for (a, b), v in data.items():
            assert data[(b, a)] == pytest.approx(v)

    def test_monotone_in_batch_size(self, data):
        order = ("tiny", "small", "medium", "big")
        for row in order:
            vals = [data[(row, col)] for col in order]
            assert vals == sorted(vals, reverse=True)


class TestSec32:
    def test_nvlink_speedups_exceed_pcie(self):
        data = sec32_pcie_vs_nvlink()
        for nv, pc in zip(data["nvlink"], data["pcie"]):
            assert nv > pc

    def test_paper_anchor_values(self):
        data = sec32_pcie_vs_nvlink()
        assert data["nvlink"][0] == pytest.approx(1.27, abs=0.05)
        assert data["pcie"][0] == pytest.approx(1.24, abs=0.05)
        assert data["pcie"][2] == pytest.approx(1.10, abs=0.05)


class TestFig8:
    @pytest.fixture(scope="class")
    def results(self):
        return fig8_prototype()

    def test_topo_p_headline_speedup(self, results):
        spans = {n: r.makespan for n, r in results.items()}
        speedup = spans["BF"] / spans["TOPO-AWARE-P"]
        assert 1.15 <= speedup <= 1.45  # paper: ~1.30x

    def test_topo_policies_no_slo_violations(self, results):
        assert slo_violations(results["TOPO-AWARE-P"].records) == []

    def test_greedy_policies_violate_slos(self, results):
        assert len(slo_violations(results["BF"].records)) >= 1

    def test_topo_p_gives_job3_p2p(self, results):
        rec = results["TOPO-AWARE-P"].record_of("job3")
        assert rec.p2p


class TestFig9:
    def test_prototype_and_simulation_agree(self):
        deltas = fig9_sim_validation()["deltas"]
        for per_job in deltas.values():
            assert max(per_job.values()) < 1e-6


class TestFig10:
    @pytest.fixture(scope="class")
    def data(self):
        # smaller than the paper's scenario for test speed
        return fig10_scenario1(n_jobs=40, n_machines=3, seed=42)

    def test_topo_p_wins_on_qos_vs_bf(self, data):
        means = {n: float(np.mean(v)) if len(v) else 0.0 for n, v in data["qos"].items()}
        assert means["TOPO-AWARE-P"] <= means["BF"] + 1e-9

    def test_topo_p_wins_with_waiting_included(self, data):
        """Figure 10b: once queueing delay counts, the topology-aware
        policies clearly beat both greedy baselines (FCFS's low raw
        interference comes from serialising everything)."""
        means = {
            n: float(np.mean(v)) if len(v) else 0.0
            for n, v in data["total"].items()
        }
        assert means["TOPO-AWARE-P"] <= means["BF"] + 1e-9
        assert means["TOPO-AWARE-P"] <= means["FCFS"] + 1e-9

    def test_all_jobs_complete(self, data):
        for name, result in data["results"].items():
            if name == "FCFS":
                continue  # FIFO blocking may starve under adversarial mixes
            assert all(r.finished_at is not None for r in result.records)

    def test_no_slo_violations_for_topo_p(self, data):
        assert slo_violations(data["results"]["TOPO-AWARE-P"].records) == []
