"""Tests for the Gantt chart renderer and utility timeline."""

import numpy as np
import pytest

from repro.analysis.figures import fig8_prototype
from repro.analysis.gantt import gantt_chart, utility_timeline
from repro.sim.engine import JobRecord, SimulationResult

from tests.conftest import make_job


@pytest.fixture(scope="module")
def fig8_results():
    return fig8_prototype()


class TestGantt:
    def test_renders_all_gpus_and_jobs(self, fig8_results):
        chart = gantt_chart(fig8_results["TOPO-AWARE-P"])
        lines = chart.splitlines()
        assert lines[0].startswith("[TOPO-AWARE-P]")
        gpu_rows = [ln for ln in lines if ln.startswith("m0/gpu")]
        assert len(gpu_rows) == 4
        assert "legend:" in lines[-1]
        for i in range(6):
            assert f"{i}=job{i}" in lines[-1]

    def test_occupancy_matches_records(self, fig8_results):
        result = fig8_results["TOPO-AWARE-P"]
        chart = gantt_chart(result, width=50)
        rows = {
            ln.split(" |")[0].strip(): ln.split("|")[1]
            for ln in chart.splitlines()
            if ln.startswith("m0/gpu")
        }
        # job0 ran on gpu0 from the very start
        assert rows["m0/gpu0"][0] == "0"
        # every placed job's symbol appears somewhere
        for i, rec in enumerate(result.records):
            assert str(i) in "".join(rows.values())

    def test_idle_gpus_are_dots(self):
        rec = JobRecord(
            job=make_job("a", num_gpus=1),
            arrival=0.0,
            placed_at=0.0,
            finished_at=10.0,
            gpus=("m0/gpu0",),
            utility=1.0,
            ideal_exec_time=10.0,
        )
        result = SimulationResult("X", [rec], 10.0, 0.0, 1)
        chart = gantt_chart(result, width=10, gpus=["m0/gpu0", "m0/gpu1"])
        rows = chart.splitlines()
        assert set(rows[2].split("|")[1]) == {"."}

    def test_empty_result(self):
        result = SimulationResult("X", [], 0.0, 0.0, 0)
        assert "nothing was placed" in gantt_chart(result)

    def test_width_validation(self, fig8_results):
        with pytest.raises(ValueError):
            gantt_chart(fig8_results["BF"], width=5)


class TestUtilityTimeline:
    def test_mean_utility_within_bounds(self, fig8_results):
        times, means = utility_timeline(fig8_results["TOPO-AWARE-P"].records)
        valid = means[~np.isnan(means)]
        assert len(valid) > 0
        assert np.all(valid >= 0.0) and np.all(valid <= 1.0)

    def test_gaps_are_nan(self):
        rec = JobRecord(
            job=make_job("a", num_gpus=1),
            arrival=50.0,
            placed_at=50.0,
            finished_at=60.0,
            gpus=("m0/gpu0",),
            utility=0.8,
            ideal_exec_time=10.0,
        )
        times, means = utility_timeline([rec], n_samples=61)
        assert np.isnan(means[0])  # nothing ran at t=0
        assert means[52] == pytest.approx(0.8)

    def test_topo_mean_utility_beats_greedy(self, fig8_results):
        """Figure 9's qualitative claim: the topology-aware policies
        sustain higher mean job utility."""
        def overall(records):
            _, means = utility_timeline(records)
            return float(np.nanmean(means))

        assert overall(fig8_results["TOPO-AWARE-P"].records) > overall(
            fig8_results["BF"].records
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            utility_timeline([], n_samples=1)


class TestGanttObserver:
    """Live observer output matches the post-hoc record rendering."""

    def test_live_chart_matches_record_chart(self):
        from repro.analysis.gantt import GanttObserver
        from repro.analysis.scenarios import table1_jobs
        from repro.schedulers import make_scheduler
        from repro.sim.runner import run_with_observers
        from repro.topology.builders import power8_minsky

        observer = GanttObserver("TOPO-AWARE")
        result = run_with_observers(
            power8_minsky(),
            make_scheduler("TOPO-AWARE"),
            table1_jobs(),
            observers=[observer],
        )
        assert observer.chart() == gantt_chart(result)

    def test_live_utility_series_matches_records(self):
        from repro.analysis.gantt import UtilityTimelineObserver
        from repro.analysis.scenarios import table1_jobs
        from repro.schedulers import make_scheduler
        from repro.sim.runner import run_with_observers
        from repro.topology.builders import power8_minsky

        observer = UtilityTimelineObserver()
        result = run_with_observers(
            power8_minsky(),
            make_scheduler("TOPO-AWARE"),
            table1_jobs(),
            observers=[observer],
        )
        times_obs, means_obs = observer.series()
        times_rec, means_rec = utility_timeline(result.records)
        np.testing.assert_allclose(times_obs, times_rec)
        np.testing.assert_allclose(means_obs, means_rec)

    def test_failure_splits_span(self):
        from repro.analysis.gantt import GanttObserver
        from repro.schedulers import make_scheduler
        from repro.sim.engine import MachineFailure
        from repro.sim.runner import run_with_observers
        from repro.topology.builders import power8_minsky

        observer = GanttObserver()
        run_with_observers(
            power8_minsky(),
            make_scheduler("FCFS"),
            [make_job("victim", num_gpus=2, iterations=2000, arrival_time=0.0)],
            failures=[MachineFailure("m0", at_time=5.0, duration_s=10.0)],
            observers=[observer],
        )
        spans = [s for s in observer.spans if s.job_id == "victim"]
        assert len(spans) == 2  # pre-failure segment + restart segment
        assert spans[0].end == pytest.approx(5.0)
        assert spans[1].start >= 15.0
