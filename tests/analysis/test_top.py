"""``repro top`` rendering: pure functions over endpoint documents."""

import math

from repro.analysis.top import (
    heat_cell,
    occupancy_bar,
    render_alerts,
    render_dashboard,
    render_heatmap,
    render_sparklines,
    sparkline,
)


class TestSparkline:
    def test_maps_range_onto_block_ramp(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat_series_renders_mid_ramp(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▄▄▄"

    def test_nan_renders_as_gap(self):
        line = sparkline([0.0, math.nan, 2.0])
        assert line[1] == " "
        assert line[0] == "▁" and line[2] == "█"

    def test_all_nan_is_blank(self):
        assert sparkline([math.nan, math.nan]) == "  "

    def test_keeps_newest_points_when_wider_than_width(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10
        assert line[-1] == "█"  # newest (largest) survives on the right

    def test_empty_series(self):
        assert sparkline([]) == ""


class TestCells:
    def test_heat_cell_ramp(self):
        assert heat_cell(0.0) == " "
        assert heat_cell(1.0) == "█"
        assert heat_cell(math.nan) == "?"
        assert heat_cell(2.0) == "█"  # clamped

    def test_occupancy_bar(self):
        assert occupancy_bar(0.5, width=10) == "█████░░░░░"
        assert occupancy_bar(0.0, width=4) == "░░░░"
        assert occupancy_bar(1.0, width=4) == "████"
        assert occupancy_bar(math.nan, width=4) == "????"


class TestSections:
    def timeseries_doc(self):
        return {
            "cluster": {
                "queue_depth": {"raw": [[0.0, 2.0], [1.0, 5.0]]},
                "running_jobs": {"raw": [[0.0, 1.0], [1.0, 3.0]]},
                "utilization": {"raw": [[0.0, 0.2], [1.0, 0.9]]},
            }
        }

    def cluster_doc(self, n=3):
        return {
            "machines": {
                f"m{i}": {
                    "occupancy": i / max(1, n - 1),
                    "fragmentation": 0.1 * i,
                    "link_load": 0.5 * i,
                }
                for i in range(n)
            }
        }

    def test_sparkline_section_labels_and_ranges(self):
        lines = render_sparklines(self.timeseries_doc())
        assert len(lines) == 3
        assert lines[0].strip().startswith("queue")
        assert "(2..5)" in lines[0]
        assert "(0.20..0.90)" in lines[2]

    def test_sparkline_section_empty_without_history(self):
        assert render_sparklines({}) == []

    def test_heatmap_annotated_lines_for_small_fleets(self):
        lines = render_heatmap(self.cluster_doc(3))
        assert len(lines) == 3
        assert "m0" in lines[0] and "frag 0.00" in lines[0]
        assert "link 1.00" in lines[2]

    def test_heatmap_collapses_large_fleets_to_grid(self):
        doc = self.cluster_doc(100)
        lines = render_heatmap(doc, rows=16, width=40)
        assert lines[0].startswith("  100 machines")
        # cells for idle machines are spaces: strip only the indent
        cells = "".join(line[2:] for line in lines[1:])
        assert len(cells) == 100  # one character per machine

    def test_heatmap_placeholder_without_samples(self):
        assert render_heatmap({}) == ["  (no per-machine samples yet)"]

    def test_alerts_section(self):
        doc = {
            "enabled": True,
            "active": ["qd"],
            "fired_total": 2,
            "rounds_evaluated": 40,
            "fired": [{
                "rule": "qd", "signal": "queue_depth", "op": ">",
                "value": 9.0, "threshold": 5.0, "severity": "warning",
                "round": 17,
            }],
        }
        lines = render_alerts(doc)
        assert "1 active" in lines[0]
        assert "[warning] qd" in lines[1] and "round 17" in lines[1]

    def test_alerts_placeholder_without_watchdog(self):
        assert render_alerts({}) == ["alerts: (no watchdog attached)"]


class TestDashboard:
    def test_full_frame_composition(self):
        docs = {
            "state": {
                "schema": 3, "scheduler": "TOPO-AWARE", "sim_time": 12.5,
                "decision_rounds": 7, "queue_depth": 2,
                "running_jobs": ["a", "b"], "gpus_busy": 6,
                "total_gpus": 8, "finished": False,
            },
            "timeseries": {
                "cluster": {
                    "queue_depth": {"raw": [[0.0, 1.0], [1.0, 2.0]]},
                }
            },
            "cluster": {
                "machines": {"m0": {"occupancy": 0.75,
                                    "fragmentation": 0.25,
                                    "link_load": 0.0}}
            },
            "alerts": {"enabled": True, "active": [], "fired": [],
                       "fired_total": 0, "rounds_evaluated": 7},
        }
        frame = render_dashboard(docs, url="http://x:1")
        assert "repro top — TOPO-AWARE @ http://x:1" in frame
        assert "phase: running" in frame
        assert "sim 12.5s" in frame and "gpus 6/8" in frame
        assert "m0" in frame and "0 active" in frame

    def test_degrades_with_missing_documents(self):
        frame = render_dashboard({})
        assert "phase: idle" in frame
        assert "(no per-machine samples yet)" in frame
        assert "(no watchdog attached)" in frame

    def test_finished_phase(self):
        frame = render_dashboard({"state": {"schema": 3, "finished": True}})
        assert "phase: finished" in frame
