"""Tests for the parameter-sweep harness."""

import math

import pytest

from repro.analysis.sweep import (
    SweepPoint,
    format_sweep,
    mean_qos_metric,
    mean_wait_metric,
    series,
    sweep,
    violations_metric,
)
from repro.topology.builders import cluster
from repro.workload.generator import GeneratorConfig, WorkloadGenerator


def tiny_scenario(rate: float):
    cfg = GeneratorConfig(arrival_rate_per_min=rate)
    jobs = WorkloadGenerator(cfg, seed=8).generate(12)
    return (lambda: cluster(2)), jobs


@pytest.fixture(scope="module")
def points():
    return sweep((2.0, 6.0), tiny_scenario, schedulers=("BF", "TOPO-AWARE-P"))


class TestSweep:
    def test_one_point_per_value(self, points):
        assert [p.value for p in points] == [2.0, 6.0]

    def test_each_point_has_all_schedulers(self, points):
        for p in points:
            assert set(p.results) == {"BF", "TOPO-AWARE-P"}

    def test_series_shapes(self, points):
        qos = series(points, mean_qos_metric)
        assert set(qos) == {"BF", "TOPO-AWARE-P"}
        assert all(len(v) == 2 for v in qos.values())
        assert all(not math.isnan(x) for v in qos.values() for x in v)

    def test_metric_accessor(self, points):
        p = points[0]
        assert p.metric("BF", mean_wait_metric) >= 0.0
        assert p.metric("BF", violations_metric) >= 0.0

    def test_format_contains_values_and_names(self, points):
        text = format_sweep(points, mean_qos_metric, knob_name="rate")
        assert "rate" in text and "TOPO-AWARE-P" in text
        assert "2.00" in text and "6.00" in text

    def test_empty_series(self):
        assert series([], mean_qos_metric) == {}
