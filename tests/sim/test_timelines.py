"""Tests for utilization and bandwidth timelines (Figure 8 strips)."""

import numpy as np
import pytest

from repro.analysis.figures import fig8_prototype
from repro.sim.metrics import (
    average_utilization,
    bandwidth_timeline,
    utilization_timeline,
)
from repro.workload.profiles import default_database

from tests.conftest import make_job
from tests.sim.test_metrics import record


@pytest.fixture(scope="module")
def fig8_results():
    return fig8_prototype()


class TestUtilizationTimeline:
    def test_single_job_utilization(self):
        rec = record()  # 2 GPUs, 10..110s
        times, util = utilization_timeline([rec], total_gpus=4, n_samples=111)
        assert util.max() == pytest.approx(0.5)
        assert util[0] == 0.0  # nothing running at t=0

    def test_bounded_by_one(self, fig8_results):
        for result in fig8_results.values():
            _, util = utilization_timeline(result.records, total_gpus=4)
            assert np.all(util <= 1.0 + 1e-9)
            assert np.all(util >= 0.0)

    def test_average_utilization_positive(self, fig8_results):
        result = fig8_results["TOPO-AWARE-P"]
        avg = average_utilization(result.records, total_gpus=4)
        assert 0.3 < avg < 1.0

    def test_topo_p_utilizes_at_least_as_well(self, fig8_results):
        """The paper: the topology-aware strategy 'provides higher
        resource utilization' -- with the same work done in less
        wall-clock, busy fraction is at least the greedy one's."""
        topo_avg = average_utilization(
            fig8_results["TOPO-AWARE-P"].records, total_gpus=4
        )
        bf_avg = average_utilization(fig8_results["BF"].records, total_gpus=4)
        # same GPU-seconds over a shorter makespan -> higher or equal
        assert topo_avg >= bf_avg - 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            utilization_timeline([], total_gpus=0)
        with pytest.raises(ValueError):
            utilization_timeline([], total_gpus=4, n_samples=1)

    def test_empty_records(self):
        times, util = utilization_timeline([], total_gpus=4)
        assert util.tolist() == [0.0]


class TestBandwidthTimeline:
    def test_fig8_strips_distinguish_policies(self, fig8_results):
        """BF routes the multi-GPU jobs through the CPUs; TOPO-AWARE-P
        moves the same traffic over P2P -- exactly Figure 8's story."""
        profiles = default_database()
        _, p2p_bf, routed_bf = bandwidth_timeline(
            fig8_results["BF"].records, profiles
        )
        _, p2p_tp, routed_tp = bandwidth_timeline(
            fig8_results["TOPO-AWARE-P"].records, profiles
        )
        assert routed_bf.max() > 0.0  # BF has host-routed traffic
        assert p2p_tp.max() > 0.0  # TOPO-AWARE-P uses P2P
        assert routed_tp.max() == 0.0  # ... exclusively
        assert p2p_tp.sum() > p2p_bf.sum()

    def test_single_gpu_jobs_contribute_nothing(self):
        profiles = default_database()
        rec = record(num_gpus=1)
        rec.gpus = ("m0/gpu0",)
        rec.p2p = True
        _, p2p, routed = bandwidth_timeline([rec], profiles)
        assert p2p.max() == routed.max() == 0.0

    def test_empty(self):
        times, p2p, routed = bandwidth_timeline([], default_database())
        assert p2p.tolist() == [0.0]
