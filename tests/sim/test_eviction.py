"""Eviction lifecycle: cancel accounting, preemption, defrag, PM policy."""

import pytest

from repro.analysis.gantt import GanttObserver
from repro.analysis.scenarios import fragmentation_jobs, table1_jobs
from repro.core.utility import SLO_EPS, UtilityParams, migration_penalty
from repro.obs.provenance import DecisionRecorder
from repro.obs.telemetry import TelemetryObserver
from repro.schedulers import make_scheduler
from repro.schedulers.topo import TopoAwareScheduler
from repro.sim.engine import Simulator
from repro.sim.hooks import BaseObserver
from repro.sim.metrics import (
    UtilizationObserver,
    qos_slowdown,
    summarize,
    total_slowdown,
)
from repro.sim.runner import run_comparison, run_with_observers
from repro.topology.builders import cluster, power8_minsky

from tests.conftest import make_job


def started_sim(jobs, scheduler="FCFS", topo=None, observers=()):
    sim = Simulator(
        topo if topo is not None else power8_minsky(),
        make_scheduler(scheduler),
        jobs,
        observers=list(observers),
    )
    sim.start()
    return sim


class TestCancelAccounting:
    """The tentpole bug: cancelling a *running* job must reach every
    observer, not just silently pop the cluster entry."""

    def test_cancel_mid_run_closes_every_book(self):
        # A long job placed at t=0, a short one arriving at t=10 so the
        # clock has moved when we cancel; cancel the long one mid-run.
        long_job = make_job("long", num_gpus=2, iterations=5000)
        short_job = make_job("short", num_gpus=1, iterations=50,
                             arrival_time=10.0)
        gantt = GanttObserver()
        util = UtilizationObserver(total_gpus=4)
        telemetry = TelemetryObserver(scheduler="FCFS", total_gpus=4)
        sim = started_sim(
            [long_job, short_job], observers=[gantt, util, telemetry]
        )
        sim.step()  # arrival(long) -> placed
        sim.step()  # arrival(short) -> placed; now = 10
        assert set(sim.cluster.running) == {"long", "short"}
        busy_before = util._busy
        running_gauge = telemetry.registry.get("repro_running_jobs")
        assert running_gauge.value(scheduler="FCFS") == 2

        phase, touched = sim.cancel_job("long")
        assert phase == "running"
        assert touched  # freed machines need a decision round

        # Gantt bar closed at the cancel time, not left dangling
        span = next(s for s in gantt.spans if s.job_id == "long")
        assert span.end == sim.cluster.now == 10.0
        # utilization stepped down by the job's 2 GPUs
        assert util._busy == busy_before - 2
        assert util.steps[-1] == (10.0, util._busy / 4)
        # running-jobs gauge dropped
        assert running_gauge.value(scheduler="FCFS") == 1
        evicted = telemetry.registry.get("repro_evictions_total")
        assert evicted.value(scheduler="FCFS", reason="cancel") == 1

        # the pending Finish event for the cancelled job is stale: the
        # run drains cleanly and the record stays unfinished-by-cancel
        while sim.step():
            pass
        result = sim.finish()
        rec = {r.job.job_id: r for r in result.records}
        assert rec["long"].finished_at is None
        assert rec["long"].cancelled_at == 10.0
        assert rec["short"].finished_at is not None

    def test_cancelled_record_is_terminal_not_unfinished(self):
        sim = started_sim([make_job("j", num_gpus=2, iterations=5000)])
        sim.step()
        sim.cancel_job("j")
        rec = sim.record_of("j")
        assert rec.terminal
        assert rec.end_time == rec.cancelled_at
        # cancelled != unfinished: no slowdown, never an error
        assert qos_slowdown(rec) is None
        assert total_slowdown(rec, unfinished="skip") is None
        summary = summarize(sim.finish())
        assert summary["cancelled"] == 1
        assert summary["finished"] == 0

    def test_cancel_queued_job_fires_evict_with_no_gpus(self):
        events = []

        class Tap(BaseObserver):
            def on_evict(self, t, job, gpus, reason):
                events.append((job.job_id, set(gpus), reason))

        blocker = make_job("blocker", num_gpus=4, iterations=5000)
        waiter = make_job("waiter", num_gpus=4, iterations=100,
                          arrival_time=1.0)
        sim = started_sim([blocker, waiter], observers=[Tap()])
        sim.step()
        sim.step()
        assert "waiter" not in sim.cluster.running
        phase, _ = sim.cancel_job("waiter")
        assert phase == "queued"
        assert events == [("waiter", set(), "cancel")]


class TestPreemption:
    def test_preempted_job_resumes_with_its_progress(self):
        job = make_job("j", num_gpus=2, iterations=4000)
        sim = started_sim([job])
        sim.step()
        run = sim.cluster.running["j"]
        solo = run.solo
        # burn ~half the job, then preempt
        sim.cluster.advance_to(solo / 2)
        touched = sim.preempt_job("j")
        assert "j" not in sim.cluster.running
        assert touched
        rec = sim.record_of("j")
        assert rec.preemptions == 1
        assert rec.placed_at is None  # awaiting re-placement

        sim.run_round(touched)  # re-place immediately on the same GPUs
        resumed = sim.cluster.running["j"]
        cost = sim.cluster.params.migration_cost_s
        # work conservation: remaining = unfinished half + migration
        # cost, not a cold restart of the full solo duration
        assert resumed.remaining == pytest.approx(solo / 2 + cost, rel=1e-6)
        while sim.step():
            pass
        assert sim.record_of("j").finished_at is not None

    def test_checkpoint_consumed_on_resume_and_dropped_on_cancel(self):
        job = make_job("j", num_gpus=1, iterations=1000)
        sim = started_sim([job])
        sim.step()
        solo = sim.cluster.running["j"].solo
        sim.cluster.advance_to(solo * 0.25)
        touched = sim.preempt_job("j")
        assert sim.cluster._checkpoints["j"] == pytest.approx(0.25, rel=1e-6)
        sim.run_round(touched)  # re-placed: the checkpoint is consumed
        assert "j" in sim.cluster.running
        assert "j" not in sim.cluster._checkpoints
        sim.cancel_job("j")  # cancel after a resume leaves nothing behind
        assert "j" not in sim.cluster._checkpoints

    def test_migration_penalty_caps_at_weight(self):
        params = UtilityParams(migration_cost_s=30.0, migration_weight=0.25)
        # nearly-done victim: full penalty; long-running victim: scaled
        assert migration_penalty(1.0, params) == pytest.approx(0.25)
        assert migration_penalty(300.0, params) == pytest.approx(0.025)


class TestSloEpsilon:
    def test_single_shared_tolerance_constant(self):
        from repro.core import placement, utility
        from repro.schedulers import topo

        assert placement.SLO_EPS is utility.SLO_EPS
        assert topo.SLO_EPS is utility.SLO_EPS
        assert SLO_EPS == 1e-12


class TestPMPolicy:
    def test_pm_with_knobs_off_is_bit_identical_to_p(self):
        """Preemption machinery disabled (no priorities, no defrag)
        must not perturb a single decision vs TOPO-AWARE-P."""
        jobs = table1_jobs()  # all priority 0
        baseline = run_with_observers(
            power8_minsky(), make_scheduler("TOPO-AWARE-P"), jobs
        )
        pm_scheduler = TopoAwareScheduler(
            postpone=True, preempt=True, defrag_interval=0
        )
        pm = run_with_observers(power8_minsky(), pm_scheduler, jobs)
        base_recs = {r.job.job_id: r for r in baseline.records}
        for rec in pm.records:
            twin = base_recs[rec.job.job_id]
            assert rec.placed_at == twin.placed_at
            assert rec.finished_at == twin.finished_at
            assert rec.gpus == twin.gpus
            assert rec.utility == twin.utility
            assert rec.preemptions == 0 and rec.migrations == 0

    def test_pm_beats_p_on_fragmented_cluster(self):
        """The acceptance scenario: scattered holes + pinned longs.
        PM must preempt/consolidate and finish no later than P."""
        jobs = fragmentation_jobs()
        recorders = {}

        def observer_factory(name):
            recorders[name] = DecisionRecorder()
            return [recorders[name]]

        results = run_comparison(
            lambda: cluster(2),
            jobs,
            ("TOPO-AWARE-P", "TOPO-AWARE-PM"),
            observer_factory=observer_factory,
        )
        p = summarize(results["TOPO-AWARE-P"])
        pm = summarize(results["TOPO-AWARE-PM"])
        assert pm["makespan_s"] <= p["makespan_s"]
        assert pm["preemptions"] >= 1
        assert p["preemptions"] == 0

        # every eviction is justified in the decision provenance with
        # its utility economics
        evictions = [
            d
            for d in recorders["TOPO-AWARE-PM"].decisions()
            if d.get("verdict") == "evict"
        ]
        assert len(evictions) >= 1
        for record in evictions:
            evict = record["evict"]
            assert evict["kind"] in ("preempt", "migrate")
            assert evict["gain"] > evict["min_gain"]
            for key in ("victim", "victim_utility", "job_utility",
                        "migration_penalty"):
                assert key in evict
            if evict["kind"] == "preempt":
                assert evict["victim_priority"] < evict["job_priority"]

    def test_defrag_migrates_a_scattered_job(self):
        """An aggressive defrag config consolidates a cross-machine
        placement once co-runners drain."""
        # blockers leave one free GPU per machine, forcing the 2-GPU
        # job into a cross-machine placement; once they drain, defrag
        # should migrate it onto a single machine
        blocker_a = make_job("blka", num_gpus=3, iterations=150)
        blocker_b = make_job("blkb", num_gpus=3, iterations=150)
        split = make_job("split", num_gpus=2, iterations=30000,
                         arrival_time=1.0, min_utility=0.0,
                         single_node=False)
        late = make_job("late", num_gpus=1, iterations=100,
                        arrival_time=500.0)
        scheduler = TopoAwareScheduler(
            postpone=False, preempt=True, defrag_interval=1,
            defrag_min_gain=0.0,
        )
        result = run_with_observers(
            cluster(2), scheduler, [blocker_a, blocker_b, split, late]
        )
        rec = {r.job.job_id: r for r in result.records}
        assert rec["split"].migrations >= 1
        machines = {g.split("/")[0] for g in rec["split"].gpus}
        assert len(machines) == 1  # consolidated onto one machine
        assert rec["split"].finished_at is not None

    def test_factory_spells_pm(self):
        sched = make_scheduler("TOPO-AWARE-PM")
        assert sched.name == "TOPO-AWARE-PM"
        assert sched.preempt and sched.postpone
