"""Observer dispatch, record keeping, and engine/observer integration."""

import pytest

from repro.schedulers import make_scheduler
from repro.sim.cluster import ClusterState
from repro.sim.engine import MachineFailure, Simulator
from repro.sim.hooks import BaseObserver, CompositeObserver, RecordKeeper
from repro.sim.runner import run_with_observers
from repro.topology.builders import cluster, power8_minsky

from tests.conftest import make_job


class EventLog(BaseObserver):
    """Records every hook invocation as (hook, time, subject)."""

    def __init__(self, log=None, tag=""):
        self.log = log if log is not None else []
        self.tag = tag

    def _note(self, hook, t, subject):
        self.log.append((self.tag + hook if self.tag else hook, t, subject))

    def on_arrival(self, t, job):
        self._note("arrival", t, job.job_id)

    def on_place(self, t, job, solution, solo_exec_time, postponements):
        self._note("place", t, job.job_id)

    def on_finish(self, t, job, gpus):
        self._note("finish", t, job.job_id)

    def on_failure(self, t, machine, victims):
        self._note("failure", t, machine)

    def on_requeue(self, t, job):
        self._note("requeue", t, job.job_id)

    def on_decision_round(self, t, placed, queued, elapsed_s):
        self._note("round", t, len(placed))


class TestCompositeDispatch:
    def test_dispatch_order_is_attach_order(self):
        log = []
        composite = CompositeObserver(
            [EventLog(log, tag="a:"), EventLog(log, tag="b:")]
        )
        composite.add(EventLog(log, tag="c:"))
        job = make_job("j")
        composite.on_arrival(1.0, job)
        assert [entry[0] for entry in log] == ["a:arrival", "b:arrival", "c:arrival"]

    def test_every_hook_fans_out(self):
        log = []
        composite = CompositeObserver([EventLog(log)])
        job = make_job("j")
        composite.on_failure(2.0, "m0", [job])
        composite.on_requeue(2.0, job)
        composite.on_decision_round(2.0, [], 1, 0.01)
        assert [entry[0] for entry in log] == ["failure", "requeue", "round"]


class TestEngineEmitsHooks:
    def test_lifecycle_sequence_for_one_job(self):
        log = EventLog()
        job = make_job("solo", num_gpus=2, iterations=100, arrival_time=5.0)
        result = run_with_observers(
            power8_minsky(), make_scheduler("FCFS"), [job], observers=[log]
        )
        hooks = [entry[0] for entry in log.log]
        assert hooks[0] == "arrival"
        assert "place" in hooks and "finish" in hooks
        assert hooks.index("arrival") < hooks.index("place") < hooks.index("finish")
        # every event batch is followed by a decision round
        assert hooks.count("round") == result.decision_rounds

    def test_failure_hooks_fire_with_victims(self):
        log = EventLog()
        job = make_job("victim", num_gpus=2, iterations=2000, arrival_time=0.0)
        run_with_observers(
            power8_minsky(),
            make_scheduler("FCFS"),
            [job],
            failures=[MachineFailure("m0", at_time=5.0, duration_s=10.0)],
            observers=[log],
        )
        hooks = [entry[0] for entry in log.log]
        assert "failure" in hooks
        assert "requeue" in hooks
        assert hooks.count("place") == 2  # initial placement + restart

    def test_observer_times_match_records(self):
        log = EventLog()
        jobs = [make_job(f"j{i}", num_gpus=1, iterations=80, arrival_time=float(i))
                for i in range(4)]
        result = run_with_observers(
            power8_minsky(), make_scheduler("TOPO-AWARE"), jobs, observers=[log]
        )
        placed = {s: t for h, t, s in log.log if h == "place"}
        finished = {s: t for h, t, s in log.log if h == "finish"}
        for rec in result.records:
            assert placed[rec.job.job_id] == rec.placed_at
            assert finished[rec.job.job_id] == rec.finished_at


class TestRecordKeeper:
    def test_requeue_resets_placement_and_counts_restart(self):
        keeper = RecordKeeper()
        job = make_job("j", num_gpus=1)
        keeper.register(job, ideal_exec_time=42.0)
        rec = keeper.record_of("j")
        rec.placed_at = 1.0
        rec.gpus = ("m0/gpu0",)
        rec.utility = 0.9
        keeper.on_requeue(5.0, job)
        assert rec.restarts == 1
        assert rec.placed_at is None
        assert rec.gpus == ()
        assert rec.utility is None
        assert rec.ideal_exec_time == 42.0  # survives the cold restart

    def test_mark_unplaceable(self):
        keeper = RecordKeeper()
        job = make_job("big", num_gpus=64)
        keeper.register(job, ideal_exec_time=0.0)
        keeper.mark_unplaceable(["big"])
        assert keeper.record_of("big").unplaceable


class TestResultIndex:
    def test_record_of_uses_index(self):
        jobs = [make_job(f"j{i}", num_gpus=1, iterations=50) for i in range(6)]
        result = run_with_observers(
            power8_minsky(), make_scheduler("FCFS"), jobs
        )
        assert result.record_of("j3").job.job_id == "j3"
        # built lazily on first use, then hit directly
        assert result._index is not None
        assert result.record_of("j5") is result._index["j5"]
        with pytest.raises(KeyError):
            result.record_of("nope")


class TestSchedulerReuseGuard:
    def test_second_simulator_rejected(self):
        sched = make_scheduler("FCFS")
        Simulator(power8_minsky(), sched, [make_job("a")])
        with pytest.raises(RuntimeError, match="fresh scheduler"):
            Simulator(power8_minsky(), sched, [make_job("b")])

    def test_same_owner_may_reattach(self):
        sched = make_scheduler("FCFS")
        sim = Simulator(power8_minsky(), sched, [make_job("a")])
        sched.attach(sim)  # idempotent for the same owner


class TestSharedClusterState:
    def test_simulator_views_delegate_to_cluster(self):
        topo = power8_minsky()
        state = ClusterState(topo)
        sim = Simulator(topo, make_scheduler("FCFS"), [make_job("a")], cluster=state)
        assert sim.alloc is state.alloc
        assert sim.perf is state.perf
        assert sim.engine is state.engine
        assert sim.cluster is state

    def test_foreign_topology_rejected(self):
        state = ClusterState(power8_minsky())
        with pytest.raises(ValueError, match="different topology"):
            Simulator(cluster(2), make_scheduler("FCFS"), [make_job("a")],
                      cluster=state)
