"""Unit tests for the typed event queue and stale-version semantics."""

import pytest

from repro.sim.cluster import ClusterState, RunningJob
from repro.sim.events import (
    SIMULTANEITY_EPS,
    Arrival,
    EventQueue,
    Failure,
    Finish,
    Recovery,
)
from repro.topology.builders import power8_minsky

from tests.conftest import make_job


class TestOrdering:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(Arrival(5.0, "b"))
        q.push(Arrival(1.0, "a"))
        q.push(Arrival(3.0, "c"))
        assert [q.pop().job_id for _ in range(3)] == ["a", "c", "b"]

    def test_kind_priority_at_equal_time(self):
        """At one timestamp: arrivals < finishes < failures < recoveries."""
        q = EventQueue()
        q.push(Recovery(2.0, "m0"))
        q.push(Finish(2.0, "j", version=1))
        q.push(Failure(2.0, "m1"))
        q.push(Arrival(2.0, "a"))
        kinds = [type(q.pop()) for _ in range(4)]
        assert kinds == [Arrival, Finish, Failure, Recovery]

    def test_fifo_among_same_kind_same_time(self):
        q = EventQueue()
        for job_id in ("first", "second", "third"):
            q.push(Arrival(1.0, job_id))
        assert [q.pop().job_id for _ in range(3)] == ["first", "second", "third"]

    def test_next_time_and_len(self):
        q = EventQueue()
        assert q.next_time() is None
        assert len(q) == 0 and not q
        q.push(Arrival(4.2, "a"))
        assert q.next_time() == 4.2
        assert len(q) == 1 and q

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_rejects_non_events(self):
        q = EventQueue()
        with pytest.raises(TypeError, match="not a simulation event"):
            q.push((1.0, 0, 1, "job"))


class TestPopDue:
    def test_drains_simultaneous_batch_only(self):
        q = EventQueue()
        q.push(Arrival(1.0, "a"))
        q.push(Arrival(1.0 + SIMULTANEITY_EPS / 2, "b"))  # same instant
        q.push(Arrival(2.0, "c"))
        drained = [e.job_id for e in q.pop_due(1.0)]
        assert drained == ["a", "b"]
        assert q.next_time() == 2.0

    def test_pop_due_on_empty_queue(self):
        assert list(EventQueue().pop_due(10.0)) == []


class TestStaleVersions:
    def _cluster_with_running(self):
        topo = power8_minsky()
        cluster = ClusterState(topo)
        job = make_job("j", num_gpus=1)
        cluster.running["j"] = RunningJob(
            job=job, gpus=frozenset({"m0/gpu0"}), remaining=10.0, rate=1.0,
            version=3,
        )
        return cluster

    def test_matching_version_is_fresh(self):
        cluster = self._cluster_with_running()
        assert not cluster.is_stale_finish("j", 3)

    def test_outdated_version_is_stale(self):
        cluster = self._cluster_with_running()
        assert cluster.is_stale_finish("j", 2)

    def test_unknown_job_is_stale(self):
        cluster = self._cluster_with_running()
        assert cluster.is_stale_finish("ghost", 1)

    def test_versions_monotonic_across_restarts(self):
        """A re-placed job must never reuse a version an old Finish holds."""
        topo = power8_minsky()
        cluster = ClusterState(topo)
        job = make_job("j", num_gpus=1, iterations=50)

        sol = cluster.engine.propose(job)
        cluster.engine.enforce(sol)
        cluster.start(job, sol)
        first = cluster.refresh_rates({"m0"})
        assert len(first) == 1 and first[0].version >= 1

        # kill it (failure path releases the allocation) and re-place
        cluster.fail_machine("m0")
        cluster.recover_machine("m0")
        sol2 = cluster.engine.propose(job)
        cluster.engine.enforce(sol2)
        cluster.start(job, sol2)
        second = cluster.refresh_rates({"m0"})
        assert len(second) == 1
        assert second[0].version > first[0].version
        # the first incarnation's finish event is now provably stale
        assert cluster.is_stale_finish("j", first[0].version)

    def test_refresh_returns_no_events_for_untouched_machines(self):
        cluster = ClusterState(power8_minsky())
        assert cluster.refresh_rates(set()) == []
