"""Property-based tests for simulator invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.schedulers import make_scheduler
from repro.sim.engine import Simulator
from repro.topology.builders import power8_minsky
from repro.workload.job import Job, ModelType

MODELS = list(ModelType)


@st.composite
def job_streams(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    jobs = []
    t = 0.0
    for i in range(n):
        t += draw(st.floats(min_value=0.0, max_value=30.0, allow_nan=False))
        jobs.append(
            Job(
                job_id=f"j{i}",
                model=draw(st.sampled_from(MODELS)),
                batch_size=draw(st.sampled_from([1, 4, 32, 128])),
                num_gpus=draw(st.integers(min_value=1, max_value=4)),
                min_utility=draw(st.sampled_from([0.0, 0.3, 0.5])),
                arrival_time=t,
                iterations=draw(st.integers(min_value=10, max_value=200)),
            )
        )
    return jobs


SCHEDULERS = ["FCFS", "BF", "TOPO-AWARE", "TOPO-AWARE-P"]


@settings(max_examples=40, deadline=None)
@given(jobs=job_streams(), scheduler=st.sampled_from(SCHEDULERS))
def test_all_feasible_jobs_finish_in_causal_order(jobs, scheduler):
    """Invariants for any workload on any policy:

    * every job fitting the machine eventually finishes;
    * placement never precedes arrival, finish never precedes placement;
    * execution takes at least the interference-free solo time;
    * a job's GPUs never overlap with a concurrently running job's.
    """
    result = Simulator(power8_minsky(), make_scheduler(scheduler), jobs).run()
    intervals = []  # (start, end, gpus)
    for rec in result.records:
        if scheduler == "FCFS" and rec.finished_at is None:
            continue  # FIFO blocking may legitimately starve the tail
        assert rec.finished_at is not None, rec.job.job_id
        assert rec.placed_at >= rec.arrival - 1e-9
        assert rec.finished_at >= rec.placed_at
        assert rec.exec_time >= rec.solo_exec_time - 1e-6
        assert len(rec.gpus) == rec.job.num_gpus
        intervals.append((rec.placed_at, rec.finished_at, set(rec.gpus)))
    # GPU exclusivity across overlapping intervals
    for i, (s1, e1, g1) in enumerate(intervals):
        for s2, e2, g2 in intervals[i + 1 :]:
            if s1 < e2 - 1e-9 and s2 < e1 - 1e-9:  # time overlap
                assert not (g1 & g2)


@settings(max_examples=20, deadline=None)
@given(jobs=job_streams())
def test_qos_slowdown_never_negative(jobs):
    from repro.sim.metrics import qos_slowdown, total_slowdown

    result = Simulator(power8_minsky(), make_scheduler("TOPO-AWARE-P"), jobs).run()
    for rec in result.records:
        if rec.finished_at is not None:
            assert qos_slowdown(rec) >= 0.0
            assert total_slowdown(rec) >= qos_slowdown(rec) - 1e-9


@settings(max_examples=20, deadline=None)
@given(jobs=job_streams())
def test_simulation_is_deterministic(jobs):
    a = Simulator(power8_minsky(), make_scheduler("TOPO-AWARE-P"), jobs).run()
    b = Simulator(power8_minsky(), make_scheduler("TOPO-AWARE-P"), jobs).run()
    for ra, rb in zip(a.records, b.records):
        assert ra.placed_at == rb.placed_at
        assert ra.finished_at == rb.finished_at
        assert ra.gpus == rb.gpus
