"""Tests for simulation metrics."""

import pytest

from repro.sim.engine import JobRecord, SimulationResult
from repro.sim.metrics import (
    comparison_table,
    cumulative_execution_time,
    mean_utility,
    mean_waiting_time,
    qos_slowdown,
    slo_violations,
    sorted_slowdowns,
    summarize,
    total_slowdown,
)

from tests.conftest import make_job


def record(
    job_id="j",
    arrival=0.0,
    placed=10.0,
    finished=110.0,
    ideal=100.0,
    utility=0.8,
    min_utility=0.5,
    **job_kwargs,
) -> JobRecord:
    job = make_job(job_id, min_utility=min_utility, **job_kwargs)
    return JobRecord(
        job=job,
        arrival=arrival,
        placed_at=placed,
        finished_at=finished,
        ideal_exec_time=ideal,
        utility=utility,
        gpus=("m0/gpu0", "m0/gpu1"),
    )


class TestSlowdowns:
    def test_qos_slowdown_zero_at_ideal(self):
        assert qos_slowdown(record()) == pytest.approx(0.0)

    def test_qos_slowdown_positive(self):
        rec = record(finished=160.0)  # exec 150 vs ideal 100
        assert qos_slowdown(rec) == pytest.approx(0.5)

    def test_total_slowdown_includes_waiting(self):
        rec = record()  # waited 10s, exec 100 = ideal
        assert total_slowdown(rec) == pytest.approx(0.1)

    def test_unfinished_job_rejected(self):
        rec = record()
        rec.finished_at = None
        with pytest.raises(ValueError):
            qos_slowdown(rec)

    def test_sorted_slowdowns_descending(self):
        recs = [record("a"), record("b", finished=210.0), record("c", finished=160.0)]
        vals = sorted_slowdowns(recs)
        assert list(vals) == sorted(vals, reverse=True)
        assert vals[0] == pytest.approx(1.0)

    def test_sorted_slowdowns_skips_unfinished(self):
        rec = record()
        rec.finished_at = None
        assert len(sorted_slowdowns([rec])) == 0


class TestUnfinishedPolicy:
    def unfinished_record(self):
        rec = record()
        rec.finished_at = None
        return rec

    def test_per_record_skip_returns_none(self):
        rec = self.unfinished_record()
        assert qos_slowdown(rec, unfinished="skip") is None
        assert total_slowdown(rec, unfinished="skip") is None

    def test_per_record_raise_is_default(self):
        rec = self.unfinished_record()
        with pytest.raises(ValueError, match="did not finish"):
            qos_slowdown(rec)
        with pytest.raises(ValueError, match="did not finish"):
            total_slowdown(rec)

    def test_sorted_slowdowns_raise_policy_surfaces_unfinished(self):
        recs = [record("a"), self.unfinished_record()]
        with pytest.raises(ValueError, match="did not finish"):
            sorted_slowdowns(recs, unfinished="raise")
        with pytest.raises(ValueError, match="did not finish"):
            sorted_slowdowns(recs, include_waiting=True, unfinished="raise")

    def test_sorted_slowdowns_skip_policy_is_default(self):
        recs = [record("a"), self.unfinished_record()]
        assert len(sorted_slowdowns(recs)) == 1

    def test_invalid_policy_rejected_everywhere(self):
        rec = record()
        with pytest.raises(ValueError, match="unfinished must be one of"):
            qos_slowdown(rec, unfinished="ignore")
        with pytest.raises(ValueError, match="unfinished must be one of"):
            total_slowdown(rec, unfinished="ignore")
        with pytest.raises(ValueError, match="unfinished must be one of"):
            sorted_slowdowns([rec], unfinished="ignore")


class TestViolationsAndAggregates:
    def test_slo_violation_detected(self):
        ok = record("good", utility=0.8)
        bad = record("bad", utility=0.2)
        assert slo_violations([ok, bad]) == ["bad"]

    def test_unplaced_job_not_a_violation(self):
        rec = record("never")
        rec.utility = None
        assert slo_violations([rec]) == []

    def test_mean_utility(self):
        recs = [record(utility=0.6), record(utility=1.0)]
        assert mean_utility(recs) == pytest.approx(0.8)

    def test_mean_waiting(self):
        recs = [record(placed=5.0), record(placed=15.0)]
        assert mean_waiting_time(recs) == pytest.approx(10.0)


def make_result(records, name="TEST") -> SimulationResult:
    return SimulationResult(
        scheduler_name=name,
        records=records,
        makespan=max(r.finished_at for r in records if r.finished_at),
        decision_time_s=0.5,
        decision_rounds=5,
    )


class TestSummaries:
    def test_summarize_fields(self):
        result = make_result([record("a"), record("b", utility=0.1)])
        row = summarize(result)
        assert row["jobs"] == 2
        assert row["slo_violations"] == 1
        assert row["makespan_s"] == pytest.approx(110.0)
        assert row["mean_decision_time_s"] == pytest.approx(0.1)

    def test_cumulative_execution_time_is_makespan(self):
        result = make_result([record()])
        assert cumulative_execution_time(result) == result.makespan

    def test_comparison_table_renders_all_rows(self):
        results = [make_result([record()], name=n) for n in ("A", "B")]
        text = comparison_table(results)
        assert "A" in text and "B" in text and "makespan" in text

    def test_summarize_handles_unfinished(self):
        rec = record("u")
        rec.finished_at = None
        rec.unplaceable = True
        result = SimulationResult("X", [rec], 0.0, 0.0, 0)
        row = summarize(result)
        assert row["finished"] == 0 and row["unplaceable"] == 1


class TestUtilizationObserver:
    def test_live_average_matches_record_average(self):
        import numpy as np

        from repro.analysis.scenarios import table1_jobs
        from repro.schedulers import make_scheduler
        from repro.sim.metrics import UtilizationObserver, average_utilization
        from repro.sim.runner import run_with_observers
        from repro.topology.builders import power8_minsky

        topo = power8_minsky()
        observer = UtilizationObserver(total_gpus=len(topo.gpus()))
        result = run_with_observers(
            topo, make_scheduler("TOPO-AWARE"), table1_jobs(),
            observers=[observer],
        )
        # the observer sees the exact step function; the record-based
        # estimate samples it, so they agree only approximately
        assert observer.average() == pytest.approx(
            average_utilization(result.records, len(topo.gpus())), abs=0.05
        )
        times, util = observer.timeline()
        assert (util >= 0.0).all() and (util <= 1.0).all()
        assert (np.diff(times) >= 0).all()

    def test_validation(self):
        from repro.sim.metrics import UtilizationObserver

        with pytest.raises(ValueError):
            UtilizationObserver(total_gpus=0)
        empty = UtilizationObserver(total_gpus=4)
        assert empty.average() == 0.0
