"""Failure-injection tests: machines die, jobs restart, the sim survives."""

import pytest

from repro.schedulers import make_scheduler
from repro.sim.engine import MachineFailure, Simulator
from repro.topology.allocation import AllocationError, AllocationState
from repro.topology.builders import cluster, power8_minsky

from tests.conftest import make_job


def simulate(jobs, failures, topo=None, scheduler="TOPO-AWARE-P"):
    topo = topo or cluster(2)
    return Simulator(
        topo, make_scheduler(scheduler), jobs, failures=failures
    ).run()


class TestMachineHealthState:
    def test_down_machine_offers_no_capacity(self, minsky):
        state = AllocationState(minsky)
        state.set_machine_down("m0")
        assert state.free_count("m0") == 0
        assert state.free_gpus(machine="m0") == []
        assert state.max_free_count() == 0
        assert not state.is_machine_up("m0")

    def test_recovery_restores_capacity(self, minsky):
        state = AllocationState(minsky)
        state.set_machine_down("m0")
        state.set_machine_up("m0")
        assert state.free_count("m0") == 4
        assert state.is_machine_up("m0")

    def test_global_free_list_excludes_down_machines(self):
        topo = cluster(2)
        state = AllocationState(topo)
        state.set_machine_down("m0")
        assert all(g.startswith("m1/") for g in state.free_gpus())

    def test_unknown_machine_rejected(self, minsky):
        state = AllocationState(minsky)
        with pytest.raises(AllocationError):
            state.set_machine_down("m9")

    def test_down_returns_running_jobs(self, minsky):
        state = AllocationState(minsky)
        state.allocate("a", ["m0/gpu0"])
        assert state.set_machine_down("m0") == ["a"]


class TestFailureValidation:
    def test_unknown_machine_in_failure_rejected(self):
        with pytest.raises(ValueError, match="unknown machine"):
            simulate([make_job("a")], [MachineFailure("m9", 1.0)])

    def test_bad_failure_params_rejected(self):
        with pytest.raises(ValueError):
            MachineFailure("m0", -1.0)
        with pytest.raises(ValueError):
            MachineFailure("m0", 1.0, duration_s=0.0)


class TestFailureDynamics:
    def test_job_restarts_on_surviving_machine(self):
        job = make_job("a", num_gpus=2, iterations=500, arrival_time=0.0)
        result = simulate(
            [job], [MachineFailure("m0", at_time=10.0)]  # permanent
        )
        rec = result.record_of("a")
        assert rec.restarts == 1
        assert rec.finished_at is not None
        assert all(g.startswith("m1/") for g in rec.gpus)
        # the restart threw away ~10s of progress
        assert rec.finished_at > 10.0 + rec.solo_exec_time - 1e-6

    def test_failure_of_idle_machine_is_harmless(self):
        job = make_job("a", num_gpus=2, iterations=100)
        clean = simulate([job], [])
        failed = simulate([job], [MachineFailure("m1", at_time=5.0)])
        assert failed.record_of("a").restarts == 0
        assert failed.record_of("a").finished_at == pytest.approx(
            clean.record_of("a").finished_at
        )

    def test_machine_reused_after_recovery(self):
        # single machine: the job MUST wait for recovery
        job = make_job("a", num_gpus=2, iterations=500, arrival_time=0.0)
        result = simulate(
            [job],
            [MachineFailure("m0", at_time=5.0, duration_s=50.0)],
            topo=power8_minsky(),
        )
        rec = result.record_of("a")
        assert rec.restarts == 1
        assert rec.placed_at == pytest.approx(55.0)
        assert rec.finished_at is not None

    def test_all_machines_dead_marks_unplaceable(self):
        job = make_job("a", num_gpus=2, iterations=500, arrival_time=0.0)
        result = simulate(
            [job],
            [MachineFailure("m0", 5.0), MachineFailure("m1", 5.0)],
        )
        rec = result.record_of("a")
        assert rec.finished_at is None
        assert rec.unplaceable

    def test_restart_counts_accumulate(self):
        job = make_job("a", num_gpus=2, iterations=2000, arrival_time=0.0)
        result = simulate(
            [job],
            [
                MachineFailure("m0", at_time=10.0, duration_s=1000.0),
                MachineFailure("m1", at_time=30.0, duration_s=1000.0),
            ],
        )
        rec = result.record_of("a")
        assert rec.restarts == 2
        assert rec.finished_at is not None

    def test_greedy_schedulers_survive_failures_too(self):
        jobs = [
            make_job("a", num_gpus=2, iterations=300, arrival_time=0.0),
            make_job("b", num_gpus=1, iterations=300, arrival_time=1.0),
        ]
        for name in ("FCFS", "BF", "RANDOM"):
            result = simulate(
                jobs, [MachineFailure("m0", 10.0, duration_s=100.0)],
                scheduler=name,
            )
            for rec in result.records:
                assert rec.finished_at is not None, (name, rec.job.job_id)
