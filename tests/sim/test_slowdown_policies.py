"""Slowdown-metric guards and the ideal-time memo key.

Regression coverage for two bugs: ``total_slowdown`` used to divide by
an unplaceable record's ideal time of 0.0 (ZeroDivisionError instead
of a policy decision), and ``ClusterState.ideal_exec_time`` memoized
on ``(model, batch, gpus)`` only — jobs differing in ``comm_pattern``
silently shared one ideal even though the performance model prices the
patterns differently.
"""

from __future__ import annotations

import pytest

from repro.sim.cluster import ClusterState
from repro.sim.metrics import qos_slowdown, sorted_slowdowns, total_slowdown
from repro.sim.records import JobRecord
from repro.topology.builders import power8_minsky
from repro.workload.job import CommPattern

from tests.conftest import make_job


def _finished_record(job_id="ok", ideal=10.0):
    return JobRecord(
        job=make_job(job_id),
        arrival=0.0,
        placed_at=1.0,
        finished_at=21.0,
        ideal_exec_time=ideal,
    )


def _no_ideal_record(job_id="stuck"):
    # the shape an unplaceable job leaves behind: finished_at set by a
    # failure-requeue edge case or synthetic analysis, ideal still 0.0
    return JobRecord(
        job=make_job(job_id),
        arrival=0.0,
        placed_at=1.0,
        finished_at=21.0,
        ideal_exec_time=0.0,
    )


class TestUnfinishedPolicies:
    @pytest.mark.parametrize("fn", [qos_slowdown, total_slowdown])
    def test_zero_ideal_raises_by_default(self, fn):
        with pytest.raises(ValueError, match="has no ideal time"):
            fn(_no_ideal_record())

    @pytest.mark.parametrize("fn", [qos_slowdown, total_slowdown])
    def test_zero_ideal_skips_to_none(self, fn):
        assert fn(_no_ideal_record(), unfinished="skip") is None

    @pytest.mark.parametrize("fn", [qos_slowdown, total_slowdown])
    def test_unfinished_job_policies(self, fn):
        record = JobRecord(job=make_job(), arrival=0.0, ideal_exec_time=5.0)
        with pytest.raises(ValueError, match="did not finish"):
            fn(record)
        assert fn(record, unfinished="skip") is None

    @pytest.mark.parametrize("fn", [qos_slowdown, total_slowdown])
    def test_bad_policy_rejected(self, fn):
        with pytest.raises(ValueError, match="unfinished must be one of"):
            fn(_finished_record(), unfinished="ignore")

    def test_healthy_record_unaffected(self):
        record = _finished_record(ideal=10.0)
        assert qos_slowdown(record) == pytest.approx(1.0)  # 20s vs 10s ideal
        assert total_slowdown(record) == pytest.approx(1.1)  # 21s from arrival

    def test_sorted_slowdowns_skip_drops_bad_records(self):
        records = [_finished_record("a"), _no_ideal_record(), _finished_record("b")]
        vals = sorted_slowdowns(records, include_waiting=True)
        assert len(vals) == 2

    def test_sorted_slowdowns_raise_surfaces_bad_records(self):
        records = [_finished_record("a"), _no_ideal_record()]
        with pytest.raises(ValueError, match="has no ideal time"):
            sorted_slowdowns(records, unfinished="raise")


class TestIdealTimeMemoKey:
    def test_comm_patterns_get_distinct_ideals(self):
        topo = power8_minsky()
        state = ClusterState(topo)
        ideals = {}
        for pattern in CommPattern:
            job = make_job(f"j-{pattern.value}", num_gpus=4, comm_pattern=pattern)
            ideals[pattern] = state.ideal_exec_time(job)
            assert ideals[pattern] == state.perf.ideal_exec_time(job)
        # the model prices the patterns differently; a memo keyed without
        # comm_pattern would return one value for all three
        assert len(set(ideals.values())) > 1

    def test_iterations_scale_one_shared_entry(self):
        topo = power8_minsky()
        state = ClusterState(topo)
        short = make_job("short", num_gpus=2, iterations=10)
        long = make_job("long", num_gpus=2, iterations=1000)
        t_short = state.ideal_exec_time(short)
        assert len(state._ideal_cache) == 1
        t_long = state.ideal_exec_time(long)
        assert len(state._ideal_cache) == 1  # same per-iteration entry
        assert t_long == pytest.approx(t_short * 100)

    def test_oversized_job_has_zero_ideal(self):
        topo = power8_minsky()  # 4 GPUs
        state = ClusterState(topo)
        assert state.ideal_exec_time(make_job("xl", num_gpus=64)) == 0.0
