"""Tests for the discrete-event simulation engine."""

import pytest

from repro.schedulers import make_scheduler
from repro.sim.engine import Simulator, run_comparison
from repro.topology.builders import cluster, power8_minsky
from repro.workload.job import Job, ModelType

from tests.conftest import make_job


def simulate(jobs, scheduler="TOPO-AWARE", topo=None):
    topo = topo or power8_minsky()
    return Simulator(topo, make_scheduler(scheduler), jobs).run()


class TestBasicRuns:
    def test_single_job_lifecycle(self):
        job = make_job("solo", num_gpus=2, iterations=100, arrival_time=5.0)
        result = simulate([job])
        (rec,) = result.records
        assert rec.placed_at == pytest.approx(5.0)
        assert rec.finished_at == pytest.approx(5.0 + rec.solo_exec_time)
        assert rec.waiting_time == pytest.approx(0.0)
        assert result.makespan == rec.finished_at

    def test_records_in_arrival_order(self):
        jobs = [
            make_job("b", num_gpus=1, arrival_time=2.0, iterations=50),
            make_job("a", num_gpus=1, arrival_time=1.0, iterations=50),
        ]
        result = simulate(jobs)
        assert [r.job.job_id for r in result.records] == ["a", "b"]

    def test_duplicate_ids_rejected(self):
        jobs = [make_job("a"), make_job("a")]
        with pytest.raises(ValueError, match="duplicate"):
            simulate(jobs)

    def test_ideal_time_uses_pack(self):
        job = make_job("j", num_gpus=2, batch_size=1, iterations=100)
        result = simulate([job])
        (rec,) = result.records
        # solo placement on an empty machine IS ideal
        assert rec.solo_exec_time == pytest.approx(rec.ideal_exec_time)


class TestQueueing:
    def test_job_waits_for_capacity(self):
        jobs = [
            make_job("first", num_gpus=4, arrival_time=0.0, iterations=100),
            make_job("second", num_gpus=4, arrival_time=1.0, iterations=100),
        ]
        result = simulate(jobs)
        first, second = result.records
        assert second.placed_at == pytest.approx(first.finished_at)
        assert second.waiting_time > 0

    def test_unplaceable_job_marked(self):
        jobs = [make_job("whale", num_gpus=16, iterations=10)]
        result = simulate(jobs)
        (rec,) = result.records
        assert rec.unplaceable and rec.finished_at is None

    def test_fcfs_blocked_queue_starves(self):
        jobs = [
            make_job("whale", num_gpus=16, arrival_time=0.0, iterations=10),
            make_job("minnow", num_gpus=1, arrival_time=1.0, iterations=10),
        ]
        result = simulate(jobs, scheduler="FCFS")
        assert result.record_of("minnow").unplaceable

    def test_topo_p_does_not_starve(self):
        jobs = [
            make_job("whale", num_gpus=16, arrival_time=0.0, iterations=10),
            make_job("minnow", num_gpus=1, arrival_time=1.0, iterations=10),
        ]
        result = simulate(jobs, scheduler="TOPO-AWARE-P")
        assert result.record_of("minnow").finished_at is not None


class TestInterferenceDynamics:
    def test_collocated_jobs_run_longer_than_solo(self):
        tiny = dict(batch_size=1, num_gpus=2, iterations=200)
        solo = simulate([make_job("a", **tiny)])
        pair = simulate(
            [
                make_job("a", **tiny),
                make_job("b", **tiny, arrival_time=0.1),
            ]
        )
        solo_exec = solo.record_of("a").exec_time
        pair_exec_a = pair.record_of("a").exec_time
        # sharing the machine cannot make it faster
        assert pair_exec_a >= solo_exec - 1e-6

    def test_interference_released_on_finish(self):
        """A job that outlives its noisy neighbour speeds back up: its
        total runtime must be less than running at the collocated rate
        for its whole life."""
        long_job = make_job("long", batch_size=1, num_gpus=2, iterations=400)
        short_job = make_job(
            "short", batch_size=1, num_gpus=2, iterations=50, arrival_time=0.0
        )
        result = simulate([long_job, short_job])
        rec = result.record_of("long")
        solo = rec.solo_exec_time
        # had the interference lasted forever, exec would be solo*factor;
        # it must end strictly below that bound
        from repro.perf.interference import pairwise_slowdown

        worst = solo * (1 + pairwise_slowdown(long_job, short_job, 1.0))
        assert solo <= rec.exec_time < worst

    def test_disjoint_machines_no_interference(self):
        topo = cluster(2)
        jobs = [
            make_job("a", batch_size=1, num_gpus=4, iterations=100),
            make_job("b", batch_size=1, num_gpus=4, iterations=100,
                     arrival_time=0.1),
        ]
        result = simulate(jobs, topo=topo)
        for rec in result.records:
            assert rec.exec_time == pytest.approx(rec.solo_exec_time)


class TestComparisonRunner:
    def test_runs_all_policies_on_fresh_state(self):
        jobs = [make_job("a", num_gpus=2, iterations=50)]
        results = run_comparison(power8_minsky, jobs)
        assert set(results) == {"BF", "FCFS", "TOPO-AWARE", "TOPO-AWARE-P"}
        for r in results.values():
            assert r.record_of("a").finished_at is not None

    def test_decision_accounting(self):
        jobs = [make_job("a", num_gpus=2, iterations=50)]
        result = simulate(jobs)
        assert result.decision_rounds >= 1
        assert result.decision_time_s >= 0.0
        assert result.mean_decision_time_s >= 0.0

    def test_decision_accounting_with_injected_clock_is_exact(self):
        # every clock() reading advances 0.5 s; the engine reads twice
        # per decision round, so each round accounts exactly 0.5 s
        ticks = iter(x * 0.5 for x in range(10_000))
        sim = Simulator(
            power8_minsky(),
            make_scheduler("TOPO-AWARE"),
            [make_job("a", num_gpus=2, iterations=50)],
            decision_clock=lambda: next(ticks),
        )
        result = sim.run()
        assert result.decision_time_s == pytest.approx(
            0.5 * result.decision_rounds
        )
        assert result.mean_decision_time_s == pytest.approx(0.5)
