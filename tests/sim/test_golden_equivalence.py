"""Golden-equivalence pin: the layered engine vs the seed monolith.

The JSON files under ``tests/sim/golden/`` were produced by the
pre-refactor (seed) engine.  The layered kernel (typed events +
ClusterState + observers) must reproduce every JobRecord field
bit-for-bit on the Table 1 prototype scenario and a seeded 100-job
Scenario-1 trace, for all four headline policies.

If an intentional behaviour change ever invalidates these files,
regenerate them with ``python tests/sim/regen_golden.py`` and explain
the change in the commit.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.scenarios import scenario1_jobs, table1_jobs
from repro.sim.runner import run_comparison
from repro.topology.builders import cluster, power8_minsky

GOLDEN_DIR = Path(__file__).parent / "golden"

RECORD_FIELDS = (
    "arrival",
    "placed_at",
    "finished_at",
    "utility",
    "p2p",
    "solo_exec_time",
    "ideal_exec_time",
    "postponements",
    "unplaceable",
    "restarts",
)


def _assert_matches_golden(results, golden_name):
    golden = json.loads((GOLDEN_DIR / golden_name).read_text())
    assert set(results) == set(golden)
    for name, res in results.items():
        pinned = golden[name]
        assert res.makespan == pinned["makespan"], name
        assert res.decision_rounds == pinned["decision_rounds"], name
        assert len(res.records) == len(pinned["records"])
        for rec, grec in zip(res.records, pinned["records"]):
            assert rec.job.job_id == grec["job_id"]
            for field in RECORD_FIELDS:
                assert getattr(rec, field) == grec[field], (
                    f"{name}/{rec.job.job_id}: {field} "
                    f"{getattr(rec, field)!r} != {grec[field]!r}"
                )
            assert list(rec.gpus) == grec["gpus"], f"{name}/{rec.job.job_id}"


def test_table1_prototype_scenario_matches_seed():
    results = run_comparison(power8_minsky, table1_jobs())
    _assert_matches_golden(results, "table1_power8.json")


def test_scenario1_trace_matches_seed():
    results = run_comparison(lambda: cluster(5), scenario1_jobs(100, seed=42))
    _assert_matches_golden(results, "scenario1_cluster5.json")


def test_golden_covers_all_four_policies():
    golden = json.loads((GOLDEN_DIR / "table1_power8.json").read_text())
    assert set(golden) == {"BF", "FCFS", "TOPO-AWARE", "TOPO-AWARE-P"}


def test_golden_traces_exercise_waiting_and_postponement():
    """The pins are only meaningful if the scenarios stress the queue."""
    golden = json.loads((GOLDEN_DIR / "scenario1_cluster5.json").read_text())
    for name, pinned in golden.items():
        waits = [
            r["placed_at"] - r["arrival"]
            for r in pinned["records"]
            if r["placed_at"] is not None
        ]
        assert any(w > 1e-9 for w in waits), f"{name} never queued a job"


@pytest.mark.parametrize("golden_name", ["table1_power8.json", "scenario1_cluster5.json"])
def test_golden_files_are_wellformed(golden_name):
    golden = json.loads((GOLDEN_DIR / golden_name).read_text())
    for pinned in golden.values():
        assert pinned["records"], "empty record list in golden file"
