"""Tests for trace persistence."""

import pytest

from repro.schedulers import make_scheduler
from repro.sim.engine import Simulator
from repro.sim.trace import load_trace, records_to_rows, save_trace
from repro.topology.builders import power8_minsky

from tests.conftest import make_job


@pytest.fixture
def finished_run():
    jobs = [
        make_job("a", num_gpus=2, iterations=50),
        make_job("b", num_gpus=1, iterations=50, arrival_time=1.0),
    ]
    sim = Simulator(power8_minsky(), make_scheduler("TOPO-AWARE"), jobs)
    return jobs, sim.run()


class TestRoundTrip:
    def test_jobs_survive(self, tmp_path, finished_run):
        jobs, result = finished_run
        path = tmp_path / "trace.json"
        save_trace(path, jobs, result.records, scheduler=result.scheduler_name)
        loaded_jobs, rows, scheduler = load_trace(path)
        assert loaded_jobs == sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
        assert scheduler == "TOPO-AWARE"
        assert len(rows) == 2

    def test_rows_carry_outcomes(self, finished_run):
        _, result = finished_run
        rows = records_to_rows(result.records)
        by_id = {r["id"]: r for r in rows}
        assert by_id["a"]["finished_at"] > by_id["a"]["placed_at"]
        assert by_id["a"]["gpus"]
        assert by_id["a"]["utility"] is not None

    def test_trace_without_records(self, tmp_path, finished_run):
        jobs, _ = finished_run
        path = tmp_path / "plain.json"
        save_trace(path, jobs)
        loaded_jobs, rows, scheduler = load_trace(path)
        assert rows is None and scheduler is None
        assert len(loaded_jobs) == 2

    def test_not_a_trace_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="not a trace"):
            load_trace(path)
