"""Fast-path equivalence: memoised engine vs memo-disabled engine.

Extends the golden-equivalence pins (which compare the current engine
against committed seed outputs) with a direct A/B proof that the
placement memo, the GPU distance matrix and the capacity pruning
change no scheduling decision: a full scenario run with the memo on
must be record-for-record identical (``==``, no tolerance) to one with
``memo_size=0``.
"""

from __future__ import annotations

import pytest

from repro.analysis.bench import RECORD_FIELDS, check_equivalence
from repro.analysis.scenarios import scenario1_jobs, scenario2_jobs, table1_jobs
from repro.schedulers import make_scheduler
from repro.sim.cluster import ClusterState
from repro.sim.engine import Simulator
from repro.topology.builders import cluster, power8_minsky


def _run(
    topo_factory,
    jobs,
    scheduler_name,
    memo_size=None,
    *,
    incremental_drb=True,
    prefilter=True,
):
    topo = topo_factory()
    state = ClusterState(
        topo, incremental_drb=incremental_drb, prefilter=prefilter
    )
    if memo_size is not None:
        state.engine.memo_size = memo_size
    sim = Simulator(topo, make_scheduler(scheduler_name), list(jobs), cluster=state)
    return sim.run()


def _assert_identical(a, b):
    assert len(a.records) == len(b.records)
    for ra, rb in zip(a.records, b.records):
        assert ra.job.job_id == rb.job.job_id
        for name in RECORD_FIELDS:
            assert getattr(ra, name) == getattr(rb, name), (
                ra.job.job_id,
                name,
            )


@pytest.mark.parametrize("scheduler_name", ["TOPO-AWARE", "TOPO-AWARE-P"])
def test_scenario1_memo_on_off_identical(scheduler_name):
    jobs = scenario1_jobs(100, seed=42)
    memo = _run(lambda: cluster(5), jobs, scheduler_name)
    cold = _run(lambda: cluster(5), jobs, scheduler_name, memo_size=0)
    _assert_identical(memo, cold)
    assert memo.makespan == cold.makespan
    assert memo.decision_rounds == cold.decision_rounds


@pytest.mark.parametrize("scheduler_name", ["FCFS", "BF", "TOPO-AWARE"])
def test_table1_memo_on_off_identical(scheduler_name):
    jobs = table1_jobs()
    memo = _run(power8_minsky, jobs, scheduler_name)
    cold = _run(power8_minsky, jobs, scheduler_name, memo_size=0)
    _assert_identical(memo, cold)


@pytest.mark.parametrize("scheduler_name", ["TOPO-AWARE", "TOPO-AWARE-P"])
@pytest.mark.parametrize(
    "incremental_drb,prefilter",
    [(True, True), (True, False), (False, True)],
)
def test_fig11_fastpath_matrix_identical(
    scheduler_name, incremental_drb, prefilter
):
    """Incremental DRB and the top-k prefilter — alone or together —
    must reproduce the both-off run record-for-record at a scale where
    both actually engage (multi-machine fleet, contended rounds)."""
    jobs = scenario2_jobs(60, 12, seed=11)
    baseline = _run(
        lambda: cluster(12),
        jobs,
        scheduler_name,
        incremental_drb=False,
        prefilter=False,
    )
    fast = _run(
        lambda: cluster(12),
        jobs,
        scheduler_name,
        incremental_drb=incremental_drb,
        prefilter=prefilter,
    )
    _assert_identical(baseline, fast)
    assert baseline.makespan == fast.makespan
    assert baseline.decision_rounds == fast.decision_rounds
    # and the fast paths actually did something when enabled
    if incremental_drb:
        stats = fast.drb_stats
        assert stats["splits_reused"] + stats["splits_computed"] > 0
    if prefilter:
        assert fast.prefilter_stats["calls"] > 0


@pytest.mark.parametrize("scheduler_name", ["TOPO-AWARE", "TOPO-AWARE-P"])
def test_fully_instrumented_run_identical_to_bare(scheduler_name):
    """The whole observability stack is a tap: running with the
    introspection server live (SSE stream included), span recording
    on, telemetry + watchdog (windowed rules included) + snapshot +
    time-series sampler + decision-provenance observers attached, and
    a dashboard client polling ``/timeseries``/``/cluster``/``/state``
    over HTTP for the whole run, must reproduce the bare run's records
    bit-for-bit."""
    import json
    import tempfile
    import threading
    import urllib.request
    from pathlib import Path

    from repro.analysis.top import render_dashboard
    from repro.obs import EventLog, MetricsRegistry
    from repro.obs.alerts import DEFAULT_RULES, Rule, Watchdog
    from repro.obs.provenance import DecisionRecorder, read_decisions
    from repro.obs.server import IntrospectionServer
    from repro.obs.state import SnapshotObserver, SnapshotPublisher
    from repro.obs.telemetry import TelemetryObserver
    from repro.obs.timeseries import TimeSeriesSampler, TimeSeriesStore
    from repro.obs.trace import recording
    from repro.sim.runner import run_with_observers

    jobs = scenario1_jobs(60, seed=42)
    bare = run_with_observers(
        cluster(3), make_scheduler(scheduler_name), jobs
    )

    registry = MetricsRegistry()
    log = EventLog()
    publisher = SnapshotPublisher()
    rules = DEFAULT_RULES + (
        Rule("qd-mean", "queue_depth", ">", 1e9, window=8, agg="mean"),
        Rule("qd-rate", "queue_depth", ">", 1e9, window=8, agg="rate"),
        Rule("hits", "cache_hit_rate", "<", -1.0, window=4, agg="min",
             nan="violate", for_rounds=10_000),
    )
    watchdog = Watchdog(registry, log, rules, scheduler=scheduler_name)
    recorder = DecisionRecorder(
        journal=True, registry=registry, scheduler=scheduler_name
    )
    store = TimeSeriesStore()
    sampler = TimeSeriesSampler(store, min_interval_s=0.0)
    observers = (
        TelemetryObserver(registry, log, scheduler=scheduler_name),
        watchdog,
        SnapshotObserver(publisher),
        sampler,
        recorder,
    )
    with IntrospectionServer(
        publisher, registry, watchdog, recorder=recorder, timeseries=store
    ) as server:
        stop_polling = threading.Event()
        frames = []

        def poll_dashboard():
            while not stop_polling.is_set():
                docs = {}
                for name in ("state", "cluster", "timeseries", "alerts"):
                    with urllib.request.urlopen(
                        f"{server.url}/{name}", timeout=5
                    ) as resp:
                        docs[name] = json.load(resp)
                frames.append(render_dashboard(docs, url=server.url))

        poller = threading.Thread(target=poll_dashboard, daemon=True)
        poller.start()
        try:
            with recording():
                instrumented = run_with_observers(
                    cluster(3),
                    make_scheduler(scheduler_name),
                    jobs,
                    observers=observers,
                )
        finally:
            stop_polling.set()
            poller.join(10.0)

    _assert_identical(bare, instrumented)
    assert bare.makespan == instrumented.makespan
    assert bare.decision_rounds == instrumented.decision_rounds
    # and the instrumentation actually ran: snapshots were published
    # and the registry saw the whole job stream
    assert publisher.snapshot.finished
    assert registry.get("repro_jobs_finished_total").value(
        scheduler=scheduler_name
    ) == len(jobs)
    # the sampler filled per-machine history and the dashboard client
    # rendered live frames from the wire documents
    assert store.samples_taken > 0
    assert store.machines() and len(store.machines()) == 3
    assert store.get("occupancy", store.machines()[0]) is not None
    assert frames and any("repro top" in frame for frame in frames)
    # the quiet windowed rules never fired (absurd thresholds), and the
    # nan="violate" rule never matured (absurd for_rounds)
    assert instrumented.alerts == []
    # the recorder captured every placement and its journal round-trips
    assert recorder.counts()["recorded"] > 0
    assert registry.get("repro_decisions_recorded_total").value(
        scheduler=scheduler_name
    ) == recorder.counts()["recorded"]
    with tempfile.TemporaryDirectory() as tmp:
        journal_path = recorder.write_journal(Path(tmp) / "d.jsonl")
        assert len(read_decisions(journal_path)) == len(recorder.journal)


def test_check_equivalence_reports_identical():
    jobs = scenario1_jobs(30, seed=42)
    verdict = check_equivalence(jobs, 5)
    assert verdict["identical"] is True
    assert verdict["fastpath_off_identical"] is True
    assert verdict["drb_only_identical"] is True
    assert verdict["prefilter_only_identical"] is True
    assert verdict["recorder_identical"] is True
    assert verdict["scheduler"] == "TOPO-AWARE"
    assert set(verdict["memo_stats"]) == {
        "hits",
        "misses",
        "invalidations",
        "hit_rate",
    }
    assert verdict["decision_stats"]["recorded"] > 0
    assert verdict["decision_stats"]["dropped"] == 0
