"""End-to-end tests for multi-node (spanning) jobs in the simulator.

The paper's future work -- "transparently scale learning applications
to multiple disaggregated GPUs across the cluster" -- is supported via
``single_node=False``: when no single machine fits, the placement
engine maps the job over a network-spanning pool.
"""

import pytest

from repro.schedulers import make_scheduler
from repro.sim.engine import Simulator
from repro.sim.metrics import qos_slowdown
from repro.topology.builders import cluster

from tests.conftest import make_job


def spanning_scenario(spanner_batch: int = 128):
    """Leave one free GPU per machine, then submit a 2-GPU spanner.

    Two 3-GPU fillers consolidate one per machine, so the only way to
    get 2 GPUs is across the network.
    """
    return [
        make_job("fill-a", num_gpus=3, arrival_time=0.0, iterations=4000),
        make_job("fill-b", num_gpus=3, arrival_time=0.1, iterations=4000),
        make_job(
            "spanner",
            num_gpus=2,
            arrival_time=1.0,
            iterations=200,
            single_node=False,
            batch_size=spanner_batch,
            min_utility=0.0,
        ),
    ]


class TestSpanningJobs:
    def test_spanner_crosses_machines_when_needed(self):
        result = Simulator(
            cluster(2), make_scheduler("TOPO-AWARE-P"), spanning_scenario()
        ).run()
        rec = result.record_of("spanner")
        assert rec.finished_at is not None
        machines = {g.split("/")[0] for g in rec.gpus}
        assert machines == {"m0", "m1"}

    def test_spanner_prefers_one_machine_when_possible(self):
        jobs = [
            make_job("spanner", num_gpus=4, single_node=False, batch_size=128)
        ]
        result = Simulator(cluster(2), make_scheduler("TOPO-AWARE-P"), jobs).run()
        rec = result.record_of("spanner")
        machines = {g.split("/")[0] for g in rec.gpus}
        assert len(machines) == 1

    def test_single_node_twin_waits_instead(self):
        pinned = [
            j if j.job_id != "spanner" else make_job(
                "spanner", num_gpus=2, arrival_time=1.0, iterations=200,
                single_node=True, batch_size=128, min_utility=0.0,
            )
            for j in spanning_scenario()
        ]
        result = Simulator(cluster(2), make_scheduler("TOPO-AWARE-P"), pinned).run()
        rec = result.record_of("spanner")
        # must wait for a filler to release same-machine GPUs
        assert rec.waiting_time > 1.0
        machines = {g.split("/")[0] for g in rec.gpus}
        assert len(machines) == 1

    def test_spanning_costs_show_in_execution_time(self):
        """Crossing the network is slower than a machine-local run."""
        spanning = Simulator(
            cluster(2), make_scheduler("TOPO-AWARE-P"), spanning_scenario()
        ).run()
        rec = spanning.record_of("spanner")
        assert qos_slowdown(rec) > 0.0  # network hop vs ideal pack

    def test_communication_heavy_spanner_suffers_more(self):
        def run(batch):
            result = Simulator(
                cluster(2),
                make_scheduler("TOPO-AWARE"),
                spanning_scenario(spanner_batch=batch),
            ).run()
            return qos_slowdown(result.record_of("spanner"))

        assert run(1) > run(128)
