"""Regenerate the golden-equivalence JSON files.

Run from the repo root after an *intentional* engine behaviour change:

    PYTHONPATH=src python tests/sim/regen_golden.py
"""

import json
from pathlib import Path

from repro.analysis.scenarios import scenario1_jobs, table1_jobs
from repro.sim.runner import run_comparison
from repro.topology.builders import cluster, power8_minsky

GOLDEN_DIR = Path(__file__).parent / "golden"


def dump(results, path: Path) -> None:
    out = {}
    for name, res in results.items():
        out[name] = {
            "makespan": res.makespan,
            "decision_rounds": res.decision_rounds,
            "records": [
                {
                    "job_id": r.job.job_id,
                    "arrival": r.arrival,
                    "placed_at": r.placed_at,
                    "finished_at": r.finished_at,
                    "gpus": list(r.gpus),
                    "utility": r.utility,
                    "p2p": r.p2p,
                    "solo_exec_time": r.solo_exec_time,
                    "ideal_exec_time": r.ideal_exec_time,
                    "postponements": r.postponements,
                    "unplaceable": r.unplaceable,
                    "restarts": r.restarts,
                }
                for r in res.records
            ],
        }
    path.write_text(json.dumps(out, indent=1, sort_keys=True))
    print(f"wrote {path}")


def main() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    dump(
        run_comparison(power8_minsky, table1_jobs()),
        GOLDEN_DIR / "table1_power8.json",
    )
    dump(
        run_comparison(lambda: cluster(5), scenario1_jobs(100, seed=42)),
        GOLDEN_DIR / "scenario1_cluster5.json",
    )


if __name__ == "__main__":
    main()
