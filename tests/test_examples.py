"""Smoke tests: every shipped example must run and tell its story."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Placement: ('m0/gpu0', 'm0/gpu1')" in out
        assert "CUDA_VISIBLE_DEVICES=0,1" in out
        assert "speedup" in out.lower()

    def test_cloud_scheduling_sim(self):
        out = run_example("cloud_scheduling_sim.py")
        assert "TOPO-AWARE-P" in out
        assert "Best policy by makespan" in out

    def test_prototype_from_configs(self):
        out = run_example("prototype_from_configs.py")
        assert "speedup over" in out
        assert "caffe train" in out
        # the headline factor is printed with the paper reference
        assert "paper: ~1.30x" in out

    def test_custom_topology(self):
        out = run_example("custom_topology.py")
        assert "round-trips: True" in out
        assert "mp-pipeline" in out

    def test_model_parallel_pipeline(self):
        out = run_example("model_parallel_pipeline.py")
        assert "model-parallel-chain" in out
        assert "p2p=True" in out

    def test_production_features(self):
        out = run_example("production_features.py")
        assert "restarted" in out
        assert "Pod spec" in out
        assert "AlexNet batch 12" in out

    def test_telemetry_tour(self):
        out = run_example("telemetry_tour.py")
        assert "repro_jobs_finished_total" in out
        assert "Event log" in out and "arrival" in out and "finish" in out
        assert "=== job0" in out and "sched.propose" in out
        assert "final_outcome=placed" in out

    def test_paper_figures(self):
        out = run_example("paper_figures.py")
        for marker in (
            "Figure 3",
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "Figure 8",
            "Figure 10",
            "Figure 11",
            "scheduler decision overhead",
        ):
            assert marker in out
