"""Tests for the nvidia-smi / numactl discovery interchange formats."""

import pytest

from repro.topology.builders import dgx1, power8_minsky, power8_pcie_k80
from repro.topology.discovery import (
    parse_numactl_hardware,
    parse_topo_matrix,
    render_numactl_hardware,
    render_topo_matrix,
    topology_from_matrix,
)
from repro.topology.graph import TopologyError
from repro.topology.links import LinkSpec


class TestRenderMatrix:
    def test_minsky_codes(self, minsky):
        text = render_topo_matrix(minsky)
        rows = {ln.split("\t")[0]: ln.split("\t") for ln in text.splitlines()[1:]}
        assert rows["GPU0"][2] == "NV2"  # gpu0-gpu1 dual NVLink
        assert rows["GPU0"][3] == "SYS"  # cross socket
        assert rows["GPU0"][1] == "X"

    def test_pcie_machine_codes(self, pcie_machine):
        text = render_topo_matrix(pcie_machine)
        rows = {ln.split("\t")[0]: ln.split("\t") for ln in text.splitlines()[1:]}
        assert rows["GPU0"][2] == "PIX"  # same switch
        assert rows["GPU0"][3] == "SYS"

    def test_affinity_column_tracks_socket(self, minsky):
        text = render_topo_matrix(minsky)
        rows = [ln.split("\t") for ln in text.splitlines()[1:]]
        assert rows[0][-1] == rows[1][-1]
        assert rows[0][-1] != rows[2][-1]

    def test_multi_machine_requires_explicit_machine(self, small_cluster):
        with pytest.raises(TopologyError, match="explicit"):
            render_topo_matrix(small_cluster)
        text = render_topo_matrix(small_cluster, machine="m1")
        assert "GPU0" in text


class TestParseMatrix:
    def test_parse_returns_codes(self, minsky):
        parsed = parse_topo_matrix(render_topo_matrix(minsky))
        assert parsed[(0, 1)] == "NV2"
        assert parsed[(0, 2)] == "SYS"

    def test_empty_rejected(self):
        with pytest.raises(TopologyError, match="empty"):
            parse_topo_matrix("")

    def test_bad_diagonal_rejected(self):
        text = "\tGPU0\tGPU1\nGPU0\tNV1\tNV1\nGPU1\tNV1\tX\n"
        with pytest.raises(TopologyError, match="diagonal"):
            parse_topo_matrix(text)

    def test_short_row_rejected(self):
        text = "\tGPU0\tGPU1\nGPU0\tX\nGPU1\tNV1\tX\n"
        with pytest.raises(TopologyError, match="cells"):
            parse_topo_matrix(text)


class TestRoundTrip:
    @pytest.mark.parametrize("builder", [power8_minsky, dgx1, power8_pcie_k80])
    def test_matrix_fixed_point(self, builder):
        """render(parse(render(t))) must equal render(t): the GPU-to-GPU
        relation survives reconstruction for every paper machine."""
        original = render_topo_matrix(builder())
        rebuilt = topology_from_matrix(original, "m0")
        assert render_topo_matrix(rebuilt) == original

    def test_rebuilt_minsky_has_socket_structure(self, minsky):
        rebuilt = topology_from_matrix(
            render_topo_matrix(minsky), "m0", cpu_link=LinkSpec.nvlink(2)
        )
        assert len(rebuilt.sockets()) == 2
        assert rebuilt.socket_of("m0/gpu0") == rebuilt.socket_of("m0/gpu1")
        assert rebuilt.socket_of("m0/gpu0") != rebuilt.socket_of("m0/gpu2")

    def test_rebuild_without_affinity_column_uses_sys_clustering(self):
        text = (
            "\tGPU0\tGPU1\tGPU2\tGPU3\n"
            "GPU0\tX\tNV2\tSYS\tSYS\n"
            "GPU1\tNV2\tX\tSYS\tSYS\n"
            "GPU2\tSYS\tSYS\tX\tNV2\n"
            "GPU3\tSYS\tSYS\tNV2\tX\n"
        )
        rebuilt = topology_from_matrix(text)
        assert len(rebuilt.sockets()) == 2
        assert len(rebuilt.nvlink_pairs()) == 2


class TestNumactl:
    def test_render_contains_distances(self, minsky):
        text = render_numactl_hardware(minsky)
        assert "available: 2 nodes (0-1)" in text
        assert "node distances:" in text

    def test_roundtrip(self, minsky):
        parsed = parse_numactl_hardware(render_numactl_hardware(minsky))
        assert parsed["nodes"] == 2
        assert len(parsed["cpus"][0]) == 8
        mat = parsed["distances"]
        assert mat[0][0] == 10 and mat[0][1] == mat[1][0] > 10

    def test_garbage_rejected(self):
        with pytest.raises(TopologyError):
            parse_numactl_hardware("nothing useful")

    def test_shape_mismatch_rejected(self):
        text = (
            "available: 2 nodes (0-1)\n"
            "node distances:\n"
            "node   0   1\n"
            "  0:  10\n"
            "  1:  40  10\n"
        )
        with pytest.raises(TopologyError, match="shape"):
            parse_numactl_hardware(text)
