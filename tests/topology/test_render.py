"""Tests for the ASCII topology renderer."""

import pytest

from repro.topology.builders import cluster, dgx1, dgx2, power8_minsky
from repro.topology.render import render_gpu_distances, render_tree


class TestRenderTree:
    def test_minsky_structure(self, minsky):
        text = render_tree(minsky)
        assert text.splitlines()[0] == "power8-minsky[m0]"
        assert "m0/s0" in text and "m0/s1" in text
        assert "NVLink x2 (40 GB/s)" in text
        assert "xbus (38.4 GB/s)" in text
        assert "peer links:" in text
        assert "m0/gpu0 <-> m0/gpu1" in text

    def test_every_gpu_appears(self, dgx):
        text = render_tree(dgx)
        for g in dgx.gpus():
            assert g in text

    def test_cluster_has_network_root(self, small_cluster):
        text = render_tree(small_cluster)
        lines = text.splitlines()
        assert lines[1].endswith("net")
        assert "network (12.5 GB/s)" in text

    def test_switches_rendered(self, dgx):
        text = render_tree(dgx)
        assert "m0/s0/sw0" in text and "pcie (16.0 GB/s)" in text

    def test_dgx2_fabric_listed(self):
        text = render_tree(dgx2())
        assert "m0/nvswitch" in text


class TestRenderDistances:
    def test_matrix_shape_and_values(self, minsky):
        text = render_gpu_distances(minsky)
        lines = text.splitlines()
        assert len(lines) == 5  # header + 4 GPUs
        assert "42" in text and " 1" in text

    def test_per_machine_filter(self, small_cluster):
        text = render_gpu_distances(small_cluster, machine="m1")
        assert len(text.splitlines()) == 5

    def test_no_gpus(self):
        from repro.topology.graph import NodeKind, TopologyGraph

        topo = TopologyGraph()
        topo.add_node("m", NodeKind.MACHINE)
        assert render_gpu_distances(topo) == "(no GPUs)"
