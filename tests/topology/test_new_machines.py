"""Structural tests for the next-generation machine models."""

import pytest

from repro.core.placement import PlacementEngine
from repro.perf.model import PerformanceModel, Placement
from repro.topology.allocation import AllocationState
from repro.topology.builders import dgx2, power9_ac922
from repro.topology.graph import NodeKind

from tests.conftest import make_job


class TestPower9AC922:
    @pytest.fixture(scope="class")
    def topo(self):
        return power9_ac922()

    def test_counts(self, topo):
        assert len(topo.gpus()) == 6
        assert len(topo.sockets()) == 2
        assert all(len(topo.gpus(socket=s)) == 3 for s in topo.sockets())

    def test_socket_triangles_are_nvlink(self, topo):
        assert len(topo.nvlink_pairs()) == 6  # two triangles

    def test_nvlink2_bandwidth(self, topo):
        assert topo.bottleneck_bandwidth("m0/gpu0", "m0/gpu1") == pytest.approx(75.0)

    def test_p2p_islands_are_triples(self, topo):
        assert topo.p2p_island_sizes() == [3, 3]

    def test_three_gpu_job_packs_on_one_socket(self, topo):
        engine = PlacementEngine(topo, AllocationState(topo))
        sol = engine.propose(make_job(num_gpus=3, batch_size=1))
        assert len({topo.socket_of(g) for g in sol.gpus}) == 1
        assert sol.p2p

    def test_faster_links_cut_absolute_comm_time(self, topo):
        """NVLink 2.0 shrinks absolute communication time vs the Minsky,
        yet the pack-vs-spread gap persists (the socket bus did not
        speed up proportionally) -- placement still matters."""
        from repro.topology.builders import power8_minsky

        job = make_job(batch_size=1)
        p9 = PerformanceModel(topo)
        p8 = PerformanceModel(power8_minsky())
        comm9 = p9.iteration_breakdown(
            job, p9.placement_gpus(job, Placement.PACK)
        ).comm_s
        comm8 = p8.iteration_breakdown(
            job, p8.placement_gpus(job, Placement.PACK)
        ).comm_s
        assert comm9 < comm8
        pack = p9.iteration_time(job, p9.placement_gpus(job, Placement.PACK))
        spread = p9.iteration_time(job, p9.placement_gpus(job, Placement.SPREAD))
        assert spread / pack > 1.2


class TestDGX2:
    @pytest.fixture(scope="class")
    def topo(self):
        return dgx2()

    def test_counts(self, topo):
        assert len(topo.gpus()) == 16
        assert len(topo.nodes(NodeKind.SWITCH)) == 1

    def test_whole_machine_is_one_p2p_island(self, topo):
        assert topo.p2p_island_sizes() == [8, 8] or max(topo.p2p_island_sizes()) >= 8
        # cross-socket pairs still reach each other P2P via the fabric
        assert topo.p2p_connected("m0/gpu0", "m0/gpu15")

    def test_uniform_gpu_distance_via_fabric(self, topo):
        d_intra = topo.distance("m0/gpu0", "m0/gpu1")
        d_cross = topo.distance("m0/gpu0", "m0/gpu8")
        assert d_intra == d_cross == 2.0

    def test_full_fabric_bandwidth(self, topo):
        assert topo.bottleneck_bandwidth("m0/gpu0", "m0/gpu9") == pytest.approx(150.0)

    def test_pack_vs_spread_vanishes(self, topo):
        perf = PerformanceModel(topo)
        job = make_job(batch_size=1)
        pack = perf.iteration_time(job, perf.placement_gpus(job, Placement.PACK))
        spread = perf.iteration_time(job, perf.placement_gpus(job, Placement.SPREAD))
        assert spread / pack == pytest.approx(1.0, abs=1e-6)

    def test_eight_gpu_job_placeable_with_p2p(self, topo):
        engine = PlacementEngine(topo, AllocationState(topo))
        sol = engine.propose(make_job(num_gpus=8, batch_size=1, min_utility=0.5))
        assert sol is not None and sol.p2p
