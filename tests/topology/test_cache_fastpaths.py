"""Cache fast paths must be invisible: warm and cold graphs agree.

Covers the all-pairs GPU distance matrix (and its fallback sentinel),
the tuple-keyed widest-path cache, validate-before-cache lookups, and
the AllocationState epoch counter / pool signature / bounded links
cache that drive placement-memo invalidation.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

import repro.topology.allocation as allocation_mod
import repro.topology.graph as graph_mod
from repro.topology.allocation import AllocationState
from repro.topology.builders import cluster, power8_minsky
from repro.topology.graph import TopologyError


@st.composite
def cluster_shapes(draw):
    n_machines = draw(st.integers(min_value=1, max_value=4))
    return n_machines


# ----------------------------------------------------------------------
# GPU distance matrix
# ----------------------------------------------------------------------
class TestDistanceMatrix:
    @settings(max_examples=15, deadline=None)
    @given(cluster_shapes())
    def test_matrix_agrees_with_cold_dijkstra(self, n_machines):
        warm = cluster(n_machines)
        cold = cluster(n_machines)
        cold._caches.gpu_index = {}  # force the pre-matrix path
        gpus = warm.gpus()
        # prime the matrix via one cross-pair query
        warm.distance(gpus[0], gpus[-1])
        for a, b in itertools.combinations(gpus, 2):
            assert warm.distance(a, b) == cold.distance(a, b)

    @settings(max_examples=15, deadline=None)
    @given(cluster_shapes(), st.randoms(use_true_random=False))
    def test_pairwise_sum_agrees_with_cold(self, n_machines, rng):
        warm = cluster(n_machines)
        cold = cluster(n_machines)
        cold._caches.gpu_index = {}
        gpus = warm.gpus()
        names = rng.sample(gpus, k=min(len(gpus), 5))
        assert warm.pairwise_distance_sum(names) == cold.pairwise_distance_sum(
            names
        )

    def test_matrix_survives_distance_matrix_query(self):
        warm = cluster(2)
        cold = cluster(2)
        cold._caches.gpu_index = {}
        w_names, w_mat = warm.distance_matrix()
        c_names, c_mat = cold.distance_matrix()
        assert w_names == c_names
        assert (w_mat == c_mat).all()

    def test_oversized_graph_falls_back(self, monkeypatch):
        monkeypatch.setattr(graph_mod, "MATRIX_MAX_GPUS", 3)
        capped = cluster(2)  # 8 GPUs > 3: matrix must disable itself
        reference = cluster(2)
        reference._caches.gpu_index = {}
        gpus = capped.gpus()
        for a, b in itertools.combinations(gpus, 2):
            assert capped.distance(a, b) == reference.distance(a, b)
        assert capped._caches.gpu_index == {}  # fallback sentinel

    def test_above_cap_fleet_matches_matrix_path(self, monkeypatch):
        """Fig. 11-scale audit: a fleet past ``MATRIX_MAX_GPUS`` must
        serve ``distance``, ``pairwise_distance_sum`` and
        ``machine_distance`` from the per-source Dijkstra fallback with
        exactly the values the dense matrix stores below the cap."""
        matrix = cluster(4)  # 16 GPUs, comfortably under the real cap
        gpus = matrix.gpus()
        matrix.distance(gpus[0], gpus[-1])  # prime the matrix
        assert matrix._caches.gpu_index  # it actually built

        monkeypatch.setattr(graph_mod, "MATRIX_MAX_GPUS", 8)
        capped = cluster(4)  # same fleet, now above the cap
        for a, b in itertools.combinations(gpus, 2):
            assert capped.distance(a, b) == matrix.distance(a, b)
        assert capped._caches.gpu_index == {}  # stayed on the fallback

        # machine-spanning Eq. 3 sums and machine ranking distances
        spanning = [gpus[0], gpus[5], gpus[10], gpus[15]]
        assert capped.pairwise_distance_sum(
            spanning
        ) == matrix.pairwise_distance_sum(spanning)
        for ma, mb in itertools.combinations(matrix.machines(), 2):
            assert capped.machine_distance(ma, mb) == matrix.machine_distance(
                ma, mb
            )

    def test_same_machine_pairs_stay_on_scoped_path(self, minsky):
        # the matrix stores unscoped values only; same-machine queries
        # must keep using the machine-scoped Dijkstra
        gpus = minsky.gpus()
        cold = power8_minsky()
        cold._caches.gpu_index = {}
        for a, b in itertools.combinations(gpus, 2):
            assert minsky.distance(a, b) == cold.distance(a, b)


# ----------------------------------------------------------------------
# widest-path and shortest-path caches
# ----------------------------------------------------------------------
class TestPathCaches:
    def test_widest_cache_keys_are_scope_tuples(self):
        topo = cluster(2)
        gpus0 = topo.gpus(machine=topo.machines()[0])
        gpus1 = topo.gpus(machine=topo.machines()[1])
        # same source, one same-machine query (machine scope) and one
        # cross-machine query (unscoped): distinct cache entries, no
        # string-concatenation collision
        same = topo.bottleneck_bandwidth(gpus0[0], gpus0[1])
        cross = topo.bottleneck_bandwidth(gpus0[0], gpus1[0])
        assert same > 0 and cross > 0
        keys = set(topo._caches.widest)
        assert all(isinstance(k, tuple) and len(k) == 2 for k in keys)
        assert (gpus0[0], topo.machines()[0]) in keys
        assert (gpus0[0], None) in keys
        # cached answers replay identically
        assert topo.bottleneck_bandwidth(gpus0[0], gpus0[1]) == same
        assert topo.bottleneck_bandwidth(gpus0[0], gpus1[0]) == cross

    def test_bottleneck_unknown_node_raises_even_after_warm(self, minsky):
        gpus = minsky.gpus()
        minsky.bottleneck_bandwidth(gpus[0], gpus[1])
        with pytest.raises(TopologyError):
            minsky.bottleneck_bandwidth(gpus[0], "nope")
        with pytest.raises(TopologyError):
            minsky.bottleneck_bandwidth("nope", gpus[0])

    def test_shortest_path_validates_before_cache(self, minsky):
        gpus = minsky.gpus()
        path = minsky.shortest_path(gpus[0], gpus[1])
        assert path[0] == gpus[0] and path[-1] == gpus[1]
        # a warm (u, v) cache entry must not mask unknown-node errors
        with pytest.raises(TopologyError):
            minsky.shortest_path(gpus[0], "ghost")
        with pytest.raises(TopologyError):
            minsky.shortest_path("ghost", gpus[1])
        assert minsky.shortest_path(gpus[0], gpus[1]) == path


# ----------------------------------------------------------------------
# AllocationState epochs, signature, bounded links cache
# ----------------------------------------------------------------------
class TestAllocationEpochs:
    def test_every_mutator_bumps_version(self):
        topo = cluster(2)
        alloc = AllocationState(topo)
        v0 = alloc.version
        alloc.allocate("j", topo.gpus()[:2])
        assert alloc.version == v0 + 1
        alloc.release("j")
        assert alloc.version == v0 + 2
        down = topo.machines()[0]
        alloc.set_machine_down(down)
        assert alloc.version == v0 + 3
        alloc.set_machine_up(down)
        assert alloc.version == v0 + 4

    def test_health_heartbeats_do_not_bump_version(self):
        # a daemon re-asserting machine health must not rotate the
        # epoch: the effective pool is unchanged, caches stay warm
        topo = cluster(2)
        alloc = AllocationState(topo)
        up = topo.machines()[0]
        v0 = alloc.version
        alloc.set_machine_up(up)  # already up
        assert alloc.version == v0
        alloc.set_machine_down(up)
        v1 = alloc.version
        assert v1 == v0 + 1
        assert alloc.set_machine_down(up) == []  # already down
        assert alloc.version == v1
        alloc.set_machine_up(up)
        assert alloc.version == v1 + 1

    def test_pool_key_pins_identity_and_health(self):
        topo = cluster(2)
        alloc = AllocationState(topo)
        key0 = alloc.free_pool_key()
        assert alloc.free_pool_key() is key0  # cached per version
        held = topo.gpus()[:1]
        alloc.allocate("j", held)
        key1 = alloc.free_pool_key()
        assert key1 != key0
        assert held[0] not in key1[0]
        alloc.release("j")
        # identical pool again: key compares equal across epochs
        assert alloc.free_pool_key() == key0
        down = topo.machines()[1]
        alloc.set_machine_down(down)
        assert down in alloc.free_pool_key()[1]

    def test_reads_do_not_bump_version(self):
        topo = cluster(2)
        alloc = AllocationState(topo)
        v0 = alloc.version
        alloc.free_gpus()
        alloc.max_free_count()
        alloc.total_free_count()
        alloc.free_pool_signature()
        alloc.links_used(topo.gpus()[:2])
        assert alloc.version == v0

    def test_signature_tracks_pool_and_health(self):
        topo = cluster(2)
        m0, m1 = topo.machines()
        alloc = AllocationState(topo)
        sig0 = alloc.free_pool_signature()
        assert alloc.free_pool_signature() is sig0  # cached per version
        alloc.allocate("j", topo.gpus(machine=m0)[:2])
        sig1 = alloc.free_pool_signature()
        assert sig1 != sig0
        counts = dict(sig1[0])
        assert counts[m0] == 2 and counts[m1] == 4
        alloc.set_machine_down(m1)
        sig2 = alloc.free_pool_signature()
        assert m1 in sig2[1]
        assert alloc.total_free_count() == 2  # down machine excluded

    def test_links_cache_is_bounded(self, monkeypatch):
        monkeypatch.setattr(allocation_mod, "LINKS_CACHE_MAX", 4)
        topo = cluster(2)
        alloc = AllocationState(topo)
        gpus = topo.gpus()
        for i in range(len(gpus)):
            for j in range(i + 1, len(gpus)):
                alloc.links_used([gpus[i], gpus[j]])
        assert len(alloc._links_cache) <= 4
        # evicted entries recompute to the same answer
        expected = AllocationState(topo).links_used(gpus[:2])
        assert alloc.links_used(gpus[:2]) == expected
