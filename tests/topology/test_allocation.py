"""Tests for allocation bookkeeping, fragmentation and link sharing."""

import pytest

from repro.topology.allocation import AllocationError, AllocationState
from repro.topology.builders import cluster, power8_minsky


class TestAllocateRelease:
    def test_basic_cycle(self, alloc):
        alloc.allocate("j1", ["m0/gpu0", "m0/gpu1"])
        assert alloc.gpus_of("j1") == {"m0/gpu0", "m0/gpu1"}
        assert alloc.owner_of("m0/gpu0") == "j1"
        assert not alloc.is_free("m0/gpu0")
        released = alloc.release("j1")
        assert released == {"m0/gpu0", "m0/gpu1"}
        assert alloc.is_free("m0/gpu0")

    def test_double_allocation_rejected(self, alloc):
        alloc.allocate("j1", ["m0/gpu0"])
        with pytest.raises(AllocationError, match="already held"):
            alloc.allocate("j2", ["m0/gpu0"])

    def test_job_cannot_allocate_twice(self, alloc):
        alloc.allocate("j1", ["m0/gpu0"])
        with pytest.raises(AllocationError, match="already has"):
            alloc.allocate("j1", ["m0/gpu1"])

    def test_empty_allocation_rejected(self, alloc):
        with pytest.raises(AllocationError, match="empty"):
            alloc.allocate("j1", [])

    def test_non_gpu_rejected(self, alloc):
        with pytest.raises(AllocationError, match="not a GPU"):
            alloc.allocate("j1", ["m0/s0"])

    def test_release_unknown_rejected(self, alloc):
        with pytest.raises(AllocationError, match="no allocation"):
            alloc.release("ghost")

    def test_failed_allocation_leaves_state_clean(self, alloc):
        alloc.allocate("j1", ["m0/gpu0"])
        with pytest.raises(AllocationError):
            alloc.allocate("j2", ["m0/gpu1", "m0/gpu0"])
        # j2 must not hold gpu1 after the failure
        assert alloc.is_free("m0/gpu1")


class TestCounts:
    def test_free_count_tracks_mutations(self, alloc):
        assert alloc.free_count("m0") == 4
        alloc.allocate("j1", ["m0/gpu0", "m0/gpu2"])
        assert alloc.free_count("m0") == 2
        alloc.release("j1")
        assert alloc.free_count("m0") == 4

    def test_free_count_matches_free_gpus(self, alloc):
        alloc.allocate("j1", ["m0/gpu1"])
        assert alloc.free_count("m0") == len(alloc.free_gpus(machine="m0")) == 3

    def test_max_free_count(self):
        topo = cluster(2)
        state = AllocationState(topo)
        state.allocate("j", topo.gpus(machine="m0"))
        assert state.max_free_count() == 4

    def test_utilization(self, alloc):
        assert alloc.utilization() == 0.0
        alloc.allocate("j1", ["m0/gpu0"])
        assert alloc.utilization() == 0.25

    def test_jobs_on_machine(self, alloc):
        alloc.allocate("j1", ["m0/gpu0"])
        assert alloc.jobs_on_machine("m0") == {"j1"}
        alloc.release("j1")
        assert alloc.jobs_on_machine("m0") == frozenset()


class TestFragmentation:
    def test_empty_machine_fully_free(self, alloc):
        assert alloc.fragmentation() == 1.0

    def test_socket_free_fraction(self, alloc):
        alloc.allocate("j1", ["m0/gpu0"])
        assert alloc.socket_free_fraction("m0/s0") == 0.5
        assert alloc.socket_free_fraction("m0/s1") == 1.0
        assert alloc.fragmentation() == 0.75


class TestLinksAndSharing:
    def test_links_include_dram_domain(self, alloc):
        links = alloc.links_used(["m0/gpu0"])
        assert ("dram", "m0/s0") in links

    def test_packed_pair_links_stay_local(self, alloc):
        links = alloc.links_used(["m0/gpu0", "m0/gpu1"])
        assert not any("m0/s1" in str(k) for k in links)

    def test_spread_pair_crosses_xbus(self, alloc):
        links = alloc.links_used(["m0/gpu0", "m0/gpu2"])
        assert ("m0", "m0/s0") in links and ("m0", "m0/s1") in links

    def test_sharing_zero_for_disjoint_sockets(self, alloc):
        a = ["m0/gpu0", "m0/gpu1"]
        b = ["m0/gpu2", "m0/gpu3"]
        assert alloc.link_sharing_factor(a, b) == 0.0

    def test_sharing_positive_same_socket(self, alloc):
        assert alloc.link_sharing_factor(["m0/gpu0"], ["m0/gpu1"]) > 0.0

    def test_sharing_high_for_interleaved(self, alloc):
        a = ["m0/gpu0", "m0/gpu2"]
        b = ["m0/gpu1", "m0/gpu3"]
        assert alloc.link_sharing_factor(a, b) >= 0.5

    def test_sharing_zero_across_machines(self):
        topo = cluster(2)
        state = AllocationState(topo)
        assert state.link_sharing_factor(["m0/gpu0"], ["m1/gpu0"]) == 0.0

    def test_co_located_jobs(self):
        topo = cluster(2)
        state = AllocationState(topo)
        state.allocate("a", ["m0/gpu0"])
        state.allocate("b", ["m1/gpu0"])
        assert state.co_located_jobs(["m0/gpu1"]) == ["a"]


class TestLinkUtilization:
    def test_demands_charged_to_footprint(self, alloc):
        alloc.allocate("a", ["m0/gpu0", "m0/gpu2"])  # crosses the X-bus
        util = alloc.link_utilization({"a": 10.0})
        assert util[("m0", "m0/s0")] == pytest.approx(10.0)
        assert util[("m0", "m0/s1")] == pytest.approx(10.0)
        assert util[("dram", "m0/s0")] == pytest.approx(10.0)

    def test_shared_links_accumulate(self, alloc):
        alloc.allocate("a", ["m0/gpu0", "m0/gpu2"])
        alloc.allocate("b", ["m0/gpu1", "m0/gpu3"])
        util = alloc.link_utilization({"a": 10.0, "b": 5.0})
        assert util[("m0", "m0/s0")] == pytest.approx(15.0)

    def test_zero_or_missing_demand_ignored(self, alloc):
        alloc.allocate("a", ["m0/gpu0"])
        assert alloc.link_utilization({}) == {}
        assert alloc.link_utilization({"a": 0.0}) == {}

    def test_hottest_links_ordering(self, alloc):
        alloc.allocate("a", ["m0/gpu0", "m0/gpu2"])
        alloc.allocate("b", ["m0/gpu1"])
        hot = alloc.hottest_links({"a": 20.0, "b": 1.0}, top=3)
        assert len(hot) == 3
        values = [v for _, v in hot]
        assert values == sorted(values, reverse=True)
