"""Structural tests for the paper's machine topologies (Figures 1 and 7)."""

import pytest

from repro.topology.builders import (
    DGX1_NVLINK_PAIRS,
    cluster,
    dgx1,
    machine,
    power8_minsky,
    power8_pcie_k80,
)
from repro.topology.graph import NodeKind
from repro.topology.links import LinkSpec


class TestPower8Minsky:
    def test_counts(self, minsky):
        assert len(minsky.gpus()) == 4
        assert len(minsky.sockets()) == 2
        assert minsky.machines() == ["m0"]

    def test_two_gpus_per_socket(self, minsky):
        for sock in minsky.sockets():
            assert len(minsky.gpus(socket=sock)) == 2

    def test_intra_socket_nvlink_pairs(self, minsky):
        pairs = minsky.nvlink_pairs()
        assert ("m0/gpu0", "m0/gpu1") in pairs
        assert ("m0/gpu2", "m0/gpu3") in pairs
        assert len(pairs) == 2

    def test_intra_socket_distance_much_smaller(self, minsky):
        assert minsky.distance("m0/gpu0", "m0/gpu1") == 1.0
        assert minsky.distance("m0/gpu0", "m0/gpu2") > 40.0

    def test_dual_nvlink_bandwidth(self, minsky):
        assert minsky.bottleneck_bandwidth("m0/gpu0", "m0/gpu1") == pytest.approx(40.0)

    def test_p2p_islands_are_socket_pairs(self, minsky):
        assert minsky.p2p_island_sizes() == [2, 2]


class TestDGX1:
    def test_counts(self, dgx):
        assert len(dgx.gpus()) == 8
        assert len(dgx.sockets()) == 2
        assert len(dgx.nodes(NodeKind.SWITCH)) == 4

    def test_cube_mesh_has_16_nvlink_edges(self, dgx):
        assert len(dgx.nvlink_pairs()) == 16

    def test_every_gpu_has_four_nvlink_ports(self, dgx):
        degree = {g: 0 for g in dgx.gpus()}
        for a, b in dgx.nvlink_pairs():
            degree[a] += 1
            degree[b] += 1
        assert set(degree.values()) == {4}

    def test_socket_quads_are_nvlink_cliques(self, dgx):
        pairs = set(DGX1_NVLINK_PAIRS)
        for base in (0, 4):
            quad = range(base, base + 4)
            for i in quad:
                for j in quad:
                    if i < j:
                        assert (i, j) in pairs or (j, i) in pairs

    def test_gpus_behind_pcie_switches(self, dgx):
        for g in dgx.gpus():
            kinds = {
                dgx.node(n).kind
                for n in dgx.neighbors(g)
            }
            assert NodeKind.SWITCH in kinds

    def test_p2p_island_is_socket_quad(self, dgx):
        assert dgx.p2p_island_sizes()[0] == 4


class TestPCIeK80:
    def test_no_nvlink_anywhere(self, pcie_machine):
        assert pcie_machine.nvlink_pairs() == []

    def test_p2p_via_shared_switch(self, pcie_machine):
        # K80 board: two dies behind one switch
        assert pcie_machine.p2p_connected("m0/gpu0", "m0/gpu1")
        assert not pcie_machine.p2p_connected("m0/gpu0", "m0/gpu2")

    def test_pack_bandwidth_is_pcie(self, pcie_machine):
        assert pcie_machine.bottleneck_bandwidth(
            "m0/gpu0", "m0/gpu1"
        ) == pytest.approx(16.0)


class TestGenericMachine:
    def test_custom_shape(self):
        t = machine("mx", sockets=4, gpus_per_socket=4)
        assert len(t.gpus()) == 16
        assert len(t.sockets()) == 4

    def test_peer_link_forms_cliques(self):
        t = machine("mx", sockets=1, gpus_per_socket=3, peer_link=LinkSpec.nvlink(1))
        assert len(t.nvlink_pairs()) == 3

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            machine(sockets=0)


class TestCluster:
    def test_counts(self, small_cluster):
        assert len(small_cluster.machines()) == 3
        assert len(small_cluster.gpus()) == 12

    def test_machine_names_stable(self, small_cluster):
        assert small_cluster.machines() == ["m0", "m1", "m2"]

    def test_cross_machine_distance_dominates(self, small_cluster):
        intra = small_cluster.distance("m0/gpu0", "m0/gpu2")
        inter = small_cluster.distance("m0/gpu0", "m1/gpu0")
        assert inter > intra

    def test_cross_machine_bandwidth_is_network(self, small_cluster):
        assert small_cluster.bottleneck_bandwidth(
            "m0/gpu0", "m1/gpu0"
        ) == pytest.approx(12.5)

    def test_custom_builder(self):
        t = cluster(2, dgx1)
        assert len(t.gpus()) == 16

    def test_zero_machines_rejected(self):
        with pytest.raises(ValueError):
            cluster(0)
