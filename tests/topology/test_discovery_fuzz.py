"""Property-based round-trip tests for topology discovery."""

from hypothesis import given, settings, strategies as st

from repro.topology.builders import machine
from repro.topology.discovery import (
    parse_topo_matrix,
    render_topo_matrix,
    topology_from_matrix,
)
from repro.topology.links import LinkSpec


@st.composite
def machines(draw):
    sockets = draw(st.integers(min_value=1, max_value=3))
    gps = draw(st.integers(min_value=1, max_value=4))
    peer = draw(
        st.sampled_from([None, LinkSpec.nvlink(1), LinkSpec.nvlink(2)])
    )
    uplink = draw(st.sampled_from([LinkSpec.nvlink(2), LinkSpec.pcie()]))
    return machine(
        "mx", sockets=sockets, gpus_per_socket=gps,
        gpu_link=uplink, peer_link=peer,
    )


@settings(max_examples=40, deadline=None)
@given(machines())
def test_matrix_render_parse_rebuild_is_fixed_point(topo):
    """For any generated machine, the GPU-relation matrix survives
    render -> parse -> rebuild -> render byte-for-byte."""
    original = render_topo_matrix(topo)
    rebuilt = topology_from_matrix(original, "mx")
    assert render_topo_matrix(rebuilt) == original


@settings(max_examples=40, deadline=None)
@given(machines())
def test_rebuild_preserves_socket_structure(topo):
    rebuilt = topology_from_matrix(render_topo_matrix(topo), "mx")
    assert len(rebuilt.sockets()) == len(topo.sockets())
    # socket co-membership is identical for every GPU pair
    gpus = topo.gpus()
    re_gpus = rebuilt.gpus()
    assert len(gpus) == len(re_gpus)
    for i in range(len(gpus)):
        for j in range(i + 1, len(gpus)):
            same_before = topo.socket_of(gpus[i]) == topo.socket_of(gpus[j])
            same_after = rebuilt.socket_of(re_gpus[i]) == rebuilt.socket_of(
                re_gpus[j]
            )
            assert same_before == same_after


@settings(max_examples=40, deadline=None)
@given(machines())
def test_rebuild_preserves_nvlink_peers(topo):
    rebuilt = topology_from_matrix(render_topo_matrix(topo), "mx")
    before = {(a.split("gpu")[1], b.split("gpu")[1]) for a, b in topo.nvlink_pairs()}
    after = {(a.split("gpu")[1], b.split("gpu")[1]) for a, b in rebuilt.nvlink_pairs()}
    assert before == after


@settings(max_examples=40, deadline=None)
@given(machines())
def test_parse_matrix_codes_are_consistent(topo):
    parsed = parse_topo_matrix(render_topo_matrix(topo))
    n = len(topo.gpus())
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            assert parsed[(i, j)] == parsed[(j, i)]  # relation is symmetric