"""Property-based tests for graph algorithms against scipy references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path as scipy_shortest_path

from repro.topology.builders import cluster, machine, power8_minsky
from repro.topology.graph import NodeKind, TopologyGraph
from repro.topology.links import LinkSpec


@st.composite
def random_machine_shapes(draw):
    sockets = draw(st.integers(min_value=1, max_value=4))
    gpus_per_socket = draw(st.integers(min_value=1, max_value=4))
    peer = draw(st.booleans())
    return sockets, gpus_per_socket, peer


def _scipy_distances(topo: TopologyGraph):
    names = [n.name for n in topo.nodes()]
    index = {n: i for i, n in enumerate(names)}
    n = len(names)
    rows, cols, vals = [], [], []
    for edge in topo.edges():
        i, j = index[edge.u], index[edge.v]
        rows += [i, j]
        cols += [j, i]
        vals += [edge.weight, edge.weight]
    mat = csr_matrix((vals, (rows, cols)), shape=(n, n))
    return names, scipy_shortest_path(mat, method="D", directed=False)


@settings(max_examples=25, deadline=None)
@given(random_machine_shapes())
def test_distances_match_scipy(shape):
    """Our Dijkstra must agree with scipy's on every generated machine."""
    sockets, gps, peer = shape
    topo = machine(
        "mx",
        sockets=sockets,
        gpus_per_socket=gps,
        peer_link=LinkSpec.nvlink(1) if peer else None,
    )
    names, ref = _scipy_distances(topo)
    gpus = topo.gpus()
    index = {n: i for i, n in enumerate(names)}
    for a in gpus:
        for b in gpus:
            assert topo.distance(a, b) == pytest.approx(ref[index[a], index[b]])


@settings(max_examples=25, deadline=None)
@given(random_machine_shapes())
def test_distance_is_a_metric(shape):
    sockets, gps, peer = shape
    topo = machine(
        "mx",
        sockets=sockets,
        gpus_per_socket=gps,
        peer_link=LinkSpec.nvlink(1) if peer else None,
    )
    gpus = topo.gpus()
    for a in gpus:
        assert topo.distance(a, a) == 0.0
        for b in gpus:
            d_ab = topo.distance(a, b)
            assert d_ab == topo.distance(b, a)
            if a != b:
                assert d_ab > 0
            for c in gpus:
                assert d_ab <= topo.distance(a, c) + topo.distance(c, b) + 1e-9


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=4))
def test_scoped_dijkstra_matches_full_search(n_machines):
    """The machine-scoped fast path must be exact for intra-machine pairs."""
    topo = cluster(n_machines)
    for m in topo.machines():
        gpus = topo.gpus(machine=m)
        for a in gpus:
            full = topo._dijkstra(a, None)
            for b in gpus:
                assert topo.distance(a, b) == pytest.approx(full[b])


@settings(max_examples=20, deadline=None)
@given(random_machine_shapes())
def test_bottleneck_bandwidth_bounds(shape):
    """Widest-path bandwidth is at least any single path's bottleneck and
    at most the best adjacent link of either endpoint."""
    sockets, gps, peer = shape
    topo = machine(
        "mx",
        sockets=sockets,
        gpus_per_socket=gps,
        peer_link=LinkSpec.nvlink(1) if peer else None,
    )
    gpus = topo.gpus()
    for a in gpus:
        best_adjacent = max(
            topo.edge(a, nbr).spec.bandwidth_gbs for nbr in topo.neighbors(a)
        )
        for b in gpus:
            if a == b:
                continue
            bw = topo.bottleneck_bandwidth(a, b)
            path_bottleneck = min(
                e.spec.bandwidth_gbs for e in topo.path_edges(a, b)
            )
            assert bw >= path_bottleneck - 1e-9
            assert bw <= best_adjacent + 1e-9


def test_gpus_never_relay_traffic():
    """P100-class NVLink does not forward: a GPU pair without a direct
    link must route through switches/sockets, never through a third
    GPU -- matching nvidia-smi's PIX/PHB/SYS semantics."""
    topo = TopologyGraph("chain")
    topo.add_node("m", NodeKind.MACHINE)
    topo.add_node("m/s0", NodeKind.SOCKET, machine="m")
    topo.add_edge("m/s0", "m", 20.0, LinkSpec.xbus())
    for i in range(3):
        g = f"m/gpu{i}"
        topo.add_node(g, NodeKind.GPU, machine="m", socket="m/s0", gpu_index=i)
        topo.add_edge(g, "m/s0", 2.0, LinkSpec.pcie())
    # NVLink chain 0-1-2
    topo.add_edge("m/gpu0", "m/gpu1", 1.0, LinkSpec.nvlink(1))
    topo.add_edge("m/gpu1", "m/gpu2", 1.0, LinkSpec.nvlink(1))

    # 0 -> 2 must go through the socket (2+2), not through gpu1 (1+1)
    assert topo.distance("m/gpu0", "m/gpu2") == 4.0
    path = topo.shortest_path("m/gpu0", "m/gpu2")
    assert all(topo.node(n).kind is not NodeKind.GPU for n in path[1:-1])
    # and its bandwidth is PCIe, not relayed NVLink
    assert topo.bottleneck_bandwidth("m/gpu0", "m/gpu2") == pytest.approx(16.0)
    assert not topo.p2p_connected("m/gpu0", "m/gpu2")
    # direct neighbours keep their NVLink
    assert topo.distance("m/gpu0", "m/gpu1") == 1.0
    assert topo.bottleneck_bandwidth("m/gpu0", "m/gpu1") == pytest.approx(20.0)


def test_pairwise_distance_sum_equals_manual(minsky):
    gpus = minsky.gpus()
    manual = sum(
        minsky.distance(a, b)
        for i, a in enumerate(gpus)
        for b in gpus[i + 1 :]
    )
    assert minsky.pairwise_distance_sum(gpus) == pytest.approx(manual)
