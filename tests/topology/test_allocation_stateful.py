"""Stateful property test: AllocationState under random operation sequences."""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.topology.allocation import AllocationError, AllocationState
from repro.topology.builders import cluster


class AllocationMachine(RuleBasedStateMachine):
    """Random allocate/release/fail/recover sequences must never break
    the bookkeeping invariants."""

    def __init__(self) -> None:
        super().__init__()
        self.topo = cluster(3)
        self.state = AllocationState(self.topo)
        self.model: dict[str, frozenset[str]] = {}  # reference model
        self.counter = 0
        self.down: set[str] = set()

    jobs = Bundle("jobs")

    @rule(target=jobs, data=st.data())
    def allocate(self, data):
        free = self.state.free_gpus()
        # free_gpus() excludes down machines; allocation onto a down
        # machine is not attempted (matches scheduler behaviour)
        if not free:
            return None
        n = data.draw(st.integers(min_value=1, max_value=min(4, len(free))))
        chosen = data.draw(
            st.lists(
                st.sampled_from(free), min_size=n, max_size=n, unique=True
            )
        )
        job_id = f"job{self.counter}"
        self.counter += 1
        self.state.allocate(job_id, chosen)
        self.model[job_id] = frozenset(chosen)
        return job_id

    @rule(job_id=jobs)
    def release(self, job_id):
        if job_id is None:
            return
        if job_id in self.model:
            released = self.state.release(job_id)
            assert released == self.model.pop(job_id)
        else:
            try:
                self.state.release(job_id)
                raise AssertionError("double release must fail")
            except AllocationError:
                pass

    @rule(machine=st.sampled_from(["m0", "m1", "m2"]))
    def fail_machine(self, machine):
        victims = self.state.set_machine_down(machine)
        self.down.add(machine)
        # the simulator releases victims; mirror that here
        for job_id in victims:
            self.state.release(job_id)
            self.model.pop(job_id)

    @rule(machine=st.sampled_from(["m0", "m1", "m2"]))
    def recover_machine(self, machine):
        self.state.set_machine_up(machine)
        self.down.discard(machine)

    # ------------------------------------------------------------------
    @invariant()
    def owners_match_model(self):
        for job_id, gpus in self.model.items():
            assert self.state.gpus_of(job_id) == gpus
            for g in gpus:
                assert self.state.owner_of(g) == job_id

    @invariant()
    def free_counts_consistent(self):
        for m in self.topo.machines():
            expected_busy = sum(
                1
                for gpus in self.model.values()
                for g in gpus
                if self.topo.machine_of(g) == m
            )
            total = len(self.topo.gpus(machine=m))
            if m in self.down:
                assert self.state.free_count(m) == 0
            else:
                assert self.state.free_count(m) == total - expected_busy

    @invariant()
    def utilization_matches(self):
        busy = sum(len(g) for g in self.model.values())
        assert self.state.utilization() == busy / 12

    @invariant()
    def jobs_by_machine_consistent(self):
        for m in self.topo.machines():
            expected = {
                job_id
                for job_id, gpus in self.model.items()
                if any(self.topo.machine_of(g) == m for g in gpus)
            }
            assert self.state.jobs_on_machine(m) == expected


AllocationMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestAllocationStateMachine = AllocationMachine.TestCase
