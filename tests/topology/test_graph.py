"""Unit tests for the topology graph container and path queries."""

import pytest

from repro.topology.graph import NodeKind, TopologyGraph, TopologyError
from repro.topology.links import LinkSpec


def tiny_machine() -> TopologyGraph:
    """m: two sockets, one GPU each, NVLink uplinks."""
    t = TopologyGraph("tiny")
    t.add_node("m", NodeKind.MACHINE)
    for s in range(2):
        sock = f"m/s{s}"
        t.add_node(sock, NodeKind.SOCKET, machine="m")
        t.add_edge(sock, "m", 20.0, LinkSpec.xbus())
        gpu = f"m/gpu{s}"
        t.add_node(gpu, NodeKind.GPU, machine="m", socket=sock, gpu_index=s)
        t.add_edge(gpu, sock, 1.0, LinkSpec.nvlink(2))
    return t


class TestConstruction:
    def test_duplicate_node_rejected(self):
        t = TopologyGraph()
        t.add_node("a", NodeKind.MACHINE)
        with pytest.raises(TopologyError, match="duplicate"):
            t.add_node("a", NodeKind.MACHINE)

    def test_gpu_requires_index(self):
        t = TopologyGraph()
        with pytest.raises(TopologyError, match="gpu_index"):
            t.add_node("g", NodeKind.GPU, machine="m", socket="s")

    def test_edge_to_unknown_node_rejected(self):
        t = TopologyGraph()
        t.add_node("a", NodeKind.MACHINE)
        with pytest.raises(TopologyError, match="unknown"):
            t.add_edge("a", "b", 1.0, LinkSpec.pcie())

    def test_self_loop_rejected(self):
        t = TopologyGraph()
        t.add_node("a", NodeKind.MACHINE)
        with pytest.raises(TopologyError, match="self-loop"):
            t.add_edge("a", "a", 1.0, LinkSpec.pcie())

    def test_duplicate_edge_rejected(self):
        t = TopologyGraph()
        t.add_node("a", NodeKind.MACHINE)
        t.add_node("b", NodeKind.MACHINE)
        t.add_edge("a", "b", 1.0, LinkSpec.pcie())
        with pytest.raises(TopologyError, match="duplicate edge"):
            t.add_edge("b", "a", 2.0, LinkSpec.pcie())

    def test_non_positive_weight_rejected(self):
        t = TopologyGraph()
        t.add_node("a", NodeKind.MACHINE)
        t.add_node("b", NodeKind.MACHINE)
        with pytest.raises(TopologyError, match="positive"):
            t.add_edge("a", "b", 0.0, LinkSpec.pcie())

    def test_merge_rejects_overlap(self):
        a, b = tiny_machine(), tiny_machine()
        with pytest.raises(TopologyError, match="both graphs"):
            a.merge(b)


class TestQueries:
    def test_contains_and_len(self):
        t = tiny_machine()
        assert "m/gpu0" in t
        assert "nope" not in t
        assert len(t) == 5

    def test_unknown_node_raises(self):
        with pytest.raises(TopologyError, match="unknown node"):
            tiny_machine().node("x")

    def test_gpus_sorted_by_index(self):
        t = tiny_machine()
        assert t.gpus() == ["m/gpu0", "m/gpu1"]
        assert t.gpus(socket="m/s1") == ["m/gpu1"]

    def test_machine_and_socket_of(self):
        t = tiny_machine()
        assert t.machine_of("m/gpu0") == "m"
        assert t.socket_of("m/gpu1") == "m/s1"
        assert t.machine_of("m") == "m"

    def test_gpu_index_of_non_gpu_raises(self):
        with pytest.raises(TopologyError, match="not a GPU"):
            tiny_machine().gpu_index_of("m/s0")

    def test_edges_enumerated_once(self):
        t = tiny_machine()
        assert len(list(t.edges())) == 4


class TestPaths:
    def test_distance_same_node_zero(self):
        assert tiny_machine().distance("m/gpu0", "m/gpu0") == 0.0

    def test_cross_socket_distance(self):
        t = tiny_machine()
        # gpu0 -> s0 (1) -> m (20) -> s1 (20) -> gpu1 (1)
        assert t.distance("m/gpu0", "m/gpu1") == 42.0

    def test_distance_symmetric(self):
        t = tiny_machine()
        assert t.distance("m/gpu0", "m/gpu1") == t.distance("m/gpu1", "m/gpu0")

    def test_shortest_path_endpoints(self):
        t = tiny_machine()
        path = t.shortest_path("m/gpu0", "m/gpu1")
        assert path[0] == "m/gpu0" and path[-1] == "m/gpu1"
        assert path == ("m/gpu0", "m/s0", "m", "m/s1", "m/gpu1")

    def test_path_edges_match_path(self):
        t = tiny_machine()
        edges = t.path_edges("m/gpu0", "m/gpu1")
        assert len(edges) == 4

    def test_direct_edge_preferred(self):
        t = tiny_machine()
        t.add_edge("m/gpu0", "m/gpu1", 1.0, LinkSpec.nvlink(1))
        assert t.distance("m/gpu0", "m/gpu1") == 1.0
        assert t.shortest_path("m/gpu0", "m/gpu1") == ("m/gpu0", "m/gpu1")

    def test_disconnected_raises(self):
        t = tiny_machine()
        t.add_node("island", NodeKind.MACHINE)
        with pytest.raises(TopologyError, match="disconnected"):
            t.distance("m/gpu0", "island")

    def test_distance_matrix_symmetric_zero_diag(self):
        t = tiny_machine()
        order, mat = t.distance_matrix()
        assert order == ["m/gpu0", "m/gpu1"]
        assert mat[0, 0] == 0.0 and mat[0, 1] == mat[1, 0] == 42.0


class TestBottleneckBandwidth:
    def test_cross_socket_limited_by_xbus(self):
        t = tiny_machine()
        assert t.bottleneck_bandwidth("m/gpu0", "m/gpu1") == pytest.approx(38.4)

    def test_direct_link_wins(self):
        t = tiny_machine()
        t.add_edge("m/gpu0", "m/gpu1", 1.0, LinkSpec.nvlink(2))
        assert t.bottleneck_bandwidth("m/gpu0", "m/gpu1") == pytest.approx(40.0)

    def test_self_is_infinite(self):
        assert tiny_machine().bottleneck_bandwidth("m/gpu0", "m/gpu0") == float("inf")


class TestP2P:
    def test_cross_socket_is_not_p2p(self):
        t = tiny_machine()
        assert not t.p2p_connected("m/gpu0", "m/gpu1")

    def test_direct_nvlink_is_p2p(self):
        t = tiny_machine()
        t.add_edge("m/gpu0", "m/gpu1", 1.0, LinkSpec.nvlink(1))
        assert t.p2p_connected("m/gpu0", "m/gpu1")

    def test_island_sizes_tiny(self):
        t = tiny_machine()
        assert t.p2p_island_sizes() == [1, 1]


class TestAggregates:
    def test_pairwise_distance_sum(self):
        t = tiny_machine()
        assert t.pairwise_distance_sum(["m/gpu0", "m/gpu1"]) == 42.0
        assert t.pairwise_distance_sum(["m/gpu0"]) == 0.0

    def test_diameter(self):
        assert tiny_machine().diameter() == 42.0


class TestValidate:
    def test_valid_machine_passes(self):
        tiny_machine().validate()

    def test_no_gpus_fails(self):
        t = TopologyGraph()
        t.add_node("m", NodeKind.MACHINE)
        with pytest.raises(TopologyError, match="no GPUs"):
            t.validate()

    def test_duplicate_gpu_index_fails(self):
        t = tiny_machine()
        t.add_node("m/gpu9", NodeKind.GPU, machine="m", socket="m/s0", gpu_index=0)
        t.add_edge("m/gpu9", "m/s0", 1.0, LinkSpec.pcie())
        with pytest.raises(TopologyError, match="duplicate gpu_index"):
            t.validate()

    def test_disconnected_fails(self):
        t = tiny_machine()
        t.add_node("m2", NodeKind.MACHINE)
        t.add_node("m2/s0", NodeKind.SOCKET, machine="m2")
        t.add_edge("m2/s0", "m2", 20.0, LinkSpec.xbus())
        t.add_node("m2/gpu0", NodeKind.GPU, machine="m2", socket="m2/s0", gpu_index=0)
        t.add_edge("m2/gpu0", "m2/s0", 1.0, LinkSpec.pcie())
        with pytest.raises(TopologyError, match="disconnected"):
            t.validate()


class TestExport:
    def test_to_networkx_roundtrips_structure(self):
        t = tiny_machine()
        g = t.to_networkx()
        assert g.number_of_nodes() == len(t)
        assert g.number_of_edges() == len(list(t.edges()))
        assert g.nodes["m/gpu0"]["kind"] == "gpu"
        assert g.edges["m/gpu0", "m/s0"]["bandwidth_gbs"] == pytest.approx(40.0)
