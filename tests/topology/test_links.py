"""Unit tests for link specifications."""

import pytest

from repro.topology.links import (
    DEFAULT_LEVEL_WEIGHTS,
    LinkSpec,
    LinkType,
    NVLINK_LANE_BW,
    PCIE3_X16_BW,
    XBUS_BW,
)


class TestLinkSpec:
    def test_nvlink_single_lane_bandwidth(self):
        assert LinkSpec.nvlink(1).bandwidth_gbs == NVLINK_LANE_BW

    def test_nvlink_dual_lane_aggregates(self):
        spec = LinkSpec.nvlink(2)
        assert spec.bandwidth_gbs == 2 * NVLINK_LANE_BW == 40.0
        assert spec.lanes == 2

    def test_pcie_default_bandwidth(self):
        assert LinkSpec.pcie().bandwidth_gbs == PCIE3_X16_BW

    def test_xbus_default_bandwidth(self):
        assert LinkSpec.xbus().bandwidth_gbs == XBUS_BW

    def test_explicit_bandwidth_overrides_default(self):
        spec = LinkSpec(LinkType.XBUS, bandwidth_gbs=19.2)
        assert spec.bandwidth_gbs == 19.2

    def test_onboard_is_not_a_bottleneck(self):
        assert LinkSpec.onboard().bandwidth_gbs > 1e6

    def test_zero_lanes_rejected(self):
        with pytest.raises(ValueError, match="lanes"):
            LinkSpec(LinkType.NVLINK, lanes=0)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="bandwidth"):
            LinkSpec(LinkType.PCIE, bandwidth_gbs=-1.0)

    def test_frozen(self):
        spec = LinkSpec.pcie()
        with pytest.raises(Exception):
            spec.lanes = 4


class TestLevelWeights:
    def test_weights_increase_with_level(self):
        w = DEFAULT_LEVEL_WEIGHTS
        assert w["gpu"] < w["switch"] < w["socket"] < w["machine"]
