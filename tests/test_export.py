"""Tests for the Kubernetes/Mesos placement exports."""

import pytest

from repro.core.placement import PlacementEngine
from repro.export import to_mesos_task, to_pod_spec, to_pod_specs
from repro.topology.allocation import AllocationState
from repro.topology.builders import cluster, power8_minsky

from tests.conftest import make_job


@pytest.fixture
def placed(minsky):
    engine = PlacementEngine(minsky, AllocationState(minsky))
    job = make_job("train-0", num_gpus=2, batch_size=1, min_utility=0.5)
    return minsky, job, engine.propose(job)


class TestPodSpec:
    def test_structure(self, placed):
        topo, job, solution = placed
        pod = to_pod_spec(topo, job, solution)
        assert pod["kind"] == "Pod"
        assert pod["metadata"]["name"] == "train-0"
        assert pod["spec"]["nodeSelector"] == {"kubernetes.io/hostname": "m0"}
        container = pod["spec"]["containers"][0]
        assert container["resources"]["limits"]["nvidia.com/gpu"] == 2

    def test_env_matches_enforcement(self, placed):
        topo, job, solution = placed
        pod = to_pod_spec(topo, job, solution)
        env = {e["name"]: e["value"] for e in pod["spec"]["containers"][0]["env"]}
        assert env["CUDA_DEVICE_ORDER"] == "PCI_BUS_ID"
        assert env["CUDA_VISIBLE_DEVICES"] == "0,1"

    def test_annotations_record_reasoning(self, placed):
        topo, job, solution = placed
        annotations = to_pod_spec(topo, job, solution)["metadata"]["annotations"]
        assert annotations["gpu-topo-aware.scheduling/p2p"] == "true"
        assert float(annotations["gpu-topo-aware.scheduling/utility"]) == pytest.approx(
            solution.utility, abs=1e-4
        )

    def test_mismatched_solution_rejected(self, placed):
        topo, job, solution = placed
        other = make_job("other", num_gpus=2)
        with pytest.raises(ValueError, match="solution is for"):
            to_pod_spec(topo, other, solution)

    def test_multi_machine_placement_rejected(self):
        topo = cluster(2)
        engine = PlacementEngine(topo, AllocationState(topo))
        # force a spanning placement by filling machines partially
        state = engine.alloc
        state.allocate("f0", topo.gpus(machine="m0")[:3])
        state.allocate("f1", topo.gpus(machine="m1")[:3])
        job = make_job("span", num_gpus=2, single_node=False)
        solution = engine.propose(job)
        assert solution.pool.spans_machines
        with pytest.raises(ValueError, match="one node|one pod"):
            to_pod_spec(topo, job, solution)

    def test_batch_export_sorted(self, minsky):
        engine = PlacementEngine(minsky, AllocationState(minsky))
        placements = {}
        for name in ("b-job", "a-job"):
            job = make_job(name, num_gpus=1)
            sol = engine.propose(job)
            engine.enforce(sol)
            placements[name] = (job, sol)
        pods = to_pod_specs(minsky, placements)
        assert [p["metadata"]["name"] for p in pods] == ["a-job", "b-job"]


class TestMesosTask:
    def test_structure(self, placed):
        topo, job, solution = placed
        task = to_mesos_task(topo, job, solution)
        assert task["task_id"] == {"value": "train-0"}
        assert task["agent_hostname"] == "m0"
        assert task["resources"][0]["scalar"]["value"] == 2.0
        assert "CUDA_VISIBLE_DEVICES=0,1" in task["command"]["value"]

    def test_labels_record_gpus(self, placed):
        topo, job, solution = placed
        task = to_mesos_task(topo, job, solution)
        labels = {l["key"]: l["value"] for l in task["labels"]["labels"]}
        assert labels["gpus"] == "m0/gpu0,m0/gpu1"
        assert labels["p2p"] == "true"
