"""Tests for the dependency-free SVG figure renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.plot.svg import bar_chart, line_chart
from repro.plot.figures import render_all_figures

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestLineChart:
    def test_well_formed_with_one_polyline_per_series(self):
        svg = line_chart(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
            title="T", x_label="x", y_label="y",
        )
        root = parse(svg)
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) == 2
        texts = [t.text for t in root.iter(f"{SVG_NS}text")]
        assert "T" in texts and "a" in texts and "b" in texts

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": []})

    def test_special_characters_escaped(self):
        svg = line_chart({"a<b": [(0, 0), (1, 1)]}, title="x & y")
        parse(svg)  # must stay well-formed
        assert "a<b" not in svg.replace("a&lt;b", "")


class TestBarChart:
    def test_one_rect_per_group_series_pair(self):
        svg = bar_chart(
            ["g1", "g2", "g3"],
            {"s1": [1, 2, 3], "s2": [3, 2, 1]},
        )
        root = parse(svg)
        rects = root.findall(f"{SVG_NS}rect")
        # background + 2 legend swatches + 6 bars
        assert len(rects) == 1 + 2 + 6

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            bar_chart(["g1", "g2"], {"s": [1.0]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([], {})


class TestFigureRendering:
    def test_renders_all_headline_figures(self, tmp_path):
        paths = render_all_figures(tmp_path)
        assert [p.name for p in paths] == [
            "fig4_pack_vs_spread.svg",
            "fig5_nvlink_bandwidth.svg",
            "fig6_collocation.svg",
        ]
        for p in paths:
            root = parse(p.read_text())
            assert root.tag == f"{SVG_NS}svg"

    def test_fig4_has_three_model_series(self, tmp_path):
        (path, _, _) = render_all_figures(tmp_path)
        root = parse(path.read_text())
        assert len(root.findall(f"{SVG_NS}polyline")) == 3
