"""The capacity quick-skip must still produce a traced no-fit outcome.

Regression test: the single-node fast skip in TopoAwareScheduler used
to bypass the ``sched.propose`` span entirely, so a trace of a round
where an oversized job was rejected showed no evidence the job was
considered at all.
"""

from __future__ import annotations

from repro.schedulers import make_scheduler
from repro.schedulers.base import SchedulingContext
from repro.sim.cluster import ClusterState
from repro.obs.trace import recording
from repro.topology.builders import power8_minsky

from tests.conftest import make_job


def _ctx(state):
    return SchedulingContext(
        topo=state.topo,
        alloc=state.alloc,
        engine=state.engine,
        co_runners={},
        now=0.0,
        cluster=state,
    )


def _propose_spans(rec):
    return [s for s in rec.spans if s.name == "sched.propose"]


class TestCapacityPruneTracing:
    def test_single_node_no_fit_emits_span(self):
        state = ClusterState(power8_minsky())  # 4 GPUs
        sched = make_scheduler("TOPO-AWARE")
        sched.submit(make_job("xl", num_gpus=5, single_node=True))
        with recording() as rec:
            placed = sched.schedule(_ctx(state))
        assert placed == []
        spans = _propose_spans(rec)
        assert len(spans) == 1
        assert spans[0].attrs["job_id"] == "xl"
        assert spans[0].attrs["outcome"] == "no-fit"
        assert spans[0].attrs["reason"] == "capacity"

    def test_multi_node_no_fit_emits_span(self):
        state = ClusterState(power8_minsky())
        sched = make_scheduler("TOPO-AWARE")
        sched.submit(make_job("xl", num_gpus=64, single_node=False))
        with recording() as rec:
            assert sched.schedule(_ctx(state)) == []
        (span,) = _propose_spans(rec)
        assert span.attrs["outcome"] == "no-fit"
        assert span.attrs["reason"] == "capacity"

    def test_placeable_job_unaffected(self):
        state = ClusterState(power8_minsky())
        sched = make_scheduler("TOPO-AWARE")
        sched.submit(make_job("fits", num_gpus=2))
        with recording() as rec:
            placed = sched.schedule(_ctx(state))
        assert [s.job_id for s in placed] == ["fits"]
        (span,) = _propose_spans(rec)
        assert span.attrs["outcome"] == "placed"

    def test_pruned_job_stays_queued(self):
        state = ClusterState(power8_minsky())
        sched = make_scheduler("TOPO-AWARE")
        sched.submit(make_job("xl", num_gpus=5, single_node=True))
        sched.schedule(_ctx(state))
        assert sched.queue_length() == 1  # re-queued, not dropped
