"""Tests for the TOPO-AWARE / TOPO-AWARE-P policies (Algorithm 1)."""

import pytest

from repro.schedulers import TopoAwareScheduler
from repro.topology.builders import cluster

from tests.conftest import make_job
from tests.schedulers.test_base import make_ctx


class TestTopoAware:
    def test_places_best_available_immediately(self):
        ctx = make_ctx()
        sched = TopoAwareScheduler(postpone=False)
        sched.submit(make_job("a", num_gpus=2, batch_size=1))
        (sol,) = sched.schedule(ctx)
        assert sol.p2p and sol.utility == pytest.approx(1.0)

    def test_accepts_bad_placement_without_postpone(self):
        ctx = make_ctx()
        # fragment the machine: only cross-socket GPUs left
        ctx.alloc.allocate("x", ["m0/gpu1"])
        ctx.alloc.allocate("y", ["m0/gpu3"])
        sched = TopoAwareScheduler(postpone=False)
        sched.submit(make_job("a", num_gpus=2, batch_size=1, min_utility=0.5))
        (sol,) = sched.schedule(ctx)
        assert not sol.p2p  # placed anyway, "without consideration"

    def test_requeues_infeasible_and_continues(self):
        ctx = make_ctx()
        sched = TopoAwareScheduler(postpone=False)
        sched.submit(make_job("big", num_gpus=8, arrival_time=0.0))
        sched.submit(make_job("small", num_gpus=1, arrival_time=1.0))
        placed = sched.schedule(ctx)
        assert [s.job_id for s in placed] == ["small"]


class TestTopoAwareP:
    def test_postpones_non_p2p_for_p2p_job(self):
        ctx = make_ctx()
        ctx.alloc.allocate("x", ["m0/gpu1"])
        ctx.alloc.allocate("y", ["m0/gpu3"])
        ctx.co_runners = {
            "x": (make_job("x", num_gpus=1), frozenset(["m0/gpu1"])),
            "y": (make_job("y", num_gpus=1), frozenset(["m0/gpu3"])),
        }
        sched = TopoAwareScheduler(postpone=True)
        job = make_job("a", num_gpus=2, batch_size=1, min_utility=0.5)
        sched.submit(job)
        assert sched.schedule(ctx) == []
        assert sched.postponements["a"] == 1
        assert sched.queue_length() == 1

    def test_places_once_p2p_frees_up(self):
        ctx = make_ctx()
        ctx.alloc.allocate("x", ["m0/gpu1"])
        ctx.co_runners = {
            "x": (make_job("x", num_gpus=1), frozenset(["m0/gpu1"])),
        }
        sched = TopoAwareScheduler(postpone=True)
        sched.submit(make_job("a", num_gpus=2, batch_size=1, min_utility=0.5))
        (sol,) = sched.schedule(ctx)
        assert sol.p2p
        assert sorted(sol.gpus) == ["m0/gpu2", "m0/gpu3"]

    def test_does_not_wait_for_unattainable_p2p(self):
        """A 4-GPU P2P demand cannot be met on Minsky (islands of 2):
        the scheduler must not postpone forever."""
        ctx = make_ctx()
        ctx.alloc.allocate("x", ["m0/gpu0"])
        ctx.co_runners = {
            "x": (make_job("x", num_gpus=1), frozenset(["m0/gpu0"])),
        }
        sched = TopoAwareScheduler(postpone=True)
        sched.submit(make_job("a", num_gpus=3, batch_size=1, min_utility=0.0))
        (sol,) = sched.schedule(ctx)
        assert sol.job_id == "a"

    def test_places_when_nothing_running(self):
        """With an empty cluster the state cannot improve: place."""
        ctx = make_ctx()
        sched = TopoAwareScheduler(postpone=True)
        # min_utility=1.0 is unreachable on a fragmented pool, but the
        # machine is empty so the best placement is already optimal
        sched.submit(make_job("a", num_gpus=4, batch_size=128, min_utility=1.0))
        (sol,) = sched.schedule(ctx)
        assert sol.job_id == "a"

    def test_postponement_budget_forces_placement(self):
        ctx = make_ctx()
        ctx.alloc.allocate("x", ["m0/gpu1"])
        ctx.alloc.allocate("y", ["m0/gpu3"])
        ctx.co_runners = {
            "x": (make_job("x", num_gpus=1), frozenset(["m0/gpu1"])),
            "y": (make_job("y", num_gpus=1), frozenset(["m0/gpu3"])),
        }
        sched = TopoAwareScheduler(postpone=True, max_postponements=2)
        sched.submit(make_job("a", num_gpus=2, batch_size=1, min_utility=0.5))
        assert sched.schedule(ctx) == []
        assert sched.schedule(ctx) == []
        (sol,) = sched.schedule(ctx)  # budget exhausted
        assert sol.job_id == "a"

    def test_out_of_order_execution(self):
        """A postponed job must not block later satisfiable jobs."""
        ctx = make_ctx()
        ctx.alloc.allocate("x", ["m0/gpu1"])
        ctx.co_runners = {
            "x": (make_job("x", num_gpus=1, batch_size=1), frozenset(["m0/gpu1"])),
        }
        sched = TopoAwareScheduler(postpone=True)
        # head wants P2P pair; only gpu0 + socket1 remain -> it can get
        # socket1; make it want 2 GPUs with utility 1.0 to force postpone
        sched.submit(
            make_job("head", num_gpus=2, batch_size=1, min_utility=1.0,
                     arrival_time=0.0)
        )
        sched.submit(
            make_job("tail", num_gpus=1, batch_size=128, min_utility=0.0,
                     arrival_time=1.0)
        )
        placed = sched.schedule(ctx)
        assert "tail" in [s.job_id for s in placed]
