"""Tests for the SJF and EASY-backfill baselines."""

import pytest

from repro.schedulers import BackfillScheduler, SJFScheduler, make_scheduler
from repro.sim.engine import Simulator
from repro.topology.builders import cluster, power8_minsky
from repro.workload.job import Job, ModelType

from tests.conftest import make_job
from tests.schedulers.test_base import make_ctx


class TestSJF:
    def test_factory(self):
        assert isinstance(make_scheduler("SJF"), SJFScheduler)

    def test_orders_by_estimated_duration(self):
        ctx = make_ctx()
        sched = SJFScheduler()
        # long tiny-batch AlexNet arrives first, short GoogLeNet second
        long_job = Job("long", ModelType.ALEXNET, 1, 2, arrival_time=0.0,
                       iterations=4000)
        short_job = Job("short", ModelType.ALEXNET, 1, 2, arrival_time=1.0,
                        iterations=10)
        sched.submit(long_job)
        sched.submit(short_job)
        placed = sched.schedule(ctx)
        assert [s.job_id for s in placed] == ["short", "long"]

    def test_estimates_reflect_model_and_batch(self):
        sched = SJFScheduler()
        fast = make_job("fast", batch_size=1, num_gpus=1, iterations=100)
        slow = Job("slow", ModelType.GOOGLENET, 128, 1, iterations=100)
        assert sched.estimated_duration(fast) < sched.estimated_duration(slow)

    def test_skips_unplaceable(self):
        ctx = make_ctx()
        sched = SJFScheduler()
        sched.submit(make_job("whale", num_gpus=8, iterations=10))
        sched.submit(make_job("minnow", num_gpus=1, iterations=10))
        placed = sched.schedule(ctx)
        assert [s.job_id for s in placed] == ["minnow"]

    def test_full_simulation_completes(self):
        jobs = [
            make_job(f"j{i}", num_gpus=1 + i % 2, iterations=100,
                     arrival_time=float(i))
            for i in range(8)
        ]
        result = Simulator(power8_minsky(), SJFScheduler(), jobs).run()
        assert all(r.finished_at is not None for r in result.records)


class TestBackfill:
    def test_factory_aliases(self):
        for name in ("EASY-BACKFILL", "backfill", "easy"):
            assert isinstance(make_scheduler(name), BackfillScheduler)

    def test_backfills_only_jobs_finishing_before_reservation(self):
        ctx = make_ctx()
        sched = BackfillScheduler()
        # occupy 3 of 4 GPUs with a known-length job
        runner = make_job("runner", num_gpus=3, batch_size=1, iterations=1000)
        gpus = ("m0/gpu0", "m0/gpu1", "m0/gpu2")
        sol = ctx.engine.score_allocation(runner, gpus, {})
        ctx.engine.enforce(sol)
        ctx.co_runners = {"runner": (runner, frozenset(gpus))}
        sched._estimated_end["runner"] = ctx.now + sched.estimated_duration(runner)

        # head needs 2 GPUs -> blocked until runner finishes
        head = make_job("head", num_gpus=2, iterations=100, arrival_time=0.0)
        # shorty fits now and ends before the reservation
        shorty = make_job("shorty", num_gpus=1, iterations=10, arrival_time=1.0)
        # hog fits now but would outlive the reservation
        hog = make_job("hog", num_gpus=1, iterations=100_000, arrival_time=2.0)
        for j in (head, shorty, hog):
            sched.submit(j)
        placed = sched.schedule(ctx)
        assert [s.job_id for s in placed] == ["shorty"]
        # head and hog stay queued, in order
        assert [j.job_id for j in sched.queued_jobs()] == ["head", "hog"]

    def test_fifo_when_everything_fits(self):
        ctx = make_ctx()
        sched = BackfillScheduler()
        sched.submit(make_job("a", num_gpus=2, arrival_time=0.0, iterations=50))
        sched.submit(make_job("b", num_gpus=2, arrival_time=1.0, iterations=50))
        placed = sched.schedule(ctx)
        assert [s.job_id for s in placed] == ["a", "b"]

    def test_head_never_starved_in_simulation(self):
        """The reservation guarantee: a steady stream of short 1-GPU
        jobs must not push back a waiting 4-GPU job indefinitely."""
        jobs = [make_job("big", num_gpus=4, arrival_time=0.0, iterations=400)]
        jobs += [
            make_job(f"s{i}", num_gpus=1, arrival_time=0.1 + 0.5 * i,
                     iterations=50)
            for i in range(12)
        ]
        # one 4-GPU machine: big runs first (FIFO), shorts backfill later
        result = Simulator(power8_minsky(), BackfillScheduler(), jobs).run()
        assert all(r.finished_at is not None for r in result.records)

    def test_backfill_beats_fcfs_waiting(self):
        """Backfilling must strictly improve on plain FCFS waiting time
        for a blocked-head workload."""
        from repro.sim.metrics import mean_waiting_time

        jobs = [
            make_job("w1", num_gpus=3, arrival_time=0.0, iterations=300),
            make_job("w2", num_gpus=3, arrival_time=1.0, iterations=300),
            make_job("tiny", num_gpus=1, arrival_time=2.0, iterations=20),
        ]
        fcfs = Simulator(power8_minsky(), make_scheduler("FCFS"), jobs).run()
        easy = Simulator(power8_minsky(), BackfillScheduler(), jobs).run()
        assert mean_waiting_time(easy.records) < mean_waiting_time(fcfs.records)
