"""Tests for the FCFS and Best-Fit greedy baselines."""

import pytest

from repro.schedulers import BestFitScheduler, FCFSScheduler, RandomScheduler
from repro.topology.builders import cluster

from tests.conftest import make_job
from tests.schedulers.test_base import make_ctx


class TestFCFS:
    def test_first_fit_lowest_gpu_ids(self):
        ctx = make_ctx()
        sched = FCFSScheduler()
        sched.submit(make_job("a", num_gpus=2))
        (sol,) = sched.schedule(ctx)
        assert sol.gpus == ("m0/gpu0", "m0/gpu1")

    def test_strict_fifo_head_blocks(self):
        ctx = make_ctx()
        sched = FCFSScheduler()
        sched.submit(make_job("big", num_gpus=8, arrival_time=0.0))
        sched.submit(make_job("small", num_gpus=1, arrival_time=1.0))
        placed = sched.schedule(ctx)
        assert placed == []  # the 8-GPU head blocks everyone
        assert sched.queue_length() == 2

    def test_places_in_arrival_order(self):
        ctx = make_ctx()
        sched = FCFSScheduler()
        sched.submit(make_job("second", num_gpus=2, arrival_time=2.0))
        sched.submit(make_job("first", num_gpus=2, arrival_time=1.0))
        placed = sched.schedule(ctx)
        assert [s.job_id for s in placed] == ["first", "second"]
        # first job got the lowest ids
        assert placed[0].gpus == ("m0/gpu0", "m0/gpu1")

    def test_topology_blind_splits_across_sockets(self):
        ctx = make_ctx()
        ctx.alloc.allocate("x", ["m0/gpu0"])
        sched = FCFSScheduler()
        sched.submit(make_job("a", num_gpus=2))
        (sol,) = sched.schedule(ctx)
        assert sol.gpus == ("m0/gpu1", "m0/gpu2")  # crosses the socket line
        assert not sol.p2p


class TestBestFit:
    def test_backfills_past_blocked_head(self):
        ctx = make_ctx()
        sched = BestFitScheduler()
        sched.submit(make_job("big", num_gpus=8, arrival_time=0.0))
        sched.submit(make_job("small", num_gpus=1, arrival_time=1.0))
        placed = sched.schedule(ctx)
        assert [s.job_id for s in placed] == ["small"]
        assert sched.queue_length() == 1

    def test_picks_tightest_machine(self):
        topo = cluster(2)
        ctx = make_ctx(topo)
        ctx.alloc.allocate("x", ["m1/gpu0", "m1/gpu1"])  # m1 has 2 free
        sched = BestFitScheduler()
        sched.submit(make_job("a", num_gpus=2))
        (sol,) = sched.schedule(ctx)
        assert {topo.machine_of(g) for g in sol.gpus} == {"m1"}

    def test_fills_most_used_socket_first(self):
        ctx = make_ctx()
        ctx.alloc.allocate("x", ["m0/gpu0"])  # socket0 partially used
        sched = BestFitScheduler()
        sched.submit(make_job("a", num_gpus=1))
        (sol,) = sched.schedule(ctx)
        assert sol.gpus == ("m0/gpu1",)  # bin packs into socket0

    def test_places_multiple_jobs_one_round(self):
        ctx = make_ctx()
        sched = BestFitScheduler()
        sched.submit(make_job("a", num_gpus=2, arrival_time=0.0))
        sched.submit(make_job("b", num_gpus=2, arrival_time=1.0))
        placed = sched.schedule(ctx)
        assert len(placed) == 2
        used = {g for s in placed for g in s.gpus}
        assert len(used) == 4  # no overlap within the round


class TestRandom:
    def test_deterministic_under_seed(self):
        a = RandomScheduler(seed=3)
        b = RandomScheduler(seed=3)
        ctx_a, ctx_b = make_ctx(), make_ctx()
        a.submit(make_job("j", num_gpus=2))
        b.submit(make_job("j", num_gpus=2))
        assert a.schedule(ctx_a)[0].gpus == b.schedule(ctx_b)[0].gpus

    def test_only_feasible_machines(self):
        topo = cluster(2)
        ctx = make_ctx(topo)
        ctx.alloc.allocate("x", topo.gpus(machine="m0"))
        sched = RandomScheduler(seed=0)
        sched.submit(make_job("j", num_gpus=4))
        (sol,) = sched.schedule(ctx)
        assert {topo.machine_of(g) for g in sol.gpus} == {"m1"}

    def test_skips_unplaceable(self):
        ctx = make_ctx()
        sched = RandomScheduler(seed=0)
        sched.submit(make_job("j", num_gpus=8))
        assert sched.schedule(ctx) == []
