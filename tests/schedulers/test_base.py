"""Tests for the scheduler queue machinery and factory."""

import pytest

from repro.core.placement import PlacementEngine
from repro.schedulers import (
    BestFitScheduler,
    FCFSScheduler,
    RandomScheduler,
    TopoAwareScheduler,
    make_scheduler,
)
from repro.schedulers.base import SchedulingContext
from repro.topology.allocation import AllocationState
from repro.topology.builders import power8_minsky

from tests.conftest import make_job


def make_ctx(topo=None):
    topo = topo or power8_minsky()
    alloc = AllocationState(topo)
    return SchedulingContext(
        topo=topo,
        alloc=alloc,
        engine=PlacementEngine(topo, alloc),
        co_runners={},
    )


class TestQueue:
    def test_queue_sorted_by_arrival(self):
        sched = FCFSScheduler()
        sched.submit(make_job("late", arrival_time=10.0))
        sched.submit(make_job("early", arrival_time=1.0))
        assert [j.job_id for j in sched.queued_jobs()] == ["early", "late"]

    def test_duplicate_submission_rejected(self):
        sched = FCFSScheduler()
        sched.submit(make_job("a"))
        with pytest.raises(ValueError, match="already queued"):
            sched.submit(make_job("a"))

    def test_queue_length(self):
        sched = FCFSScheduler()
        assert sched.queue_length() == 0
        sched.submit(make_job("a"))
        assert sched.queue_length() == 1


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("FCFS", FCFSScheduler),
            ("BF", BestFitScheduler),
            ("best-fit", BestFitScheduler),
            ("TOPO-AWARE", TopoAwareScheduler),
            ("topo_aware_p", TopoAwareScheduler),
            ("RANDOM", RandomScheduler),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_scheduler(name), cls)

    def test_topo_p_variant_postpones(self):
        assert make_scheduler("TOPO-AWARE-P").postpone
        assert not make_scheduler("TOPO-AWARE").postpone

    def test_canonical_names(self):
        assert make_scheduler("TOPO-AWARE-P").name == "TOPO-AWARE-P"
        assert make_scheduler("BF").name == "BF"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("LOTTERY")
