"""Interplay between scheduling policies and failure injection."""

import pytest

from repro.schedulers import make_scheduler
from repro.sim.engine import MachineFailure, Simulator
from repro.topology.builders import cluster

from tests.conftest import make_job


class TestPostponementDuringOutage:
    def test_postponed_job_placed_after_recovery(self):
        """A P2P-requiring job whose only P2P option is on the failed
        machine must keep postponing until recovery, then place there."""
        topo_factory = lambda: cluster(2)
        jobs = [
            # occupy one GPU in each socket of m1 -> m1 offers no P2P pair
            make_job("frag-a", num_gpus=1, arrival_time=0.0, iterations=3000),
            make_job("frag-b", num_gpus=1, arrival_time=0.1, iterations=3000),
            # the P2P-hungry pair job arrives while m0 is down
            make_job("pair", num_gpus=2, batch_size=1, min_utility=0.5,
                     arrival_time=10.0, iterations=200),
        ]

        # fail m0 before anything arrives so the fragments are forced
        # onto m1's two sockets (the engine spreads them there), then
        # recover m0 in time for the pair job
        sim = Simulator(
            topo_factory(),
            make_scheduler("TOPO-AWARE-P"),
            jobs,
            failures=[MachineFailure("m0", at_time=0.0, duration_s=60.0)],
        )
        result = sim.run()
        pair = result.record_of("pair")
        assert pair.p2p
        assert pair.placed_at >= 60.0  # had to wait for m0's recovery
        assert {g.split("/")[0] for g in pair.gpus} == {"m0"}

    def test_backfill_estimates_survive_failures(self):
        """EASY backfilling keeps estimated-end bookkeeping consistent
        when jobs die and are resubmitted."""
        jobs = [
            make_job(f"j{i}", num_gpus=2, arrival_time=float(i), iterations=400)
            for i in range(6)
        ]
        sim = Simulator(
            cluster(2),
            make_scheduler("EASY-BACKFILL"),
            jobs,
            failures=[MachineFailure("m0", at_time=20.0, duration_s=100.0)],
        )
        result = sim.run()
        assert all(r.finished_at is not None for r in result.records)

    def test_sjf_reorders_restarted_jobs(self):
        """A restarted job re-enters SJF's duration ordering normally."""
        jobs = [
            make_job("long", num_gpus=2, arrival_time=0.0, iterations=3000),
            make_job("short", num_gpus=2, arrival_time=1.0, iterations=100),
        ]
        sim = Simulator(
            cluster(1),
            make_scheduler("SJF"),
            jobs,
            failures=[MachineFailure("m0", at_time=5.0, duration_s=30.0)],
        )
        result = sim.run()
        assert all(r.finished_at is not None for r in result.records)
        # both were killed by the outage; the short one goes first after
        # recovery under SJF
        short = result.record_of("short")
        long = result.record_of("long")
        assert short.restarts >= 0 and long.restarts == 1
        assert short.finished_at < long.finished_at
