"""Introspection server: endpoint bodies, HTTP plumbing, run wiring."""

import json
import math
import urllib.error
import urllib.request

import pytest

from repro.analysis.scenarios import table1_jobs
from repro.obs import EventLog, MetricsRegistry
from repro.obs.alerts import Rule, Watchdog
from repro.obs.server import IntrospectionServer
from repro.obs.state import (
    RunSnapshot,
    STATE_SCHEMA_VERSION,
    SnapshotObserver,
    SnapshotPublisher,
)
from repro.obs.telemetry import TelemetryObserver
from repro.schedulers import make_scheduler
from repro.sim.runner import run_with_observers
from repro.topology.builders import power8_minsky


def fetch(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read()


@pytest.fixture()
def full_stack():
    """Run table 1 with every observability piece attached and serving."""
    registry = MetricsRegistry()
    log = EventLog()
    publisher = SnapshotPublisher()
    telemetry = TelemetryObserver(registry, log, scheduler="TOPO-AWARE")
    watchdog = Watchdog(
        registry, log, (Rule("qd", "queue_depth", ">=", 0.0),),
        scheduler="TOPO-AWARE",
    )
    snapshots = SnapshotObserver(publisher, clock=lambda: 1000.0)
    with IntrospectionServer(publisher, registry, watchdog) as server:
        result = run_with_observers(
            power8_minsky(),
            make_scheduler("TOPO-AWARE"),
            table1_jobs(),
            observers=(telemetry, watchdog, snapshots),
        )
        yield server, result


class TestHTTP:
    def test_all_endpoints_over_http(self, full_stack):
        server, result = full_stack
        status, ctype, body = fetch(server.url + "/metrics")
        assert status == 200 and ctype.startswith("text/plain")
        assert b"repro_jobs_finished_total" in body

        status, ctype, body = fetch(server.url + "/healthz")
        assert status == 200 and ctype == "application/json"
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["phase"] == "finished"
        assert health["uptime_s"] >= 0.0

        status, _, body = fetch(server.url + "/state")
        state = json.loads(body)
        assert state["schema"] == STATE_SCHEMA_VERSION
        assert state["finished"] is True
        assert state["makespan"] == pytest.approx(result.makespan)
        assert state["total_gpus"] == 4
        assert sum(state["free_gpus_by_machine"].values()) == 4

        status, _, body = fetch(server.url + "/alerts")
        alerts = json.loads(body)
        assert alerts["enabled"] is True
        assert alerts["rules"] == ["qd"]
        assert alerts["fired_total"] == 1  # >= 0 fires on round one

    def test_unknown_route_is_json_404(self, full_stack):
        server, _ = full_stack
        with pytest.raises(urllib.error.HTTPError) as err:
            fetch(server.url + "/nope")
        assert err.value.code == 404
        assert json.loads(err.value.read())["error"] == "no route /nope"

    def test_query_strings_are_ignored(self, full_stack):
        server, _ = full_stack
        status, _, body = fetch(server.url + "/healthz?probe=1")
        assert status == 200 and json.loads(body)["status"] == "ok"

    def test_port_zero_binds_a_free_port(self):
        publisher = SnapshotPublisher()
        with IntrospectionServer(publisher) as server:
            assert server.port > 0
            assert server.url == f"http://127.0.0.1:{server.port}"


class TestRenderBodies:
    def test_idle_server_reports_idle(self):
        server = IntrospectionServer(SnapshotPublisher())
        body, code = server.render_health()
        assert code == 200
        doc = json.loads(body)
        assert doc["phase"] == "idle"
        assert doc["last_event_age_s"] is None
        assert json.loads(server.render_state()) == {
            "phase": "idle", "snapshot": None,
        }

    def test_no_registry_no_watchdog_bodies(self):
        server = IntrospectionServer(SnapshotPublisher())
        assert server.render_metrics().startswith("# no metrics registry")
        assert json.loads(server.render_alerts()) == {
            "enabled": False, "active": [], "fired": [],
        }

    def test_health_age_tracks_snapshot_wall_time(self):
        publisher = SnapshotPublisher()
        publisher.publish(RunSnapshot(wall_time=0.0, events_seen=7))
        server = IntrospectionServer(publisher)
        doc = json.loads(server.render_health()[0])
        assert doc["phase"] == "running"
        assert doc["events_seen"] == 7
        assert doc["last_event_age_s"] > 0.0


class TestSnapshotObserver:
    def test_mid_run_snapshots_progress(self):
        publisher = SnapshotPublisher()
        seen: list[RunSnapshot] = []

        class Spy(SnapshotObserver):
            def on_decision_round(self, t, placed, queued, elapsed_s):
                super().on_decision_round(t, placed, queued, elapsed_s)
                seen.append(self.publisher.snapshot)

        run_with_observers(
            power8_minsky(),
            make_scheduler("TOPO-AWARE"),
            table1_jobs(),
            observers=(
                Spy(publisher, clock=lambda: 0.0, min_publish_interval_s=0.0),
            ),
        )
        assert seen  # republished at every round boundary
        rounds = [s.decision_rounds for s in seen]
        assert rounds == sorted(rounds)
        assert any(s.running_jobs for s in seen)
        assert all(not s.finished for s in seen)
        final = publisher.snapshot
        assert final.finished and final.makespan > 0.0
        assert final.allocation_epoch > 0
        assert final.queue_depth == 0

    def test_rebuilds_throttled_by_wall_clock(self):
        ticks = iter(x * 0.01 for x in range(10_000))  # 10 ms per read
        observer = SnapshotObserver(
            SnapshotPublisher(), clock=lambda: next(ticks),
            min_publish_interval_s=0.05,
        )
        run_with_observers(
            power8_minsky(), make_scheduler("TOPO-AWARE"), table1_jobs(),
            observers=(observer,),
        )
        final = observer.publisher.snapshot
        assert final.finished  # finalize always publishes...
        # ...but intermediate rounds were decimated: far fewer clock
        # reads than rounds x (throttle check + build) would need
        assert final.decision_rounds > 5
        reads = round(final.wall_time / 0.01)
        assert reads < final.decision_rounds * 2 + 20

    def test_snapshot_json_serialisable(self):
        publisher = SnapshotPublisher()
        run_with_observers(
            power8_minsky(),
            make_scheduler("TOPO-AWARE"),
            table1_jobs(),
            observers=(SnapshotObserver(publisher),),
        )
        doc = publisher.snapshot.to_dict()
        text = json.dumps(doc)
        assert json.loads(text)["scheduler"] == "TOPO-AWARE"
        cache = doc["placement_cache"]
        assert {"hits", "misses"} <= set(cache)
        assert not any(
            isinstance(v, float) and math.isnan(v) for v in cache.values()
        )
