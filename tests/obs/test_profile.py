"""Trace analytics: Chrome export validity and the critical-path profiler."""

import json

import pytest

from repro.analysis.scenarios import table1_jobs
from repro.obs.profile import (
    format_profile,
    profile_spans,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.trace import SpanRecorder, read_trace, recording
from repro.schedulers import make_scheduler
from repro.sim.runner import run_with_observers
from repro.topology.builders import dgx2, power8_minsky
from repro.workload.job import Job, ModelType


def make_recorder():
    """Deterministic recorder: each clock read advances 1 ms."""
    t = iter(range(10_000))
    return SpanRecorder(clock=lambda: next(t) * 1e-3)


def synthetic_spans():
    """propose -> (drb.map -> fm.bipartition, utility.score) twice."""
    rec = make_recorder()
    for jid in ("job0", "job1"):
        with rec.span("sched.propose", job_id=jid, outcome="place") as root:
            with rec.span("drb.map", job_id=jid):
                with rec.span("fm.bipartition", cut=2.0):
                    pass
            with rec.span("utility.score", utility=0.9):
                pass
            root.set(utility=0.9)
    return [s.to_dict() for s in rec.spans]


@pytest.fixture(scope="module")
def scenario_spans():
    """Spans from a real run so trace points and profiler agree."""
    with recording() as rec:
        run_with_observers(
            power8_minsky(), make_scheduler("TOPO-AWARE"), table1_jobs()
        )
    return [s.to_dict() for s in rec.spans]


class TestChromeExport:
    def test_required_keys_and_types(self):
        doc = to_chrome_trace(synthetic_spans())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        meta, *events = doc["traceEvents"]
        assert meta["ph"] == "M" and meta["name"] == "thread_name"
        for ev in events:
            assert ev["ph"] == "X"
            for key in ("name", "cat", "ts", "dur", "pid", "tid", "args"):
                assert key in ev
            assert ev["dur"] >= 0.0

    def test_timestamps_monotonic_and_microseconds(self):
        doc = to_chrome_trace(synthetic_spans())
        stamps = [ev["ts"] for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert stamps == sorted(stamps)
        # recorder ticks 1 ms apart (t0 eats the first tick) -> exported
        # ts in whole microseconds
        assert stamps[0] == pytest.approx(1000.0)
        assert stamps[1] == pytest.approx(2000.0)

    def test_category_is_dotted_prefix_and_args_carry_attrs(self):
        doc = to_chrome_trace(synthetic_spans())
        by_name = {}
        for ev in doc["traceEvents"]:
            if ev["ph"] == "X":
                by_name.setdefault(ev["name"], ev)
        assert by_name["fm.bipartition"]["cat"] == "fm"
        assert by_name["fm.bipartition"]["args"] == {"cut": 2.0}
        assert by_name["sched.propose"]["cat"] == "sched"
        assert by_name["sched.propose"]["args"]["job_id"] == "job0"

    def test_write_round_trips_as_json(self, tmp_path):
        out = write_chrome_trace(synthetic_spans(), tmp_path / "t.chrome.json")
        doc = json.loads(out.read_text())
        assert doc["otherData"]["spans"] == 8
        assert len(doc["traceEvents"]) == 9  # metadata + 8 spans

    def test_empty_trace_exports_metadata_only(self):
        doc = to_chrome_trace([])
        assert len(doc["traceEvents"]) == 1
        assert doc["otherData"]["spans"] == 0

    def test_real_scenario_trace_exports_cleanly(self, scenario_spans):
        doc = to_chrome_trace(scenario_spans)
        stamps = [ev["ts"] for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert stamps == sorted(stamps)
        assert len(stamps) == len(scenario_spans)


class TestProfiler:
    def test_phase_table_self_vs_total(self):
        profile = profile_spans(synthetic_spans())
        phases = {p.name: p for p in profile.phases}
        propose = phases["sched.propose"]
        assert propose.count == 2
        # self time excludes the two direct children per round
        assert propose.self_s < propose.total_s
        leaf = phases["fm.bipartition"]
        assert leaf.self_s == pytest.approx(leaf.total_s)
        # table sorted by total, descending
        totals = [p.total_s for p in profile.phases]
        assert totals == sorted(totals, reverse=True)

    def test_rounds_and_critical_path(self):
        profile = profile_spans(synthetic_spans())
        assert [r.job_id for r in profile.rounds] == ["job0", "job1"]
        path = profile.rounds[0].critical_path
        assert path[0][0] == "sched.propose"
        # the drb.map subtree (2 spans) outweighs utility.score (1 span)
        assert [name for name, _ in path] == [
            "sched.propose", "drb.map", "fm.bipartition",
        ]
        assert profile.rounds[0].outcome == "place"

    def test_job_filter_narrows_rounds_not_phases(self):
        whole = profile_spans(synthetic_spans())
        one = profile_spans(synthetic_spans(), job_id="job1")
        assert [r.job_id for r in one.rounds] == ["job1"]
        assert one.per_job_s.keys() == {"job1"}
        assert len(one.phases) == len(whole.phases)  # table stays global

    def test_slowest_rounds_orders_by_duration(self, scenario_spans):
        profile = profile_spans(scenario_spans)
        slowest = profile.slowest_rounds(3)
        durs = [r.dur_s for r in slowest]
        assert durs == sorted(durs, reverse=True)

    def test_real_scenario_has_expected_phases(self, scenario_spans):
        profile = profile_spans(scenario_spans)
        names = {p.name for p in profile.phases}
        assert "sched.propose" in names
        assert any(n.startswith("drb.") for n in names)
        assert any(n.startswith("utility.") for n in names)
        assert profile.per_job_s  # every table-1 job decided at least once

    def test_fm_phase_on_flat_mesh_topology(self):
        # FM only runs when a pool has no structural boundary left to
        # cut along; DGX-2's 16-GPU NVSwitch mesh is exactly that case
        jobs = [
            Job(f"job{i}", ModelType.GOOGLENET, 4, g, arrival_time=float(i))
            for i, g in enumerate((3, 5, 6))
        ]
        with recording() as rec:
            run_with_observers(dgx2(), make_scheduler("TOPO-AWARE"), jobs)
        profile = profile_spans([s.to_dict() for s in rec.spans])
        fm = [p for p in profile.phases if p.name == "fm.bipartition"]
        assert fm and fm[0].count > 0

    def test_round_trip_through_jsonl(self, tmp_path):
        rec = make_recorder()
        with rec.span("sched.propose", job_id="job0", outcome="place"):
            with rec.span("drb.map", job_id="job0"):
                pass
        path = rec.write(tmp_path / "trace.jsonl")
        profile = profile_spans(read_trace(path))
        assert profile.span_count == 2
        assert profile.rounds[0].critical_path[-1][0] == "drb.map"


class TestFormatProfile:
    def test_empty_trace_message(self):
        assert format_profile(profile_spans([])) == "(empty trace: no spans)"

    def test_renders_all_sections(self):
        text = format_profile(profile_spans(synthetic_spans()), top=5)
        assert "per-phase aggregate" in text
        assert "slowest decision rounds" in text
        assert "jobs by total decision time" in text
        assert "critical path: sched.propose" in text
