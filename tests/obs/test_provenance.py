"""Decision provenance: recorder semantics, journals, explain renderers."""

import json

import pytest

from repro.analysis.explain import (
    decision_summary_table,
    format_job_explanation,
    format_round_explanation,
)
from repro.analysis.scenarios import scenario1_jobs, table1_jobs
from repro.obs import MetricsRegistry
from repro.obs.provenance import (
    DecisionRecorder,
    PROVENANCE_SCHEMA_VERSION,
    PRUNE_REASONS,
    decision_records,
    read_decisions,
    validate_decision,
)
from repro.schedulers import make_scheduler
from repro.sim.runner import run_with_observers
from repro.topology.builders import cluster, power8_minsky


def run_recorded(jobs=None, scheduler="TOPO-AWARE-P", **recorder_kwargs):
    recorder = DecisionRecorder(journal=True, **recorder_kwargs)
    result = run_with_observers(
        cluster(3),
        make_scheduler(scheduler),
        # 80 jobs on 3 machines: exercises placed, postponed and
        # memo-hit decisions (40 jobs produces neither of the latter)
        jobs if jobs is not None else scenario1_jobs(80, seed=42),
        observers=(recorder,),
    )
    return recorder, result


class TestRecorder:
    def test_rejects_bad_ring_size(self):
        with pytest.raises(ValueError):
            DecisionRecorder(ring_size=0)

    def test_rejects_unknown_verdict(self):
        rec = DecisionRecorder()
        job = table1_jobs()[0]
        with pytest.raises(ValueError):
            rec.decision(
                t=0.0, scheduler="X", job=job, queued=1, verdict="bogus"
            )

    def test_every_placement_has_a_decision(self):
        recorder, result = run_recorded()
        decisions = recorder.for_job(result.records[0].job.job_id)
        assert decisions, "first job should have at least one decision"
        placed = [
            r
            for rec in result.records
            if rec.placed_at is not None
            for r in recorder.for_job(rec.job.job_id)
            if r["verdict"] == "placed"
        ]
        n_placed = sum(1 for r in result.records if r.placed_at is not None)
        # restarts re-place a job, so >=; every placed job appears
        assert len(placed) >= n_placed

    def test_decision_schema_and_pools(self):
        recorder, _ = run_recorded()
        for record in decision_records(map(json.loads, recorder.journal)):
            validate_decision(record)
            assert record["schema"] == PROVENANCE_SCHEMA_VERSION
            # acceptance criterion: candidate-pool sizes for EVERY
            # decision that reached the engine (memo hit or miss)
            if record["reason"] != "capacity":
                pools = record["pools"]
                assert pools is not None
                assert pools["machines"] == 3
                assert isinstance(pools["pool_sizes"], list)
            if record["verdict"] == "placed":
                util = record["utility"]
                assert util is not None
                for term in util["terms"].values():
                    assert len(term["bounds"]) == 2
                    assert 0.0 <= term["norm"] <= 1.0 + 1e-9

    def test_memo_hits_still_carry_pools(self):
        recorder, _ = run_recorded()
        hits = [
            r
            for r in decision_records(map(json.loads, recorder.journal))
            if (r.get("memo") or {}).get("hit")
        ]
        if not hits:  # scenario-dependent; do not vacuous-pass silently
            pytest.skip("no memo hits in this scenario")
        for record in hits:
            assert record["pools"] is not None
            assert record["pools"]["eligible"] >= 1

    def test_round_numbers_monotonic(self):
        recorder, _ = run_recorded()
        rounds = [
            r["round"]
            for r in decision_records(map(json.loads, recorder.journal))
        ]
        assert rounds == sorted(rounds)

    def test_counters_and_registry_families(self):
        registry = MetricsRegistry()
        recorder, _ = run_recorded(registry=registry, scheduler="TOPO-AWARE")
        counts = recorder.counts()
        assert counts["recorded"] == len(recorder.journal)
        assert counts["dropped"] == 0
        assert registry.get("repro_decisions_recorded_total").value(
            scheduler="TOPO-AWARE"
        ) == counts["recorded"]
        assert registry.get("repro_decisions_dropped_total").value(
            scheduler="TOPO-AWARE"
        ) == 0

    def test_ring_overflow_counts_dropped_decisions(self):
        recorder, _ = run_recorded(ring_size=8)
        counts = recorder.counts()
        assert counts["dropped"] > 0
        # the journal keeps everything even when the ring evicted it
        assert len(recorder.journal) == counts["recorded"]
        assert len(recorder.decisions()) <= 8

    def test_job_and_round_events_recorded(self):
        recorder, _ = run_recorded()
        kinds = {kind for _, kind, _ in recorder.entries_after(0)}
        assert "job" in kinds and "round" in kinds

    def test_write_journal_requires_journal_mode(self, tmp_path):
        rec = DecisionRecorder()
        with pytest.raises(ValueError):
            rec.write_journal(tmp_path / "d.jsonl")


class TestJournalIO:
    @pytest.mark.parametrize("name", ["d.jsonl", "d.jsonl.gz"])
    def test_round_trip(self, tmp_path, name):
        recorder, _ = run_recorded()
        path = recorder.write_journal(tmp_path / name)
        records = read_decisions(path)
        assert [json.dumps(r, sort_keys=False) for r in records] == list(
            recorder.journal
        )

    def test_read_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "d.jsonl"
        path.write_text('{"schema": 999, "kind": "decision"}\n')
        with pytest.raises(ValueError, match="schema"):
            read_decisions(path)

    def test_read_rejects_non_json(self, tmp_path):
        path = tmp_path / "d.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not JSON"):
            read_decisions(path)

    def test_validate_requires_decision_fields(self):
        with pytest.raises(ValueError, match="missing"):
            validate_decision(
                {"schema": PROVENANCE_SCHEMA_VERSION, "kind": "decision"}
            )


class TestExplainRendering:
    def test_job_explanation_shows_pools_bounds_and_verdict(self):
        recorder, result = run_recorded()
        placed = next(
            r.job.job_id for r in result.records if r.placed_at is not None
        )
        records = [json.loads(line) for line in recorder.journal]
        text = format_job_explanation(placed, records)
        assert "PLACED" in text
        assert "candidate pools:" in text
        assert "bounds=[" in text
        assert "comm_cost" in text
        assert "slo check:" in text

    def test_postponed_explanation_names_failing_predicate(self):
        recorder, _ = run_recorded()
        records = [json.loads(line) for line in recorder.journal]
        postponed = [r for r in records if r["verdict"] == "postponed"]
        if not postponed:
            pytest.skip("no postponements in this scenario")
        text = format_job_explanation(postponed[0]["job_id"], records)
        assert "POSTPONED" in text
        assert "failing predicate:" in text

    def test_round_explanation(self):
        recorder, _ = run_recorded()
        records = [json.loads(line) for line in recorder.journal]
        round_no = records[0]["round"]
        text = format_round_explanation(round_no, records)
        assert f"round {round_no}:" in text
        assert "decision(s)" in text

    def test_unknown_job_and_round(self):
        assert "no decision records" in format_job_explanation("nope", [])
        assert "no decision records" in format_round_explanation(7, [])

    def test_summary_table_lists_every_decision(self):
        recorder, _ = run_recorded()
        records = [json.loads(line) for line in recorder.journal]
        table = decision_summary_table(records)
        assert len(table.splitlines()) == len(records) + 1  # + header


class TestPrefilterProvenance:
    def test_prefilter_is_a_prune_reason(self):
        assert "prefilter" in PRUNE_REASONS

    def test_decisions_carry_prefilter_report(self):
        """Every decision that reached host filtering records what the
        top-k prefilter did — including memo hits, whose pools are
        re-reported through the read-only prefilter clone."""
        recorder, _ = run_recorded()
        seen = 0
        for record in decision_records(map(json.loads, recorder.journal)):
            if record["reason"] == "capacity" or record["pools"] is None:
                continue
            pools = record["pools"]
            pf = pools.get("prefilter")
            assert pf is not None
            assert set(pf) == {"k", "considered", "pruned"}
            assert pf["considered"] >= 0 and pf["pruned"] >= 0
            assert set(pools["pruned"]) == set(PRUNE_REASONS)
            seen += 1
        assert seen > 0

    def test_explain_renders_prefilter_line(self):
        recorder, result = run_recorded()
        placed = next(
            r.job.job_id for r in result.records if r.placed_at is not None
        )
        records = [json.loads(line) for line in recorder.journal]
        text = format_job_explanation(placed, records)
        assert "prefilter: probed" in text
        assert "capacity-eligible host(s)" in text


class TestCapacityProvenance:
    def test_capacity_pruned_job_records_bounds(self):
        """A job larger than the machine is pruned O(1) with the
        capacity inputs recorded."""
        import dataclasses

        oversized = dataclasses.replace(table1_jobs()[0], num_gpus=5)
        recorder = DecisionRecorder(journal=True)
        run_with_observers(
            power8_minsky(),  # 4 GPUs: a 5-GPU ask can never fit
            make_scheduler("TOPO-AWARE"),
            [oversized],
            observers=(recorder,),
        )
        records = decision_records(map(json.loads, recorder.journal))
        capacity = [r for r in records if r["reason"] == "capacity"]
        assert capacity
        assert capacity[0]["verdict"] == "no-fit"
        cap = capacity[0]["capacity"]
        bound = "max_free" if cap["single_node"] else "total_free"
        assert cap[bound] < 5
