"""SSE event streaming: replay, overflow, disconnects, determinism."""

import http.client
import json
import urllib.parse
import urllib.request

import pytest

from repro.analysis.scenarios import table1_jobs
from repro.obs import MetricsRegistry
from repro.obs.provenance import DecisionRecorder
from repro.obs.server import IntrospectionServer
from repro.obs.state import SnapshotPublisher


class SSEClient:
    """Minimal SSE reader with explicit connection control."""

    def __init__(self, url: str, last_event_id: int | None = None) -> None:
        parsed = urllib.parse.urlsplit(url)
        self.conn = http.client.HTTPConnection(
            parsed.hostname, parsed.port, timeout=10
        )
        headers = {}
        if last_event_id is not None:
            headers["Last-Event-ID"] = str(last_event_id)
        self.conn.request("GET", "/events", headers=headers)
        self.resp = self.conn.getresponse()

    def read_frames(self, n: int) -> list[dict]:
        """Read ``n`` SSE frames ({'id','event','data'} dicts)."""
        frames: list[dict] = []
        buf: dict = {}
        while len(frames) < n:
            line = self.resp.readline().decode("utf-8").rstrip("\n")
            if line.startswith(":"):
                continue  # comment / keep-alive
            if not line:
                if buf:
                    frames.append(buf)
                    buf = {}
                continue
            key, _, value = line.partition(": ")
            buf[key] = value
        return frames

    def close(self) -> None:
        self.conn.close()


@pytest.fixture()
def recorder_server():
    recorder = DecisionRecorder(journal=True)
    server = IntrospectionServer(
        SnapshotPublisher(), MetricsRegistry(), recorder=recorder
    )
    server.start()
    yield recorder, server
    server.stop()


def record_decisions(recorder: DecisionRecorder, n: int) -> None:
    job = table1_jobs()[0]
    for _ in range(n):
        recorder.decision(
            t=0.0,
            scheduler="TOPO-AWARE",
            job=job,
            queued=1,
            verdict="no-fit",
            reason="capacity",
        )


class TestStream:
    def test_headers_and_live_frames(self, recorder_server):
        recorder, server = recorder_server
        client = SSEClient(server.url)
        assert client.resp.status == 200
        assert client.resp.getheader("Content-Type").startswith(
            "text/event-stream"
        )
        record_decisions(recorder, 2)
        frames = client.read_frames(2)
        client.close()
        assert [f["event"] for f in frames] == ["decision", "decision"]
        assert [int(f["id"]) for f in frames] == [1, 2]
        for frame in frames:
            assert json.loads(frame["data"])["verdict"] == "no-fit"

    def test_last_event_id_replays_from_ring(self, recorder_server):
        recorder, server = recorder_server
        record_decisions(recorder, 5)
        client = SSEClient(server.url, last_event_id=2)
        frames = client.read_frames(3)
        client.close()
        assert [int(f["id"]) for f in frames] == [3, 4, 5]
        # replayed payloads byte-match the journal lines
        assert [f["data"] for f in frames] == recorder.journal[2:]

    def test_ring_overflow_replay_starts_at_oldest_kept(self):
        recorder = DecisionRecorder(ring_size=4, journal=True)
        server = IntrospectionServer(
            SnapshotPublisher(), MetricsRegistry(), recorder=recorder
        )
        server.start()
        try:
            record_decisions(recorder, 10)
            assert recorder.counts()["dropped"] == 6
            client = SSEClient(server.url, last_event_id=0)
            frames = client.read_frames(4)
            client.close()
            # only the four ring survivors replay: seqs 7..10
            assert [int(f["id"]) for f in frames] == [7, 8, 9, 10]
        finally:
            server.stop()

    def test_disconnect_mid_stream_leaves_server_healthy(
        self, recorder_server
    ):
        recorder, server = recorder_server
        client = SSEClient(server.url)
        record_decisions(recorder, 1)
        client.read_frames(1)
        client.close()  # server's write loop hits the dead socket
        record_decisions(recorder, 2)
        # new client still gets the full replay, plain routes still work
        late = SSEClient(server.url, last_event_id=0)
        frames = late.read_frames(3)
        late.close()
        assert [int(f["id"]) for f in frames] == [1, 2, 3]
        with urllib.request.urlopen(server.url + "/healthz", timeout=5) as r:
            assert r.status == 200

    def test_events_404_without_recorder(self):
        server = IntrospectionServer(SnapshotPublisher(), MetricsRegistry())
        server.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/events", timeout=5)
            assert err.value.code == 404
        finally:
            server.stop()

    def test_decisions_endpoint(self, recorder_server):
        recorder, server = recorder_server
        record_decisions(recorder, 3)
        with urllib.request.urlopen(server.url + "/decisions", timeout=5) as r:
            doc = json.load(r)
        assert doc["enabled"] is True
        assert doc["recorded"] == 3
        assert doc["dropped"] == 0
        assert len(doc["decisions"]) == 3


class TestKeepalive:
    def read_raw_lines(self, resp, n: int) -> list[str]:
        return [
            resp.readline().decode("utf-8").rstrip("\n") for _ in range(n)
        ]

    def test_idle_stream_emits_keepalive_comments(self):
        recorder = DecisionRecorder(journal=True)
        server = IntrospectionServer(
            SnapshotPublisher(), MetricsRegistry(), recorder=recorder
        )
        # instance override: fast heartbeat, fast wait granularity
        server.SSE_KEEPALIVE_S = 0.2
        server.SSE_WAIT_S = 0.05
        server.start()
        client = SSEClient(server.url)
        try:
            # ": stream open" comment + blank, then with no events at
            # all the idle loop must heartbeat within ~SSE_KEEPALIVE_S
            lines = self.read_raw_lines(client.resp, 4)
            assert lines[0] == ": stream open"
            assert ": keepalive" in lines
            # a slow consumer that only reads comments still gets real
            # frames afterwards: the heartbeat never corrupts framing
            record_decisions(recorder, 1)
            (frame,) = client.read_frames(1)
            assert frame["event"] == "decision"
            assert json.loads(frame["data"])["verdict"] == "no-fit"
        finally:
            client.close()
            server.stop()

    def test_keepalive_disabled_with_nonpositive_interval(self):
        recorder = DecisionRecorder(journal=True)
        server = IntrospectionServer(
            SnapshotPublisher(), MetricsRegistry(), recorder=recorder
        )
        server.SSE_KEEPALIVE_S = 0.0
        server.SSE_WAIT_S = 0.05
        server.start()
        client = SSEClient(server.url)
        try:
            lines = self.read_raw_lines(client.resp, 2)
            assert lines == [": stream open", ""]
            # idle for several would-be heartbeat periods, then a real
            # event: the very next frame is data, no comments in between
            import time

            time.sleep(0.5)
            record_decisions(recorder, 1)
            line = client.resp.readline().decode("utf-8").rstrip("\n")
            assert line.startswith("id: ")
        finally:
            client.close()
            server.stop()


class TestDaemonDeterminism:
    def test_streamed_decisions_match_journal(self):
        """A client streaming from a paused daemon sees, after resume,
        byte-for-byte the decision records the journal keeps — the SSE
        path adds no serialisation drift."""
        from repro.service import SchedulerService, ServiceServer
        from repro.topology.builders import cluster

        service = SchedulerService(
            cluster(2), "TOPO-AWARE", decision_journal=True
        )
        service.start()
        service.pause()
        server = ServiceServer(service, port=0).start()
        try:
            client = SSEClient(server.url, last_event_id=0)
            for i in range(4):
                service.submit(
                    {
                        "id": f"sse-{i}",
                        "model": "alexnet",
                        "batch_size": 4,
                        "num_gpus": 2,
                    }
                )
            service.resume()
            assert service.drain(30.0)
            journal = list(service.decision_recorder.journal)
            assert journal  # at least one decision happened
            streamed: list[str] = []
            while len(streamed) < len(journal):
                frame = client.read_frames(1)[0]
                if frame["event"] == "decision":
                    streamed.append(frame["data"])
            client.close()
            assert streamed == journal
        finally:
            server.stop()
            service.stop()
