"""TelemetryObserver: sim hooks -> registry + event log, tap-only."""

import pytest

from repro.analysis.scenarios import table1_jobs
from repro.obs import EventLog, MetricsRegistry
from repro.obs.export import parse_prometheus, render_prometheus, sample_value
from repro.obs.telemetry import TelemetryObserver
from repro.schedulers import make_scheduler
from repro.sim.events import MachineFailure
from repro.sim.runner import run_with_observers
from repro.topology.builders import power8_minsky


@pytest.fixture()
def run_table1():
    registry = MetricsRegistry()
    log = EventLog()
    observer = TelemetryObserver(
        registry, log, scheduler="TOPO-AWARE-P", total_gpus=4
    )
    jobs = table1_jobs()
    observer.run_start(len(jobs))
    result = run_with_observers(
        power8_minsky(),
        make_scheduler("TOPO-AWARE-P"),
        jobs,
        observers=(observer,),
    )
    observer.run_end(result)
    return registry, log, result


class TestMetricsFromRun:
    def test_lifecycle_counters(self, run_table1):
        registry, _, result = run_table1
        labels = {"scheduler": "TOPO-AWARE-P"}
        families = parse_prometheus(render_prometheus(registry))
        n = len(result.records)
        assert sample_value(families, "repro_jobs_arrived_total", labels=labels) == n
        assert sample_value(families, "repro_jobs_placed_total", labels=labels) == n
        assert sample_value(families, "repro_jobs_finished_total", labels=labels) == n

    def test_at_least_twelve_distinct_families(self, run_table1):
        registry, _, _ = run_table1
        families = parse_prometheus(render_prometheus(registry))
        assert len(families) >= 12
        assert families["repro_decision_latency_seconds"]["type"] == "histogram"
        assert families["repro_queue_depth"]["type"] == "gauge"

    def test_decision_latency_histogram_counts_rounds(self, run_table1):
        registry, _, result = run_table1
        hist = registry.get("repro_decision_latency_seconds")
        assert hist.count(scheduler="TOPO-AWARE-P") == result.decision_rounds
        assert hist.sum(scheduler="TOPO-AWARE-P") == pytest.approx(
            result.decision_time_s
        )

    def test_fastpath_counters_mirror_run_stats(self, run_table1):
        """The prefilter/DRB counter families report exactly what the
        engine's own stats dicts say the run did."""
        registry, _, result = run_table1
        sched = {"scheduler": "TOPO-AWARE-P"}
        pf = result.prefilter_stats
        drb = result.drb_stats
        assert pf and pf["calls"] > 0  # the fast paths were on
        assert registry.get(
            "repro_placement_prefilter_considered_total"
        ).value(**sched) == pf["considered"]
        assert registry.get(
            "repro_placement_prefilter_pruned_total"
        ).value(**sched) == pf["pruned"]
        assert registry.get("repro_drb_splits_reused_total").value(
            **sched
        ) == drb["splits_reused"]
        assert registry.get("repro_drb_splits_computed_total").value(
            **sched
        ) == drb["splits_computed"]
        assert registry.get("repro_drb_rounds_rebuilt_total").value(
            **sched
        ) == drb["rounds_rebuilt"]

    def test_gauges_return_to_idle_after_run(self, run_table1):
        registry, _, _ = run_table1
        assert registry.get("repro_gpus_busy").value(scheduler="TOPO-AWARE-P") == 0
        assert registry.get("repro_running_jobs").value(scheduler="TOPO-AWARE-P") == 0
        assert registry.get("repro_queue_depth").value(scheduler="TOPO-AWARE-P") == 0


class TestEventsFromRun:
    def test_every_lifecycle_event_logged(self, run_table1):
        _, log, result = run_table1
        n = len(result.records)
        assert len(log.of_type("arrival")) == n
        assert len(log.of_type("place")) == n
        assert len(log.of_type("finish")) == n
        assert len(log.of_type("run_start")) == 1
        assert len(log.of_type("run_end")) == 1

    def test_events_carry_scheduler_and_ordering(self, run_table1):
        _, log, _ = run_table1
        assert all(e["scheduler"] == "TOPO-AWARE-P" for e in log.events)
        times = [e["t"] for e in log.events]
        assert times == sorted(times)

    def test_place_events_expose_placement_facts(self, run_table1):
        _, log, result = run_table1
        by_job = {e["job_id"]: e for e in log.of_type("place")}
        for record in result.records:
            event = by_job[record.job.job_id]
            assert event["gpus"] == sorted(record.gpus)
            assert event["utility"] == pytest.approx(record.utility)
            assert event["postponements"] == record.postponements


class TestFailuresAndRequeues:
    def test_failure_victims_requeued_and_counted(self):
        registry = MetricsRegistry()
        log = EventLog()
        observer = TelemetryObserver(
            registry, log, scheduler="TOPO-AWARE", total_gpus=4
        )
        run_with_observers(
            power8_minsky(),
            make_scheduler("TOPO-AWARE"),
            table1_jobs(),
            observers=(observer,),
            failures=[MachineFailure(machine="m0", at_time=40.0, duration_s=5.0)],
        )
        labels = {"scheduler": "TOPO-AWARE"}
        assert registry.get("repro_machine_failures_total").value(**labels) == 1
        requeued = registry.get("repro_jobs_requeued_total").value(**labels)
        assert requeued >= 1
        assert len(log.of_type("requeue")) == requeued
        (failure_event,) = log.of_type("failure")
        assert failure_event["machine"] == "m0"
        assert len(failure_event["victims"]) == requeued


class TestTapOnly:
    def test_attaching_telemetry_does_not_change_results(self):
        bare = run_with_observers(
            power8_minsky(), make_scheduler("TOPO-AWARE-P"), table1_jobs()
        )
        observer = TelemetryObserver(
            MetricsRegistry(), EventLog(), scheduler="TOPO-AWARE-P", total_gpus=4
        )
        tapped = run_with_observers(
            power8_minsky(),
            make_scheduler("TOPO-AWARE-P"),
            table1_jobs(),
            observers=(observer,),
        )
        assert bare.makespan == tapped.makespan
        for a, b in zip(bare.records, tapped.records):
            assert a.placed_at == b.placed_at
            assert a.finished_at == b.finished_at
            assert a.gpus == b.gpus
            assert a.utility == b.utility
