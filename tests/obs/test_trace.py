"""Span recorder semantics, activation seam, and trace summaries."""

import pytest

from repro.obs import trace as trace_mod
from repro.obs.trace import (
    NULL_SPAN,
    SpanRecorder,
    read_trace,
    recording,
    span,
    summarize,
)


class FakeClock:
    """Deterministic clock: each reading advances by ``step``."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestDisabledPath:
    def test_span_is_noop_without_recorder(self):
        assert trace_mod.ACTIVE is None
        sp = span("anything", key="value")
        assert sp is NULL_SPAN
        with sp as inner:
            assert inner.set(more="attrs") is inner

    def test_instrumented_code_runs_clean_when_disabled(self):
        from repro.core.fm import fm_bipartition

        result = fm_bipartition("abcd", {}, validate=False)
        assert set(result.side0) | set(result.side1) == set("abcd")


class TestRecorder:
    def test_nesting_builds_parent_links(self):
        rec = SpanRecorder(clock=FakeClock())
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        outer, inner = rec.spans
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id

    def test_deterministic_durations_with_injected_clock(self):
        rec = SpanRecorder(clock=FakeClock(step=1.0))
        # creation consumes t=0; span start consumes t=1; close t=2
        with rec.span("only"):
            pass
        (sp,) = rec.spans
        assert sp.start_s == 1.0
        assert sp.dur_s == 1.0

    def test_siblings_share_parent(self):
        rec = SpanRecorder(clock=FakeClock())
        with rec.span("root"):
            with rec.span("a"):
                pass
            with rec.span("b"):
                pass
        root, a, b = rec.spans
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_set_merges_attrs(self):
        rec = SpanRecorder(clock=FakeClock())
        with rec.span("s", a=1) as sp:
            sp.set(b=2)
        assert rec.spans[0].attrs == {"a": 1, "b": 2}


class TestActivation:
    def test_recording_installs_and_restores(self):
        assert trace_mod.ACTIVE is None
        with recording() as rec:
            assert trace_mod.ACTIVE is rec
            with span("traced"):
                pass
        assert trace_mod.ACTIVE is None
        assert [s.name for s in rec.spans] == ["traced"]

    def test_recording_restores_previous_recorder(self):
        with recording() as outer_rec:
            with recording() as inner_rec:
                assert trace_mod.ACTIVE is inner_rec
            assert trace_mod.ACTIVE is outer_rec
        assert outer_rec is not inner_rec

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with recording():
                raise RuntimeError("boom")
        assert trace_mod.ACTIVE is None


class TestSerialization:
    def test_jsonl_round_trip(self, tmp_path):
        rec = SpanRecorder(clock=FakeClock())
        with rec.span("outer", job_id="job0"):
            with rec.span("inner", n=4):
                pass
        path = rec.write(tmp_path / "trace.jsonl")
        spans = read_trace(path)
        assert [s["name"] for s in spans] == ["outer", "inner"]
        assert spans[1]["parent_id"] == spans[0]["span_id"]
        assert spans[1]["attrs"] == {"n": 4}

    def test_read_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"schema": 42, "span_id": 1}\n')
        with pytest.raises(ValueError, match="unsupported trace schema"):
            read_trace(path)


class TestSummarize:
    def _trace_for(self, outcome="placed"):
        rec = SpanRecorder(clock=FakeClock(step=0.001))
        with rec.span(
            "sched.propose", job_id="job0", scheduler="TOPO-AWARE-P",
            num_gpus=2, queued=1,
        ) as root:
            with rec.span("drb.map", job_id="job0", tasks=2, pool=4):
                with rec.span("fm.bipartition", n=4) as fm:
                    fm.set(passes=2, cut=1.5, gain=0.5)
            with rec.span("utility.evaluate", job_id="job0", gpus=2) as ev:
                ev.set(utility=0.9)
            root.set(utility=0.9, p2p=True, outcome=outcome)
        return [s.to_dict() for s in rec.spans]

    def test_per_job_timeline(self):
        text = summarize(self._trace_for())
        assert "=== job0" in text
        assert "TOPO-AWARE-P" in text
        assert "drb.map" in text
        assert "fm.bipartition" in text
        assert "fm_cut_min=1.5" in text
        assert "chosen_utility=0.9" in text
        assert "final_outcome=placed" in text

    def test_job_filter(self):
        text = summarize(self._trace_for(), job_id="nope")
        assert "no scheduler decision spans" in text

    def test_empty_trace(self):
        assert "no scheduler decision spans" in summarize([])
