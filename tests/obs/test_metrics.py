"""Unit tests for the metric instruments and registry."""

import math

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("jobs_total", "jobs", ("scheduler",))
        assert c.value(scheduler="FCFS") == 0.0
        c.inc(scheduler="FCFS")
        c.inc(2.5, scheduler="FCFS")
        assert c.value(scheduler="FCFS") == 3.5

    def test_label_combinations_are_independent_series(self):
        c = Counter("jobs_total", "jobs", ("scheduler",))
        c.inc(scheduler="FCFS")
        c.inc(3, scheduler="BF")
        assert c.value(scheduler="FCFS") == 1.0
        assert c.value(scheduler="BF") == 3.0
        assert len(list(c.samples())) == 2

    def test_rejects_decrease(self):
        c = Counter("jobs_total", "jobs")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_rejects_wrong_labels(self):
        c = Counter("jobs_total", "jobs", ("scheduler",))
        with pytest.raises(ValueError, match="labels"):
            c.inc()
        with pytest.raises(ValueError, match="labels"):
            c.inc(scheduler="FCFS", extra="x")

    def test_rejects_invalid_names(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("0bad", "x")
        with pytest.raises(ValueError, match="invalid label name"):
            Counter("ok_total", "x", ("0bad",))
        with pytest.raises(ValueError, match="invalid label name"):
            Counter("ok_total", "x", ("__reserved",))


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("queue_depth", "depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value() == 6.0


class TestHistogram:
    def test_cumulative_buckets_sum_count(self):
        h = Histogram("lat", "latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        samples = {
            (name, labels): value for name, labels, value in h.samples()
        }
        assert samples[("lat_bucket", (("le", "0.1"),))] == 1
        assert samples[("lat_bucket", (("le", "1.0"),))] == 3
        assert samples[("lat_bucket", (("le", "10.0"),))] == 4
        assert samples[("lat_bucket", (("le", "+Inf"),))] == 5
        assert samples[("lat_count", ())] == 5
        assert samples[("lat_sum", ())] == pytest.approx(56.05)

    def test_boundary_value_lands_in_its_bucket(self):
        h = Histogram("lat", "latency", buckets=(1.0,))
        h.observe(1.0)  # le is inclusive
        samples = {
            (name, labels): value for name, labels, value in h.samples()
        }
        assert samples[("lat_bucket", (("le", "1.0"),))] == 1
        assert h.count() == 1

    def test_explicit_inf_bucket_is_absorbed(self):
        h = Histogram("lat", "latency", buckets=(1.0, math.inf))
        assert h.buckets == (1.0,)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram("lat", "latency", buckets=(1.0, 0.5))


class TestRegistry:
    def test_create_or_get_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("jobs_total", "jobs", ("scheduler",))
        b = reg.counter("jobs_total", "jobs", ("scheduler",))
        assert a is b
        assert len(reg.collect()) == 1

    def test_redeclare_with_other_type_fails(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "jobs")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("jobs_total", "jobs")

    def test_redeclare_with_other_labels_fails(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "jobs", ("scheduler",))
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("jobs_total", "jobs", ("machine",))

    def test_collect_preserves_registration_order(self):
        reg = MetricsRegistry()
        reg.counter("b_total", "b")
        reg.gauge("a", "a")
        assert [i.name for i in reg.collect()] == ["b_total", "a"]


class TestQuantile:
    def make(self):
        h = Histogram("lat", "latency", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        return h

    def test_linear_interpolation_inside_bucket(self):
        h = self.make()
        # p50 -> target rank 2 of 4: one obs <= 1.0, three <= 2.0, so
        # halfway through the (1.0, 2.0] bucket
        assert h.quantile(0.5) == pytest.approx(1.5)
        # p25 -> rank 1: exactly the first bucket's upper bound
        assert h.quantile(0.25) == pytest.approx(1.0)

    def test_first_bucket_interpolates_from_zero(self):
        h = Histogram("lat", "latency", buckets=(1.0, 2.0))
        h.observe(0.2)
        h.observe(0.4)
        # both observations in [0, 1.0]: p50 lands mid-bucket
        assert h.quantile(0.5) == pytest.approx(0.5)

    def test_inf_bucket_clamps_to_highest_finite_bound(self):
        h = self.make()
        h.observe(100.0)  # falls in the +Inf bucket
        assert h.quantile(1.0) == 4.0

    def test_empty_series_is_nan(self):
        h = Histogram("lat", "latency", buckets=(1.0,))
        assert math.isnan(h.quantile(0.95))

    def test_unknown_labels_are_nan(self):
        h = Histogram("lat", "latency", ("scheduler",), buckets=(1.0,))
        h.observe(0.5, scheduler="FCFS")
        assert math.isnan(h.quantile(0.5, scheduler="BF"))
        assert h.quantile(0.5, scheduler="FCFS") == pytest.approx(0.5)

    def test_rejects_out_of_range_q(self):
        h = self.make()
        with pytest.raises(ValueError, match="outside"):
            h.quantile(1.5)
        with pytest.raises(ValueError, match="outside"):
            h.quantile(-0.1)

    def test_monotone_in_q(self):
        h = self.make()
        qs = [h.quantile(q / 10) for q in range(1, 11)]
        assert qs == sorted(qs)
