"""Unit tests for the metric instruments and registry."""

import math

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("jobs_total", "jobs", ("scheduler",))
        assert c.value(scheduler="FCFS") == 0.0
        c.inc(scheduler="FCFS")
        c.inc(2.5, scheduler="FCFS")
        assert c.value(scheduler="FCFS") == 3.5

    def test_label_combinations_are_independent_series(self):
        c = Counter("jobs_total", "jobs", ("scheduler",))
        c.inc(scheduler="FCFS")
        c.inc(3, scheduler="BF")
        assert c.value(scheduler="FCFS") == 1.0
        assert c.value(scheduler="BF") == 3.0
        assert len(list(c.samples())) == 2

    def test_rejects_decrease(self):
        c = Counter("jobs_total", "jobs")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_rejects_wrong_labels(self):
        c = Counter("jobs_total", "jobs", ("scheduler",))
        with pytest.raises(ValueError, match="labels"):
            c.inc()
        with pytest.raises(ValueError, match="labels"):
            c.inc(scheduler="FCFS", extra="x")

    def test_rejects_invalid_names(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("0bad", "x")
        with pytest.raises(ValueError, match="invalid label name"):
            Counter("ok_total", "x", ("0bad",))
        with pytest.raises(ValueError, match="invalid label name"):
            Counter("ok_total", "x", ("__reserved",))


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("queue_depth", "depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value() == 6.0


class TestHistogram:
    def test_cumulative_buckets_sum_count(self):
        h = Histogram("lat", "latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        samples = {
            (name, labels): value for name, labels, value in h.samples()
        }
        assert samples[("lat_bucket", (("le", "0.1"),))] == 1
        assert samples[("lat_bucket", (("le", "1.0"),))] == 3
        assert samples[("lat_bucket", (("le", "10.0"),))] == 4
        assert samples[("lat_bucket", (("le", "+Inf"),))] == 5
        assert samples[("lat_count", ())] == 5
        assert samples[("lat_sum", ())] == pytest.approx(56.05)

    def test_boundary_value_lands_in_its_bucket(self):
        h = Histogram("lat", "latency", buckets=(1.0,))
        h.observe(1.0)  # le is inclusive
        samples = {
            (name, labels): value for name, labels, value in h.samples()
        }
        assert samples[("lat_bucket", (("le", "1.0"),))] == 1
        assert h.count() == 1

    def test_explicit_inf_bucket_is_absorbed(self):
        h = Histogram("lat", "latency", buckets=(1.0, math.inf))
        assert h.buckets == (1.0,)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram("lat", "latency", buckets=(1.0, 0.5))


class TestRegistry:
    def test_create_or_get_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("jobs_total", "jobs", ("scheduler",))
        b = reg.counter("jobs_total", "jobs", ("scheduler",))
        assert a is b
        assert len(reg.collect()) == 1

    def test_redeclare_with_other_type_fails(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "jobs")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("jobs_total", "jobs")

    def test_redeclare_with_other_labels_fails(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "jobs", ("scheduler",))
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("jobs_total", "jobs", ("machine",))

    def test_collect_preserves_registration_order(self):
        reg = MetricsRegistry()
        reg.counter("b_total", "b")
        reg.gauge("a", "a")
        assert [i.name for i in reg.collect()] == ["b_total", "a"]
