"""SLO watchdog: rule loading, deterministic firing, tap-only-ness."""

import json
import math

import pytest

from repro.analysis.scenarios import scenario1_jobs
from repro.obs import EventLog, MetricsRegistry
from repro.obs.alerts import DEFAULT_RULES, Rule, Watchdog, load_rules
from repro.obs.telemetry import TelemetryObserver
from repro.schedulers import make_scheduler
from repro.sim.runner import run_with_observers
from repro.topology.builders import cluster, power8_minsky
from repro.workload.job import Job, ModelType


def saturating_jobs(n: int = 12) -> list[Job]:
    """All jobs arrive at t=0 on a 4-GPU machine and each wants all of
    it: execution serialises and queue waits grow without bound."""
    return [
        Job(f"job{i}", ModelType.ALEXNET, 4, 4, arrival_time=0.0,
            iterations=4000)
        for i in range(n)
    ]


def run_watchdog(jobs, topo_factory, rules, scheduler="FCFS"):
    registry = MetricsRegistry()
    log = EventLog()
    telemetry = TelemetryObserver(registry, log, scheduler=scheduler)
    watchdog = Watchdog(registry, log, rules, scheduler=scheduler)
    result = run_with_observers(
        topo_factory(),
        make_scheduler(scheduler),
        jobs,
        observers=(telemetry, watchdog),
    )
    return registry, log, watchdog, result


class TestRule:
    def test_rejects_unknown_signal(self):
        with pytest.raises(ValueError, match="unknown signal"):
            Rule("r", "no_such_signal", ">", 1.0)

    def test_rejects_unknown_operator(self):
        with pytest.raises(ValueError, match="unknown operator"):
            Rule("r", "queue_depth", "!=", 1.0)

    def test_rejects_nonpositive_for_rounds(self):
        with pytest.raises(ValueError, match="for_rounds"):
            Rule("r", "queue_depth", ">", 1.0, for_rounds=0)

    def test_nan_never_violates(self):
        rule = Rule("r", "queue_wait_p95", ">", 0.0)
        assert not rule.violated(math.nan)
        assert rule.violated(1.0)


class TestLoadRules:
    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({
            "rules": [
                {"name": "qw", "signal": "queue_wait_p95", "op": ">",
                 "threshold": 60.0, "for_rounds": 2, "severity": "critical"},
                {"name": "util", "signal": "utilization", "op": "<",
                 "threshold": 0.1},
            ]
        }))
        rules = load_rules(path)
        assert [r.name for r in rules] == ["qw", "util"]
        assert rules[0].for_rounds == 2
        assert rules[1].severity == "warning"

    def test_toml_round_trip(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "rules.toml"
        path.write_text(
            '[[rules]]\nname = "qw"\nsignal = "queue_depth"\n'
            'op = ">="\nthreshold = 5\n'
        )
        (rule,) = load_rules(path)
        assert rule.name == "qw" and rule.threshold == 5

    def test_rejects_bad_json(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not JSON"):
            load_rules(path)

    def test_rejects_missing_rules_array(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="'rules' array"):
            load_rules(path)

    def test_rejects_unknown_fields(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": [
            {"name": "x", "signal": "queue_depth", "op": ">",
             "threshold": 1, "surprise": True}
        ]}))
        with pytest.raises(ValueError, match="unknown fields"):
            load_rules(path)

    def test_rejects_empty_rules(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": []}))
        with pytest.raises(ValueError, match="empty"):
            load_rules(path)


class TestWatchdogFiring:
    def test_fires_deterministically_on_saturated_queue(self):
        rule = Rule("qw-p95", "queue_wait_p95", ">", 120.0, for_rounds=1,
                    severity="critical")
        first = run_watchdog(saturating_jobs(), power8_minsky, (rule,))
        second = run_watchdog(saturating_jobs(), power8_minsky, (rule,))
        for registry, log, watchdog, result in (first, second):
            assert len(result.alerts) == 1, "edge-triggered: fires once"
            alert = result.alerts[0]
            assert alert["rule"] == "qw-p95"
            assert alert["state"] == "firing"
            assert alert["value"] > 120.0
            counter = registry.get("repro_alerts_fired_total")
            assert counter.value(scheduler="FCFS", rule="qw-p95") == 1
            (event,) = log.of_type("alert")
            assert event["rule"] == "qw-p95"
            assert event["severity"] == "critical"
        # sim-time signals: identical runs fire at the identical instant
        assert first[3].alerts[0]["t"] == second[3].alerts[0]["t"]
        assert first[3].alerts[0]["round"] == second[3].alerts[0]["round"]

    def test_for_rounds_suppresses_transients(self):
        # the queue is non-empty for many rounds, but an absurd
        # persistence requirement never lets the rule mature
        rule = Rule("qd", "queue_depth", ">", 0.0, for_rounds=10_000)
        *_, result = run_watchdog(saturating_jobs(), power8_minsky, (rule,))
        assert result.alerts == []

    def test_queue_depth_rule_fires_and_resolves(self):
        rule = Rule("qd", "queue_depth", ">=", 8.0, for_rounds=1)
        _, log, watchdog, result = run_watchdog(
            saturating_jobs(12), power8_minsky, (rule,)
        )
        assert len(result.alerts) == 1
        states = [e["state"] for e in log.of_type("alert")]
        # fired while 8+ jobs waited, resolved as the queue drained
        assert states == ["firing", "resolved"]
        assert watchdog.published_state()["active"] == []
        assert watchdog.published_state()["fired_total"] == 1

    def test_default_rules_silent_on_scenario1(self):
        *_, result = run_watchdog(
            scenario1_jobs(100, seed=42),
            lambda: cluster(5),
            DEFAULT_RULES,
            scheduler="TOPO-AWARE-P",
        )
        assert result.alerts == []

    def test_duplicate_rule_names_rejected(self):
        rule = Rule("same", "queue_depth", ">", 1.0)
        with pytest.raises(ValueError, match="duplicate"):
            Watchdog(MetricsRegistry(), None, (rule, rule))

    def test_watchdog_does_not_change_results(self):
        jobs = scenario1_jobs(30, seed=42)
        rule = Rule("qd", "queue_depth", ">", 0.0, for_rounds=1)
        *_, with_dog = run_watchdog(jobs, lambda: cluster(2), (rule,),
                                    scheduler="TOPO-AWARE")
        bare = run_with_observers(
            cluster(2), make_scheduler("TOPO-AWARE"), jobs
        )
        assert [r.finished_at for r in with_dog.records] == [
            r.finished_at for r in bare.records
        ]
        assert with_dog.makespan == bare.makespan

    def test_alert_summary_attached_by_runner(self):
        rule = Rule("qd", "queue_depth", ">", 0.0, for_rounds=1)
        *_, watchdog, result = run_watchdog(
            saturating_jobs(6), power8_minsky, (rule,)
        )
        assert result.alerts == watchdog.summary()
        assert result.alerts  # the saturated queue fired it


class TestPublishedState:
    def test_published_state_shape(self):
        rule = Rule("qd", "queue_depth", ">", 0.0, for_rounds=1)
        *_, watchdog, _ = run_watchdog(saturating_jobs(6), power8_minsky,
                                       (rule,))
        doc = watchdog.published_state()
        assert doc["enabled"] is True
        assert doc["rules"] == ["qd"]
        assert doc["rounds_evaluated"] > 0
        json.dumps(doc)  # must be wire-serialisable as-is
