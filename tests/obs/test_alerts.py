"""SLO watchdog: rule loading, deterministic firing, tap-only-ness."""

import json
import math

import pytest

from repro.analysis.scenarios import scenario1_jobs
from repro.obs import EventLog, MetricsRegistry
from repro.obs.alerts import DEFAULT_RULES, Rule, Watchdog, load_rules
from repro.obs.telemetry import TelemetryObserver
from repro.schedulers import make_scheduler
from repro.sim.runner import run_with_observers
from repro.topology.builders import cluster, power8_minsky
from repro.workload.job import Job, ModelType


def saturating_jobs(n: int = 12) -> list[Job]:
    """All jobs arrive at t=0 on a 4-GPU machine and each wants all of
    it: execution serialises and queue waits grow without bound."""
    return [
        Job(f"job{i}", ModelType.ALEXNET, 4, 4, arrival_time=0.0,
            iterations=4000)
        for i in range(n)
    ]


def run_watchdog(jobs, topo_factory, rules, scheduler="FCFS"):
    registry = MetricsRegistry()
    log = EventLog()
    telemetry = TelemetryObserver(registry, log, scheduler=scheduler)
    watchdog = Watchdog(registry, log, rules, scheduler=scheduler)
    result = run_with_observers(
        topo_factory(),
        make_scheduler(scheduler),
        jobs,
        observers=(telemetry, watchdog),
    )
    return registry, log, watchdog, result


class TestRule:
    def test_rejects_unknown_signal(self):
        with pytest.raises(ValueError, match="unknown signal"):
            Rule("r", "no_such_signal", ">", 1.0)

    def test_rejects_unknown_operator(self):
        with pytest.raises(ValueError, match="unknown operator"):
            Rule("r", "queue_depth", "!=", 1.0)

    def test_rejects_nonpositive_for_rounds(self):
        with pytest.raises(ValueError, match="for_rounds"):
            Rule("r", "queue_depth", ">", 1.0, for_rounds=0)

    def test_nan_never_violates(self):
        rule = Rule("r", "queue_wait_p95", ">", 0.0)
        assert not rule.violated(math.nan)
        assert rule.violated(1.0)


class TestLoadRules:
    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({
            "rules": [
                {"name": "qw", "signal": "queue_wait_p95", "op": ">",
                 "threshold": 60.0, "for_rounds": 2, "severity": "critical"},
                {"name": "util", "signal": "utilization", "op": "<",
                 "threshold": 0.1},
            ]
        }))
        rules = load_rules(path)
        assert [r.name for r in rules] == ["qw", "util"]
        assert rules[0].for_rounds == 2
        assert rules[1].severity == "warning"

    def test_toml_round_trip(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "rules.toml"
        path.write_text(
            '[[rules]]\nname = "qw"\nsignal = "queue_depth"\n'
            'op = ">="\nthreshold = 5\n'
        )
        (rule,) = load_rules(path)
        assert rule.name == "qw" and rule.threshold == 5

    def test_rejects_bad_json(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not JSON"):
            load_rules(path)

    def test_rejects_missing_rules_array(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="'rules' array"):
            load_rules(path)

    def test_rejects_unknown_fields(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": [
            {"name": "x", "signal": "queue_depth", "op": ">",
             "threshold": 1, "surprise": True}
        ]}))
        with pytest.raises(ValueError, match="unknown fields"):
            load_rules(path)

    def test_rejects_empty_rules(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": []}))
        with pytest.raises(ValueError, match="empty"):
            load_rules(path)


class TestWindowedRules:
    def test_rejects_bad_window_agg_nan(self):
        with pytest.raises(ValueError, match="window"):
            Rule("r", "queue_depth", ">", 1.0, window=0)
        with pytest.raises(ValueError, match="unknown agg"):
            Rule("r", "queue_depth", ">", 1.0, agg="median")
        with pytest.raises(ValueError, match="nan policy"):
            Rule("r", "queue_depth", ">", 1.0, nan="ignore")

    def test_window_aggregates(self):
        base = dict(window=4)
        mean = Rule("m", "queue_depth", ">", 0.0, agg="mean", **base)
        assert mean.evaluate([1.0, 2.0, 3.0]) == (2.0, "evaluate")
        high = Rule("h", "queue_depth", ">", 0.0, agg="max", **base)
        assert high.evaluate([1.0, 3.0, 2.0]) == (3.0, "evaluate")
        low = Rule("l", "queue_depth", ">", 0.0, agg="min", **base)
        assert low.evaluate([1.0, 3.0, 2.0]) == (1.0, "evaluate")
        last = Rule("i", "queue_depth", ">", 0.0, agg="last", **base)
        assert last.evaluate([1.0, 3.0, 2.0]) == (2.0, "evaluate")

    def test_rate_is_per_round_change_across_window(self):
        rule = Rule("r", "queue_depth", ">", 0.0, window=8, agg="rate")
        assert rule.evaluate([2.0, 4.0, 8.0]) == (3.0, "evaluate")
        value, action = rule.evaluate([5.0])
        assert action == "skip" and math.isnan(value)  # one point: no slope

    def test_nan_skip_excludes_samples_from_aggregates(self):
        rule = Rule("r", "queue_wait_p95", ">", 0.0, window=4, agg="mean")
        value, action = rule.evaluate([math.nan])
        assert action == "skip" and math.isnan(value)
        assert rule.evaluate([2.0, math.nan, 4.0]) == (3.0, "evaluate")
        # last-agg with a NaN current sample has no usable data either
        last = Rule("i", "queue_wait_p95", ">", 0.0, window=2)
        assert last.evaluate([2.0, math.nan])[1] == "skip"

    def test_nan_violate_pages_on_missing_sample(self):
        rule = Rule("r", "queue_wait_p95", ">", 1e9, window=4, agg="mean",
                    nan="violate")
        value, action = rule.evaluate([2.0, math.nan])
        assert action == "violate" and math.isnan(value)
        # finite samples fall through to the normal comparison
        assert rule.evaluate([2.0, 4.0]) == (3.0, "evaluate")

    def test_windowed_toml_round_trip(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "rules.toml"
        path.write_text(
            '[[rules]]\nname = "qd-growth"\nsignal = "queue_depth"\n'
            'op = ">"\nthreshold = 0.5\nwindow = 8\nagg = "rate"\n'
            'nan = "skip"\nfor_rounds = 3\n'
            '[[rules]]\nname = "cache-missing"\n'
            'signal = "cache_hit_rate"\nop = "<"\nthreshold = 0.01\n'
            'nan = "violate"\n'
        )
        growth, missing = load_rules(path)
        assert growth.window == 8 and growth.agg == "rate"
        assert growth.nan == "skip" and growth.for_rounds == 3
        assert missing.window == 1 and missing.agg == "last"
        assert missing.nan == "violate"
        # the loaded rule evaluates like a hand-built one
        assert growth.evaluate([0.0, 2.0, 4.0]) == (2.0, "evaluate")

    def test_json_rejects_bad_windowed_fields(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": [
            {"name": "x", "signal": "queue_depth", "op": ">",
             "threshold": 1, "agg": "median"}
        ]}))
        with pytest.raises(ValueError, match="unknown agg"):
            load_rules(path)

    # ------------------------------------------------------------------
    # streak semantics driven round-by-round (no registry, no cluster:
    # every registry signal is NaN; queue_depth tracks the hook arg)
    # ------------------------------------------------------------------
    def drive(self, watchdog, depths):
        for i, depth in enumerate(depths):
            watchdog.on_decision_round(float(i), 1, depth, 0.0)

    def test_skip_leaves_streak_untouched(self):
        # utilization is NaN without a cluster or registry: a skip round
        # between violating rounds must not reset the maturing streak
        depth_rule = Rule("qd", "queue_depth", ">", 0.0, for_rounds=3)
        util_rule = Rule("u", "utilization", "<", 2.0, for_rounds=1)
        watchdog = Watchdog(None, None, (depth_rule, util_rule))
        self.drive(watchdog, [5, 5, 0, 5, 5])
        # qd: streak 2, reset by the healthy round, streak 2 -> no fire
        # u: every round NaN -> skipped, never fires, never resolves
        assert watchdog.fired == []
        state = watchdog.published_state()
        assert state["active"] == []

    def test_windowed_mean_rides_through_one_healthy_round(self):
        rule = Rule("qd", "queue_depth", ">", 2.0, window=3, agg="mean",
                    for_rounds=3)
        watchdog = Watchdog(None, None, (rule,))
        # means over the trailing 3: 9, 9, 6, 6, 6 -> all > 2, fires at
        # round 3 even though round 3's instantaneous depth was healthy
        self.drive(watchdog, [9, 9, 0, 9, 9])
        assert len(watchdog.fired) == 1
        assert watchdog.fired[0]["round"] == 3
        assert watchdog.fired[0]["window"] == 3
        assert watchdog.fired[0]["agg"] == "mean"

    def test_rate_rule_fires_on_sustained_growth(self):
        rule = Rule("growth", "queue_depth", ">", 0.5, window=4, agg="rate",
                    for_rounds=2)
        watchdog = Watchdog(None, None, (rule,))
        self.drive(watchdog, [0, 2, 4, 6, 8, 8, 8, 8, 8])
        assert len(watchdog.fired) == 1
        assert watchdog.fired[0]["value"] == 2.0  # +2 jobs per round
        # the plateau drops the rate to 0 -> the alert resolves
        assert watchdog.published_state()["active"] == []

    def test_nan_violate_fires_without_data(self):
        rule = Rule("dead-signal", "cache_hit_rate", "<", 0.01,
                    nan="violate", for_rounds=2)
        watchdog = Watchdog(None, None, (rule,))
        self.drive(watchdog, [1, 1])
        assert len(watchdog.fired) == 1
        assert watchdog.fired[0]["value"] is None  # NaN serialised as null
        json.dumps(watchdog.published_state())

    def test_windowed_rule_fires_in_real_run(self):
        rule = Rule("qd-mean", "queue_depth", ">=", 4.0, window=5,
                    agg="mean", for_rounds=1)
        first = run_watchdog(saturating_jobs(), power8_minsky, (rule,))
        second = run_watchdog(saturating_jobs(), power8_minsky, (rule,))
        for *_, result in (first, second):
            assert len(result.alerts) == 1
            assert result.alerts[0]["agg"] == "mean"
        assert first[3].alerts[0]["round"] == second[3].alerts[0]["round"]


class TestWatchdogFiring:
    def test_fires_deterministically_on_saturated_queue(self):
        rule = Rule("qw-p95", "queue_wait_p95", ">", 120.0, for_rounds=1,
                    severity="critical")
        first = run_watchdog(saturating_jobs(), power8_minsky, (rule,))
        second = run_watchdog(saturating_jobs(), power8_minsky, (rule,))
        for registry, log, watchdog, result in (first, second):
            assert len(result.alerts) == 1, "edge-triggered: fires once"
            alert = result.alerts[0]
            assert alert["rule"] == "qw-p95"
            assert alert["state"] == "firing"
            assert alert["value"] > 120.0
            counter = registry.get("repro_alerts_fired_total")
            assert counter.value(scheduler="FCFS", rule="qw-p95") == 1
            (event,) = log.of_type("alert")
            assert event["rule"] == "qw-p95"
            assert event["severity"] == "critical"
        # sim-time signals: identical runs fire at the identical instant
        assert first[3].alerts[0]["t"] == second[3].alerts[0]["t"]
        assert first[3].alerts[0]["round"] == second[3].alerts[0]["round"]

    def test_for_rounds_suppresses_transients(self):
        # the queue is non-empty for many rounds, but an absurd
        # persistence requirement never lets the rule mature
        rule = Rule("qd", "queue_depth", ">", 0.0, for_rounds=10_000)
        *_, result = run_watchdog(saturating_jobs(), power8_minsky, (rule,))
        assert result.alerts == []

    def test_queue_depth_rule_fires_and_resolves(self):
        rule = Rule("qd", "queue_depth", ">=", 8.0, for_rounds=1)
        _, log, watchdog, result = run_watchdog(
            saturating_jobs(12), power8_minsky, (rule,)
        )
        assert len(result.alerts) == 1
        states = [e["state"] for e in log.of_type("alert")]
        # fired while 8+ jobs waited, resolved as the queue drained
        assert states == ["firing", "resolved"]
        assert watchdog.published_state()["active"] == []
        assert watchdog.published_state()["fired_total"] == 1

    def test_default_rules_silent_on_scenario1(self):
        *_, result = run_watchdog(
            scenario1_jobs(100, seed=42),
            lambda: cluster(5),
            DEFAULT_RULES,
            scheduler="TOPO-AWARE-P",
        )
        assert result.alerts == []

    def test_duplicate_rule_names_rejected(self):
        rule = Rule("same", "queue_depth", ">", 1.0)
        with pytest.raises(ValueError, match="duplicate"):
            Watchdog(MetricsRegistry(), None, (rule, rule))

    def test_watchdog_does_not_change_results(self):
        jobs = scenario1_jobs(30, seed=42)
        rule = Rule("qd", "queue_depth", ">", 0.0, for_rounds=1)
        *_, with_dog = run_watchdog(jobs, lambda: cluster(2), (rule,),
                                    scheduler="TOPO-AWARE")
        bare = run_with_observers(
            cluster(2), make_scheduler("TOPO-AWARE"), jobs
        )
        assert [r.finished_at for r in with_dog.records] == [
            r.finished_at for r in bare.records
        ]
        assert with_dog.makespan == bare.makespan

    def test_alert_summary_attached_by_runner(self):
        rule = Rule("qd", "queue_depth", ">", 0.0, for_rounds=1)
        *_, watchdog, result = run_watchdog(
            saturating_jobs(6), power8_minsky, (rule,)
        )
        assert result.alerts == watchdog.summary()
        assert result.alerts  # the saturated queue fired it


class TestPublishedState:
    def test_published_state_shape(self):
        rule = Rule("qd", "queue_depth", ">", 0.0, for_rounds=1)
        *_, watchdog, _ = run_watchdog(saturating_jobs(6), power8_minsky,
                                       (rule,))
        doc = watchdog.published_state()
        assert doc["enabled"] is True
        assert doc["rules"] == ["qd"]
        assert doc["rounds_evaluated"] > 0
        json.dumps(doc)  # must be wire-serialisable as-is
