"""Event-log schema validation and JSONL round-trips."""

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    SCHEMA_VERSION,
    EventLog,
    read_events,
    validate_event,
)


class TestEmit:
    def test_envelope_fields(self):
        log = EventLog(scheduler="TOPO-AWARE-P")
        event = log.emit("arrival", 1.5, job_id="job0", num_gpus=2)
        assert event["schema"] == SCHEMA_VERSION
        assert event["seq"] == 0
        assert event["scheduler"] == "TOPO-AWARE-P"
        assert event["t"] == 1.5

    def test_sequence_numbers_are_monotone(self):
        log = EventLog()
        log.emit("arrival", 0.0, job_id="a", num_gpus=1)
        log.emit("requeue", 1.0, job_id="a")
        assert [e["seq"] for e in log.events] == [0, 1]

    def test_missing_required_field_raises(self):
        log = EventLog()
        with pytest.raises(ValueError, match="missing fields"):
            log.emit("arrival", 0.0, job_id="a")  # num_gpus missing

    def test_unknown_type_raises(self):
        log = EventLog()
        with pytest.raises(ValueError, match="unknown event type"):
            log.emit("teleport", 0.0)

    def test_per_event_scheduler_override(self):
        log = EventLog(scheduler="default")
        event = log.emit("requeue", 0.0, job_id="a", scheduler="BF")
        assert event["scheduler"] == "BF"

    def test_of_type_filter(self):
        log = EventLog()
        log.emit("arrival", 0.0, job_id="a", num_gpus=1)
        log.emit("finish", 9.0, job_id="a", gpus=["m0/gpu0"])
        assert [e["job_id"] for e in log.of_type("finish")] == ["a"]


class TestValidate:
    def test_every_declared_type_has_required_fields(self):
        for etype, fields in EVENT_TYPES.items():
            event = {
                "schema": SCHEMA_VERSION,
                "seq": 0,
                "type": etype,
                "t": 0.0,
                "scheduler": "",
                **{f: 0 for f in fields},
            }
            assert validate_event(event) is event

    def test_rejects_future_schema(self):
        with pytest.raises(ValueError, match="unsupported schema"):
            validate_event(
                {"schema": 99, "seq": 0, "type": "requeue", "t": 0.0,
                 "scheduler": "", "job_id": "a"}
            )

    def test_rejects_non_numeric_time(self):
        with pytest.raises(ValueError, match="numeric"):
            validate_event(
                {"schema": 1, "seq": 0, "type": "requeue", "t": "later",
                 "scheduler": "", "job_id": "a"}
            )

    def test_extra_fields_are_forward_compatible(self):
        validate_event(
            {"schema": 1, "seq": 0, "type": "requeue", "t": 0.0,
             "scheduler": "", "job_id": "a", "note": "extra is fine"}
        )


class TestJsonlRoundTrip:
    def test_write_then_read(self, tmp_path):
        log = EventLog(scheduler="BF")
        log.emit("arrival", 0.0, job_id="a", num_gpus=1)
        log.emit(
            "place", 1.0, job_id="a", gpus=["m0/gpu0"], utility=0.9,
            p2p=True, postponements=0,
        )
        path = log.write(tmp_path / "events.jsonl")
        events = read_events(path)
        assert [e["type"] for e in events] == ["arrival", "place"]
        assert events[1]["utility"] == 0.9

    def test_read_rejects_corrupt_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": 1}\n')
        with pytest.raises(ValueError, match="missing common field"):
            read_events(path)

    def test_read_rejects_non_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not JSON"):
            read_events(path)
