"""Tiered time-series store: downsampling boundaries, sampler tap,
endpoint documents."""

import json
import urllib.request

import pytest

from repro.analysis.scenarios import scenario1_jobs
from repro.obs import MetricsRegistry
from repro.obs.server import IntrospectionServer
from repro.obs.state import SnapshotPublisher
from repro.obs.timeseries import (
    CLUSTER_SERIES,
    MACHINE_SERIES,
    TIMESERIES_SCHEMA_VERSION,
    TieredSeries,
    TimeSeriesSampler,
    TimeSeriesStore,
)
from repro.schedulers import make_scheduler
from repro.sim.runner import run_with_observers
from repro.topology.builders import cluster


class TestTieredSeries:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="capacity"):
            TieredSeries(capacity=0)
        with pytest.raises(ValueError, match="fanout"):
            TieredSeries(fanout=1)

    def test_raw_ring_caps_at_capacity(self):
        series = TieredSeries(capacity=16, fanout=10)
        for i in range(100):
            series.append(float(i), float(i))
        raw = series.points("raw")
        assert len(raw) == 16
        assert raw[0] == (84.0, 84.0)
        assert raw[-1] == (99.0, 99.0)
        assert series.latest == (99.0, 99.0)
        assert len(series) == 16

    def test_mid_tier_aggregates_exactly_at_fanout_boundary(self):
        series = TieredSeries(capacity=64, fanout=10)
        for i in range(9):
            series.append(float(i), float(i))
        assert series.points("mid") == []  # one short of the boundary
        series.append(9.0, 9.0)
        (point,) = series.points("mid")
        # (t of last sample, min, mean, max) over the 10-sample bucket
        assert point == (9.0, 0.0, 4.5, 9.0)

    def test_coarse_tier_aggregates_at_fanout_squared(self):
        series = TieredSeries(capacity=64, fanout=10)
        for i in range(99):
            series.append(float(i), float(i))
        assert series.points("coarse") == []  # one short of 100
        series.append(99.0, 99.0)
        (point,) = series.points("coarse")
        # min of mins, mean of means, max of maxes over ten mid points
        assert point == (99.0, 0.0, 49.5, 99.0)
        assert len(series.points("mid")) == 10

    def test_memory_stays_bounded_past_all_tiers(self):
        series = TieredSeries(capacity=4, fanout=10)
        for i in range(1000):
            series.append(float(i), float(i))
        # 1000 raw -> 100 mid -> 10 coarse, every ring capped at 4
        assert len(series.points("raw")) == 4
        assert len(series.points("mid")) == 4
        assert len(series.points("coarse")) == 4
        # the newest coarse point still covers the newest samples
        assert series.points("coarse")[-1][3] == 999.0

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown tier"):
            TieredSeries().points("hourly")

    def test_to_dict_is_json_ready(self):
        series = TieredSeries(capacity=8, fanout=2)
        for i in range(5):
            series.append(float(i), float(i))
        doc = series.to_dict()
        assert set(doc) == {"raw", "mid", "coarse"}
        json.dumps(doc)  # lists of lists, wire-serialisable as-is
        assert doc["raw"][0] == [0.0, 0.0]
        assert doc["mid"] == [[1.0, 0.0, 0.5, 1.0], [3.0, 2.0, 2.5, 3.0]]


class TestTimeSeriesStore:
    def test_document_shape(self):
        store = TimeSeriesStore(capacity=32, fanout=4)
        store.record(1.0, "queue_depth", 3.0)
        store.record(1.0, "occupancy", 0.5, machine="m0")
        store.samples_taken = 1
        doc = store.document()
        assert doc["schema"] == TIMESERIES_SCHEMA_VERSION
        assert doc["enabled"] is True
        assert doc["capacity"] == 32 and doc["fanout"] == 4
        assert doc["samples"] == 1
        assert doc["tiers"] == ["raw", "mid", "coarse"]
        assert doc["cluster"]["queue_depth"]["raw"] == [[1.0, 3.0]]
        assert doc["machines"]["m0"]["occupancy"]["raw"] == [[1.0, 0.5]]
        json.dumps(doc)

    def test_cluster_document_serves_latest_per_machine(self):
        store = TimeSeriesStore()
        for t, occ in ((1.0, 0.25), (2.0, 0.75)):
            store.record(t, "occupancy", occ, machine="m1")
            store.record(t, "fragmentation", 0.1 * t, machine="m1")
        store.record(1.5, "occupancy", 1.0, machine="m0")
        doc = store.cluster_document()
        assert doc["t"] == 2.0  # newest stamp across every machine
        assert list(doc["machines"]) == ["m0", "m1"]  # sorted
        assert doc["machines"]["m1"]["occupancy"] == 0.75  # latest wins
        assert doc["machines"]["m1"]["fragmentation"] == pytest.approx(0.2)

    def test_machines_lists_only_machine_scoped_series(self):
        store = TimeSeriesStore()
        store.record(0.0, "queue_depth", 1.0)
        store.record(0.0, "occupancy", 0.5, machine="m3")
        store.record(0.0, "occupancy", 0.5, machine="m1")
        assert store.machines() == ["m1", "m3"]


class TestTimeSeriesSampler:
    def run(self, sampler, n_jobs=30, machines=3, scheduler="TOPO-AWARE"):
        return run_with_observers(
            cluster(machines),
            make_scheduler(scheduler),
            scenario1_jobs(n_jobs, seed=42),
            observers=(sampler,),
        )

    def test_records_cluster_and_machine_series(self):
        store = TimeSeriesStore()
        result = self.run(TimeSeriesSampler(store, min_interval_s=0.0))
        assert store.samples_taken > 1
        for name in CLUSTER_SERIES:
            series = store.get(name)
            assert series is not None and len(series) > 0, name
        machines = store.machines()
        assert len(machines) == 3
        for machine in machines:
            for name in MACHINE_SERIES:
                assert store.get(name, machine) is not None, (name, machine)
            occupancy = [v for _, v in store.get("occupancy", machine).points()]
            assert all(0.0 <= v <= 1.0 for v in occupancy)
        # the terminal sample always lands, stamped with the makespan
        assert store.get("queue_depth").latest[0] == result.makespan
        assert store.get("queue_depth").latest[1] == 0.0

    def test_timestamps_are_simulation_time_and_deterministic(self):
        first = TimeSeriesStore()
        second = TimeSeriesStore()
        self.run(TimeSeriesSampler(first, min_interval_s=0.0))
        self.run(TimeSeriesSampler(second, min_interval_s=0.0))
        assert first.document() == second.document()

    def test_every_rounds_skips_deterministically(self):
        dense = TimeSeriesStore()
        sparse = TimeSeriesStore()
        every = TimeSeriesSampler(dense, min_interval_s=0.0)
        halved = TimeSeriesSampler(sparse, every_rounds=2, min_interval_s=0.0)
        run_with_observers(
            cluster(3),
            make_scheduler("TOPO-AWARE"),
            scenario1_jobs(30, seed=42),
            observers=(every, halved),
        )
        assert 0 < sparse.samples_taken < dense.samples_taken

    def test_wall_clock_throttle_consults_only_observer_clock(self):
        store = TimeSeriesStore()
        frozen = lambda: 100.0  # noqa: E731 - tiny fixed clock
        self.run(TimeSeriesSampler(store, min_interval_s=0.05, clock=frozen))
        # first round samples (gap from -inf), every later round sits
        # inside the frozen 50 ms window; the terminal sample bypasses
        # the throttle -> exactly two samples
        assert store.samples_taken == 2

    def test_rejects_bad_every_rounds(self):
        with pytest.raises(ValueError, match="every_rounds"):
            TimeSeriesSampler(every_rounds=0)

    def test_machine_series_opt_out(self):
        store = TimeSeriesStore()
        self.run(TimeSeriesSampler(store, min_interval_s=0.0,
                                   machine_series=False))
        assert store.machines() == []
        assert store.get("queue_depth") is not None


class TestEndpoints:
    def fetch(self, url):
        with urllib.request.urlopen(url, timeout=5) as resp:
            assert resp.status == 200
            return json.load(resp)

    def test_timeseries_and_cluster_served(self):
        store = TimeSeriesStore()
        sampler = TimeSeriesSampler(store, min_interval_s=0.0)
        run_with_observers(
            cluster(2),
            make_scheduler("TOPO-AWARE"),
            scenario1_jobs(10, seed=42),
            observers=(sampler,),
        )
        server = IntrospectionServer(
            SnapshotPublisher(), MetricsRegistry(), timeseries=store
        ).start()
        try:
            doc = self.fetch(server.url + "/timeseries")
            assert doc["schema"] == TIMESERIES_SCHEMA_VERSION
            assert doc["samples"] == store.samples_taken
            assert set(CLUSTER_SERIES) <= set(doc["cluster"])
            assert len(doc["machines"]) == 2
            # downsampled tiers travel over the wire too
            assert set(doc["cluster"]["queue_depth"]) == {
                "raw", "mid", "coarse"
            }
            heat = self.fetch(server.url + "/cluster")
            assert heat["enabled"] is True
            for machine_doc in heat["machines"].values():
                assert set(MACHINE_SERIES) <= set(machine_doc)
        finally:
            server.stop()

    def test_endpoints_degrade_without_store(self):
        server = IntrospectionServer(
            SnapshotPublisher(), MetricsRegistry()
        ).start()
        try:
            assert self.fetch(server.url + "/timeseries")["enabled"] is False
            assert self.fetch(server.url + "/cluster")["enabled"] is False
        finally:
            server.stop()
