"""Prometheus/JSON exposition round-trips through the strict parser."""

import json
import math

import pytest

from repro.obs.export import (
    parse_prometheus,
    render_json,
    render_prometheus,
    sample_value,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry


def make_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("repro_jobs_total", "Jobs seen.", ("scheduler",))
    c.inc(4, scheduler="TOPO-AWARE-P")
    c.inc(2, scheduler="FCFS")
    g = reg.gauge("repro_queue_depth", "Queue depth.", ("scheduler",))
    g.set(3, scheduler="TOPO-AWARE-P")
    h = reg.histogram(
        "repro_latency_seconds", "Latency.", ("scheduler",), buckets=(0.1, 1.0)
    )
    h.observe(0.05, scheduler="TOPO-AWARE-P")
    h.observe(0.5, scheduler="TOPO-AWARE-P")
    return reg


class TestPrometheusText:
    def test_headers_and_samples(self):
        text = render_prometheus(make_registry())
        assert "# HELP repro_jobs_total Jobs seen." in text
        assert "# TYPE repro_jobs_total counter" in text
        assert 'repro_jobs_total{scheduler="TOPO-AWARE-P"} 4' in text
        assert "# TYPE repro_latency_seconds histogram" in text
        assert (
            'repro_latency_seconds_bucket{scheduler="TOPO-AWARE-P",le="+Inf"} 2'
            in text
        )

    def test_round_trip_through_parser(self):
        reg = make_registry()
        families = parse_prometheus(render_prometheus(reg))
        assert families["repro_jobs_total"]["type"] == "counter"
        assert sample_value(
            families, "repro_jobs_total", labels={"scheduler": "FCFS"}
        ) == 2
        assert sample_value(
            families,
            "repro_latency_seconds",
            series="repro_latency_seconds_count",
            labels={"scheduler": "TOPO-AWARE-P"},
        ) == 2
        assert sample_value(
            families,
            "repro_latency_seconds",
            series="repro_latency_seconds_bucket",
            labels={"scheduler": "TOPO-AWARE-P", "le": "0.1"},
        ) == 1

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("weird_total", "x", ("name",)).inc(
            name='quote " backslash \\ newline \n'
        )
        families = parse_prometheus(render_prometheus(reg))
        (sample,) = families["weird_total"]["samples"]
        assert sample["labels"]["name"] == 'quote " backslash \\ newline \n'

    def test_special_float_values(self):
        reg = MetricsRegistry()
        g = reg.gauge("edge", "x")
        g.set(math.inf)
        families = parse_prometheus(render_prometheus(reg))
        assert families["edge"]["samples"][0]["value"] == math.inf

    def test_parser_rejects_untyped_samples(self):
        with pytest.raises(ValueError, match="no TYPE header"):
            parse_prometheus("mystery_metric 1\n")

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus("# TYPE x counter\nx{oops 1\n")


class TestJsonExposition:
    def test_families_and_samples(self):
        doc = json.loads(render_json(make_registry()))
        by_name = {f["name"]: f for f in doc["families"]}
        assert by_name["repro_jobs_total"]["type"] == "counter"
        values = {
            s["labels"]["scheduler"]: s["value"]
            for s in by_name["repro_jobs_total"]["samples"]
        }
        assert values == {"TOPO-AWARE-P": 4, "FCFS": 2}

    def test_write_metrics_selects_format_by_suffix(self, tmp_path):
        reg = make_registry()
        prom = write_metrics(reg, tmp_path / "m.prom")
        js = write_metrics(reg, tmp_path / "m.json")
        assert prom.read_text().startswith("# HELP")
        assert json.loads(js.read_text())["families"]


class TestParserRoundTrips:
    def test_empty_registry_round_trips(self):
        text = render_prometheus(MetricsRegistry())
        assert parse_prometheus(text) == {}
        doc = json.loads(render_json(MetricsRegistry()))
        assert doc["families"] == []

    def test_registered_but_unobserved_families_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("quiet_total", "never incremented", ("scheduler",))
        families = parse_prometheus(render_prometheus(reg))
        assert families["quiet_total"]["type"] == "counter"
        assert families["quiet_total"]["samples"] == []

    def test_explicit_inf_bucket_bound_round_trips(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "x", buckets=(1.0, math.inf))
        h.observe(0.5)
        h.observe(50.0)
        families = parse_prometheus(render_prometheus(reg))
        assert sample_value(
            families, "lat_seconds", series="lat_seconds_bucket",
            labels={"le": "+Inf"},
        ) == 2
        assert sample_value(
            families, "lat_seconds", series="lat_seconds_bucket",
            labels={"le": "1.0"},
        ) == 1

    def test_label_value_with_comma_and_braces(self):
        reg = MetricsRegistry()
        reg.counter("odd_total", "x", ("expr",)).inc(expr='a{b="c",d}')
        families = parse_prometheus(render_prometheus(reg))
        (sample,) = families["odd_total"]["samples"]
        assert sample["labels"]["expr"] == 'a{b="c",d}'

    def test_multi_family_document_round_trips(self):
        reg = make_registry()
        text = render_prometheus(reg)
        families = parse_prometheus(text)
        assert set(families) == {
            "repro_jobs_total", "repro_queue_depth", "repro_latency_seconds",
        }
        # histogram family carries bucket/sum/count series under one name
        series = {s["series"] for s in families["repro_latency_seconds"]["samples"]}
        assert series == {
            "repro_latency_seconds_bucket",
            "repro_latency_seconds_sum",
            "repro_latency_seconds_count",
        }
