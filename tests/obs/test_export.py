"""Prometheus/JSON exposition round-trips through the strict parser."""

import json
import math

import pytest

from repro.obs.export import (
    parse_prometheus,
    render_json,
    render_prometheus,
    sample_value,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry


def make_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("repro_jobs_total", "Jobs seen.", ("scheduler",))
    c.inc(4, scheduler="TOPO-AWARE-P")
    c.inc(2, scheduler="FCFS")
    g = reg.gauge("repro_queue_depth", "Queue depth.", ("scheduler",))
    g.set(3, scheduler="TOPO-AWARE-P")
    h = reg.histogram(
        "repro_latency_seconds", "Latency.", ("scheduler",), buckets=(0.1, 1.0)
    )
    h.observe(0.05, scheduler="TOPO-AWARE-P")
    h.observe(0.5, scheduler="TOPO-AWARE-P")
    return reg


class TestPrometheusText:
    def test_headers_and_samples(self):
        text = render_prometheus(make_registry())
        assert "# HELP repro_jobs_total Jobs seen." in text
        assert "# TYPE repro_jobs_total counter" in text
        assert 'repro_jobs_total{scheduler="TOPO-AWARE-P"} 4' in text
        assert "# TYPE repro_latency_seconds histogram" in text
        assert (
            'repro_latency_seconds_bucket{scheduler="TOPO-AWARE-P",le="+Inf"} 2'
            in text
        )

    def test_round_trip_through_parser(self):
        reg = make_registry()
        families = parse_prometheus(render_prometheus(reg))
        assert families["repro_jobs_total"]["type"] == "counter"
        assert sample_value(
            families, "repro_jobs_total", labels={"scheduler": "FCFS"}
        ) == 2
        assert sample_value(
            families,
            "repro_latency_seconds",
            series="repro_latency_seconds_count",
            labels={"scheduler": "TOPO-AWARE-P"},
        ) == 2
        assert sample_value(
            families,
            "repro_latency_seconds",
            series="repro_latency_seconds_bucket",
            labels={"scheduler": "TOPO-AWARE-P", "le": "0.1"},
        ) == 1

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("weird_total", "x", ("name",)).inc(
            name='quote " backslash \\ newline \n'
        )
        families = parse_prometheus(render_prometheus(reg))
        (sample,) = families["weird_total"]["samples"]
        assert sample["labels"]["name"] == 'quote " backslash \\ newline \n'

    def test_special_float_values(self):
        reg = MetricsRegistry()
        g = reg.gauge("edge", "x")
        g.set(math.inf)
        families = parse_prometheus(render_prometheus(reg))
        assert families["edge"]["samples"][0]["value"] == math.inf

    def test_parser_rejects_untyped_samples(self):
        with pytest.raises(ValueError, match="no TYPE header"):
            parse_prometheus("mystery_metric 1\n")

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus("# TYPE x counter\nx{oops 1\n")


class TestJsonExposition:
    def test_families_and_samples(self):
        doc = json.loads(render_json(make_registry()))
        by_name = {f["name"]: f for f in doc["families"]}
        assert by_name["repro_jobs_total"]["type"] == "counter"
        values = {
            s["labels"]["scheduler"]: s["value"]
            for s in by_name["repro_jobs_total"]["samples"]
        }
        assert values == {"TOPO-AWARE-P": 4, "FCFS": 2}

    def test_write_metrics_selects_format_by_suffix(self, tmp_path):
        reg = make_registry()
        prom = write_metrics(reg, tmp_path / "m.prom")
        js = write_metrics(reg, tmp_path / "m.json")
        assert prom.read_text().startswith("# HELP")
        assert json.loads(js.read_text())["families"]
