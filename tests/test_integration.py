"""Whole-system integration tests at moderate scale.

Slower than unit tests (a second or two each) but still far below the
benchmark sizes; they pin down the cross-module behaviours the paper's
conclusions rest on.
"""

import numpy as np
import pytest

from repro.schedulers import make_scheduler
from repro.sim.engine import MachineFailure, Simulator, run_comparison
from repro.sim.metrics import (
    average_utilization,
    mean_waiting_time,
    qos_slowdown,
    slo_violations,
    total_slowdown,
)
from repro.topology.builders import cluster, dgx1
from repro.workload.generator import GeneratorConfig, WorkloadGenerator


@pytest.fixture(scope="module")
def workload():
    cfg = GeneratorConfig(arrival_rate_per_min=5.0)
    return WorkloadGenerator(cfg, seed=123).generate(150)


@pytest.fixture(scope="module")
def comparison(workload):
    return run_comparison(lambda: cluster(8), workload)


class TestCrossPolicyInvariants:
    def test_every_policy_completes_the_workload(self, comparison):
        for name, result in comparison.items():
            if name == "FCFS":
                continue  # FIFO blocking may starve in principle
            finished = sum(
                1 for r in result.records if r.finished_at is not None
            )
            assert finished == len(result.records), name

    def test_identical_work_different_schedules(self, comparison):
        """All policies process the same jobs; their placements differ."""
        placements = {
            name: tuple(r.gpus for r in result.records)
            for name, result in comparison.items()
        }
        assert placements["TOPO-AWARE-P"] != placements["FCFS"]

    def test_topo_policies_never_violate_slos(self, comparison):
        for name in ("TOPO-AWARE", "TOPO-AWARE-P"):
            assert slo_violations(comparison[name].records) == [], name

    def test_topo_p_best_or_tied_on_every_headline_metric(self, comparison):
        def stats(result):
            recs = [r for r in result.records if r.finished_at is not None]
            return (
                float(np.mean([qos_slowdown(r) for r in recs])),
                float(np.mean([total_slowdown(r) for r in recs])),
                mean_waiting_time(recs),
            )

        topo = stats(comparison["TOPO-AWARE-P"])
        for name in ("BF", "FCFS"):
            other = stats(comparison[name])
            assert topo[0] <= other[0] + 1e-9, (name, "qos")
            assert topo[1] <= other[1] + 1e-9, (name, "total")

    def test_utilization_reasonable_under_load(self, comparison, workload):
        for result in comparison.values():
            util = average_utilization(result.records, total_gpus=32)
            assert 0.15 < util <= 1.0


class TestDeterminismAcrossRuns:
    def test_full_comparison_is_reproducible(self, workload, comparison):
        again = run_comparison(lambda: cluster(8), workload)
        for name, result in comparison.items():
            other = again[name]
            assert result.makespan == other.makespan
            for a, b in zip(result.records, other.records):
                assert a.gpus == b.gpus and a.finished_at == b.finished_at


class TestMixedConditions:
    def test_dgx_cluster_with_failures_and_model_parallel(self):
        """Everything at once: DGX-1 machines, a machine outage, mixed
        data/model-parallel jobs, the postponing policy."""
        from repro.workload.job import CommPattern, Job, ModelType

        gen = WorkloadGenerator(GeneratorConfig(arrival_rate_per_min=6.0), seed=5)
        jobs = list(gen.generate(30))
        jobs.append(
            Job(
                "pipeline",
                ModelType.ALEXNET,
                1,
                4,
                min_utility=0.3,
                arrival_time=30.0,
                iterations=500,
                comm_pattern=CommPattern.MODEL_PARALLEL_CHAIN,
            )
        )
        sim = Simulator(
            cluster(3, dgx1),
            make_scheduler("TOPO-AWARE-P"),
            jobs,
            failures=[MachineFailure("m1", at_time=200.0, duration_s=400.0)],
        )
        result = sim.run()
        assert all(r.finished_at is not None for r in result.records)
        pipe = result.record_of("pipeline")
        assert pipe.p2p  # the NVLink quad was worth waiting for
