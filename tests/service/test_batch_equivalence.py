"""Golden batch-equivalence: daemon replay == one-shot simulate.

The service's core correctness guarantee (ISSUE acceptance criterion):
a trace pushed through the real HTTP API in paused mode, then resumed
and drained, produces **byte-identical** job records to a one-shot
``repro simulate`` of the same manifest.  Compared field-by-field with
``==`` over every measured record field — floats included, no
tolerance.
"""

import pytest

from repro.analysis.bench import RECORD_FIELDS, _records_identical
from repro.analysis.scenarios import scenario1_jobs
from repro.schedulers import make_scheduler
from repro.service import SchedulerService, ServiceServer, replay_trace
from repro.sim.engine import Simulator
from repro.topology.builders import cluster


@pytest.mark.parametrize("scheduler_name", ["TOPO-AWARE", "FCFS"])
def test_daemon_replay_matches_one_shot_bit_identically(scheduler_name):
    jobs = scenario1_jobs(100, seed=42)

    one_shot = Simulator(
        cluster(5), make_scheduler(scheduler_name), list(jobs)
    ).run()

    service = SchedulerService(cluster(5), scheduler_name)
    with service, ServiceServer(service) as server:
        report = replay_trace(jobs, server.url, pause=True, wait=True)
        assert report.submitted == len(jobs)
        assert report.rejected == {}
        assert report.completed
        assert service.drain()
        daemon = service.result()

    assert len(daemon.records) == len(one_shot.records)
    assert _records_identical(daemon, one_shot), _first_diff(
        daemon, one_shot
    )


def test_live_mode_completes_the_whole_trace():
    """Unpaused submissions race the engine: no bit-identical claim,
    but every job must still terminate (arrival clamping at work)."""
    jobs = scenario1_jobs(40, seed=7)
    service = SchedulerService(cluster(5), "TOPO-AWARE")
    with service, ServiceServer(service) as server:
        report = replay_trace(jobs, server.url, pause=False, wait=True)
        assert report.submitted == len(jobs)
        assert report.completed
        assert set(report.final_states.values()) <= {
            "FINISHED",
            "CANCELLED",
            "FAILED",
        }


def _first_diff(a, b) -> str:
    for ra, rb in zip(a.records, b.records):
        if ra.job.job_id != rb.job.job_id:
            return f"record order diverges at {ra.job.job_id}/{rb.job.job_id}"
        for name in RECORD_FIELDS:
            va, vb = getattr(ra, name), getattr(rb, name)
            if va != vb:
                return f"{ra.job.job_id}.{name}: daemon={va!r} one-shot={vb!r}"
    return "lengths differ"
