"""Durable sqlite journal: round-trips and crash recovery."""

from repro.service.statemachine import JobState
from repro.service.store import ServiceStore
from repro.workload.job import CommPattern, Job, ModelType


def fancy_job(job_id: str = "j1") -> Job:
    """A job exercising every manifest field away from its default."""
    return Job(
        job_id,
        ModelType.GOOGLENET,
        batch_size=32,
        num_gpus=3,
        min_utility=0.75,
        arrival_time=123.456789,
        iterations=9999,
        anti_collocation=True,
        single_node=False,
        p2p=True,
        comm_pattern=CommPattern.MODEL_PARALLEL_RING,
        tags=("trace", "restart"),
    )


class TestRoundTrip:
    def test_job_survives_the_journal_bit_identically(self, tmp_path):
        path = tmp_path / "svc.db"
        job = fancy_job()
        with ServiceStore(path) as store:
            store.journal_submission(job, 7, JobState.SUBMITTED)
        with ServiceStore(path) as store:
            stored = store.load_job("j1")
        # frozen dataclass equality: every field, == (floats included)
        assert stored.job == job
        assert stored.priority == 7
        assert stored.state is JobState.SUBMITTED

    def test_unknown_job_is_none(self, tmp_path):
        with ServiceStore(tmp_path / "svc.db") as store:
            assert store.load_job("ghost") is None

    def test_transition_history_append_order(self, tmp_path):
        clock_values = iter([1.0, 2.0, 3.0, 4.0])
        with ServiceStore(
            tmp_path / "svc.db", clock=lambda: next(clock_values)
        ) as store:
            store.journal_submission(fancy_job(), 0, JobState.SUBMITTED)
            store.journal_transition("j1", JobState.SUBMITTED, JobState.QUEUED)
            store.journal_transition("j1", JobState.QUEUED, JobState.PLACED)
            rows = store.transitions("j1")
        assert rows == [
            ("j1", None, "SUBMITTED", 1.0),
            ("j1", "SUBMITTED", "QUEUED", 2.0),
            ("j1", "QUEUED", "PLACED", 3.0),
        ]


class TestCrashRecovery:
    def test_recovery_is_bit_identical_and_skips_terminal(self, tmp_path):
        """Kill-and-restart: a second store on the same file sees the
        exact queue the first one journaled, terminal rows excluded."""
        path = tmp_path / "svc.db"
        jobs = [fancy_job(f"j{i}") for i in range(4)]
        store = ServiceStore(path)
        for i, job in enumerate(jobs):
            store.journal_submission(job, i, JobState.SUBMITTED)
        store.journal_transition("j0", JobState.SUBMITTED, JobState.QUEUED)
        store.journal_transition("j1", JobState.SUBMITTED, JobState.CANCELLED)
        # no close(): simulate an unclean death — WAL must still hold
        # every committed transaction
        reopened = ServiceStore(path)
        recovered = reopened.recover()
        assert [s.job.job_id for s in recovered] == ["j0", "j2", "j3"]
        assert recovered[0].state is JobState.QUEUED
        by_id = {s.job.job_id: s for s in recovered}
        for job in jobs:
            if job.job_id in by_id:
                assert by_id[job.job_id].job == job
                assert by_id[job.job_id].priority == int(job.job_id[1:])
        # all_jobs still surfaces the cancelled one (id bookkeeping)
        assert [s.job.job_id for s in reopened.all_jobs()] == [
            "j0",
            "j1",
            "j2",
            "j3",
        ]
        reopened.close()
        store.close()

    def test_current_state_is_denormalised(self, tmp_path):
        path = tmp_path / "svc.db"
        with ServiceStore(path) as store:
            store.journal_submission(fancy_job(), 0, JobState.SUBMITTED)
            store.journal_transition("j1", JobState.SUBMITTED, JobState.QUEUED)
            store.journal_transition("j1", JobState.QUEUED, JobState.FAILED)
        with ServiceStore(path) as store:
            assert store.load_job("j1").state is JobState.FAILED
            assert store.recover() == []
