"""Admission control and the priority inbox."""

from repro.service.queue import QueueManager
from repro.workload.job import Job, ModelType


def make_job(job_id: str, num_gpus: int = 2, **kwargs) -> Job:
    return Job(job_id, ModelType.ALEXNET, 4, num_gpus, **kwargs)


class TestAdmission:
    def test_admitted(self):
        q = QueueManager(total_gpus=8)
        decision = q.push(make_job("a"))
        assert decision.admitted and decision.reason == "admitted"

    def test_duplicate_ids_are_reserved_forever(self):
        q = QueueManager(total_gpus=8)
        q.push(make_job("a"))
        assert q.admit(make_job("a")).reason == "duplicate"
        # even after the job retires, its id stays burned
        q.pop_batch()
        q.retire("a")
        assert q.push(make_job("a")).reason == "duplicate"

    def test_over_capacity_rejected(self):
        q = QueueManager(total_gpus=8)
        decision = q.push(make_job("big", num_gpus=9))
        assert not decision.admitted
        assert decision.reason == "over-capacity"
        assert len(q) == 0

    def test_queue_full_counts_backlog_not_inbox(self):
        q = QueueManager(total_gpus=8, max_depth=2)
        q.push(make_job("a"))
        q.push(make_job("b"))
        # the inbox being drained does NOT free the budget: the jobs
        # are still live inside the service
        q.pop_batch()
        assert q.push(make_job("c")).reason == "queue-full"
        # a terminal transition does free it
        q.retire("a")
        assert q.push(make_job("c")).reason == "admitted"

    def test_admit_is_pure(self):
        q = QueueManager(total_gpus=8)
        assert q.admit(make_job("a")).admitted
        assert len(q) == 0 and q.depth == 0


class TestDrainOrder:
    def test_highest_priority_first_then_fifo(self):
        q = QueueManager(total_gpus=8)
        q.push(make_job("low1"), priority=0)
        q.push(make_job("hi"), priority=5)
        q.push(make_job("low2"), priority=0)
        drained = [e.job.job_id for e in q.pop_batch()]
        assert drained == ["hi", "low1", "low2"]

    def test_pop_batch_respects_limit(self):
        q = QueueManager(total_gpus=8)
        for i in range(5):
            q.push(make_job(f"j{i}"))
        assert len(q.pop_batch(2)) == 2
        assert len(q) == 3

    def test_restore_bypasses_admission(self):
        q = QueueManager(total_gpus=8, max_depth=1)
        q.push(make_job("a"))
        # recovery must re-seat journaled jobs even past the depth cap
        q.restore(make_job("b"), priority=3)
        assert q.depth == 2
        assert q.admit(make_job("b")).reason == "duplicate"

    def test_two_phase_reserve_then_enqueue(self):
        """The daemon's submit ordering: a reserved job consumes its
        id and depth budget immediately but stays invisible to
        pop_batch until enqueue() publishes it."""
        q = QueueManager(total_gpus=8)
        job = make_job("a")
        assert q.admit_and_reserve(job).admitted
        assert q.depth == 1 and len(q) == 0
        assert q.admit(make_job("a")).reason == "duplicate"
        assert q.pop_batch() == []
        q.enqueue(job)
        assert [e.job.job_id for e in q.pop_batch()] == ["a"]

    def test_depth_vs_len(self):
        q = QueueManager(total_gpus=8)
        q.push(make_job("a"))
        q.push(make_job("b"))
        assert len(q) == 2 and q.depth == 2
        q.pop_batch()
        assert len(q) == 0 and q.depth == 2
        q.retire("a")
        assert q.depth == 1
