"""Job state machine: the full legal/illegal transition matrix."""

import itertools

import pytest

from repro.service.statemachine import (
    JobState,
    LifecycleTable,
    TRANSITIONS,
    TransitionError,
)

ALL_STATES = list(JobState)
TERMINAL = {JobState.FINISHED, JobState.CANCELLED, JobState.FAILED}


class TestTransitionMatrix:
    """Every (from, to) pair, exhaustively: 7 x 7 = 49 cases."""

    @pytest.mark.parametrize(
        "frm,to", list(itertools.product(ALL_STATES, ALL_STATES))
    )
    def test_every_pair_matches_the_table(self, frm, to):
        table = LifecycleTable()
        table.create("j", state=frm)
        if to in TRANSITIONS[frm]:
            assert table.advance("j", to) is frm
            assert table.state("j") is to
        else:
            with pytest.raises(TransitionError) as exc:
                table.advance("j", to)
            assert exc.value.job_id == "j"
            assert exc.value.frm is frm
            assert exc.value.to is to
            # rejected transitions leave the state untouched
            assert table.state("j") is frm

    def test_table_covers_every_state(self):
        assert set(TRANSITIONS) == set(JobState)

    def test_terminal_states_have_no_exits(self):
        for state in TERMINAL:
            assert state.terminal
            assert TRANSITIONS[state] == frozenset()
        for state in set(JobState) - TERMINAL:
            assert not state.terminal
            assert TRANSITIONS[state]

    def test_happy_path_reaches_finished(self):
        table = LifecycleTable()
        table.create("j")
        for to in (
            JobState.QUEUED,
            JobState.PLACED,
            JobState.RUNNING,
            JobState.FINISHED,
        ):
            table.advance("j", to)
        assert table.state("j") is JobState.FINISHED

    def test_failure_requeue_loop(self):
        """RUNNING -> QUEUED (machine failure) -> place again."""
        table = LifecycleTable()
        table.create("j", state=JobState.RUNNING)
        table.advance("j", JobState.QUEUED)
        table.advance("j", JobState.PLACED)
        table.advance("j", JobState.RUNNING)
        table.advance("j", JobState.FINISHED)


class TestLifecycleTable:
    def test_create_duplicate_raises(self):
        table = LifecycleTable()
        table.create("j")
        with pytest.raises(ValueError):
            table.create("j")

    def test_advance_unknown_job_raises_keyerror(self):
        with pytest.raises(KeyError):
            LifecycleTable().advance("ghost", JobState.QUEUED)

    def test_advance_if_is_a_noop_when_illegal(self):
        table = LifecycleTable()
        table.create("j", state=JobState.FINISHED)
        assert not table.advance_if("j", JobState.RUNNING)
        assert table.state("j") is JobState.FINISHED
        assert not table.advance_if("ghost", JobState.QUEUED)

    def test_journal_sees_only_accepted_mutations(self):
        rows = []
        table = LifecycleTable(journal=lambda j, f, t: rows.append((j, f, t)))
        table.create("j")
        table.advance("j", JobState.QUEUED)
        with pytest.raises(TransitionError):
            table.advance("j", JobState.FINISHED)
        assert not table.advance_if("j", JobState.RUNNING)
        table.advance_if("j", JobState.PLACED)
        assert rows == [
            ("j", None, JobState.SUBMITTED),
            ("j", JobState.SUBMITTED, JobState.QUEUED),
            ("j", JobState.QUEUED, JobState.PLACED),
        ]

    def test_counts_include_zero_states(self):
        table = LifecycleTable()
        table.create("a")
        table.create("b", state=JobState.FINISHED)
        counts = table.counts()
        assert set(counts) == {s.value for s in JobState}
        assert counts["SUBMITTED"] == 1
        assert counts["FINISHED"] == 1
        assert counts["RUNNING"] == 0

    def test_table_rows_sorted_and_contains(self):
        table = LifecycleTable()
        table.create("b")
        table.create("a", state=JobState.QUEUED)
        assert table.table() == (("a", "QUEUED"), ("b", "SUBMITTED"))
        assert "a" in table and "ghost" not in table
        assert table.jobs_in({JobState.QUEUED}) == ["a"]
