"""Service eviction verb: RUNNING -> QUEUED -> re-placed -> FINISHED."""

import json
import urllib.error
import urllib.request

import pytest

from repro.service import SchedulerService, ServiceServer
from repro.service.statemachine import JobState
from repro.topology.builders import cluster
from repro.workload.job import Job, ModelType
from repro.workload.manifest import job_to_dict


def submit_doc(job_id: str, num_gpus: int = 2, **kwargs) -> dict:
    return job_to_dict(Job(job_id, ModelType.ALEXNET, 4, num_gpus, **kwargs))


@pytest.fixture
def service(tmp_path):
    svc = SchedulerService(
        cluster(2), "TOPO-AWARE", store_path=str(tmp_path / "svc.db")
    )
    with svc:
        yield svc


def run_until_running(service, job_id):
    """Pause the loop, feed the inbox, then step the engine exactly
    once so the job is RUNNING but its Finish event has not fired."""
    service.drain()  # inbox applied while paused; arrival still pending
    service.sim.step()
    assert service.lifecycle.state(job_id) is JobState.RUNNING


class TestEvictVerb:
    def test_evict_unknown_raises(self, service):
        with pytest.raises(KeyError):
            service.evict("ghost")

    def test_evict_not_running_raises(self, service):
        service.pause()
        service.submit(submit_doc("a"))
        service.drain()
        with pytest.raises(ValueError):
            service.evict("a")  # SUBMITTED, not running

    def test_evict_terminal_raises(self, service):
        service.submit(submit_doc("a", iterations=50))
        assert service.drain()
        with pytest.raises(ValueError):
            service.evict("a")  # FINISHED

    def test_evicted_job_requeues_and_finishes(self, service):
        service.pause()
        service.submit(submit_doc("a", iterations=4000))
        run_until_running(service, "a")

        seen = service.evict("a")
        assert seen == "RUNNING"
        service.resume()
        assert service.drain()
        assert service.lifecycle.state("a") is JobState.FINISHED

        # the journal shows the full detour: the eviction is the
        # RUNNING -> QUEUED hop, followed by the re-placement
        hops = [(frm, to) for _, frm, to, _ in service.store.transitions("a")]
        assert ("RUNNING", "QUEUED") in hops
        detour = hops.index(("RUNNING", "QUEUED"))
        assert hops[detour:] == [
            ("RUNNING", "QUEUED"),
            ("QUEUED", "PLACED"),
            ("PLACED", "RUNNING"),
            ("RUNNING", "FINISHED"),
        ]
        record = service.job_status("a")["record"]
        assert record["preemptions"] == 1
        assert record["finished_at"] is not None

    def test_eviction_counter_increments(self, service):
        service.pause()
        service.submit(submit_doc("a", iterations=4000))
        run_until_running(service, "a")
        service.evict("a")
        service.resume()
        assert service.drain()
        counter = service.telemetry.registry.get(
            "repro_service_evictions_total"
        )
        assert counter.value() == 1


def http(method: str, url: str, body: dict | None = None):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as resp:
            return resp.status, json.loads(resp.read() or b"{}")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


@pytest.fixture
def served(service):
    with ServiceServer(service) as server:
        yield service, server.url


class TestEvictHTTP:
    def test_post_evict_running_job(self, served):
        service, url = served
        service.pause()
        service.submit(submit_doc("a", iterations=4000))
        run_until_running(service, "a")

        code, doc = http("POST", f"{url}/evict", {"id": "a"})
        assert (code, doc) == (202, {"id": "a", "state": "RUNNING"})
        service.resume()
        assert service.drain()
        assert service.lifecycle.state("a") is JobState.FINISHED
        hops = [(frm, to) for _, frm, to, _ in service.store.transitions("a")]
        assert ("RUNNING", "QUEUED") in hops

    def test_post_evict_error_codes(self, served):
        service, url = served
        assert http("POST", f"{url}/evict", {"id": "ghost"})[0] == 404
        assert http("POST", f"{url}/evict", {})[0] == 400
        service.pause()
        service.submit(submit_doc("a"))
        service.drain()
        # SUBMITTED, not running: conflict
        assert http("POST", f"{url}/evict", {"id": "a"})[0] == 409
