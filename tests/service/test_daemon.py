"""Scheduler service daemon: API semantics, HTTP verbs, recovery."""

import json
import urllib.error
import urllib.request

import pytest

from repro.service import SchedulerService, ServiceServer
from repro.service.statemachine import JobState
from repro.topology.builders import cluster
from repro.workload.job import Job, ModelType
from repro.workload.manifest import ManifestError, job_to_dict


def make_job(job_id: str, num_gpus: int = 2, **kwargs) -> Job:
    return Job(job_id, ModelType.ALEXNET, 4, num_gpus, **kwargs)


def submit_doc(job_id: str, num_gpus: int = 2, **kwargs) -> dict:
    return job_to_dict(make_job(job_id, num_gpus, **kwargs))


@pytest.fixture
def service(tmp_path):
    svc = SchedulerService(
        cluster(2), "TOPO-AWARE", store_path=str(tmp_path / "svc.db")
    )
    with svc:
        yield svc


class TestSubmitAndRun:
    def test_submission_runs_to_finished(self, service):
        result = service.submit(submit_doc("a"))
        assert result.decision.admitted
        assert result.state == "SUBMITTED"
        assert service.drain()
        assert service.lifecycle.state("a") is JobState.FINISHED
        doc = service.job_status("a")
        assert doc["state"] == "FINISHED"
        assert doc["record"]["finished_at"] > doc["record"]["arrival"]
        assert len(doc["record"]["gpus"]) == 2

    def test_rejections(self, service):
        service.submit(submit_doc("a"))
        assert service.submit(submit_doc("a")).decision.reason == "duplicate"
        # cluster(2) = 2 minsky machines = 8 GPUs
        over = service.submit(submit_doc("big", num_gpus=9))
        assert over.decision.reason == "over-capacity"
        with pytest.raises(ManifestError):
            service.submit({"id": "bad", "model": "resnet-50", "num_gpus": 2})

    def test_queue_full_backpressure(self, tmp_path):
        svc = SchedulerService(
            cluster(2),
            "TOPO-AWARE",
            store_path=str(tmp_path / "svc.db"),
            max_queue_depth=1,
        )
        with svc:
            svc.pause()
            assert svc.submit(submit_doc("a")).decision.admitted
            assert svc.submit(submit_doc("b")).decision.reason == "queue-full"

    def test_journal_records_the_full_lifecycle(self, service):
        service.submit(submit_doc("a"))
        assert service.drain()
        hops = [
            (frm, to) for _, frm, to, _ in service.store.transitions("a")
        ]
        assert hops == [
            (None, "SUBMITTED"),
            ("SUBMITTED", "QUEUED"),
            ("QUEUED", "PLACED"),
            ("PLACED", "RUNNING"),
            ("RUNNING", "FINISHED"),
        ]


class TestCancel:
    def test_cancel_unknown_raises(self, service):
        with pytest.raises(KeyError):
            service.cancel("ghost")

    def test_cancel_terminal_raises(self, service):
        service.submit(submit_doc("a"))
        assert service.drain()
        with pytest.raises(ValueError):
            service.cancel("a")

    def test_cancel_while_paused_reaches_cancelled(self, service):
        service.pause()
        service.submit(submit_doc("a"))
        assert service.drain()  # inbox applied, engine not stepped
        seen = service.cancel("a")
        assert seen == "SUBMITTED"
        assert service.drain()
        assert service.lifecycle.state("a") is JobState.CANCELLED
        assert service.queue.depth == 0
        service.resume()
        assert service.drain()
        assert service.lifecycle.state("a") is JobState.CANCELLED


class TestPauseResume:
    def test_paused_engine_holds_submissions(self, service):
        service.pause()
        assert service.paused
        service.submit(submit_doc("a"))
        assert service.drain()
        # applied to the engine but never stepped: still SUBMITTED
        assert service.lifecycle.state("a") is JobState.SUBMITTED
        service.resume()
        assert service.drain()
        assert service.lifecycle.state("a") is JobState.FINISHED


class TestStuckQueue:
    def test_unplaceable_job_fails_loudly(self, service):
        # 8 GPUs exist cluster-wide but no single machine has 8: a
        # single-node job can never place — the daemon must FAIL it,
        # mirroring the one-shot run loop's exit rule
        service.submit(submit_doc("wide", num_gpus=8, single_node=True))
        assert service.drain()
        assert service.lifecycle.state("wide") is JobState.FAILED
        assert service.job_status("wide")["record"]["unplaceable"] is True
        assert service.queue.depth == 0


class TestRestartRecovery:
    def test_killed_daemon_resumes_its_queue(self, tmp_path):
        path = str(tmp_path / "svc.db")
        first = SchedulerService(cluster(2), "TOPO-AWARE", store_path=path)
        with first:
            first.submit(submit_doc("done"))
            first.drain()
            assert first.lifecycle.state("done") is JobState.FINISHED
            first.pause()  # hold the engine so nothing else completes
            for i in range(5):
                first.submit(submit_doc(f"j{i}"))
            first.drain()
        # `with` exit = stop(): the paused jobs j0..j4 died non-terminal
        second = SchedulerService(cluster(2), "TOPO-AWARE", store_path=path)
        assert second.recovered_jobs == 5
        with second:
            assert second.drain(timeout_s=60.0)
            for i in range(5):
                assert second.lifecycle.state(f"j{i}") is JobState.FINISHED
            # terminal ids from the previous life stay reserved
            assert (
                second.submit(submit_doc("done")).decision.reason
                == "duplicate"
            )


# ----------------------------------------------------------------------
# the HTTP face
# ----------------------------------------------------------------------
def http(method: str, url: str, body: dict | None = None):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as resp:
            return resp.status, json.loads(resp.read() or b"{}")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


@pytest.fixture
def served(service):
    with ServiceServer(service) as server:
        yield service, server.url


class TestHTTPVerbs:
    def test_submit_cancel_jobs_roundtrip(self, served):
        service, url = served
        service.pause()
        code, doc = http("POST", f"{url}/submit", submit_doc("a"))
        assert (code, doc) == (202, {"id": "a", "state": "SUBMITTED"})
        code, doc = http("GET", f"{url}/jobs")
        assert code == 200
        assert doc["jobs"] == {"a": "SUBMITTED"}
        assert doc["queue_depth"] == 1 and doc["paused"] is True
        code, doc = http("POST", f"{url}/cancel", {"id": "a"})
        assert code == 202
        assert service.drain()
        code, doc = http("GET", f"{url}/jobs/a")
        assert code == 200 and doc["state"] == "CANCELLED"

    def test_rejection_status_codes(self, served):
        service, url = served
        service.pause()
        http("POST", f"{url}/submit", submit_doc("a"))
        assert http("POST", f"{url}/submit", submit_doc("a"))[0] == 409
        assert (
            http("POST", f"{url}/submit", submit_doc("big", num_gpus=9))[0]
            == 422
        )
        code, doc = http(
            "POST", f"{url}/submit", {"id": "bad", "model": "nope"}
        )
        assert code == 400 and "error" in doc

    def test_queue_full_is_429(self, tmp_path):
        svc = SchedulerService(
            cluster(2),
            "TOPO-AWARE",
            store_path=str(tmp_path / "svc.db"),
            max_queue_depth=1,
        )
        with svc, ServiceServer(svc) as server:
            svc.pause()
            http("POST", f"{server.url}/submit", submit_doc("a"))
            assert (
                http("POST", f"{server.url}/submit", submit_doc("b"))[0]
                == 429
            )

    def test_cancel_error_codes(self, served):
        service, url = served
        assert http("POST", f"{url}/cancel", {"id": "ghost"})[0] == 404
        assert http("POST", f"{url}/cancel", {})[0] == 400
        http("POST", f"{url}/submit", submit_doc("a"))
        assert service.drain()
        assert http("POST", f"{url}/cancel", {"id": "a"})[0] == 409

    def test_unknown_job_route_404(self, served):
        _, url = served
        assert http("GET", f"{url}/jobs/ghost")[0] == 404
        assert http("GET", f"{url}/nope")[0] == 404

    def test_pause_resume_verbs(self, served):
        service, url = served
        assert http("POST", f"{url}/pause") == (200, {"paused": True})
        assert service.paused
        assert http("POST", f"{url}/resume") == (200, {"paused": False})
        assert not service.paused

    def test_metrics_and_state_carry_service_families(self, served):
        service, url = served
        http("POST", f"{url}/submit", submit_doc("a"))
        assert service.drain()
        with urllib.request.urlopen(f"{url}/metrics", timeout=10) as resp:
            text = resp.read().decode()
        assert "repro_service_submissions_total" in text
        assert "repro_service_submission_latency_seconds" in text
        code, doc = http("GET", f"{url}/state")
        assert code == 200
        assert dict(doc["job_states"]) == {"a": "FINISHED"}
