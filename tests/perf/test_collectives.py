"""Tests for the mapping-aware collective cost models."""

import pytest

from repro.perf.collectives import (
    best_allreduce_time,
    best_ring_order,
    chain_pipeline_time,
    effective_pair_bandwidth,
    ring_allreduce_time,
    tree_allreduce_time,
)
from repro.perf.model import PerformanceModel
from repro.topology.builders import dgx1, power8_minsky
from repro.workload.job import CommPattern, Job, ModelType


class TestPairBandwidth:
    def test_p2p_pair_full_bandwidth(self, minsky):
        assert effective_pair_bandwidth(minsky, "m0/gpu0", "m0/gpu1") == pytest.approx(40.0)

    def test_cross_socket_penalised(self, minsky):
        bw = effective_pair_bandwidth(minsky, "m0/gpu0", "m0/gpu2")
        assert bw < 38.4  # xbus bottleneck times the staging penalty


class TestRing:
    def test_single_gpu_free(self, minsky):
        assert ring_allreduce_time(minsky, ["m0/gpu0"], 2.0) == 0.0

    def test_two_gpu_ring_matches_worst_pair_model(self, minsky):
        t = ring_allreduce_time(minsky, ["m0/gpu0", "m0/gpu1"], 2.0)
        assert t == pytest.approx(2.0 / 40.0)

    def test_ring_order_matters(self, dgx):
        gpus = ["m0/gpu0", "m0/gpu1", "m0/gpu4", "m0/gpu5"]
        # good ring follows NVLink edges 0-1, 1-5, 5-4, 4-0
        good = ring_allreduce_time(
            dgx, ["m0/gpu0", "m0/gpu1", "m0/gpu5", "m0/gpu4"], 2.0
        )
        # bad ring pairs 0-5 and 1-4 (no direct NVLink)
        bad = ring_allreduce_time(
            dgx, ["m0/gpu0", "m0/gpu5", "m0/gpu1", "m0/gpu4"], 2.0
        )
        assert good < bad

    def test_best_ring_order_finds_nvlink_cycle(self, dgx):
        gpus = ["m0/gpu0", "m0/gpu1", "m0/gpu4", "m0/gpu5"]
        order = best_ring_order(dgx, gpus)
        t = ring_allreduce_time(dgx, order, 2.0)
        # as cheap as the hand-built NVLink ring
        assert t == pytest.approx(
            ring_allreduce_time(dgx, ["m0/gpu0", "m0/gpu1", "m0/gpu5", "m0/gpu4"], 2.0)
        )

    def test_cost_grows_with_members(self, dgx):
        quad = dgx.gpus()[:4]
        pair = quad[:2]
        assert ring_allreduce_time(
            dgx, best_ring_order(dgx, quad), 2.0
        ) > ring_allreduce_time(dgx, pair, 2.0)

    def test_validation(self, minsky):
        with pytest.raises(ValueError):
            ring_allreduce_time(minsky, [], 2.0)
        with pytest.raises(ValueError):
            ring_allreduce_time(minsky, ["m0/gpu0", "m0/gpu1"], -1.0)


class TestTreeAndBest:
    def test_tree_time_positive(self, minsky):
        t = tree_allreduce_time(minsky, ["m0/gpu0", "m0/gpu1"], 2.0)
        assert t == pytest.approx(2 * 2.0 / 40.0)

    def test_best_picks_cheaper(self, dgx):
        quad = dgx.gpus()[:4]
        t, algo = best_allreduce_time(dgx, quad, 2.0)
        ring = ring_allreduce_time(dgx, best_ring_order(dgx, quad), 2.0)
        tree = tree_allreduce_time(dgx, quad, 2.0)
        assert t == pytest.approx(min(ring, tree))
        assert algo in ("ring", "tree")


class TestChainPipeline:
    def test_pipeline_limited_by_slowest_stage_link(self, minsky):
        # stages 0-1 on socket0 NVLink, 1-2 crossing the X-bus
        t = chain_pipeline_time(minsky, ["m0/gpu0", "m0/gpu1", "m0/gpu2"], 3.0)
        cross = effective_pair_bandwidth(minsky, "m0/gpu1", "m0/gpu2")
        assert t == pytest.approx(3.0 / cross)

    def test_single_stage_free(self, minsky):
        assert chain_pipeline_time(minsky, ["m0/gpu0"], 3.0) == 0.0


class TestModelParallelIntegration:
    def test_chain_job_charged_by_stage_order(self, minsky):
        perf = PerformanceModel(minsky)
        job = Job(
            "mp", ModelType.ALEXNET, 1, 4,
            comm_pattern=CommPattern.MODEL_PARALLEL_CHAIN,
        )
        # contiguous stage order: one X-bus crossing
        good = perf.iteration_time(job, ["m0/gpu0", "m0/gpu1", "m0/gpu2", "m0/gpu3"])
        # interleaved: every hop crosses the X-bus
        bad = perf.iteration_time(job, ["m0/gpu0", "m0/gpu2", "m0/gpu1", "m0/gpu3"])
        assert good <= bad

    def test_model_parallel_costs_more_than_data_parallel(self, minsky):
        perf = PerformanceModel(minsky)
        order = ["m0/gpu0", "m0/gpu1", "m0/gpu2", "m0/gpu3"]
        dp = Job("dp", ModelType.ALEXNET, 1, 4)
        mp = Job(
            "mp", ModelType.ALEXNET, 1, 4,
            comm_pattern=CommPattern.MODEL_PARALLEL_RING,
        )
        assert perf.iteration_time(mp, order) > perf.iteration_time(dp, order)

    def test_manifest_round_trips_pattern(self, tmp_path):
        from repro.workload.manifest import dumps_manifest, loads_manifest

        job = Job(
            "mp", ModelType.GOOGLENET, 4, 4,
            comm_pattern=CommPattern.MODEL_PARALLEL_CHAIN,
        )
        (loaded,) = loads_manifest(dumps_manifest([job]))
        assert loaded.comm_pattern is CommPattern.MODEL_PARALLEL_CHAIN

    def test_engine_uses_declared_pattern(self, minsky):
        from repro.core.placement import PlacementEngine
        from repro.topology.allocation import AllocationState

        engine = PlacementEngine(minsky, AllocationState(minsky))
        job = Job(
            "mp", ModelType.ALEXNET, 1, 2,
            comm_pattern=CommPattern.MODEL_PARALLEL_CHAIN,
        )
        graph = engine.job_graph(job)
        assert graph.n_edges() == 1  # a chain, not a clique
