"""Tests for the co-location interference model (Figure 6 anchors)."""

import pytest

from repro.perf.interference import (
    InterferenceModel,
    SHARING_REF,
    pairwise_slowdown,
    pressure,
    sensitivity,
)
from repro.perf.calibration import DEFAULT_CALIBRATION
from repro.topology.allocation import AllocationState
from repro.topology.builders import power8_minsky
from repro.workload.job import BatchClass, Job, ModelType

from tests.conftest import make_job


def alex(batch: int, job_id: str = "j") -> Job:
    return Job(job_id, ModelType.ALEXNET, batch, 2)


class TestPairwiseSlowdown:
    def test_fig6_tiny_tiny_anchor(self):
        """Two tiny AlexNet jobs: ~30% slowdown at reference sharing."""
        s = pairwise_slowdown(alex(1), alex(1), sharing=SHARING_REF)
        assert s == pytest.approx(0.30, abs=0.03)

    def test_fig6_big_aggressor_tiny_victim_anchor(self):
        """Tiny victim of a big-batch job: ~24%."""
        s = pairwise_slowdown(alex(1), alex(128), sharing=SHARING_REF)
        assert s == pytest.approx(0.24, abs=0.03)

    def test_fig6_big_aggressor_small_victim_anchor(self):
        """Small victim of a big-batch job: ~21%."""
        s = pairwise_slowdown(alex(4), alex(128), sharing=SHARING_REF)
        assert s == pytest.approx(0.21, abs=0.03)

    def test_fig6_big_big_near_zero(self):
        s = pairwise_slowdown(alex(128), alex(128), sharing=SHARING_REF)
        assert s < 0.05

    def test_slowdown_scales_with_sharing(self):
        full = pairwise_slowdown(alex(1), alex(1), sharing=SHARING_REF)
        half = pairwise_slowdown(alex(1), alex(1), sharing=SHARING_REF / 2)
        assert half == pytest.approx(full / 2)

    def test_sharing_saturates_at_reference(self):
        at_ref = pairwise_slowdown(alex(1), alex(1), sharing=SHARING_REF)
        above = pairwise_slowdown(alex(1), alex(1), sharing=1.0)
        assert above == pytest.approx(at_ref)

    def test_invalid_sharing_rejected(self):
        with pytest.raises(ValueError):
            pairwise_slowdown(alex(1), alex(1), sharing=1.5)

    def test_googlenet_suffers_far_less(self):
        goog = Job("g", ModelType.GOOGLENET, 1, 2)
        assert pairwise_slowdown(goog, alex(1), 1.0) < 0.3 * pairwise_slowdown(
            alex(1), alex(1), 1.0
        )

    def test_googlenet_perturbs_far_less(self):
        goog = Job("g", ModelType.GOOGLENET, 1, 2)
        assert pairwise_slowdown(alex(1), goog, 1.0) < 0.3 * pairwise_slowdown(
            alex(1), alex(1), 1.0
        )


class TestCoefficients:
    def test_sensitivity_bounded(self):
        for m in ModelType:
            for bc in BatchClass:
                assert 0.0 <= sensitivity(DEFAULT_CALIBRATION, m, bc) <= 1.0
                assert 0.0 <= pressure(DEFAULT_CALIBRATION, m, bc) <= 1.0

    def test_alexnet_sensitivity_matches_table(self):
        assert sensitivity(
            DEFAULT_CALIBRATION, ModelType.ALEXNET, BatchClass.TINY
        ) == pytest.approx(0.62)


class TestInterferenceModel:
    def _setup(self):
        topo = power8_minsky()
        alloc = AllocationState(topo)
        return topo, alloc, InterferenceModel(topo)

    def test_no_co_runners_no_slowdown(self):
        topo, alloc, model = self._setup()
        job = make_job()
        gpus = frozenset(["m0/gpu0", "m0/gpu1"])
        assert model.slowdown_factor(job, gpus, {}, alloc) == 1.0

    def test_disjoint_sockets_no_slowdown(self):
        topo, alloc, model = self._setup()
        other = make_job("other")
        alloc.allocate("other", ["m0/gpu2", "m0/gpu3"])
        co = {"other": (other, frozenset(["m0/gpu2", "m0/gpu3"]))}
        job = make_job("j")
        factor = model.slowdown_factor(
            job, frozenset(["m0/gpu0", "m0/gpu1"]), co, alloc
        )
        assert factor == 1.0

    def test_interleaved_placement_slows_down(self):
        topo, alloc, model = self._setup()
        other = make_job("other", batch_size=1)
        alloc.allocate("other", ["m0/gpu1", "m0/gpu3"])
        co = {"other": (other, frozenset(["m0/gpu1", "m0/gpu3"]))}
        job = make_job("j", batch_size=1)
        factor = model.slowdown_factor(
            job, frozenset(["m0/gpu0", "m0/gpu2"]), co, alloc
        )
        assert factor > 1.2  # ~Fig 6 tiny+tiny

    def test_eq4_averages_both_directions(self):
        topo, alloc, model = self._setup()
        other = make_job("other", batch_size=128)
        alloc.allocate("other", ["m0/gpu1", "m0/gpu3"])
        co = {"other": (other, frozenset(["m0/gpu1", "m0/gpu3"]))}
        job = make_job("j", batch_size=1)
        eq4 = model.eq4_interference(job, ["m0/gpu0", "m0/gpu2"], co, alloc)
        mine = model.slowdown_factor(
            job, frozenset(["m0/gpu0", "m0/gpu2"]), co, alloc
        )
        assert 1.0 < eq4 < mine  # the big job suffers less than I do

    def test_collocation_pair_slowdown_asymmetry(self):
        topo, alloc, model = self._setup()
        a, b = alex(1, "a"), alex(128, "b")
        ga, gb = ["m0/gpu0", "m0/gpu2"], ["m0/gpu1", "m0/gpu3"]
        alloc.allocate("a", ga)
        alloc.allocate("b", gb)
        slow_a, slow_b = model.collocation_pair_slowdown(a, ga, b, gb, alloc)
        assert slow_a > slow_b  # the tiny job is the victim

    def test_remote_jobs_ignored(self):
        from repro.topology.builders import cluster

        topo = cluster(2)
        alloc = AllocationState(topo)
        model = InterferenceModel(topo)
        other = make_job("other", batch_size=1)
        alloc.allocate("other", ["m1/gpu0", "m1/gpu1"])
        co = {"other": (other, frozenset(["m1/gpu0", "m1/gpu1"]))}
        factor = model.slowdown_factor(
            make_job("j"), frozenset(["m0/gpu0", "m0/gpu1"]), co, alloc
        )
        assert factor == 1.0
