"""Tests for the Section 4.2 profile predictor."""

import numpy as np
import pytest

from repro.perf.model import PerformanceModel, Placement
from repro.perf.prediction import KNNRegressor, ProfilePredictor, RegressionTree
from repro.topology.builders import power8_minsky
from repro.workload.job import BatchClass, Job, ModelType


class TestRegressionTree:
    def test_fits_constant(self):
        X = np.array([[0.0], [1.0], [2.0]])
        tree = RegressionTree().fit(X, np.array([5.0, 5.0, 5.0]))
        assert tree.predict_one([1.5]) == 5.0
        assert tree.depth() == 0

    def test_splits_a_step_function(self):
        X = np.array([[x] for x in range(10)], dtype=float)
        y = np.array([0.0] * 5 + [10.0] * 5)
        tree = RegressionTree(max_depth=2).fit(X, y)
        assert tree.predict_one([1.0]) == pytest.approx(0.0)
        assert tree.predict_one([8.0]) == pytest.approx(10.0)

    def test_respects_max_depth(self):
        X = np.array([[x] for x in range(16)], dtype=float)
        y = np.arange(16, dtype=float)
        tree = RegressionTree(max_depth=2).fit(X, y)
        assert tree.depth() <= 2

    def test_min_samples_leaf(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 0.0, 100.0])
        tree = RegressionTree(max_depth=5, min_samples_leaf=2).fit(X, y)
        # the lone outlier cannot get its own leaf
        assert tree.predict_one([3.0]) < 100.0

    def test_multifeature_split_selection(self):
        # y depends only on feature 1
        rng = np.random.default_rng(0)
        X = np.column_stack([rng.random(40), np.repeat([0.0, 1.0], 20)])
        y = X[:, 1] * 7.0
        tree = RegressionTree(max_depth=1).fit(X, y)
        assert tree.predict_one([0.5, 0.0]) == pytest.approx(0.0, abs=1e-9)
        assert tree.predict_one([0.5, 1.0]) == pytest.approx(7.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((2, 2)), np.zeros(3))
        with pytest.raises(RuntimeError):
            RegressionTree().predict_one([0.0])


class TestKNN:
    def test_exact_match_returns_label(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        knn = KNNRegressor(k=2).fit(X, np.array([1.0, 9.0]))
        assert knn.predict_one([0.0, 0.0]) == 1.0

    def test_interpolates_between_neighbours(self):
        X = np.array([[0.0], [2.0]])
        knn = KNNRegressor(k=2).fit(X, np.array([0.0, 10.0]))
        assert knn.predict_one([1.0]) == pytest.approx(5.0)

    def test_constant_feature_does_not_break_standardisation(self):
        # feature 1 has zero variance; the std guard must not divide by 0
        X = np.array([[0.0, 5.0], [1.0, 5.0], [10.0, 5.0]])
        knn = KNNRegressor(k=1).fit(X, np.array([0.0, 1.0, 2.0]))
        assert knn.predict_one([0.9, 5.0]) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            KNNRegressor(k=0)
        with pytest.raises(RuntimeError):
            KNNRegressor().predict_one([0.0])


@pytest.fixture(scope="module", params=["tree", "knn"])
def predictor(request):
    return ProfilePredictor(backend=request.param)


class TestProfilePredictor:
    def test_recovers_known_profiles(self, predictor, profiles):
        """At the training points the prediction must be close."""
        for model in ModelType:
            for bc in BatchClass:
                known = profiles.get(model, bc)
                pred = predictor.predict(model, bc.representative_batch)
                assert pred.solo_iter_pack_s == pytest.approx(
                    known.solo_iter_pack_s, rel=0.35
                )
                assert pred.sensitivity == pytest.approx(
                    known.sensitivity, abs=0.15
                )

    def test_interpolates_unseen_batch_sizes(self, predictor, profiles):
        """Batch 12 sits between the small (4) and medium (32) classes;
        the prediction must land between their profiles."""
        small = profiles.get(ModelType.ALEXNET, BatchClass.SMALL)
        medium = profiles.get(ModelType.ALEXNET, BatchClass.MEDIUM)
        pred = predictor.predict(ModelType.ALEXNET, 12)
        lo = min(small.solo_iter_pack_s, medium.solo_iter_pack_s)
        hi = max(small.solo_iter_pack_s, medium.solo_iter_pack_s)
        assert lo * 0.8 <= pred.solo_iter_pack_s <= hi * 1.2
        assert medium.sensitivity - 0.1 <= pred.sensitivity <= small.sensitivity + 0.1

    def test_prediction_tracks_true_model_direction(self, predictor):
        """Predicted iteration times must grow with batch size like the
        true performance model does."""
        preds = [
            predictor.predict(ModelType.ALEXNET, b).solo_iter_pack_s
            for b in (1, 8, 64)
        ]
        assert preds[0] < preds[-1]

    def test_profile_invariants(self, predictor):
        for b in (1, 3, 12, 50, 100):
            p = predictor.predict(ModelType.CAFFEREF, b)
            assert p.solo_iter_spread_s >= p.solo_iter_pack_s
            assert 0.0 <= p.comm_fraction <= 1.0
            assert 0.0 <= p.sensitivity <= 1.0
            assert 0.0 <= p.pressure <= 1.0
            assert p.avg_demand_gbs >= 0.0

    def test_predict_for_job(self, predictor):
        job = Job("j", ModelType.GOOGLENET, 12, 2)
        p = predictor.predict_for_job(job)
        assert p.model is ModelType.GOOGLENET
        assert p.batch_class is BatchClass.MEDIUM

    def test_invalid_inputs(self, predictor):
        with pytest.raises(ValueError):
            predictor.predict(ModelType.ALEXNET, 0)
        with pytest.raises(ValueError):
            ProfilePredictor(backend="svm")

    def test_prediction_error_vs_true_model_is_bounded(self, predictor):
        """Section 4.2: 'our model does not need to be optimal' -- but
        against the true performance model at unseen batch sizes the
        median relative error must stay within ~50%."""
        topo = power8_minsky()
        perf = PerformanceModel(topo)
        errors = []
        for model in ModelType:
            for b in (2, 6, 12, 48, 96):
                job = Job("probe", model, b, 2)
                truth = perf.iteration_time(
                    job, perf.placement_gpus(job, Placement.PACK)
                )
                pred = predictor.predict(model, b).solo_iter_pack_s
                errors.append(abs(pred - truth) / truth)
        assert float(np.median(errors)) < 0.5
