"""Tests for the predictive profile database."""

import pytest

from repro.perf.prediction import PredictiveProfileDatabase
from repro.schedulers import make_scheduler
from repro.sim.engine import Simulator
from repro.topology.builders import power8_minsky
from repro.workload.job import BatchClass, Job, ModelType

from tests.conftest import make_job


@pytest.fixture(scope="module")
def db():
    return PredictiveProfileDatabase()


class TestPredictiveDatabase:
    def test_representative_batches_use_exact_profiles(self, db, profiles):
        job = make_job(batch_size=4)
        assert db.for_job(job) is profiles.get(ModelType.ALEXNET, BatchClass.SMALL)

    def test_in_between_batches_get_predictions(self, db, profiles):
        job = make_job(batch_size=12)
        predicted = db.for_job(job)
        class_profile = profiles.get(ModelType.ALEXNET, BatchClass.MEDIUM)
        assert predicted is not class_profile
        # batch 12 communicates more often than the class representative
        # (32), so its predicted demand must be at least as high
        assert predicted.avg_demand_gbs >= class_profile.avg_demand_gbs - 1e-9

    def test_predictions_cached(self, db):
        a = db.for_job(make_job(batch_size=12))
        b = db.for_job(make_job(batch_size=12))
        assert a is b

    def test_still_a_profile_database(self, db):
        assert len(db) == 12
        assert db.get(ModelType.GOOGLENET, BatchClass.BIG) is not None

    def test_simulator_accepts_predictive_profiles(self, db):
        jobs = [
            make_job("a", batch_size=12, num_gpus=2, iterations=50),
            make_job("b", batch_size=6, num_gpus=1, iterations=50,
                     arrival_time=1.0),
        ]
        sim = Simulator(
            power8_minsky(), make_scheduler("TOPO-AWARE-P"), jobs, profiles=db
        )
        result = sim.run()
        assert all(r.finished_at is not None for r in result.records)
