"""Tests for the calibration constants and their paper anchors."""

import pytest

from repro.perf.calibration import (
    Calibration,
    DEFAULT_CALIBRATION,
    MachineKind,
    ModelCalibration,
)
from repro.workload.job import BatchClass, ModelType


class TestModelCalibration:
    def test_compute_time_linear_in_batch(self):
        mc = DEFAULT_CALIBRATION.model(ModelType.ALEXNET)
        t1, t2 = mc.compute_time(1), mc.compute_time(2)
        t128 = mc.compute_time(128)
        assert t2 - t1 == pytest.approx(mc.compute_per_sample_s)
        assert t128 > 50 * t1

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_CALIBRATION.model(ModelType.ALEXNET).compute_time(0)

    def test_k80_slower(self):
        cal = DEFAULT_CALIBRATION
        p100 = cal.compute_time(ModelType.ALEXNET, 8, MachineKind.NVLINK_P100)
        k80 = cal.compute_time(ModelType.ALEXNET, 8, MachineKind.PCIE_K80)
        assert k80 == pytest.approx(p100 * cal.k80_compute_factor)


class TestPaperAnchors:
    """Figure 3's absolute AlexNet anchors, 40-iteration scale."""

    def test_alexnet_tiny_compute_about_1s(self):
        t = 40 * DEFAULT_CALIBRATION.model(ModelType.ALEXNET).compute_time(1)
        assert 0.5 < t < 2.0

    def test_alexnet_big_compute_about_66s(self):
        t = 40 * DEFAULT_CALIBRATION.model(ModelType.ALEXNET).compute_time(128)
        assert 55.0 < t < 80.0

    def test_alexnet_comm_about_2s_at_nvlink_speed(self):
        # comm volume over the 40 GB/s dual-NVLink pack path
        v = DEFAULT_CALIBRATION.model(ModelType.ALEXNET).comm_volume_gb
        assert 40 * v / 40.0 == pytest.approx(2.0, rel=0.2)

    def test_googlenet_communicates_least(self):
        vols = {
            m: DEFAULT_CALIBRATION.model(m).comm_volume_gb for m in ModelType
        }
        assert vols[ModelType.GOOGLENET] < 0.3 * vols[ModelType.ALEXNET]
        assert vols[ModelType.GOOGLENET] < 0.3 * vols[ModelType.CAFFEREF]

    def test_sensitivity_and_pressure_cover_all_classes(self):
        assert set(DEFAULT_CALIBRATION.sensitivity) == set(BatchClass)
        assert set(DEFAULT_CALIBRATION.pressure) == set(BatchClass)

    def test_sensitivity_falls_faster_than_pressure(self):
        # Fig 6: victims stop suffering with big batches, but aggressors
        # keep perturbing ("it still consumes bandwidth")
        s = DEFAULT_CALIBRATION.sensitivity
        p = DEFAULT_CALIBRATION.pressure
        s_drop = s[BatchClass.TINY] / s[BatchClass.BIG]
        p_drop = p[BatchClass.TINY] / p[BatchClass.BIG]
        assert s_drop > 5.0
        assert p_drop < 1.5
