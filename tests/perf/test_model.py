"""Tests for the solo performance model (Figures 3/4 behaviour)."""

import pytest

from repro.perf.calibration import MachineKind
from repro.perf.model import (
    PerformanceModel,
    Placement,
    allreduce_scale,
    pack_gpus,
    spread_gpus,
)
from repro.topology.builders import cluster, power8_minsky
from repro.workload.job import Job, ModelType

from tests.conftest import make_job


class TestAllreduceScale:
    def test_values(self):
        assert allreduce_scale(1) == 0.0
        assert allreduce_scale(2) == 1.0
        assert allreduce_scale(4) == 1.5
        assert allreduce_scale(8) == 1.75

    def test_monotone(self):
        scales = [allreduce_scale(n) for n in range(1, 16)]
        assert scales == sorted(scales)

    def test_invalid(self):
        with pytest.raises(ValueError):
            allreduce_scale(0)


class TestCanonicalPlacements:
    def test_pack_prefers_single_socket(self, minsky):
        gpus = pack_gpus(minsky, 2)
        assert minsky.socket_of(gpus[0]) == minsky.socket_of(gpus[1])

    def test_spread_crosses_sockets(self, minsky):
        gpus = spread_gpus(minsky, 2)
        assert minsky.socket_of(gpus[0]) != minsky.socket_of(gpus[1])

    def test_pack_respects_free_list(self, minsky):
        gpus = pack_gpus(minsky, 2, free=["m0/gpu1", "m0/gpu2", "m0/gpu3"])
        assert set(gpus) == {"m0/gpu2", "m0/gpu3"}  # the intact socket

    def test_pack_prefers_machine_that_fits(self):
        topo = cluster(2)
        free = topo.gpus(machine="m0")[:1] + topo.gpus(machine="m1")
        gpus = pack_gpus(topo, 2, free=free)
        assert {topo.machine_of(g) for g in gpus} == {"m1"}

    def test_spread_round_robin(self, minsky):
        gpus = spread_gpus(minsky, 4)
        assert len(gpus) == 4

    def test_insufficient_gpus_rejected(self, minsky):
        with pytest.raises(ValueError, match="available"):
            pack_gpus(minsky, 5)
        with pytest.raises(ValueError, match="available"):
            spread_gpus(minsky, 5)


class TestMachineKind:
    def test_minsky_is_nvlink(self, minsky):
        assert PerformanceModel(minsky).machine_kind("m0") is MachineKind.NVLINK_P100

    def test_k80_machine_is_pcie(self, pcie_machine):
        assert (
            PerformanceModel(pcie_machine).machine_kind("m0")
            is MachineKind.PCIE_K80
        )

    def test_override(self, minsky):
        perf = PerformanceModel(minsky, machine_kind=MachineKind.PCIE_K80)
        assert perf.machine_kind("m0") is MachineKind.PCIE_K80


class TestIterationModel:
    def test_single_gpu_has_no_comm(self, minsky):
        perf = PerformanceModel(minsky)
        bd = perf.iteration_breakdown(make_job(num_gpus=1), ["m0/gpu0"])
        assert bd.comm_s == 0.0 and bd.p2p

    def test_wrong_gpu_count_rejected(self, minsky):
        perf = PerformanceModel(minsky)
        with pytest.raises(ValueError, match="allocation"):
            perf.iteration_breakdown(make_job(num_gpus=2), ["m0/gpu0"])

    def test_pack_faster_than_spread(self, minsky):
        perf = PerformanceModel(minsky)
        job = make_job(batch_size=1)
        pack = perf.iteration_time(job, perf.placement_gpus(job, Placement.PACK))
        spread = perf.iteration_time(job, perf.placement_gpus(job, Placement.SPREAD))
        assert pack < spread

    def test_spread_loses_p2p(self, minsky):
        perf = PerformanceModel(minsky)
        job = make_job(batch_size=1)
        bd = perf.iteration_breakdown(job, perf.placement_gpus(job, Placement.SPREAD))
        assert not bd.p2p

    def test_fig4_anchor_tiny_speedup(self, minsky):
        """Pack/spread speedup ~1.3x for AlexNet batch 1 (Figure 4)."""
        perf = PerformanceModel(minsky)
        job = make_job(batch_size=1)
        pack = perf.iteration_time(job, perf.placement_gpus(job, Placement.PACK))
        spread = perf.iteration_time(job, perf.placement_gpus(job, Placement.SPREAD))
        assert 1.2 <= spread / pack <= 1.4

    def test_fig4_anchor_parity_at_big_batches(self, minsky):
        perf = PerformanceModel(minsky)
        job = make_job(batch_size=128)
        pack = perf.iteration_time(job, perf.placement_gpus(job, Placement.PACK))
        spread = perf.iteration_time(job, perf.placement_gpus(job, Placement.SPREAD))
        assert spread / pack < 1.05

    def test_speedup_monotone_in_batch(self, minsky):
        perf = PerformanceModel(minsky)
        speedups = []
        for b in (1, 4, 16, 64):
            job = make_job(batch_size=b)
            pack = perf.iteration_time(job, perf.placement_gpus(job, Placement.PACK))
            spread = perf.iteration_time(
                job, perf.placement_gpus(job, Placement.SPREAD)
            )
            speedups.append(spread / pack)
        assert speedups == sorted(speedups, reverse=True)

    def test_more_gpus_more_comm(self, minsky):
        perf = PerformanceModel(minsky)
        two = perf.iteration_breakdown(make_job(num_gpus=2), ["m0/gpu0", "m0/gpu1"])
        four = perf.iteration_breakdown(make_job(num_gpus=4), minsky.gpus())
        assert four.comm_s > two.comm_s

    def test_comm_fraction_bounds(self, minsky):
        perf = PerformanceModel(minsky)
        bd = perf.iteration_breakdown(make_job(batch_size=1), ["m0/gpu0", "m0/gpu1"])
        assert 0.0 < bd.comm_fraction < 1.0


class TestExecutionTimes:
    def test_solo_time_scales_with_iterations(self, minsky):
        perf = PerformanceModel(minsky)
        j100 = make_job(iterations=100)
        j200 = make_job(iterations=200)
        gpus = ["m0/gpu0", "m0/gpu1"]
        assert perf.solo_exec_time(j200, gpus) == pytest.approx(
            2 * perf.solo_exec_time(j100, gpus)
        )

    def test_ideal_is_lower_bound_over_placements(self, minsky):
        import itertools

        perf = PerformanceModel(minsky)
        job = make_job(batch_size=1)
        ideal = perf.ideal_exec_time(job)
        for pair in itertools.combinations(minsky.gpus(), 2):
            assert perf.solo_exec_time(job, list(pair)) >= ideal - 1e-9
