"""Additional performance-model coverage: bigger jobs, DGX quads,
cross-checks between the analytic and collective formulations."""

import pytest

from repro.perf.calibration import DEFAULT_CALIBRATION
from repro.perf.collectives import best_ring_order, ring_allreduce_time
from repro.perf.model import PerformanceModel, Placement, allreduce_scale
from repro.topology.builders import dgx1, dgx2, power8_minsky
from repro.workload.job import Job, ModelType

from tests.conftest import make_job


class TestDGXQuads:
    def test_quad_breakdown_on_nvlink_clique(self):
        topo = dgx1()
        perf = PerformanceModel(topo)
        job = make_job(num_gpus=4, batch_size=1)
        quad = topo.gpus()[:4]
        bd = perf.iteration_breakdown(job, quad)
        assert bd.p2p
        # worst pair inside the socket clique is single-lane NVLink
        expected = allreduce_scale(4) * 2.0 / 20.0
        assert bd.comm_s == pytest.approx(expected)

    def test_cross_socket_quad_slower(self):
        topo = dgx1()
        perf = PerformanceModel(topo)
        job = make_job(num_gpus=4, batch_size=1)
        clique = topo.gpus()[:4]
        straddle = ["m0/gpu0", "m0/gpu1", "m0/gpu4", "m0/gpu6"]
        assert perf.iteration_time(job, straddle) > perf.iteration_time(job, clique)

    def test_worst_pair_model_upper_bounds_best_ring(self):
        """The calibrated worst-pair cost is at least the best ring's:
        NCCL can only do better than the synchronous bound."""
        topo = dgx1()
        perf = PerformanceModel(topo)
        job = make_job(num_gpus=4, batch_size=1)
        quad = topo.gpus()[:4]
        bd = perf.iteration_breakdown(job, quad)
        ring = ring_allreduce_time(topo, best_ring_order(topo, quad), 2.0)
        assert bd.comm_s >= ring - 1e-9


class TestDGX2Limit:
    def test_eight_gpu_job_faster_on_dgx2_than_dgx1(self):
        """NVSwitch removes the cross-socket penalty entirely."""
        j = make_job(num_gpus=8, batch_size=1)
        t1 = PerformanceModel(dgx1()).iteration_time(j, dgx1().gpus())
        t2 = PerformanceModel(dgx2()).iteration_time(j, dgx2().gpus()[:8])
        assert t2 < t1


class TestCalibrationCrossChecks:
    def test_comm_fraction_agrees_with_profiles(self, profiles):
        """The profile database and a fresh model evaluation must agree
        (the database is built from the same model)."""
        topo = power8_minsky()
        perf = PerformanceModel(topo)
        for model in ModelType:
            job = Job("probe", model, 1, 2)
            bd = perf.iteration_breakdown(
                job, perf.placement_gpus(job, Placement.PACK)
            )
            from repro.workload.job import BatchClass

            profile = profiles.get(model, BatchClass.TINY)
            assert bd.comm_fraction == pytest.approx(profile.comm_fraction)

    def test_no_p2p_penalty_only_hits_routed_pairs(self):
        topo = power8_minsky()
        perf = PerformanceModel(topo)
        assert perf.pair_bandwidth("m0/gpu0", "m0/gpu1") == pytest.approx(40.0)
        routed = perf.pair_bandwidth("m0/gpu0", "m0/gpu2")
        assert routed == pytest.approx(
            38.4 * DEFAULT_CALIBRATION.no_p2p_penalty
        )

    def test_iteration_time_additivity(self):
        """Total iteration time is exactly compute + comm -- no hidden
        terms (important for anyone recalibrating)."""
        topo = power8_minsky()
        perf = PerformanceModel(topo)
        job = make_job(num_gpus=2, batch_size=16)
        gpus = ["m0/gpu0", "m0/gpu1"]
        bd = perf.iteration_breakdown(job, gpus)
        assert perf.iteration_time(job, gpus) == pytest.approx(
            bd.compute_s + bd.comm_s
        )
