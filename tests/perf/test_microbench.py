"""Tests for the artificial-load interference profiling (Section 4.2)."""

import pytest

from repro.perf.microbench import (
    ArtificialLoad,
    DEFAULT_LOADS,
    measure_interference_table,
    table_to_text,
)
from repro.topology.builders import power8_minsky
from repro.workload.job import BatchClass


class TestArtificialLoad:
    def test_intensity_maps_to_batch_class(self):
        assert ArtificialLoad("x", 1.0).as_job().batch_class is BatchClass.TINY
        assert ArtificialLoad("x", 0.6).as_job().batch_class is BatchClass.SMALL
        assert ArtificialLoad("x", 0.3).as_job().batch_class is BatchClass.MEDIUM
        assert ArtificialLoad("x", 0.1).as_job().batch_class is BatchClass.BIG

    def test_duration_controls_iterations(self):
        short = ArtificialLoad("s", 1.0, duration_s=50.0).as_job()
        long = ArtificialLoad("l", 1.0, duration_s=500.0).as_job()
        assert long.iterations == pytest.approx(10 * short.iterations, rel=0.02)

    def test_tagged_as_artificial(self):
        assert "artificial-load" in ArtificialLoad("x", 0.5).as_job().tags

    def test_validation(self):
        with pytest.raises(ValueError):
            ArtificialLoad("x", 1.5)
        with pytest.raises(ValueError):
            ArtificialLoad("x", 0.5, num_gpus=0)


class TestMeasurementCampaign:
    @pytest.fixture(scope="class")
    def table(self):
        return measure_interference_table(
            power8_minsky,
            probe_batches={"tiny": 1, "big": 128},
            iterations=100,
        )

    def test_covers_all_cells(self, table):
        probes = {p for p, _ in table}
        loads = {l for _, l in table}
        assert probes == {"tiny", "big"}
        assert loads == {l.name for l in DEFAULT_LOADS}

    def test_idle_load_measures_zero(self, table):
        assert table[("tiny", "idle")] == pytest.approx(0.0, abs=1e-9)
        assert table[("big", "idle")] == pytest.approx(0.0, abs=1e-9)

    def test_slowdown_grows_with_intensity(self, table):
        row = [table[("tiny", name)] for name in ("idle", "light", "medium", "heavy")]
        assert row == sorted(row)
        assert row[-1] > 0.15  # heavy load really hurts a tiny probe

    def test_reproduces_fig6_anchor_empirically(self, table):
        """The measured tiny-probe/heavy-load cell is the empirical
        twin of Figure 6's tiny+tiny ~30% -- it must land nearby."""
        assert table[("tiny", "heavy")] == pytest.approx(0.30, abs=0.06)

    def test_big_probe_barely_suffers(self, table):
        assert table[("big", "heavy")] < 0.08

    def test_formatting(self, table):
        text = table_to_text(table)
        assert "probe/load" in text
        assert "tiny" in text and "heavy" in text
        assert len(text.splitlines()) == 3  # header + 2 probes
