"""Tests for the NVLink/DRAM bandwidth series (Figure 5 behaviour)."""

import numpy as np
import pytest

from repro.perf.bandwidth import (
    average_demand_gbs,
    dram_bandwidth_series,
    nvlink_bandwidth_series,
    peak_demand_gbs,
)
from repro.perf.model import PerformanceModel, Placement
from repro.workload.job import Job, ModelType

from tests.conftest import make_job


@pytest.fixture
def perf(minsky):
    return PerformanceModel(minsky)


def pack(perf, job):
    return perf.placement_gpus(job, Placement.PACK)


class TestDemand:
    def test_fig5_tiny_batch_near_link_speed(self, perf):
        job = make_job(batch_size=1)
        demand = average_demand_gbs(job, perf, pack(perf, job))
        assert demand > 20.0  # Fig 5: ~40 GB/s bursts, high average

    def test_fig5_big_batch_low_demand(self, perf):
        job = make_job(batch_size=128)
        demand = average_demand_gbs(job, perf, pack(perf, job))
        assert demand < 6.0  # Fig 5: "barely reaches ~6 GB/s"

    def test_demand_monotone_decreasing_in_batch(self, perf):
        demands = [
            average_demand_gbs(
                make_job(batch_size=b), perf, pack(perf, make_job(batch_size=b))
            )
            for b in (1, 4, 64, 128)
        ]
        assert demands == sorted(demands, reverse=True)

    def test_single_gpu_no_demand(self, perf):
        job = make_job(num_gpus=1)
        assert average_demand_gbs(job, perf, ["m0/gpu0"]) == 0.0
        assert peak_demand_gbs(job, perf, ["m0/gpu0"]) == 0.0

    def test_peak_is_link_limited(self, perf):
        job = make_job(batch_size=1)
        assert peak_demand_gbs(job, perf, pack(perf, job)) == pytest.approx(40.0)


class TestSeries:
    def test_series_shape_and_ordering(self, perf):
        job = make_job(batch_size=1, iterations=4000)
        times, gbs = nvlink_bandwidth_series(job, perf, pack(perf, job))
        assert len(times) == len(gbs)
        assert np.all(gbs >= 0)
        assert np.all(np.diff(times) > 0)

    def test_series_zero_after_job_ends(self, perf):
        job = make_job(batch_size=1, iterations=10)
        times, gbs = nvlink_bandwidth_series(job, perf, pack(perf, job), duration_s=50)
        end = job.iterations * perf.iteration_time(job, pack(perf, job))
        assert np.all(gbs[times > end + 1] == 0)

    def test_tiny_series_dominates_big(self, perf):
        tiny = make_job(batch_size=1, iterations=4000)
        big = make_job(batch_size=128, iterations=4000)
        _, g_tiny = nvlink_bandwidth_series(tiny, perf, pack(perf, tiny))
        _, g_big = nvlink_bandwidth_series(big, perf, pack(perf, big))
        assert g_tiny.mean() > 4 * g_big.mean()

    def test_invalid_params_rejected(self, perf):
        job = make_job()
        with pytest.raises(ValueError):
            nvlink_bandwidth_series(job, perf, pack(perf, job), duration_s=0)


class TestDRAMSeries:
    def test_spread_placement_stages_through_dram(self, perf, minsky):
        job = make_job(batch_size=1, iterations=4000)
        packed = perf.placement_gpus(job, Placement.PACK)
        spread = perf.placement_gpus(job, Placement.SPREAD)
        _, dram_pack = dram_bandwidth_series(job, perf, packed)
        _, dram_spread = dram_bandwidth_series(job, perf, spread)
        # no-P2P staging multiplies host traffic
        assert dram_spread[:100].mean() > dram_pack[:100].mean()

    def test_dram_includes_input_pipeline(self, perf):
        job = make_job(batch_size=1, iterations=4000)
        _, dram = dram_bandwidth_series(job, perf, pack(perf, job))
        assert dram[0] > 0
