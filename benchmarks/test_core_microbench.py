"""Micro-benchmarks of the core algorithms (complexity sanity).

The paper analyses DRB as Theta(|E_A| * log2(|V_P|)) plus a
Theta(|V_P|) host-filtering pass; these benchmarks keep the constant
factors honest and catch algorithmic regressions.
"""

import pytest

from repro.core.bipartition import gpu_affinity, physical_bipartition
from repro.core.drb import drb_map
from repro.core.fm import fm_bipartition
from repro.core.placement import PlacementEngine
from repro.topology.allocation import AllocationState
from repro.topology.builders import cluster, dgx1
from repro.workload.job import Job, ModelType
from repro.workload.jobgraph import data_parallel_graph


def test_bench_fm_on_dgx_affinity(benchmark):
    topo = dgx1()
    gpus = topo.gpus()
    aff = gpu_affinity(topo, gpus)
    result = benchmark(fm_bipartition, gpus, aff)
    assert len(result.side0) + len(result.side1) == 8


def test_bench_physical_bipartition(benchmark):
    topo = dgx1()
    result = benchmark(physical_bipartition, topo, topo.gpus())
    assert len(result[0]) + len(result[1]) == 8


def test_bench_drb_map_dgx(benchmark):
    topo = dgx1()
    alloc = AllocationState(topo)
    job = Job("j", ModelType.ALEXNET, 1, 4)
    graph = data_parallel_graph(job)

    mapping = benchmark(drb_map, topo, alloc, job, graph, topo.gpus(), {})
    assert len(mapping) == 4


@pytest.mark.parametrize("n_machines", [10, 50])
def test_bench_engine_propose_on_cluster(benchmark, n_machines):
    topo = cluster(n_machines)
    alloc = AllocationState(topo)
    engine = PlacementEngine(topo, alloc)
    job = Job("j", ModelType.ALEXNET, 1, 2, min_utility=0.5)
    solution = benchmark(engine.propose, job)
    assert solution is not None and solution.p2p


def test_bench_simulated_round_trip(benchmark):
    """One full schedule->place->release cycle on a mid-size cluster."""
    topo = cluster(20)

    def cycle():
        alloc = AllocationState(topo)
        engine = PlacementEngine(topo, alloc)
        job = Job("j", ModelType.ALEXNET, 1, 2, min_utility=0.5)
        sol = engine.propose(job)
        engine.enforce(sol)
        alloc.release("j")
        return sol

    sol = benchmark(cycle)
    assert sol.utility > 0.9
