"""Section 3.2: NVLink vs PCIe machine comparison.

Paper: AlexNet pack speedup 1.27x (NVLink) vs 1.24x (PCIe) at batch 1,
1.30x vs 1.21x at batch 2, 1.20x vs ~1.1x at batch 8 -- topology
matters on both, more on NVLink.
"""

import pytest

from repro.analysis.figures import sec32_pcie_vs_nvlink


def _table(data) -> str:
    lines = ["batch   nvlink   pcie"]
    for b, nv, pc in zip(data["batch_sizes"], data["nvlink"], data["pcie"]):
        lines.append(f"{b:>5}   {nv:>6.3f}   {pc:>5.3f}")
    return "\n".join(lines)


def test_sec32_pcie_vs_nvlink(benchmark, write_result):
    data = benchmark(sec32_pcie_vs_nvlink)
    write_result("sec32_pcie_vs_nvlink", _table(data))

    nv = dict(zip(data["batch_sizes"], data["nvlink"]))
    pc = dict(zip(data["batch_sizes"], data["pcie"]))
    assert nv[1] == pytest.approx(1.27, abs=0.05)
    assert pc[1] == pytest.approx(1.24, abs=0.05)
    assert pc[2] == pytest.approx(1.21, abs=0.05)
    assert pc[8] == pytest.approx(1.10, abs=0.05)
    for b in data["batch_sizes"]:
        assert nv[b] > pc[b]  # NVLink machines need placement even more
