"""The Section 4.2 artificial-load profiling campaign, as an artifact.

Measures the interference table empirically (probe x load ladder, all
through the simulator) and checks it against the Figure 6 calibration
-- an independent validation loop: if someone retunes the analytic
model, this campaign must still measure what Figure 6 measured.
"""

import pytest

from repro.perf.microbench import measure_interference_table, table_to_text
from repro.topology.builders import power8_minsky


def run_campaign():
    return measure_interference_table(power8_minsky, iterations=150)


def test_microbench_campaign(benchmark, write_result):
    table = benchmark.pedantic(run_campaign, rounds=1, iterations=1)
    write_result("microbench_campaign", table_to_text(table))

    # Figure 6 anchors, measured rather than calibrated
    assert table[("tiny", "heavy")] == pytest.approx(0.30, abs=0.06)
    assert table[("big", "heavy")] < 0.08
    # monotone in load intensity for every probe
    for probe in ("tiny", "small", "medium", "big"):
        row = [table[(probe, l)] for l in ("idle", "light", "medium", "heavy")]
        assert row == sorted(row)
