"""Figure 9: validation of the simulator against the prototype.

Paper: "The algorithms behave very similarly in both prototype and the
simulation."  Here the prototype path (manifest + INI configs +
enforcement) must agree with the direct simulator to numerical
precision, since the substituted execution backend is shared.
"""

from repro.analysis.figures import fig9_sim_validation


def _table(deltas) -> str:
    lines = ["scheduler       max_delta_s   mean_delta_s"]
    for name, per_job in deltas.items():
        vals = list(per_job.values())
        lines.append(
            f"{name:<14}  {max(vals):>10.2e}   {sum(vals) / len(vals):>10.2e}"
        )
    return "\n".join(lines)


def test_fig9_sim_validation(benchmark, write_result):
    data = benchmark(fig9_sim_validation)
    write_result("fig9_sim_validation", _table(data["deltas"]))

    for name, per_job in data["deltas"].items():
        assert len(per_job) == 6  # all Table 1 jobs finished in both
        assert max(per_job.values()) < 1e-6
