"""Decision-round timing at the paper's evaluation scales (§5.5.3).

The committed ``BENCH_fig10.json`` next to this file is the baseline
CI regression-checks via ``repro bench --quick --check-against``; this
module regenerates the same numbers under pytest, re-proves fast-path
equivalence at bench scale, and microbenches the placement-memo hit
path directly (full simulations rarely hit the memo — every enforced
placement bumps the allocation epoch — so the memo's own speedup is
measured where it applies: repeated proposals against a static pool).
"""

from __future__ import annotations

import json
import time

from repro.analysis.bench import check_equivalence, format_bench, run_bench
from repro.analysis.scenarios import scenario1_jobs
from repro.core.placement import PlacementEngine
from repro.topology.allocation import AllocationState
from repro.topology.builders import cluster
from repro.workload.job import Job, ModelType


def test_fig10_decision_rounds(write_result):
    """Fig. 10 scale: 100 scenario-1 jobs on a 5-machine cluster."""
    bench = run_bench("fig10", repeats=3)
    assert bench.equivalence["identical"] is True
    for name, row in bench.schedulers.items():
        assert row["decision_rounds"] > 0, name
    write_result(
        "perf_fig10_decision_rounds",
        format_bench(bench)
        + "\n"
        + json.dumps(bench.as_dict(), indent=2, sort_keys=True),
    )


def test_fig11_scaled_decision_rounds(write_result):
    """Scaled-down Fig. 11 (scenario 2): 400 jobs on 40 machines."""
    bench = run_bench(
        "fig11", repeats=1, schedulers=("FCFS", "TOPO-AWARE", "TOPO-AWARE-P")
    )
    assert bench.equivalence["identical"] is True
    write_result("perf_fig11_decision_rounds", format_bench(bench))


def test_equivalence_at_bench_scale(write_result):
    """Memo on vs off: identical placements on the bench workload."""
    jobs = scenario1_jobs(100, seed=42)
    verdicts = [
        check_equivalence(jobs, 5, scheduler_name=name)
        for name in ("TOPO-AWARE", "TOPO-AWARE-P")
    ]
    assert all(v["identical"] for v in verdicts)
    write_result(
        "perf_fastpath_equivalence",
        "\n".join(
            f"{v['scheduler']}: identical={v['identical']} "
            f"memo={v['memo_stats']}" for v in verdicts
        ),
    )


def test_memo_hit_path_speedup(write_result):
    """Repeated proposals against a static pool must hit and be faster.

    The threshold is deliberately conservative (2x) — the cold path
    runs DRB over every candidate pool of a 20-machine cluster, the
    hit path is a dict lookup plus one dataclass copy.
    """
    topo = cluster(20)
    engine = PlacementEngine(topo, AllocationState(topo))
    job = Job("warmup", ModelType.ALEXNET, 1, 4, min_utility=0.0)

    t0 = time.perf_counter()
    first = engine.propose(job)
    cold_s = time.perf_counter() - t0
    assert first is not None and engine.stats.misses == 1

    n = 200
    t0 = time.perf_counter()
    for i in range(n):
        assert engine.propose(
            Job(f"j{i}", ModelType.ALEXNET, 1, 4, min_utility=0.0)
        ) is not None
    hit_s = (time.perf_counter() - t0) / n
    assert engine.stats.hits == n
    assert hit_s * 2 < cold_s, (hit_s, cold_s)
    write_result(
        "perf_memo_hit_path",
        f"cold propose: {cold_s * 1e3:.3f}ms  "
        f"memo hit: {hit_s * 1e6:.1f}us  "
        f"speedup: {cold_s / hit_s:.0f}x",
    )
