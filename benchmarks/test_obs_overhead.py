"""Telemetry overhead: disabled trace points must stay within 3 %.

The ISSUE's acceptance bound: with no recorder installed, every
``span()`` call in the DRB/FM/utility hot path is a module-global read
plus an ``is None`` test, so a full Scenario 1 run (100 jobs) must
cost at most 3 % more than it would without any instrumentation.

Timing two full runs against each other is flaky on shared CI boxes,
so the 3 % assertion is built from deterministic parts instead: count
how many trace points the run actually crosses (via an enabled
recorder), microbenchmark the disabled ``span()`` call, and require

    span_count * disabled_cost_per_call  <  3 % of the run's wall time.

The same decomposition pins the live operational layer (SLO watchdog +
snapshot publisher, evaluated once per decision round while the
introspection server is up):

    rounds * (watchdog_round_cost + snapshot_round_cost)
        <  3 % of the run's wall time.

The enabled-vs-disabled wall-clock comparison is still reported in the
results file for the curious, just not asserted on.
"""

import time
import timeit

from repro.analysis.scenarios import scenario1_jobs
from repro.obs import recording, span
from repro.schedulers import make_scheduler
from repro.sim.engine import Simulator
from repro.topology.builders import cluster


def _run_scenario1():
    jobs = scenario1_jobs(100, seed=42)
    return Simulator(cluster(5), make_scheduler("TOPO-AWARE-P"), jobs).run()


def _floor(fn, calls: int) -> float:
    """Per-call cost floor: best of three timeit batches.

    A single batch is at the mercy of whatever else the box is doing
    for those few milliseconds; the minimum over repeats is the
    standard noise-resistant estimator for a deterministic call (any
    excess over the floor is scheduler interference, not the code).
    """
    return min(timeit.repeat(fn, number=calls, repeat=3)) / calls


def _timed_floor(fn, repeat: int = 2):
    """Wall-time floor of a full run: best of ``repeat`` timed calls
    (same rationale as :func:`_floor` — the denominator of the 3 %
    bound should not depend on one lucky or unlucky slice of the box).
    Returns ``(last_result, best_seconds)``."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def test_disabled_tracing_overhead_under_3pct(benchmark, write_result):
    # wall time of the production configuration (tracing disabled)
    benchmark.pedantic(_run_scenario1, rounds=1, iterations=1)
    _, disabled_s = _timed_floor(_run_scenario1)

    # the same run with a recorder installed, to count trace points
    t0 = time.perf_counter()
    with recording() as rec:
        _run_scenario1()
    enabled_s = time.perf_counter() - t0
    span_count = len(rec.spans)
    assert span_count > 0, "instrumentation never fired"

    # cost of one disabled span() call, measured in isolation
    calls = 100_000
    per_call_s = _floor(
        lambda: span("bench.noop", job_id="x", n=4), calls
    )

    worst_case_s = span_count * per_call_s
    overhead_pct = 100.0 * worst_case_s / disabled_s

    write_result(
        "obs_overhead",
        "\n".join(
            [
                "telemetry overhead, Scenario 1 (100 jobs, 5 machines)",
                f"disabled run wall time        {disabled_s:>9.3f} s",
                f"enabled run wall time         {enabled_s:>9.3f} s",
                f"trace points crossed          {span_count:>9d}",
                f"disabled span() cost          {per_call_s * 1e9:>9.1f} ns",
                f"worst-case disabled overhead  {overhead_pct:>9.4f} %"
                "  (bound: 3 %)",
            ]
        ),
    )

    assert worst_case_s < 0.03 * disabled_s


def test_server_and_watchdog_overhead_under_3pct(benchmark, write_result):
    """Watchdog + snapshot work happens once per decision round; the
    server itself only reads atomically-swapped objects off-thread.
    Pin: rounds x per-round observer cost < 3 % of the bare wall time.
    """
    from repro.obs import EventLog, MetricsRegistry
    from repro.obs.alerts import DEFAULT_RULES, Watchdog
    from repro.obs.server import IntrospectionServer
    from repro.obs.state import SnapshotObserver, SnapshotPublisher
    from repro.obs.telemetry import TelemetryObserver
    from repro.sim.runner import run_with_observers

    def bare():
        return run_with_observers(
            cluster(5), make_scheduler("TOPO-AWARE-P"),
            scenario1_jobs(100, seed=42),
        )

    benchmark.pedantic(bare, rounds=1, iterations=1)
    result, bare_s = _timed_floor(bare)
    rounds = result.decision_rounds

    # one fully instrumented run: provides warmed observers for the
    # microbenchmarks and the reported (not asserted) wall-clock delta
    registry = MetricsRegistry()
    publisher = SnapshotPublisher()
    watchdog = Watchdog(registry, EventLog(), DEFAULT_RULES,
                        scheduler="TOPO-AWARE-P")
    telemetry = TelemetryObserver(registry, scheduler="TOPO-AWARE-P")
    snapshots = SnapshotObserver(publisher)
    with IntrospectionServer(publisher, registry, watchdog):
        t0 = time.perf_counter()
        run_with_observers(
            cluster(5), make_scheduler("TOPO-AWARE-P"),
            scenario1_jobs(100, seed=42),
            observers=(telemetry, watchdog, snapshots),
        )
        instrumented_s = time.perf_counter() - t0

    # per-round cost of each observer, measured in isolation on the
    # bound (post-run, fully populated) instances.  Snapshot rebuilds
    # are wall-clock throttled (>= 50 ms apart), so their total is
    # bounded by elapsed time, not by the round count: account the
    # cheap per-round throttle check per round plus one full build per
    # interval.
    calls = 2_000
    watchdog_round_s = _floor(
        lambda: watchdog.on_decision_round(0.0, [], 3, 0.001), calls
    )
    snapshot_round_s = _floor(
        lambda: snapshots.on_decision_round(0.0, [], 3, 0.001), calls
    )
    snapshot_build_s = _floor(snapshots._publish, calls)
    rebuilds = bare_s / snapshots.min_publish_interval_s + 2

    worst_case_s = (
        rounds * (watchdog_round_s + snapshot_round_s)
        + rebuilds * snapshot_build_s
    )
    overhead_pct = 100.0 * worst_case_s / bare_s

    write_result(
        "obs_server_watchdog_overhead",
        "\n".join(
            [
                "server+watchdog overhead, Scenario 1 (100 jobs, 5 machines)",
                f"bare run wall time            {bare_s:>9.3f} s",
                f"instrumented run wall time    {instrumented_s:>9.3f} s",
                f"decision rounds               {rounds:>9d}",
                f"watchdog cost per round       {watchdog_round_s * 1e6:>9.1f} us",
                f"snapshot check per round      {snapshot_round_s * 1e6:>9.1f} us",
                f"snapshot full rebuild         {snapshot_build_s * 1e6:>9.1f} us"
                f"  (x{rebuilds:.0f} wall-clock-throttled)",
                f"worst-case observer overhead  {overhead_pct:>9.4f} %"
                "  (bound: 3 %)",
            ]
        ),
    )

    assert worst_case_s < 0.03 * bare_s


def test_sampler_and_windowed_watchdog_overhead_under_3pct(
    benchmark, write_result
):
    """Continuous telemetry, same decomposition: the sampler's work is
    wall-clock throttled (one sample per ``min_interval_s`` at most),
    the windowed watchdog adds a deque append + small-window aggregate
    per rule per round.  Pin:

        samples x per_sample_cost + rounds x windowed_round_cost
            < 3 % of the bare wall time.

    Priced on the fleet-scale workload (Scenario 2, 24 machines — the
    same family of contended rounds the fast-path matrix uses) because that is
    where continuous telemetry runs: a windowed rule costs ~1 us per
    round regardless of fleet size, so the pin must hold where rounds
    carry real scheduling work, not on a 5-machine toy whose rounds
    are two orders of magnitude cheaper than production's.
    """
    from repro.analysis.scenarios import scenario2_jobs
    from repro.obs import EventLog, MetricsRegistry
    from repro.obs.alerts import DEFAULT_RULES, Rule, Watchdog
    from repro.obs.telemetry import TelemetryObserver
    from repro.obs.timeseries import TimeSeriesSampler, TimeSeriesStore
    from repro.sim.runner import run_with_observers

    def bare():
        return run_with_observers(
            cluster(24), make_scheduler("TOPO-AWARE-P"),
            scenario2_jobs(120, 24, seed=11),
        )

    benchmark.pedantic(bare, rounds=1, iterations=1)
    result, bare_s = _timed_floor(bare)
    rounds = result.decision_rounds

    # the production composition: the instantaneous default SLOs plus
    # windowed trend rules (mean / rate / min over trailing windows) —
    # the same mix the equivalence test and the serve/soak wiring use
    windowed = DEFAULT_RULES + (
        Rule("qd-mean", "queue_depth", ">", 1e9, window=16, agg="mean"),
        Rule("qd-rate", "queue_depth", ">", 1e9, window=16, agg="rate"),
        Rule("util-min", "utilization", "<", -1.0, window=16, agg="min"),
    )
    registry = MetricsRegistry()
    watchdog = Watchdog(registry, EventLog(), windowed,
                        scheduler="TOPO-AWARE-P")
    telemetry = TelemetryObserver(registry, scheduler="TOPO-AWARE-P")
    store = TimeSeriesStore()
    sampler = TimeSeriesSampler(store)  # production 50 ms throttle
    t0 = time.perf_counter()
    run_with_observers(
        cluster(24), make_scheduler("TOPO-AWARE-P"),
        scenario2_jobs(120, 24, seed=11),
        observers=(telemetry, watchdog, sampler),
    )
    instrumented_s = time.perf_counter() - t0
    samples = store.samples_taken
    assert samples > 0, "sampler never fired"

    # per-call costs on the warmed, fully populated instances
    calls = 2_000
    windowed_round_s = _floor(
        lambda: watchdog.on_decision_round(0.0, [], 3, 0.001), calls
    )
    sample_s = _floor(lambda: sampler.sample(0.0, 3), calls)
    throttle_s = _floor(
        lambda: sampler.on_decision_round(0.0, [], 3, 0.001), calls
    )
    # like snapshot rebuilds: full samples are wall-clock bounded (one
    # per 50 ms interval, +2 for the first and terminal samples); the
    # cheap throttle check runs every round
    max_samples = bare_s / sampler.min_interval_s + 2

    worst_case_s = (
        rounds * (windowed_round_s + throttle_s) + max_samples * sample_s
    )
    overhead_pct = 100.0 * worst_case_s / bare_s

    write_result(
        "obs_sampler_windowed_watchdog_overhead",
        "\n".join(
            [
                "sampler+windowed-watchdog overhead, Scenario 2 "
                "(120 jobs, 24 machines)",
                f"bare run wall time            {bare_s:>9.3f} s",
                f"instrumented run wall time    {instrumented_s:>9.3f} s",
                f"decision rounds               {rounds:>9d}",
                f"samples taken                 {samples:>9d}",
                f"windowed watchdog per round   {windowed_round_s * 1e6:>9.1f} us",
                f"sampler throttle per round    {throttle_s * 1e6:>9.1f} us",
                f"full sample cost              {sample_s * 1e6:>9.1f} us"
                f"  (x{max_samples:.0f} wall-clock-throttled)",
                f"worst-case overhead           {overhead_pct:>9.4f} %"
                "  (bound: 3 %)",
            ]
        ),
    )

    assert worst_case_s < 0.03 * bare_s


def test_decision_recorder_overhead_under_3pct(benchmark, write_result):
    """The provenance recorder's cost, decomposed the same way: count
    what a real recorded run appends (decision records, job/round
    events, memo-hit ``filter_hosts`` re-runs) and multiply by
    microbenched per-call costs.  Bound: < 3 % of the bare wall time.
    """
    from repro.core.constraints import filter_hosts
    from repro.obs.provenance import DecisionRecorder
    from repro.sim.cluster import ClusterState
    from repro.sim.runner import run_with_observers

    def bare():
        return run_with_observers(
            cluster(5), make_scheduler("TOPO-AWARE-P"),
            scenario1_jobs(100, seed=42),
        )

    benchmark.pedantic(bare, rounds=1, iterations=1)
    bare_result, bare_s = _timed_floor(bare)

    recorder = DecisionRecorder(journal=True)
    t0 = time.perf_counter()
    recorded_result = run_with_observers(
        cluster(5), make_scheduler("TOPO-AWARE-P"),
        scenario1_jobs(100, seed=42),
        observers=(recorder,),
    )
    recorded_s = time.perf_counter() - t0
    n_decisions = recorder.counts()["recorded"]
    n_other = recorder.last_seq - n_decisions
    n_hits = recorded_result.placement_stats.get("hits", 0)
    assert n_decisions > 0, "recorder never fired"

    # representative per-call costs, measured in isolation on a scratch
    # recorder.  A placed verdict is the most expensive decision kind
    # (utility breakdown + the largest JSON line), so pricing every
    # decision at it is conservative.
    topo = cluster(5)
    state = ClusterState(topo)
    job = scenario1_jobs(1, seed=42)[0]
    prov: dict = {}
    solution = state.engine.propose(job, None, provenance=prov)
    assert solution is not None
    slo = {
        "min_utility": job.min_utility,
        "utility": solution.utility,
        "utility_ok": True,
        "requires_p2p": job.requires_p2p,
        "solution_p2p": solution.p2p,
        "p2p_ok": True,
        "failed": None,
        "override": None,
    }
    scratch = DecisionRecorder(journal=True)
    calls = 2_000
    per_decision_s = _floor(
        lambda: scratch.decision(
            t=0.0,
            scheduler="TOPO-AWARE-P",
            job=job,
            queued=3,
            verdict="placed",
            solution=solution,
            engine=state.engine,
            propose=prov,
            slo=slo,
        ),
        calls,
    )
    per_event_s = _floor(
        lambda: scratch.on_place(0.0, job, solution, 1.0, 0), calls
    )
    # a memo hit re-runs filter_hosts read-only purely for provenance
    per_filter_s = _floor(
        lambda: filter_hosts(topo, state.alloc, job, report={}), calls
    )

    worst_case_s = (
        n_decisions * per_decision_s
        + n_other * per_event_s
        + n_hits * per_filter_s
    )
    overhead_pct = 100.0 * worst_case_s / bare_s

    write_result(
        "obs_decision_recorder_overhead",
        "\n".join(
            [
                "decision-recorder overhead, Scenario 1 (100 jobs, 5 machines)",
                f"bare run wall time            {bare_s:>9.3f} s",
                f"recorded run wall time        {recorded_s:>9.3f} s",
                f"decision records              {n_decisions:>9d}",
                f"job/round records             {n_other:>9d}",
                f"memo-hit pool re-reports      {n_hits:>9d}",
                f"decision record cost          {per_decision_s * 1e6:>9.1f} us",
                f"job/round record cost         {per_event_s * 1e6:>9.1f} us",
                f"filter_hosts re-run cost      {per_filter_s * 1e6:>9.1f} us",
                f"worst-case recorder overhead  {overhead_pct:>9.4f} %"
                "  (bound: 3 %)",
            ]
        ),
    )

    # sanity: attaching the recorder is a tap (same rounds, makespan)
    assert recorded_result.makespan == bare_result.makespan
    assert recorded_result.decision_rounds == bare_result.decision_rounds
    assert worst_case_s < 0.03 * bare_s
