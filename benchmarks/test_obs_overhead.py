"""Telemetry overhead: disabled trace points must stay within 3 %.

The ISSUE's acceptance bound: with no recorder installed, every
``span()`` call in the DRB/FM/utility hot path is a module-global read
plus an ``is None`` test, so a full Scenario 1 run (100 jobs) must
cost at most 3 % more than it would without any instrumentation.

Timing two full runs against each other is flaky on shared CI boxes,
so the 3 % assertion is built from deterministic parts instead: count
how many trace points the run actually crosses (via an enabled
recorder), microbenchmark the disabled ``span()`` call, and require

    span_count * disabled_cost_per_call  <  3 % of the run's wall time.

The enabled-vs-disabled wall-clock comparison is still reported in the
results file for the curious, just not asserted on.
"""

import time
import timeit

from repro.analysis.scenarios import scenario1_jobs
from repro.obs import recording, span
from repro.schedulers import make_scheduler
from repro.sim.engine import Simulator
from repro.topology.builders import cluster


def _run_scenario1():
    jobs = scenario1_jobs(100, seed=42)
    return Simulator(cluster(5), make_scheduler("TOPO-AWARE-P"), jobs).run()


def test_disabled_tracing_overhead_under_3pct(benchmark, write_result):
    # wall time of the production configuration (tracing disabled)
    benchmark.pedantic(_run_scenario1, rounds=1, iterations=1)
    t0 = time.perf_counter()
    _run_scenario1()
    disabled_s = time.perf_counter() - t0

    # the same run with a recorder installed, to count trace points
    t0 = time.perf_counter()
    with recording() as rec:
        _run_scenario1()
    enabled_s = time.perf_counter() - t0
    span_count = len(rec.spans)
    assert span_count > 0, "instrumentation never fired"

    # cost of one disabled span() call, measured in isolation
    calls = 100_000
    per_call_s = timeit.timeit(
        lambda: span("bench.noop", job_id="x", n=4), number=calls
    ) / calls

    worst_case_s = span_count * per_call_s
    overhead_pct = 100.0 * worst_case_s / disabled_s

    write_result(
        "obs_overhead",
        "\n".join(
            [
                "telemetry overhead, Scenario 1 (100 jobs, 5 machines)",
                f"disabled run wall time        {disabled_s:>9.3f} s",
                f"enabled run wall time         {enabled_s:>9.3f} s",
                f"trace points crossed          {span_count:>9d}",
                f"disabled span() cost          {per_call_s * 1e9:>9.1f} ns",
                f"worst-case disabled overhead  {overhead_pct:>9.4f} %"
                "  (bound: 3 %)",
            ]
        ),
    )

    assert worst_case_s < 0.03 * disabled_s
