"""Section 5.5.3: scheduler decision overhead.

Paper: on scenario 2 the topology-aware policies spend ~3 s per
placement evaluation vs ~0.45 s for the greedy ones (~6.7x) -- more
computation buys better decisions.  Absolute times differ on this
hardware/substrate, but the topology-aware policies must cost a
multiple of FCFS while staying fast enough to schedule interactively.
"""

from repro.analysis.figures import fig11_scenario2, sec553_overhead


def test_sec553_overhead(benchmark, write_result):
    scenario = fig11_scenario2()
    overhead = benchmark.pedantic(
        sec553_overhead, args=(scenario,), rounds=1, iterations=1
    )
    lines = ["scheduler       mean decision time per round"]
    for name, secs in overhead.items():
        lines.append(f"{name:<14}  {secs * 1e3:>8.3f} ms")
    ratio = overhead["TOPO-AWARE"] / max(overhead["FCFS"], 1e-9)
    lines.append(f"\nTOPO-AWARE / FCFS ratio: {ratio:.1f}x (paper: ~6.7x)")
    write_result("sec553_overhead", "\n".join(lines))

    # topology-awareness costs a multiple of the greedy baseline ...
    assert overhead["TOPO-AWARE"] > 1.5 * overhead["FCFS"]
    assert overhead["TOPO-AWARE-P"] > 1.5 * overhead["FCFS"]
    # ... yet remains far below the paper's 3 s interactivity bound
    assert overhead["TOPO-AWARE"] < 3.0
    assert overhead["TOPO-AWARE-P"] < 3.0
