"""Benchmark harness helpers.

Every benchmark regenerates one paper table/figure, times it with
pytest-benchmark, asserts the DESIGN.md shape criteria, and writes the
reproduced data to ``benchmarks/results/<name>.txt`` so the artifacts
survive output capturing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def write_result(results_dir):
    def _write(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}")

    return _write
