"""Figure 10, scenario 1: 100 jobs on 5 machines.

Paper: TOPO-AWARE-P slightly best with no SLO violations; both
topology-aware policies clearly beat the greedy ones once queue
waiting counts; FCFS adds slowdown to the most jobs.
"""

import numpy as np

from repro.analysis.figures import fig10_scenario1
from repro.sim.metrics import comparison_table, slo_violations


def _slowdown_rows(series: dict) -> str:
    lines = []
    for name, vals in series.items():
        head = " ".join(f"{v:.2f}" for v in vals[:12])
        lines.append(f"{name:<14} worst12: {head}")
    return "\n".join(lines)


def test_fig10_scenario1(benchmark, write_result):
    data = benchmark.pedantic(fig10_scenario1, rounds=1, iterations=1)
    results = data["results"]
    text = comparison_table(list(results.values()))
    text += "\n\nQoS slowdowns (Fig 10a):\n" + _slowdown_rows(data["qos"])
    text += "\n\nQoS+waiting slowdowns (Fig 10b):\n" + _slowdown_rows(data["total"])
    write_result("fig10_scenario1", text)

    mean_total = {
        n: float(np.mean(v)) if len(v) else 0.0 for n, v in data["total"].items()
    }
    # topology-aware policies beat the greedy ones with waiting counted
    assert mean_total["TOPO-AWARE-P"] <= mean_total["BF"] + 1e-9
    assert mean_total["TOPO-AWARE-P"] <= mean_total["FCFS"] + 1e-9
    assert mean_total["TOPO-AWARE"] <= mean_total["FCFS"] + 1e-9
    # TOPO-AWARE-P never violates SLOs
    assert slo_violations(results["TOPO-AWARE-P"].records) == []
    # FCFS penalises the most jobs (Fig 10a narrative)
    affected = {
        n: int(np.sum(v > 0.05)) for n, v in data["total"].items()
    }
    assert affected["FCFS"] >= affected["TOPO-AWARE-P"]
