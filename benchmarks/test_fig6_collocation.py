"""Figure 6: co-location slowdown of two AlexNet jobs.

Paper anchors: tiny+tiny ~30%; big aggressor vs tiny victim ~24%; vs
small victim ~21%; big+big ~0.
"""

import pytest

from repro.analysis.figures import fig6_collocation
from repro.analysis.tables import format_collocation_table


def test_fig6_collocation(benchmark, write_result):
    data = benchmark(fig6_collocation)
    write_result("fig6_collocation", format_collocation_table(data))

    assert data[("tiny", "tiny")] == pytest.approx(0.30, abs=0.04)
    assert data[("big", "tiny")] == pytest.approx(0.24, abs=0.04)
    assert data[("big", "small")] == pytest.approx(0.21, abs=0.04)
    assert data[("big", "big")] < 0.05
    order = ("tiny", "small", "medium", "big")
    for row in order:
        vals = [data[(row, col)] for col in order]
        assert vals == sorted(vals, reverse=True)
