"""Bursty-arrival robustness (beyond the paper's Poisson workloads).

Real cloud traces clump; the Markov-modulated generator stresses the
schedulers with arrival bursts at the same mean rate.  The
topology-aware policy must keep its lead when the queue periodically
floods -- postponement must not collapse into starvation.
"""

import numpy as np

from repro.sim.engine import run_comparison
from repro.sim.metrics import comparison_table, qos_slowdown
from repro.topology.builders import cluster
from repro.workload.generator import GeneratorConfig, WorkloadGenerator


def run_all():
    out = {}
    for label, burstiness in (("poisson", 1.0), ("bursty-3x", 3.0)):
        cfg = GeneratorConfig(arrival_rate_per_min=2.2, burstiness=burstiness)
        jobs = WorkloadGenerator(cfg, seed=42).generate(100)
        out[label] = run_comparison(lambda: cluster(5), jobs)
    return out


def test_bursty_arrivals(benchmark, write_result):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = ""
    for label, results in data.items():
        text += f"[{label}]\n"
        text += comparison_table(list(results.values())) + "\n\n"
    write_result("bursty_arrivals", text.rstrip())

    for label, results in data.items():
        def mean_qos(name):
            recs = [
                r for r in results[name].records if r.finished_at is not None
            ]
            return float(np.mean([qos_slowdown(r) for r in recs]))

        # the lead survives bursts
        assert mean_qos("TOPO-AWARE-P") <= mean_qos("BF") + 1e-9, label
        # no starvation under the postponing policy
        assert all(
            r.finished_at is not None
            for r in results["TOPO-AWARE-P"].records
        ), label
