"""Load sweep: where does topology-awareness pay off?

The paper evaluates two operating points; this sweep varies the
arrival rate over a 5-machine cluster and shows the TOPO-AWARE-P
advantage is present across the load range and never harmful --
at low load every policy finds good placements (machines are empty),
under pressure the greedy policies start splitting jobs.
"""

import numpy as np

from repro.analysis.sweep import (
    format_sweep,
    mean_qos_metric,
    series,
    sweep,
)
from repro.topology.builders import cluster
from repro.workload.generator import GeneratorConfig, WorkloadGenerator

RATES = (1.0, 2.5, 4.0)


def scenario(rate: float):
    cfg = GeneratorConfig(arrival_rate_per_min=rate)
    jobs = WorkloadGenerator(cfg, seed=21).generate(80)
    return (lambda: cluster(5)), jobs


def run_sweep():
    return sweep(RATES, scenario)


def test_load_sweep(benchmark, write_result):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    write_result(
        "load_sweep",
        format_sweep(points, mean_qos_metric, knob_name="jobs/min"),
    )

    qos = series(points, mean_qos_metric)
    # topology-awareness never loses to the greedy baselines at any load
    for i in range(len(RATES)):
        assert qos["TOPO-AWARE-P"][i] <= qos["BF"][i] + 1e-9
    # ... and the absolute gap grows (or at least persists) with load
    gaps = [
        qos["BF"][i] - qos["TOPO-AWARE-P"][i] for i in range(len(RATES))
    ]
    assert max(gaps) == max(gaps[1:], default=gaps[0])  # peak not at min load
    # under real pressure the gap is material
    assert gaps[-1] > 0.005 or gaps[-2] > 0.005
