"""Failure-resilience benchmark: scheduling through machine outages.

Injects a rolling outage into the scenario-1 workload and checks that
every policy completes the workload, that restarts stay bounded, and
that the topology-aware policy keeps its placement-quality lead even
while healing the schedule.
"""

import numpy as np

from repro.analysis.scenarios import scenario1_jobs
from repro.schedulers import make_scheduler
from repro.sim.engine import MachineFailure, Simulator
from repro.sim.metrics import qos_slowdown
from repro.topology.builders import cluster

POLICIES = ("BF", "TOPO-AWARE-P")

FAILURES = [
    MachineFailure("m0", at_time=300.0, duration_s=900.0),
    MachineFailure("m3", at_time=1200.0, duration_s=600.0),
]


def run_all():
    jobs = scenario1_jobs(100, seed=42)
    out = {}
    for name in POLICIES:
        sim = Simulator(
            cluster(5), make_scheduler(name), jobs, failures=list(FAILURES)
        )
        out[name] = sim.run()
    return out


def test_failure_resilience(benchmark, write_result):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = []
    for name, result in results.items():
        restarts = sum(r.restarts for r in result.records)
        finished = sum(1 for r in result.records if r.finished_at is not None)
        recs = [r for r in result.records if r.finished_at is not None]
        qos = float(np.mean([qos_slowdown(r) for r in recs]))
        lines.append(
            f"{name:<14} finished={finished}/100 restarts={restarts} "
            f"mean_qos={qos:.4f} makespan={result.makespan:.0f}s"
        )
    write_result("failure_resilience", "\n".join(lines))

    for name, result in results.items():
        # every job survives the outages
        assert all(r.finished_at is not None for r in result.records), name
        # something was actually disrupted, and not catastrophically
        restarts = sum(r.restarts for r in result.records)
        assert 1 <= restarts <= 30, name

    def mean_qos(name):
        recs = [r for r in results[name].records if r.finished_at is not None]
        return float(np.mean([qos_slowdown(r) for r in recs]))

    assert mean_qos("TOPO-AWARE-P") <= mean_qos("BF") + 1e-9
