"""Ablation: the TOPO-AWARE-P postponement policy.

Constructs the situation Figure 8 hinges on: when a communication-heavy
2-GPU job arrives, only a cross-socket GPU pair is free.  TOPO-AWARE
places it immediately (no P2P); TOPO-AWARE-P postpones until a socket
pair frees up, trading queue time for a faster run -- and wins overall.
"""

import pytest

from repro.schedulers import make_scheduler
from repro.sim.engine import Simulator
from repro.topology.builders import power8_minsky
from repro.workload.job import Job, ModelType


def adversarial_jobs():
    """Two 1-GPU anchors on different sockets, then a P2P-hungry pair job."""
    return [
        Job("short-anchor", ModelType.ALEXNET, 1, 1, arrival_time=0.0,
            iterations=800),  # ~60 s on socket 0
        Job("long-anchor", ModelType.ALEXNET, 1, 1, arrival_time=1.0,
            iterations=4000),  # ~300 s on socket 1
        Job("pair", ModelType.ALEXNET, 1, 2, min_utility=0.5,
            arrival_time=5.0, iterations=1500),
    ]


def run_both():
    out = {}
    for name in ("TOPO-AWARE", "TOPO-AWARE-P"):
        sim = Simulator(power8_minsky(), make_scheduler(name), adversarial_jobs())
        out[name] = sim.run()
    return out


def test_ablation_postpone(benchmark, write_result):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lines = []
    for name, result in results.items():
        rec = result.record_of("pair")
        lines.append(
            f"{name:<14} pair: placed={rec.placed_at:7.1f}s "
            f"exec={rec.exec_time:7.1f}s p2p={rec.p2p} "
            f"finished={rec.finished_at:7.1f}s utility={rec.utility:.2f}"
        )
    write_result("ablation_postpone", "\n".join(lines))

    eager = results["TOPO-AWARE"].record_of("pair")
    patient = results["TOPO-AWARE-P"].record_of("pair")
    # the eager policy takes the cross-socket pair immediately
    assert not eager.p2p
    assert eager.placed_at < patient.placed_at
    # the postponing policy waits for P2P and runs much faster
    assert patient.p2p
    assert patient.exec_time < eager.exec_time / 1.15
    # ... and even finishes earlier despite waiting
    assert patient.finished_at <= eager.finished_at + 1e-6
