"""Figure 3: GPU compute vs communication breakdown.

Paper: compute grows ~1 s -> ~66 s per 40 AlexNet iterations as batch
grows 1 -> 128 while communication stays ~2 s; GoogLeNet communicates
far less than the AlexNet-family networks.
"""

from repro.analysis.figures import fig3_breakdown
from repro.analysis.tables import format_breakdown_table


def test_fig3_breakdown(benchmark, write_result):
    data = benchmark(fig3_breakdown)
    write_result("fig3_breakdown", format_breakdown_table(data))

    tiny = data[("alexnet", "tiny", "pack")]
    big = data[("alexnet", "big", "pack")]
    assert tiny["comm_fraction"] > 0.5 > big["comm_fraction"]
    assert 0.5 < tiny["compute_s"] < 2.0
    assert 55 < big["compute_s"] < 80
    assert 1.5 < tiny["comm_s"] < 3.0
    goog = data[("googlenet", "tiny", "pack")]
    assert goog["comm_fraction"] < 0.3 * tiny["comm_fraction"]
