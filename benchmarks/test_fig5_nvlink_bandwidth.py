"""Figure 5: NVLink bandwidth usage over time for AlexNet.

Paper: batch 1 reaches ~40 GB/s, batch 128 barely reaches ~6 GB/s;
traffic stops when the job completes.
"""

import numpy as np

from repro.analysis.figures import fig5_nvlink_bandwidth


def _series_table(data) -> str:
    lines = ["batch   mean_gbs   peak_gbs   active_s"]
    for batch, (times, gbs) in sorted(data.items()):
        active = gbs[gbs > 0]
        lines.append(
            f"{batch:>5}   {active.mean() if len(active) else 0:>8.2f}"
            f"   {gbs.max():>8.2f}   {len(active) * (times[1] - times[0]):>8.1f}"
        )
    return "\n".join(lines)


def test_fig5_nvlink_bandwidth(benchmark, write_result):
    data = benchmark(fig5_nvlink_bandwidth)
    write_result("fig5_nvlink_bandwidth", _series_table(data))

    means = {
        b: (g[g > 0].mean() if (g > 0).any() else 0.0) for b, (t, g) in data.items()
    }
    assert means[1] > means[4] > means[64] > means[128]
    assert means[1] > 20.0
    assert means[128] < 6.0
    # every series is non-negative and bounded by the link burst rate
    for batch, (times, gbs) in data.items():
        assert np.all(gbs >= 0.0)
        assert gbs.max() <= 44.1  # dual NVLink + ripple headroom
