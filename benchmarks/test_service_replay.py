"""Replay-driver throughput: the service admission path under load.

The ISSUE's performance target: the replay driver must push **>= 1000
submissions per second** through the real HTTP API (parse -> admission
check -> sqlite journal -> inbox push, one POST per job over keep-alive
HTTP/1.1).  Local measurements sit around 2000/s; the asserted floor is
200/s so a noisy shared CI box cannot flake the suite, while the
measured rate and submission-latency quantiles land in the results
file for the real number.
"""

from repro.analysis.scenarios import scenario2_jobs
from repro.service import SchedulerService, ServiceServer, replay_trace

N_JOBS = 1000
N_MACHINES = 40
CI_FLOOR_PER_S = 200.0


def _replay_once(tmp_path):
    jobs = scenario2_jobs(N_JOBS, N_MACHINES, seed=7)
    from repro.topology.builders import cluster

    service = SchedulerService(
        cluster(N_MACHINES),
        "TOPO-AWARE",
        store_path=str(tmp_path / "replay.db"),
    )
    with service, ServiceServer(service) as server:
        # paused + wait=False: wall_s times the submission loop alone,
        # which is exactly the admission-path quantity under test
        report = replay_trace(jobs, server.url, pause=True, wait=False)
    return report


def test_replay_driver_sustains_submission_rate(
    benchmark, write_result, tmp_path
):
    report = benchmark.pedantic(
        _replay_once, args=(tmp_path,), rounds=1, iterations=1
    )
    assert report.submitted == N_JOBS
    assert report.rejected == {}
    assert report.rate_per_s >= CI_FLOOR_PER_S, (
        f"replay driver managed only {report.rate_per_s:.0f} "
        f"submissions/s (CI floor {CI_FLOOR_PER_S:.0f}/s, "
        f"target 1000/s)"
    )
    write_result(
        "service_replay",
        "\n".join(
            [
                f"jobs submitted       : {report.submitted}",
                f"submission wall      : {report.wall_s:.3f} s",
                f"rate                 : {report.rate_per_s:.0f} /s "
                f"(target >= 1000/s, CI floor {CI_FLOOR_PER_S:.0f}/s)",
                "submit latency p50   : "
                f"{report.latency_quantile(0.5) * 1e3:.3f} ms",
                "submit latency p99   : "
                f"{report.latency_quantile(0.99) * 1e3:.3f} ms",
            ]
        ),
    )
