"""Extended baseline comparison: queue-smart vs topology-smart.

SJF and EASY backfilling optimise the *queue* (classic HPC batch
disciplines) while staying topology-blind; the TOPO policies optimise
*placement*.  This benchmark runs all six policies on the scenario-1
workload and shows the two dimensions are complementary: backfilling
shrinks waiting, but only topology-awareness removes QoS slowdown.
"""

import numpy as np

from repro.analysis.scenarios import scenario1_jobs
from repro.sim.engine import run_comparison
from repro.sim.metrics import comparison_table, qos_slowdown
from repro.topology.builders import cluster

POLICIES = ("FCFS", "SJF", "EASY-BACKFILL", "BF", "TOPO-AWARE", "TOPO-AWARE-P")


def run_all():
    jobs = scenario1_jobs(100, seed=42)
    return run_comparison(lambda: cluster(5), jobs, POLICIES)


def test_extended_baselines(benchmark, write_result):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    write_result(
        "extended_baselines", comparison_table(list(results.values()))
    )

    def mean_qos(name):
        recs = [r for r in results[name].records if r.finished_at is not None]
        return float(np.mean([qos_slowdown(r) for r in recs]))

    def mean_wait(name):
        recs = [r for r in results[name].records if r.waiting_time is not None]
        return float(np.mean([r.waiting_time for r in recs]))

    # queue-smart policies cut waiting versus plain FCFS
    assert mean_wait("EASY-BACKFILL") <= mean_wait("FCFS") + 1e-9
    # but remain topology-blind: TOPO-AWARE-P still wins on QoS
    assert mean_qos("TOPO-AWARE-P") <= mean_qos("SJF") + 1e-9
    assert mean_qos("TOPO-AWARE-P") <= mean_qos("EASY-BACKFILL") + 1e-9
    # everything completes under every policy except possibly FCFS
    for name, result in results.items():
        if name == "FCFS":
            continue
        assert all(r.finished_at is not None for r in result.records)
