"""Ablation: FM min-cut bipartition vs a naive interleaved splitter.

Two findings:

1. On a *flat* NVLink chain (no hierarchy boundary to fall back on),
   replacing the Fiduccia-Mattheyses cut with a topology-blind even/odd
   interleave produces mappings with measurably higher communication
   cost (Eq. 3) -- the FM stage earns its keep exactly where the
   machine offers no structural hints.
2. On hierarchical machines (Minsky), the utility-driven job
   bipartition (Algorithm 3) largely *rescues* a bad physical split by
   steering tasks toward close regions -- evidence of the algorithm's
   robustness, reported here as data.
"""

from unittest import mock

from repro.core import drb as drb_module
from repro.core.drb import drb_map
from repro.core.utility import communication_cost
from repro.topology.allocation import AllocationState
from repro.topology.builders import power8_minsky
from repro.topology.graph import NodeKind, TopologyGraph
from repro.topology.links import LinkSpec
from repro.workload.job import Job, ModelType
from repro.workload.jobgraph import data_parallel_graph


def nvlink_chain_machine(n_gpus: int = 6) -> TopologyGraph:
    """One socket, GPUs joined in an NVLink chain (flat mesh region)."""
    topo = TopologyGraph("chain")
    topo.add_node("m0", NodeKind.MACHINE)
    topo.add_node("m0/s0", NodeKind.SOCKET, machine="m0")
    topo.add_edge("m0/s0", "m0", 20.0, LinkSpec.xbus())
    names = []
    for i in range(n_gpus):
        name = f"m0/gpu{i}"
        topo.add_node(name, NodeKind.GPU, machine="m0", socket="m0/s0", gpu_index=i)
        topo.add_edge(name, "m0/s0", 2.0, LinkSpec.pcie())
        names.append(name)
    for a, b in zip(names, names[1:]):
        topo.add_edge(a, b, 1.0, LinkSpec.nvlink(1))
    topo.validate()
    return topo


def naive_bipartition(topo, gpus):
    """Topology-blind even/odd interleave."""
    gpus = sorted(gpus)
    return tuple(gpus[::2]), tuple(gpus[1::2])


def map_cost(topo, job, patched: bool) -> float:
    alloc = AllocationState(topo)
    graph = data_parallel_graph(job)
    if patched:
        with mock.patch.object(drb_module, "physical_bipartition", naive_bipartition):
            mapping = drb_map(topo, alloc, job, graph, topo.gpus(), {})
    else:
        mapping = drb_map(topo, alloc, job, graph, topo.gpus(), {})
    return communication_cost(topo, list(mapping.values()))


def run_all():
    chain = nvlink_chain_machine()
    chain_job = Job("j", ModelType.ALEXNET, 1, 3)
    minsky = power8_minsky()
    minsky_job = Job("j", ModelType.ALEXNET, 1, 2)
    return {
        "chain/fm": map_cost(chain, chain_job, patched=False),
        "chain/naive": map_cost(chain, chain_job, patched=True),
        "minsky/hierarchy": map_cost(minsky, minsky_job, patched=False),
        "minsky/naive": map_cost(minsky, minsky_job, patched=True),
    }


def test_ablation_fm(benchmark, write_result):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [f"{name:<18} comm_cost={cost:.1f}" for name, cost in data.items()]
    write_result("ablation_fm", "\n".join(lines))

    # flat region: FM strictly beats the interleave
    assert data["chain/fm"] < data["chain/naive"]
    # hierarchical machine: the utility-driven job split rescues even a
    # naive physical cut (robustness), so both reach the optimum
    assert data["minsky/hierarchy"] <= data["minsky/naive"]
    assert data["minsky/hierarchy"] == 1.0  # NVLink pair
