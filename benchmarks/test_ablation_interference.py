"""Ablation: the interference term of the utility function.

With alpha_b = 0 the scheduler's fragmentation preference packs a new
tiny-batch job into the socket already hosting a bus-hungry neighbour;
with the paper's equal weights it picks the quiet socket, avoiding the
DRAM/bus contention channel.
"""

from repro.core.utility import UtilityParams
from repro.schedulers import make_scheduler
from repro.sim.engine import Simulator
from repro.sim.metrics import qos_slowdown
from repro.topology.builders import power8_minsky
from repro.workload.job import Job, ModelType


def jobs():
    return [
        Job("noisy", ModelType.ALEXNET, 1, 1, arrival_time=0.0, iterations=2000),
        Job("victim", ModelType.ALEXNET, 1, 1, arrival_time=5.0, iterations=2000),
    ]


def run_both():
    out = {}
    for name, params in (
        ("with-interference", UtilityParams()),
        ("alpha_b=0", UtilityParams(alpha_cc=0.5, alpha_b=0.0, alpha_d=0.5)),
    ):
        sim = Simulator(
            power8_minsky(), make_scheduler("TOPO-AWARE-P"), jobs(), params=params
        )
        result = sim.run()
        topo_sockets = {
            rec.job.job_id: rec.gpus[0].split("gpu")[1] for rec in result.records
        }
        out[name] = {
            "result": result,
            "victim_slowdown": qos_slowdown(result.record_of("victim")),
            "same_socket": int(topo_sockets["noisy"]) // 2
            == int(topo_sockets["victim"]) // 2,
        }
    return out


def test_ablation_interference(benchmark, write_result):
    data = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lines = [
        f"{name:<18} same_socket={row['same_socket']} "
        f"victim_qos_slowdown={row['victim_slowdown']:.4f}"
        for name, row in data.items()
    ]
    write_result("ablation_interference", "\n".join(lines))

    assert not data["with-interference"]["same_socket"]
    assert data["alpha_b=0"]["same_socket"]
    assert (
        data["with-interference"]["victim_slowdown"]
        <= data["alpha_b=0"]["victim_slowdown"] + 1e-9
    )
