"""Figure 11, scenario 2: 10k jobs on 1k machines (heavily loaded).

Paper: "FCFS has the worst performance, followed by BF; the new
algorithm significantly and consistently outperforms the greedy
algorithms in achieving the least slowdown and in minimizing the
waiting time."

Runs at 1/10 scale by default (1000 jobs / 100 machines); set
``REPRO_FULL_SCALE=1`` for the paper's full size.
"""

import numpy as np

from repro.analysis.figures import fig11_scenario2
from repro.sim.metrics import comparison_table, mean_waiting_time


def test_fig11_scenario2(benchmark, write_result):
    data = benchmark.pedantic(fig11_scenario2, rounds=1, iterations=1)
    results = data["results"]
    header = f"scale: {data['n_jobs']} jobs, {data['n_machines']} machines\n"
    write_result(
        "fig11_scenario2", header + comparison_table(list(results.values()))
    )

    mean_total = {
        n: float(np.mean(v)) if len(v) else 0.0 for n, v in data["total"].items()
    }
    waits = {n: mean_waiting_time(r.records) for n, r in results.items()}
    # the topology-aware policies achieve the least slowdown...
    assert mean_total["TOPO-AWARE-P"] <= mean_total["BF"] + 1e-9
    assert mean_total["TOPO-AWARE-P"] <= mean_total["FCFS"] + 1e-9
    # ...and minimise waiting; FCFS is the worst performer
    assert waits["TOPO-AWARE-P"] <= waits["FCFS"] + 1e-9
    assert mean_total["FCFS"] == max(mean_total.values())
