"""Ablation: utility weights alpha_cc / alpha_b / alpha_d (Eq. 1).

The paper fixes equal weights (0.33 each).  This ablation runs scenario
1 with each objective term switched off in turn and shows that the
communication term carries most of the QoS benefit while the
interference term is what removes the co-location tail.
"""

import numpy as np

from repro.analysis.scenarios import scenario1_jobs
from repro.core.utility import UtilityParams
from repro.schedulers import make_scheduler
from repro.sim.engine import Simulator
from repro.sim.metrics import qos_slowdown
from repro.topology.builders import cluster

CONFIGS = {
    "equal (paper)": UtilityParams(),
    "comm-only": UtilityParams(alpha_cc=1.0, alpha_b=0.0, alpha_d=0.0),
    "no-comm": UtilityParams(alpha_cc=0.0, alpha_b=0.5, alpha_d=0.5),
    "no-interference": UtilityParams(alpha_cc=0.5, alpha_b=0.0, alpha_d=0.5),
}


def run_all():
    jobs = scenario1_jobs(80, seed=11)
    out = {}
    for name, params in CONFIGS.items():
        sim = Simulator(
            cluster(5), make_scheduler("TOPO-AWARE-P"), jobs, params=params
        )
        result = sim.run()
        finished = [r for r in result.records if r.finished_at is not None]
        out[name] = {
            "mean_qos": float(np.mean([qos_slowdown(r) for r in finished])),
            "max_qos": float(np.max([qos_slowdown(r) for r in finished])),
            "makespan": result.makespan,
        }
    return out


def test_ablation_weights(benchmark, write_result):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [f"{'config':<18}{'mean qos':>10}{'max qos':>10}{'makespan':>11}"]
    for name, row in data.items():
        lines.append(
            f"{name:<18}{row['mean_qos']:>10.4f}{row['max_qos']:>10.3f}"
            f"{row['makespan']:>11.1f}"
        )
    write_result("ablation_weights", "\n".join(lines))

    # dropping the communication term must hurt placement quality
    assert data["no-comm"]["mean_qos"] >= data["equal (paper)"]["mean_qos"] - 1e-9
    # the full objective is never worse than ignoring interference
    assert (
        data["equal (paper)"]["mean_qos"]
        <= data["no-interference"]["mean_qos"] + 1e-9
    )
