"""Figure 8 + Table 1: the prototype scenario under all four policies.

Paper: cumulative execution times BF ~461.7 s, FCFS ~456.2 s,
TOPO-AWARE ~454.2 s, TOPO-AWARE-P ~356.9 s => TOPO-AWARE-P speedup
~1.30x / 1.28x / 1.27x; TOPO-AWARE-P is the only policy giving Job 3
P2P, and the topology-aware policies violate no SLOs.
"""

from repro.analysis.figures import fig8_prototype
from repro.analysis.gantt import gantt_chart
from repro.sim.metrics import bandwidth_timeline, comparison_table, slo_violations
from repro.workload.profiles import default_database


def test_fig8_prototype(benchmark, write_result):
    results = benchmark(fig8_prototype)
    profiles = default_database()
    text = comparison_table(list(results.values())) + "\n"
    for result in results.values():
        text += "\n" + gantt_chart(result) + "\n"
        _, p2p, routed = bandwidth_timeline(result.records, profiles)
        text += (
            f"bus traffic: P2P peak {p2p.max():.1f} GB/s, "
            f"host-routed peak {routed.max():.1f} GB/s\n"
        )
    write_result("fig8_prototype", text)

    # Figure 8's lower strips: the greedy policies route the multi-GPU
    # traffic through the CPUs, TOPO-AWARE-P moves it all over P2P
    _, p2p_bf, routed_bf = bandwidth_timeline(results["BF"].records, profiles)
    _, p2p_tp, routed_tp = bandwidth_timeline(
        results["TOPO-AWARE-P"].records, profiles
    )
    assert routed_bf.max() > 0.0
    assert routed_tp.max() == 0.0 and p2p_tp.max() > 0.0

    spans = {n: r.makespan for n, r in results.items()}
    # who wins, by roughly the paper's factor
    assert spans["TOPO-AWARE-P"] < min(spans["BF"], spans["FCFS"])
    assert 1.15 <= spans["BF"] / spans["TOPO-AWARE-P"] <= 1.45
    assert 1.15 <= spans["FCFS"] / spans["TOPO-AWARE-P"] <= 1.45
    # SLO behaviour
    assert slo_violations(results["TOPO-AWARE-P"].records) == []
    assert slo_violations(results["TOPO-AWARE"].records) == []
    assert len(slo_violations(results["BF"].records)) >= 1
    # only the topology-aware policies give the P2P-hungry Job 3 a
    # peer-to-peer pair
    assert results["TOPO-AWARE-P"].record_of("job3").p2p
    assert not results["BF"].record_of("job3").p2p
    assert not results["FCFS"].record_of("job3").p2p
