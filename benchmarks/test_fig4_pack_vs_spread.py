"""Figure 4: pack-vs-spread speedup per batch size.

Paper: AlexNet peaks at ~1.30x for batch 1-2, approaching parity for
batches >= 16; CaffeRef slightly below AlexNet; GoogLeNet flat.
"""

from repro.analysis.figures import fig4_pack_vs_spread
from repro.analysis.tables import format_speedup_table


def test_fig4_pack_vs_spread(benchmark, write_result):
    data = benchmark(fig4_pack_vs_spread)
    write_result("fig4_pack_vs_spread", format_speedup_table(data))

    alex = dict(zip(data["batch_sizes"], data["alexnet"]))
    assert 1.2 <= alex[1] <= 1.4
    assert alex[128] < 1.05
    assert all(s < 1.1 for b, s in alex.items() if b >= 16)
    assert max(data["googlenet"]) < 1.06
    for model in ("alexnet", "cafferef"):
        assert data[model] == sorted(data[model], reverse=True)
