#!/usr/bin/env python
"""CI smoke check: one telemetry-enabled simulation, artifacts validated.

Runs ``repro simulate`` with all three telemetry sinks on a small
workload, then re-reads every artifact through the strict parsers:

* the Prometheus exposition must parse, expose >= 12 metric families,
  and include the decision-latency histogram and queue-depth gauge;
* the JSONL event log must validate against the schema and cover every
  job's arrival, placement, and finish;
* the trace must summarize into per-job decision timelines.

Exits non-zero (with a message) on any violation.  Budget: well under
30 s.

Run:  PYTHONPATH=src python scripts/telemetry_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.cli import main as repro_main
from repro.obs import parse_prometheus, read_events, read_trace, summarize


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        metrics = Path(tmp) / "metrics.prom"
        events = Path(tmp) / "events.jsonl"
        trace = Path(tmp) / "trace.jsonl"
        code = repro_main(
            ["simulate", "--scheduler", "topo-aware-p",
             "--jobs", "30", "--machines", "2", "--seed", "42",
             "--metrics-out", str(metrics),
             "--events-out", str(events),
             "--trace-out", str(trace)]
        )
        if code != 0:
            fail(f"simulate exited with {code}")

        # -- metrics ---------------------------------------------------
        families = parse_prometheus(metrics.read_text())
        if len(families) < 12:
            fail(f"only {len(families)} metric families (need >= 12)")
        hist = families.get("repro_decision_latency_seconds")
        if hist is None or hist["type"] != "histogram":
            fail("repro_decision_latency_seconds histogram missing")
        gauge = families.get("repro_queue_depth")
        if gauge is None or gauge["type"] != "gauge":
            fail("repro_queue_depth gauge missing")

        # -- events ----------------------------------------------------
        log = read_events(events)  # schema-validates every line
        arrived = {e["job_id"] for e in log if e["type"] == "arrival"}
        placed = {e["job_id"] for e in log if e["type"] == "place"}
        finished = {e["job_id"] for e in log if e["type"] == "finish"}
        if len(arrived) != 30:
            fail(f"{len(arrived)} arrival events for 30 jobs")
        if not (arrived == placed == finished):
            fail(
                "lifecycle coverage gap: "
                f"arrived-placed={sorted(arrived - placed)} "
                f"placed-finished={sorted(placed - finished)}"
            )

        # -- trace -----------------------------------------------------
        spans = read_trace(trace)
        timeline = summarize(spans)
        if "sched.propose" not in timeline:
            fail("trace summary has no sched.propose spans")

    print(
        f"telemetry smoke OK: {len(families)} metric families, "
        f"{len(log)} events covering {len(arrived)} jobs, "
        f"{len(spans)} trace spans"
    )


if __name__ == "__main__":
    main()
