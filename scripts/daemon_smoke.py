#!/usr/bin/env python
"""CI smoke check: the scheduler service daemon end to end.

Launches ``repro serve`` as a subprocess against a throwaway sqlite
store, then drives it purely over HTTP the way an external client
would:

* ``POST /submit`` a job -> 202 with ``state: SUBMITTED``;
* poll ``GET /jobs/<id>`` until the job reaches ``FINISHED`` and its
  record carries a placement;
* resubmitting the same id answers 409 ``duplicate``;
* ``POST /submit`` an over-capacity job answers 422;
* ``POST /cancel`` of the finished job answers 409 (terminal wins),
  of an unknown id 404;
* a long job held RUNNING by a queue of filler arrivals is caught
  mid-run and ``POST /evict``-ed -> 202; it re-places and reaches
  ``FINISHED`` with ``preemptions: 1``, the sqlite journal shows the
  ``RUNNING -> QUEUED`` eviction hop, and the SSE-streamed eviction
  record byte-matches the ``--decisions-out`` journal line;
* ``GET /jobs`` lists every id with a terminal state, ``GET /metrics``
  carries the service metric families;
* ``GET /decisions`` reports at least one recorded decision,
  ``GET /explain/smoke-1`` shows a ``placed`` verdict plus the
  lifecycle state, and one ``decision`` event is read off the
  ``GET /events`` SSE stream (``Last-Event-ID: 0`` replay);
* ``SIGTERM`` shuts the daemon down cleanly (exit 0, the stop line on
  stdout), the sqlite journal holds the full lifecycle history, and
  the streamed SSE decision byte-matches the ``--decisions-out``
  journal record with the same ``seq``.

Budget: well under 30 s.

Run:  PYTHONPATH=src python scripts/daemon_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import sqlite3
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.parse
import urllib.request
from http.client import HTTPConnection

LISTEN_RE = re.compile(r"listening on (http://\S+)")


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def http(method: str, url: str, body: dict | None = None) -> tuple[int, dict]:
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=5) as resp:
            return resp.status, json.loads(resp.read() or b"{}")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


def read_sse_frames(url: str, timeout_s: float, wanted: dict) -> dict:
    """Stream ``/events`` from seq 0 until one frame per ``wanted``
    entry has been seen; returns ``{name: (seq, data_line)}``.

    ``wanted`` maps a name to a ``(event_kind, data_substring)``
    predicate — e.g. the first decision frame, or the first job frame
    recording a preemption.
    """
    parsed = urllib.parse.urlsplit(url)
    conn = HTTPConnection(parsed.hostname, parsed.port, timeout=timeout_s)
    found: dict = {}
    try:
        conn.request("GET", "/events", headers={"Last-Event-ID": "0"})
        resp = conn.getresponse()
        if resp.status != 200:
            fail(f"/events answered {resp.status}")
        frame: dict = {}
        deadline = time.time() + timeout_s
        while time.time() < deadline and len(found) < len(wanted):
            line = resp.readline().decode("utf-8").rstrip("\n")
            if line.startswith(":"):
                continue  # keep-alive comment
            if line:
                key, _, value = line.partition(": ")
                frame[key] = value
                continue
            for name, (kind, substring) in wanted.items():
                if (name not in found and frame.get("event") == kind
                        and substring in frame.get("data", "")):
                    found[name] = (int(frame["id"]), frame["data"])
            frame = {}
        missing = sorted(set(wanted) - set(found))
        if missing:
            fail(f"SSE stream never produced {missing}")
        return found
    finally:
        conn.close()


def main() -> None:
    tmpdir = tempfile.mkdtemp(prefix="repro-daemon-")
    store = os.path.join(tmpdir, "svc.db")
    decisions_path = os.path.join(tmpdir, "decisions.jsonl")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--machines", "2", "--port", "0", "--store", store,
         "--decisions-out", decisions_path],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1"),
    )
    try:
        url = None
        deadline = time.time() + 30
        assert proc.stdout is not None
        seen = []
        while time.time() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            seen.append(line)
            match = LISTEN_RE.search(line)
            if match:
                url = match.group(1)
                break
        if url is None:
            fail(f"no listen line in output: {seen!r}")

        # -- submit ----------------------------------------------------
        job = {"id": "smoke-1", "model": "alexnet", "batch_size": 4,
               "num_gpus": 2}
        status, doc = http("POST", url + "/submit", job)
        if status != 202 or doc.get("state") != "SUBMITTED":
            fail(f"/submit answered {status}: {doc}")

        # -- poll to terminal ------------------------------------------
        state = None
        poll_deadline = time.time() + 15
        while time.time() < poll_deadline:
            status, doc = http("GET", url + "/jobs/smoke-1")
            state = doc.get("state")
            if state in ("FINISHED", "CANCELLED", "FAILED"):
                break
            time.sleep(0.05)
        if state != "FINISHED":
            fail(f"job never finished (last state {state!r})")
        record = doc.get("record") or {}
        if len(record.get("gpus", [])) != 2:
            fail(f"finished record lacks a placement: {record}")

        # -- rejection codes -------------------------------------------
        status, doc = http("POST", url + "/submit", job)
        if status != 409 or doc.get("rejected") != "duplicate":
            fail(f"duplicate submit answered {status}: {doc}")
        wide = dict(job, id="smoke-wide", num_gpus=999)
        status, doc = http("POST", url + "/submit", wide)
        if status != 422 or doc.get("rejected") != "over-capacity":
            fail(f"over-capacity submit answered {status}: {doc}")

        # -- cancel semantics ------------------------------------------
        status, doc = http("POST", url + "/cancel", {"id": "smoke-1"})
        if status != 409:
            fail(f"cancel of a finished job answered {status}: {doc}")
        status, doc = http("POST", url + "/cancel", {"id": "ghost"})
        if status != 404:
            fail(f"cancel of an unknown job answered {status}: {doc}")

        # -- listings and metrics --------------------------------------
        status, doc = http("GET", url + "/jobs")
        if status != 200 or doc.get("jobs", {}).get("smoke-1") != "FINISHED":
            fail(f"/jobs table wrong: {doc}")
        with urllib.request.urlopen(url + "/metrics", timeout=5) as resp:
            metrics = resp.read().decode()
        for family in ("repro_service_submissions_total",
                       "repro_service_jobs"):
            if family not in metrics:
                fail(f"/metrics missing family {family}")

        # -- decision provenance over HTTP -----------------------------
        status, doc = http("GET", url + "/decisions")
        if status != 200 or not doc.get("enabled"):
            fail(f"/decisions answered {status}: {doc}")
        if doc.get("recorded", 0) < 1:
            fail(f"/decisions recorded nothing: {doc}")
        status, doc = http("GET", url + "/explain/smoke-1")
        if status != 200 or doc.get("count", 0) < 1:
            fail(f"/explain/smoke-1 answered {status}: {doc}")
        verdicts = [d.get("verdict") for d in doc.get("decisions", [])]
        if "placed" not in verdicts:
            fail(f"/explain/smoke-1 shows no placed verdict: {verdicts}")
        if doc.get("state") != "FINISHED":
            fail(f"/explain/smoke-1 lacks lifecycle state: {doc}")

        # -- eviction over HTTP ----------------------------------------
        # a long job plus a queue of short arrivals: the fillers keep
        # the loop busy for many event batches, so the long job stays
        # observably RUNNING long enough to be caught and evicted
        http("POST", url + "/pause")
        long_job = {"id": "smoke-evict", "model": "alexnet",
                    "batch_size": 4, "num_gpus": 2,
                    "iterations": 5_000_000}
        status, doc = http("POST", url + "/submit", long_job)
        if status != 202:
            fail(f"/submit of the evict target answered {status}: {doc}")
        for i in range(150):
            filler = {"id": f"smoke-filler-{i}", "model": "alexnet",
                      "batch_size": 1, "num_gpus": 1, "iterations": 10,
                      "arrival_time": float(i)}
            status, doc = http("POST", url + "/submit", filler)
            if status != 202:
                fail(f"/submit of filler {i} answered {status}: {doc}")
        http("POST", url + "/resume")
        state = None
        poll_deadline = time.time() + 15
        while time.time() < poll_deadline:
            status, doc = http("GET", url + "/jobs/smoke-evict")
            state = doc.get("state")
            if state in ("RUNNING", "FINISHED", "CANCELLED", "FAILED"):
                break
        if state != "RUNNING":
            fail(f"evict target never seen RUNNING (last {state!r})")
        status, doc = http("POST", url + "/evict", {"id": "smoke-evict"})
        if status != 202:
            fail(f"/evict answered {status}: {doc}")
        # the evicted job must re-place and still run to completion
        poll_deadline = time.time() + 15
        while time.time() < poll_deadline:
            status, doc = http("GET", url + "/jobs/smoke-evict")
            state = doc.get("state")
            if state in ("FINISHED", "CANCELLED", "FAILED"):
                break
            time.sleep(0.05)
        if state != "FINISHED":
            fail(f"evicted job never finished (last state {state!r})")
        record = doc.get("record") or {}
        if record.get("preemptions") != 1:
            fail(f"evicted record lacks the preemption: {record}")
        with urllib.request.urlopen(url + "/metrics", timeout=5) as resp:
            metrics = resp.read().decode()
        if "repro_service_evictions_total 1" not in metrics:
            fail("/metrics lacks repro_service_evictions_total 1")

        streamed = read_sse_frames(url, 10.0, {
            "decision": ("decision", '"verdict"'),
            "eviction": ("job", '"evict_reason": "preempt"'),
        })
        streamed_seq, streamed_line = streamed["decision"]
        eviction_seq, eviction_line = streamed["eviction"]
        if '"smoke-evict"' not in eviction_line:
            fail(f"streamed eviction names the wrong job: {eviction_line}")

        # -- clean SIGTERM shutdown ------------------------------------
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=30)
        if proc.returncode != 0:
            fail(f"serve exited {proc.returncode}: {err[-500:]}")
        if "scheduler service stopped" not in out:
            fail(f"no stop line in output: {out[-300:]!r}")

        # -- the journal survived --------------------------------------
        db = sqlite3.connect(store)
        hops = db.execute(
            "SELECT from_state, to_state FROM transitions "
            "WHERE job_id = 'smoke-1' ORDER BY seq"
        ).fetchall()
        db.close()
        expected = [(None, "SUBMITTED"), ("SUBMITTED", "QUEUED"),
                    ("QUEUED", "PLACED"), ("PLACED", "RUNNING"),
                    ("RUNNING", "FINISHED")]
        if hops != expected:
            fail(f"journal history wrong: {hops}")
        db = sqlite3.connect(store)
        evict_hops = db.execute(
            "SELECT from_state, to_state FROM transitions "
            "WHERE job_id = 'smoke-evict' ORDER BY seq"
        ).fetchall()
        db.close()
        if ("RUNNING", "QUEUED") not in evict_hops:
            fail(f"no RUNNING -> QUEUED eviction hop: {evict_hops}")
        if evict_hops[-1] != ("RUNNING", "FINISHED"):
            fail(f"evicted job's journal does not end FINISHED: {evict_hops}")

        # -- SSE payload byte-matches the decisions journal ------------
        with open(decisions_path) as fp:
            by_seq = {
                json.loads(line)["seq"]: line.rstrip("\n")
                for line in fp
                if line.strip()
            }
        if not by_seq:
            fail(f"{decisions_path} is empty after shutdown")
        if by_seq.get(streamed_seq) != streamed_line:
            fail(
                f"SSE decision seq {streamed_seq} does not byte-match "
                f"the journal: {streamed_line!r} vs "
                f"{by_seq.get(streamed_seq)!r}"
            )
        if by_seq.get(eviction_seq) != eviction_line:
            fail(
                f"SSE eviction seq {eviction_seq} does not byte-match "
                f"the journal: {eviction_line!r} vs "
                f"{by_seq.get(eviction_seq)!r}"
            )
    finally:
        if proc.poll() is None:
            proc.kill()

    print(
        "daemon smoke OK: submit -> FINISHED over HTTP, rejection codes "
        "409/422, cancel codes 409/404, /decisions + /explain live, "
        "evict -> RUNNING->QUEUED->FINISHED with the SSE eviction "
        "byte-matching the journal, SSE decision byte-matches the "
        f"journal, clean SIGTERM, journal holds {len(expected)} "
        "lifecycle hops"
    )


if __name__ == "__main__":
    main()
