#!/usr/bin/env python
"""CI smoke check: the soak harness against a live daemon.

Launches ``repro serve --watchdog`` as a subprocess (in-memory store,
ephemeral port), then runs ``repro soak --url ...`` — the exact
command an operator would use — for a few seconds of burst load:

* the soak exits 0 (every SLO window verdict ``clean``);
* its stdout carries the per-window verdict lines and the summary;
* the ``SOAK_*.json`` artifact exists, is schema-versioned, and its
  windows carry queue/running/utilization gauges plus SLO verdicts;
* after the soak, the daemon's ``/timeseries`` history is non-empty
  (per-machine series included) and ``/cluster`` shows the heatmap
  document — the continuous-telemetry surfaces ``repro top`` renders;
* ``SIGTERM`` still shuts the daemon down cleanly afterwards.

Budget: well under 30 s.

Run:  PYTHONPATH=src python scripts/soak_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

LISTEN_RE = re.compile(r"listening on (http://\S+)")


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=5) as resp:
        if resp.status != 200:
            fail(f"{url} answered {resp.status}")
        return json.loads(resp.read())


def main() -> None:
    tmpdir = tempfile.mkdtemp(prefix="repro-soak-")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--machines", "2", "--port", "0", "--store", ":memory:",
         "--watchdog"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1"),
    )
    try:
        url = None
        deadline = time.time() + 30
        assert proc.stdout is not None
        seen = []
        while time.time() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            seen.append(line)
            match = LISTEN_RE.search(line)
            if match:
                url = match.group(1)
                break
        if url is None:
            fail(f"no listen line in output: {seen!r}")

        # -- a short soak through the real CLI -------------------------
        soak = subprocess.run(
            [sys.executable, "-m", "repro.cli", "soak",
             "--url", url, "--minutes", "0.1", "--window", "1.5",
             "--jobs-per-burst", "4", "--burst-every", "1.0",
             "--out", tmpdir],
            capture_output=True,
            text=True,
            timeout=60,
            env=dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1"),
        )
        if soak.returncode != 0:
            fail(f"repro soak exited {soak.returncode}: "
                 f"{soak.stdout[-500:]} {soak.stderr[-500:]}")
        if "verdict: clean" not in soak.stdout:
            fail(f"soak summary lacks a clean verdict: {soak.stdout[-500:]}")
        if "window 0" not in soak.stdout:
            fail(f"soak printed no window lines: {soak.stdout[-500:]}")

        # -- the artifact ----------------------------------------------
        artifacts = [f for f in os.listdir(tmpdir)
                     if f.startswith("SOAK_") and f.endswith(".json")]
        if len(artifacts) != 1:
            fail(f"expected one SOAK_*.json in {tmpdir}, found {artifacts}")
        with open(os.path.join(tmpdir, artifacts[0])) as fp:
            doc = json.load(fp)
        if doc.get("schema") != 1 or doc.get("verdict") != "clean":
            fail(f"artifact schema/verdict wrong: "
                 f"{ {k: doc.get(k) for k in ('schema', 'verdict')} }")
        windows = doc.get("windows", [])
        if len(windows) < 3:
            fail(f"artifact has too few windows: {len(windows)}")
        for window in windows:
            missing = {"t_s", "queue_depth", "running_jobs", "utilization",
                       "alerts_active", "fired_delta", "verdict"} - set(window)
            if missing:
                fail(f"window lacks {missing}: {window}")
        if doc.get("submitted", 0) < 8:
            fail(f"soak submitted too little: {doc.get('submitted')}")

        # -- continuous-telemetry surfaces stayed live -----------------
        series = get(url + "/timeseries")
        if not series.get("enabled") or series.get("samples", 0) < 1:
            fail(f"/timeseries empty after soak: "
                 f"{ {k: series.get(k) for k in ('enabled', 'samples')} }")
        if "queue_depth" not in series.get("cluster", {}):
            fail("/timeseries lacks the cluster queue_depth series")
        if len(series.get("machines", {})) != 2:
            fail(f"/timeseries lacks per-machine series: "
                 f"{sorted(series.get('machines', {}))}")
        heat = get(url + "/cluster")
        if len(heat.get("machines", {})) != 2:
            fail(f"/cluster heatmap wrong: {heat}")
        alerts = get(url + "/alerts")
        if not alerts.get("enabled"):
            fail(f"/alerts reports the watchdog off: {alerts}")

        # -- clean SIGTERM shutdown ------------------------------------
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=30)
        if proc.returncode != 0:
            fail(f"serve exited {proc.returncode}: {err[-500:]}")
        if "scheduler service stopped" not in out:
            fail(f"no stop line in output: {out[-300:]!r}")
    finally:
        if proc.poll() is None:
            proc.kill()

    print(
        f"soak smoke OK: repro soak exit 0 with {len(windows)} clean "
        "windows, SOAK artifact schema-versioned with per-window SLO "
        "verdicts, /timeseries + /cluster + /alerts live afterwards, "
        "clean SIGTERM"
    )


if __name__ == "__main__":
    main()
