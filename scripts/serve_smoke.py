#!/usr/bin/env python
"""CI smoke check: the live introspection server end to end.

Launches ``repro simulate --serve 0 --serve-linger N --watchdog`` as a
subprocess, scrapes the advertised URL while the server lingers, and
validates every endpoint:

* ``/metrics``   parses under the strict Prometheus parser and carries
  the lifecycle counter families;
* ``/healthz``   is JSON with ``status: ok`` and a sane phase;
* ``/state``     is a current-schema snapshot whose makespan matches a
  finished run;
* ``/alerts``    is JSON with the default watchdog rules attached;
* an unknown route answers 404.

Then waits for the subprocess and requires a clean exit 0 (server
shutdown must not hang or crash the CLI).  Budget: well under 30 s.

Run:  PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request

sys.path.insert(0, "src")

from repro.obs import parse_prometheus  # noqa: E402
from repro.obs.state import STATE_SCHEMA_VERSION  # noqa: E402

LISTEN_RE = re.compile(r"introspection server listening on (http://\S+)")
LINGER_S = 10.0


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def get(url: str) -> tuple[int, str]:
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.read().decode("utf-8")


def main() -> None:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "simulate",
         "--scheduler", "topo-aware-p", "--jobs", "20", "--machines", "2",
         "--seed", "42", "--serve", "0", "--serve-linger", str(LINGER_S),
         "--watchdog"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=dict(os.environ, PYTHONPATH="src"),
    )
    try:
        # the listen line is printed before the run starts
        url = None
        deadline = time.time() + 30
        assert proc.stdout is not None
        first_lines = []
        while time.time() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            first_lines.append(line)
            match = LISTEN_RE.search(line)
            if match:
                url = match.group(1)
                break
        if url is None:
            fail(f"no listen line in output: {first_lines!r}")

        # -- /metrics --------------------------------------------------
        status, body = get(url + "/metrics")
        if status != 200:
            fail(f"/metrics answered {status}")
        families = parse_prometheus(body)
        for name in ("repro_jobs_arrived_total", "repro_queue_depth"):
            if name not in families:
                fail(f"/metrics missing family {name}")

        # -- /healthz --------------------------------------------------
        status, body = get(url + "/healthz")
        health = json.loads(body)
        if status != 200 or health.get("status") != "ok":
            fail(f"/healthz unhealthy: {body}")
        if health.get("phase") not in ("idle", "running", "finished"):
            fail(f"/healthz odd phase: {health.get('phase')!r}")

        # -- /state ----------------------------------------------------
        status, body = get(url + "/state")
        state = json.loads(body)
        if status != 200 or state.get("schema") != STATE_SCHEMA_VERSION:
            fail(f"/state not a schema-{STATE_SCHEMA_VERSION} snapshot: "
                 f"{body[:200]}")
        if state.get("total_gpus", 0) <= 0:
            fail(f"/state total_gpus: {state.get('total_gpus')!r}")

        # -- /alerts ---------------------------------------------------
        status, body = get(url + "/alerts")
        alerts = json.loads(body)
        if status != 200 or alerts.get("enabled") is not True:
            fail(f"/alerts not enabled: {body[:200]}")
        if "queue-wait-p95-high" not in alerts.get("rules", []):
            fail(f"/alerts default rules missing: {alerts.get('rules')!r}")

        # -- unknown route ---------------------------------------------
        try:
            get(url + "/nope")
            fail("unknown route did not 404")
        except urllib.error.HTTPError as err:
            if err.code != 404:
                fail(f"unknown route answered {err.code}")

        # -- clean shutdown --------------------------------------------
        out, err = proc.communicate(timeout=LINGER_S + 30)
        if proc.returncode != 0:
            fail(f"simulate exited {proc.returncode}: {err[-500:]}")
        tail = "".join(first_lines) + out
        if "makespan_s" not in tail:
            fail("run summary missing from output")
        if "slo_alerts_fired" not in tail:
            fail("watchdog digest missing from output")
    finally:
        if proc.poll() is None:
            proc.kill()

    print(
        f"serve smoke OK: {len(families)} metric families scraped live, "
        f"phase {health['phase']!r}, {len(alerts['rules'])} watchdog rules, "
        "clean shutdown"
    )


if __name__ == "__main__":
    main()
