"""Structured JSONL event log with a versioned schema.

Every simulation lifecycle notification (the :class:`SimObserver`
hooks) plus scheduler internals (postponements, decision rounds) can
be appended to an :class:`EventLog` and flushed as one JSON object per
line.  The schema is explicit and versioned so downstream consumers —
the CI smoke validation, dashboards, the next robustness PRs — can
evolve against a contract instead of a file format that drifts
silently.

Schema v1: every event carries ``schema`` (int), ``seq`` (monotone
per-log sequence number), ``type`` (one of :data:`EVENT_TYPES`),
``t`` (simulation time, seconds) and ``scheduler`` (policy name, may
be ``""`` outside a run).  Per-type required fields are listed in
:data:`EVENT_TYPES`; extra fields are allowed (forward-compatible),
missing ones are a :class:`ValueError` at emit *and* validate time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Iterator

SCHEMA_VERSION = 1

#: event type -> required per-type fields (beyond the common envelope)
EVENT_TYPES: dict[str, tuple[str, ...]] = {
    "run_start": ("jobs", "total_gpus"),
    "run_end": ("makespan", "finished", "unplaceable"),
    "arrival": ("job_id", "num_gpus"),
    "place": ("job_id", "gpus", "utility", "p2p", "postponements"),
    "finish": ("job_id", "gpus"),
    "failure": ("machine", "victims"),
    "requeue": ("job_id",),
    "evict": ("job_id", "gpus", "reason"),
    "decision_round": ("placed", "queued", "elapsed_s"),
    "postponed": ("job_id", "postponements"),
    "slo_violation": ("job_id", "utility", "min_utility"),
    "alert": ("rule", "signal", "op", "value", "threshold", "severity", "state"),
}

_COMMON_FIELDS = ("schema", "seq", "type", "t", "scheduler")


def validate_event(event: dict) -> dict:
    """Check one event object against schema v1; returns it unchanged."""
    if not isinstance(event, dict):
        raise ValueError(f"event must be an object, got {type(event).__name__}")
    for field in _COMMON_FIELDS:
        if field not in event:
            raise ValueError(f"event missing common field {field!r}: {event}")
    if event["schema"] != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {event['schema']!r} "
            f"(this reader understands {SCHEMA_VERSION})"
        )
    etype = event["type"]
    if etype not in EVENT_TYPES:
        raise ValueError(f"unknown event type {etype!r}")
    if not isinstance(event["t"], (int, float)):
        raise ValueError(f"event field 't' must be numeric: {event}")
    missing = [f for f in EVENT_TYPES[etype] if f not in event]
    if missing:
        raise ValueError(f"{etype} event missing fields {missing}: {event}")
    return event


class EventLog:
    """In-memory accumulator for schema-v1 events, flushed as JSONL.

    A tap, not a store of record: the simulation's behaviour must be
    identical with or without a log attached.  ``emit`` validates
    eagerly so a malformed producer fails at the call site, not in a
    downstream reader.
    """

    def __init__(self, scheduler: str = "") -> None:
        self.scheduler = scheduler
        self.events: list[dict] = []

    def emit(self, type: str, t: float, **fields) -> dict:
        event = {
            "schema": SCHEMA_VERSION,
            "seq": len(self.events),
            "type": type,
            "t": t,
            "scheduler": fields.pop("scheduler", self.scheduler),
            **fields,
        }
        validate_event(event)
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def of_type(self, type: str) -> list[dict]:
        return [e for e in self.events if e["type"] == type]

    # ------------------------------------------------------------------
    def dump(self, fp: IO[str]) -> int:
        """Write one JSON object per line; returns the event count."""
        for event in self.events:
            fp.write(json.dumps(event, sort_keys=False) + "\n")
        return len(self.events)

    def write(self, path: Path | str) -> Path:
        path = Path(path)
        with path.open("w") as fp:
            self.dump(fp)
        return path


def iter_events(path: Path | str) -> Iterator[dict]:
    """Stream validated events from a JSONL file.

    ``.jsonl.gz`` files are decompressed transparently.
    """
    from repro.obs.io import open_text

    with open_text(Path(path)) as fp:
        for lineno, line in enumerate(fp, start=1):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from None
            try:
                yield validate_event(event)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None


def read_events(path: Path | str) -> list[dict]:
    """Load and validate a whole JSONL event file."""
    return list(iter_events(path))


def validate_events(events: Iterable[dict]) -> int:
    """Validate an event stream; returns the number of events seen."""
    n = 0
    for event in events:
        validate_event(event)
        n += 1
    return n
