"""Shared text-file IO for the observability readers and writers.

Every JSONL artifact in :mod:`repro.obs` (event logs, decision traces,
provenance journals) may be gzip-compressed — long soak runs would
otherwise force multi-GB uncompressed logs.  :func:`open_text` is the
one seam: a ``.gz`` suffix transparently selects :mod:`gzip` for both
reading and writing, so ``repro trace export|profile`` and ``repro
explain`` accept ``foo.jsonl`` and ``foo.jsonl.gz`` alike.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO


def is_gzip_path(path: Path | str) -> bool:
    """Whether a path names a gzip-compressed artifact (by suffix)."""
    return Path(path).suffix == ".gz"


def open_text(path: Path | str, mode: str = "r") -> IO[str]:
    """Open a text file, transparently gzip for ``.gz`` paths.

    ``mode`` is ``"r"`` or ``"w"`` (text); compression level for writes
    is gzip's default.  Callers use this exactly like ``Path.open``.
    """
    if mode not in ("r", "w"):
        raise ValueError(f"mode must be 'r' or 'w', got {mode!r}")
    path = Path(path)
    if is_gzip_path(path):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return path.open(mode, encoding="utf-8")
