"""SLO watchdog: declarative alert rules over the live telemetry.

Production schedulers page operators on queue-wait and fragmentation
regressions instead of waiting for post-mortem log analysis.  The
:class:`Watchdog` is a :class:`~repro.sim.hooks.SimObserver` that
evaluates a set of :class:`Rule` objects at every decision-round
boundary — the cadence Algorithm 1 already wakes the scheduler on —
against *signals* derived from the shared
:class:`~repro.obs.metrics.MetricsRegistry` and the hook stream
itself:

======================  ====================================================
signal                  meaning
======================  ====================================================
queue_depth             jobs waiting after the round
queue_wait_p95          p95 of arrival→placement delay (sim seconds,
                        bucket-interpolated via ``Histogram.quantile``)
utilization             allocated fraction of all cluster GPUs
cache_hit_rate          placement-memo hit rate (nan before any proposal)
starved_rounds          consecutive rounds with a non-empty queue and no
                        placements (no-fit / capacity-outcome storms)
postponements_total     TOPO-AWARE-P postponement count so far
requeues_total          failure-victim resubmissions so far
running_jobs            jobs currently executing
======================  ====================================================

A rule fires once its condition has held for ``for_rounds``
consecutive rounds (edge-triggered: it must clear before it can fire
again) and emits a schema-versioned ``alert`` event into the event
log, increments ``repro_alerts_fired_total{scheduler,rule}``, and is
collected into the end-of-run summary the runner attaches to
:attr:`SimulationResult.alerts`.

Signals are all derived from *simulation* state (sim time, sim-time
waits), never wall clock, so a rule that fires in a scenario fires
deterministically every run.  The watchdog is tap-only: attaching it
never changes scheduling decisions (pinned by the fast-path A/B
equivalence test).
"""

from __future__ import annotations

import json
import math
import operator
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.obs.events import EventLog
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.sim.hooks import BaseObserver

#: signal names rules may reference (validated at load time)
SIGNALS = (
    "queue_depth",
    "queue_wait_p95",
    "utilization",
    "cache_hit_rate",
    "starved_rounds",
    "postponements_total",
    "requeues_total",
    "running_jobs",
)

_OPS = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
}


@dataclass(frozen=True)
class Rule:
    """One declarative SLO rule: ``signal op threshold`` sustained."""

    name: str
    signal: str
    op: str
    threshold: float
    for_rounds: int = 1
    severity: str = "warning"
    description: str = ""

    def __post_init__(self) -> None:
        if self.signal not in SIGNALS:
            raise ValueError(
                f"rule {self.name!r}: unknown signal {self.signal!r} "
                f"(known: {', '.join(SIGNALS)})"
            )
        if self.op not in _OPS:
            raise ValueError(
                f"rule {self.name!r}: unknown operator {self.op!r} "
                f"(known: {', '.join(_OPS)})"
            )
        if self.for_rounds < 1:
            raise ValueError(f"rule {self.name!r}: for_rounds must be >= 1")

    def violated(self, value: float) -> bool:
        # nan compares false under every operator: "no data" never pages
        return _OPS[self.op](value, self.threshold)


#: conservative defaults: silent on the paper's Scenario 1 workload,
#: loud on genuine regressions (saturated queues, dead clusters,
#: placement storms).  Thresholds are simulation-scale quantities.
DEFAULT_RULES: tuple[Rule, ...] = (
    Rule(
        name="queue-wait-p95-high",
        signal="queue_wait_p95",
        op=">",
        threshold=3600.0,
        for_rounds=5,
        severity="critical",
        description="p95 arrival->placement delay above one hour",
    ),
    Rule(
        name="utilization-collapse",
        signal="utilization",
        op="<",
        threshold=0.02,
        for_rounds=25,
        severity="critical",
        description="cluster essentially idle while work exists",
    ),
    Rule(
        name="placement-cache-degraded",
        signal="cache_hit_rate",
        op="<",
        threshold=0.01,
        # steady-state churn (Scenario 1) legitimately invalidates the
        # memo every round, so only a *long* zero-hit regime is a signal
        for_rounds=1000,
        severity="warning",
        description="placement memo no longer absorbing proposals",
    ),
    Rule(
        name="no-fit-storm",
        signal="starved_rounds",
        op=">=",
        threshold=50.0,
        for_rounds=1,
        severity="warning",
        description="many consecutive rounds placed nothing with jobs waiting",
    ),
    Rule(
        name="postponement-pileup",
        signal="postponements_total",
        op=">=",
        threshold=250.0,
        for_rounds=1,
        severity="warning",
        description="TOPO-AWARE-P deferrals piling up",
    ),
)


def load_rules(path: Path | str) -> tuple[Rule, ...]:
    """Load rules from a JSON or TOML file.

    Both formats share one shape: a top-level ``rules`` array of
    objects with the :class:`Rule` fields.  TOML needs the stdlib
    ``tomllib`` (Python >= 3.11); on older interpreters a ``.toml``
    file is a clear error rather than a silent fallback.
    """
    path = Path(path)
    text = path.read_text()
    if path.suffix == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # pragma: no cover - py<3.11 only
            raise ValueError(
                f"{path}: TOML rules need Python >= 3.11 (no tomllib); "
                "use the JSON format instead"
            ) from exc
        try:
            doc = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ValueError(f"{path}: not TOML: {exc}") from None
    else:
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not JSON: {exc}") from None
    if not isinstance(doc, dict) or not isinstance(doc.get("rules"), list):
        raise ValueError(f"{path}: expected a top-level 'rules' array")
    rules = []
    for i, raw in enumerate(doc["rules"]):
        if not isinstance(raw, dict):
            raise ValueError(f"{path}: rules[{i}] is not an object")
        unknown = set(raw) - {
            "name", "signal", "op", "threshold", "for_rounds",
            "severity", "description",
        }
        if unknown:
            raise ValueError(
                f"{path}: rules[{i}] has unknown fields {sorted(unknown)}"
            )
        try:
            rules.append(Rule(**raw))
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{path}: rules[{i}]: {exc}") from None
    if not rules:
        raise ValueError(f"{path}: 'rules' array is empty")
    return tuple(rules)


@dataclass
class _RuleState:
    """Mutable evaluation state for one rule."""

    violating_rounds: int = 0
    active: bool = False
    fired_count: int = 0


class Watchdog(BaseObserver):
    """Evaluate SLO rules at decision-round boundaries.

    Shares the :class:`MetricsRegistry` with the
    :class:`~repro.obs.telemetry.TelemetryObserver` (attach the
    telemetry observer *first* so gauges are fresh when rules run —
    the CLI wiring guarantees this) and optionally emits ``alert``
    events into the shared :class:`EventLog`.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        event_log: EventLog | None = None,
        rules: Sequence[Rule] = DEFAULT_RULES,
        *,
        scheduler: str = "",
    ) -> None:
        self.registry = registry
        self.events = event_log
        self.rules = tuple(rules)
        names = [r.name for r in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {names}")
        self.scheduler = scheduler
        self.fired: list[dict] = []
        self._state = {rule.name: _RuleState() for rule in self.rules}
        self._rounds = 0
        self._starved_rounds = 0
        self._postponements: dict[str, int] = {}
        self._postponements_total = 0
        self._requeues = 0
        self._cluster = None
        self._total_gpus = 0
        # p95 is only recomputed after a placement lands in the waiting
        # histogram; between placements the cached value is exact
        self._wait_p95_cache = math.nan
        self._waits_dirty = True
        #: immutable dict swapped whole on fire/resolve transitions;
        #: the introspection server's /alerts endpoint reads it lock-free
        self._published: dict = self._publish()
        self._fired_counter = (
            registry.counter(
                "repro_alerts_fired_total",
                "SLO watchdog rule activations.",
                ("scheduler", "rule"),
            )
            if registry is not None
            else None
        )

    # ------------------------------------------------------------------
    def bind_simulation(self, sim) -> None:
        """Runner wiring: read cluster-derived signals directly."""
        self._cluster = sim.cluster
        self._total_gpus = len(sim.topo.gpus())
        if not self.scheduler:
            self.scheduler = sim.scheduler.name
        self._published = self._publish()  # pick up the scheduler name

    # ------------------------------------------------------------------
    # signal derivation
    # ------------------------------------------------------------------
    def _registry_value(self, name: str, default: float = math.nan) -> float:
        if self.registry is None or name not in self.registry:
            return default
        instrument = self.registry.get(name)
        try:
            return instrument.value(scheduler=self.scheduler)
        except (AttributeError, ValueError):
            return default

    def _wait_p95(self) -> float:
        if not self._waits_dirty:
            return self._wait_p95_cache
        self._waits_dirty = False
        self._wait_p95_cache = math.nan
        if self.registry is None or "repro_job_waiting_seconds" not in self.registry:
            return math.nan
        hist = self.registry.get("repro_job_waiting_seconds")
        if not isinstance(hist, Histogram):
            return math.nan
        try:
            self._wait_p95_cache = hist.quantile(0.95, scheduler=self.scheduler)
        except ValueError:
            pass
        return self._wait_p95_cache

    def signals(self, queued: int) -> dict[str, float]:
        """All rule-visible signals at the current round boundary."""
        if self._cluster is not None:
            stats = self._cluster.engine.stats
            proposals = stats.hits + stats.misses
            hit_rate = stats.hit_rate if proposals else math.nan
            busy = sum(len(r.gpus) for r in self._cluster.running.values())
            total = self._total_gpus
            utilization = busy / total if total else math.nan
            running = float(len(self._cluster.running))
        else:
            hit_rate = self._registry_value("repro_placement_cache_hit_rate")
            utilization = self._registry_value("repro_gpu_utilization")
            running = self._registry_value("repro_running_jobs", 0.0)
        return {
            "queue_depth": float(queued),
            "queue_wait_p95": self._wait_p95(),
            "utilization": utilization,
            "cache_hit_rate": hit_rate,
            "starved_rounds": float(self._starved_rounds),
            "postponements_total": float(self._postponements_total),
            "requeues_total": float(self._requeues),
            "running_jobs": running,
        }

    # ------------------------------------------------------------------
    # SimObserver hooks
    # ------------------------------------------------------------------
    def on_place(self, t, job, solution, solo_exec_time, postponements):
        self._waits_dirty = True
        if postponements:
            seen = self._postponements.get(job.job_id, 0)
            self._postponements_total += postponements - seen
            self._postponements[job.job_id] = postponements

    def on_requeue(self, t, job):
        self._requeues += 1

    def on_decision_round(self, t, placed, queued, elapsed_s):
        self._rounds += 1
        if queued > 0 and not placed:
            self._starved_rounds += 1
        else:
            self._starved_rounds = 0
        signals = self.signals(queued)
        for rule in self.rules:
            state = self._state[rule.name]
            value = signals[rule.signal]
            if rule.violated(value):
                state.violating_rounds += 1
                if not state.active and state.violating_rounds >= rule.for_rounds:
                    state.active = True
                    state.fired_count += 1
                    self._fire(rule, value, t)
            else:
                was_active = state.active
                state.violating_rounds = 0
                state.active = False
                if was_active:
                    self._resolve(rule, value, t)

    # ------------------------------------------------------------------
    # alert lifecycle
    # ------------------------------------------------------------------
    def _alert_doc(self, rule: Rule, value: float, t: float, state: str) -> dict:
        return {
            "rule": rule.name,
            "signal": rule.signal,
            "op": rule.op,
            "value": value if not math.isnan(value) else None,
            "threshold": rule.threshold,
            "severity": rule.severity,
            "state": state,
            "t": t,
            "round": self._rounds,
            "description": rule.description,
        }

    def _fire(self, rule: Rule, value: float, t: float) -> None:
        doc = self._alert_doc(rule, value, t, "firing")
        self.fired.append(doc)
        if self._fired_counter is not None:
            self._fired_counter.inc(scheduler=self.scheduler, rule=rule.name)
        self._emit(doc)
        self._published = self._publish()

    def _resolve(self, rule: Rule, value: float, t: float) -> None:
        self._emit(self._alert_doc(rule, value, t, "resolved"))
        self._published = self._publish()

    def _emit(self, doc: dict) -> None:
        if self.events is not None:
            fields = {k: v for k, v in doc.items() if k != "t"}
            self.events.emit("alert", doc["t"], scheduler=self.scheduler,
                             **fields)

    # ------------------------------------------------------------------
    # read-side surfaces
    # ------------------------------------------------------------------
    def _publish(self) -> dict:
        # rebuilt only on fire/resolve transitions (rare), never on the
        # per-round hot path; rounds_evaluated is merged at read time
        return {
            "enabled": True,
            "scheduler": self.scheduler,
            "rules": [rule.name for rule in self.rules],
            "active": [
                name for name, st in self._state.items() if st.active
            ],
            "fired_total": len(self.fired),
            "fired": list(self.fired[-20:]),
        }

    def published_state(self) -> dict:
        """Latest atomically-swapped state (the /alerts endpoint body).

        ``rounds_evaluated`` is read live off the watchdog (a single
        int attribute read, atomic under the GIL); everything composite
        comes from the immutable published dict.
        """
        return {**self._published, "rounds_evaluated": self._rounds}

    def summary(self) -> list[dict]:
        """Every fired alert, in firing order (end-of-run digest)."""
        return list(self.fired)

    def finalize_result(self, result) -> None:
        """Runner wiring: attach the digest to the simulation result."""
        result.alerts = self.summary()
        self._published = self._publish()


# re-exported for rule files shipped next to configs
__all__ = [
    "DEFAULT_RULES",
    "Rule",
    "SIGNALS",
    "Watchdog",
    "load_rules",
]
