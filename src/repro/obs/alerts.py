"""SLO watchdog: declarative alert rules over the live telemetry.

Production schedulers page operators on queue-wait and fragmentation
regressions instead of waiting for post-mortem log analysis.  The
:class:`Watchdog` is a :class:`~repro.sim.hooks.SimObserver` that
evaluates a set of :class:`Rule` objects at every decision-round
boundary — the cadence Algorithm 1 already wakes the scheduler on —
against *signals* derived from the shared
:class:`~repro.obs.metrics.MetricsRegistry` and the hook stream
itself:

======================  ====================================================
signal                  meaning
======================  ====================================================
queue_depth             jobs waiting after the round
queue_wait_p95          p95 of arrival→placement delay (sim seconds,
                        bucket-interpolated via ``Histogram.quantile``)
utilization             allocated fraction of all cluster GPUs
cache_hit_rate          placement-memo hit rate (nan before any proposal)
starved_rounds          consecutive rounds with a non-empty queue and no
                        placements (no-fit / capacity-outcome storms)
postponements_total     TOPO-AWARE-P postponement count so far
requeues_total          failure-victim resubmissions so far
running_jobs            jobs currently executing
======================  ====================================================

A rule fires once its condition has held for ``for_rounds``
consecutive rounds (edge-triggered: it must clear before it can fire
again) and emits a schema-versioned ``alert`` event into the event
log, increments ``repro_alerts_fired_total{scheduler,rule}``, and is
collected into the end-of-run summary the runner attaches to
:attr:`SimulationResult.alerts`.

**Windowed rules** evaluate a trailing window instead of the instant:
``window`` (rounds, default 1) and ``agg`` pick the aggregate the
threshold compares against — ``last`` (instantaneous, the default),
``mean``/``max``/``min`` over the window, or ``rate`` (per-round
change across the window) so alerts can fire on *trends*: a queue
whose depth grows every round pages long before any absolute
threshold trips.

**NaN policy** is explicit per rule.  Some signals have no value yet
(``cache_hit_rate`` is NaN before any proposal), and NaN compares
false under every operator — historically "no data" could silently
never page.  ``nan="skip"`` (the default) excludes NaN samples from
evaluation and leaves the rule's streak state untouched (no data is
neither healthy nor violating); ``nan="violate"`` treats a NaN sample
as a violation, for signals whose absence is itself the incident.

Signals are all derived from *simulation* state (sim time, sim-time
waits), never wall clock, so a rule that fires in a scenario fires
deterministically every run.  The watchdog is tap-only: attaching it
never changes scheduling decisions (pinned by the fast-path A/B
equivalence test).
"""

from __future__ import annotations

import json
import math
import operator
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.obs.events import EventLog
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.sim.hooks import BaseObserver

#: signal names rules may reference (validated at load time)
SIGNALS = (
    "queue_depth",
    "queue_wait_p95",
    "utilization",
    "cache_hit_rate",
    "starved_rounds",
    "postponements_total",
    "requeues_total",
    "running_jobs",
)

_OPS = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
}

#: window aggregates a rule may request over its trailing samples
AGGREGATES = ("last", "mean", "max", "min", "rate")

#: explicit NaN policies: ``skip`` leaves the rule's streak untouched
#: for that round; ``violate`` counts a NaN sample as a violation
NAN_POLICIES = ("skip", "violate")


@dataclass(frozen=True)
class Rule:
    """One declarative SLO rule: ``agg(signal, window) op threshold``
    sustained for ``for_rounds`` rounds."""

    name: str
    signal: str
    op: str
    threshold: float
    for_rounds: int = 1
    severity: str = "warning"
    description: str = ""
    #: trailing rounds the aggregate sees (1 = instantaneous)
    window: int = 1
    #: how the window collapses to one value: last/mean/max/min/rate
    agg: str = "last"
    #: what a NaN sample means: "skip" (default) or "violate"
    nan: str = "skip"

    def __post_init__(self) -> None:
        if self.signal not in SIGNALS:
            raise ValueError(
                f"rule {self.name!r}: unknown signal {self.signal!r} "
                f"(known: {', '.join(SIGNALS)})"
            )
        if self.op not in _OPS:
            raise ValueError(
                f"rule {self.name!r}: unknown operator {self.op!r} "
                f"(known: {', '.join(_OPS)})"
            )
        if self.for_rounds < 1:
            raise ValueError(f"rule {self.name!r}: for_rounds must be >= 1")
        if self.window < 1:
            raise ValueError(f"rule {self.name!r}: window must be >= 1")
        if self.agg not in AGGREGATES:
            raise ValueError(
                f"rule {self.name!r}: unknown agg {self.agg!r} "
                f"(known: {', '.join(AGGREGATES)})"
            )
        if self.nan not in NAN_POLICIES:
            raise ValueError(
                f"rule {self.name!r}: unknown nan policy {self.nan!r} "
                f"(known: {', '.join(NAN_POLICIES)})"
            )

    def violated(self, value: float) -> bool:
        # nan compares false under every operator; the explicit ``nan``
        # policy is applied in :meth:`evaluate`, before this comparison
        return _OPS[self.op](value, self.threshold)

    def evaluate(self, window_values) -> tuple[float, str]:
        """Collapse the trailing window to ``(value, action)``.

        ``action`` is ``"evaluate"`` (compare ``value`` against the
        threshold), ``"skip"`` (no usable data this round: leave the
        streak untouched) or ``"violate"`` (the NaN policy says a
        missing sample pages directly).
        """
        current = window_values[-1]
        if math.isnan(current) and self.nan == "violate":
            return math.nan, "violate"
        agg = self.agg
        if agg == "last":
            if math.isnan(current):
                return math.nan, "skip"
            return current, "evaluate"
        # hot path: a NaN anywhere poisons sum(), so one C-speed pass
        # detects it; without NaNs the aggregates run on the deque
        # directly, no intermediate list (this evaluates per rule per
        # round — its cost is pinned by the obs-overhead benchmark)
        n = len(window_values)
        total = sum(window_values)
        if not math.isnan(total):
            if agg == "mean":
                return total / n, "evaluate"
            if agg == "max":
                return max(window_values), "evaluate"
            if agg == "min":
                return min(window_values), "evaluate"
            # rate: per-round change across the window; needs two points
            if n < 2:
                return math.nan, "skip"
            return (current - window_values[0]) / (n - 1), "evaluate"
        finite = [v for v in window_values if not math.isnan(v)]
        if not finite:
            return math.nan, "skip"
        if agg == "mean":
            return sum(finite) / len(finite), "evaluate"
        if agg == "max":
            return max(finite), "evaluate"
        if agg == "min":
            return min(finite), "evaluate"
        if len(finite) < 2:
            return math.nan, "skip"
        return (finite[-1] - finite[0]) / (len(finite) - 1), "evaluate"


#: conservative defaults: silent on the paper's Scenario 1 workload,
#: loud on genuine regressions (saturated queues, dead clusters,
#: placement storms).  Thresholds are simulation-scale quantities.
DEFAULT_RULES: tuple[Rule, ...] = (
    Rule(
        name="queue-wait-p95-high",
        signal="queue_wait_p95",
        op=">",
        threshold=3600.0,
        for_rounds=5,
        severity="critical",
        description="p95 arrival->placement delay above one hour",
    ),
    Rule(
        name="utilization-collapse",
        signal="utilization",
        op="<",
        threshold=0.02,
        for_rounds=25,
        severity="critical",
        description="cluster essentially idle while work exists",
    ),
    Rule(
        name="placement-cache-degraded",
        signal="cache_hit_rate",
        op="<",
        threshold=0.01,
        # steady-state churn (Scenario 1) legitimately invalidates the
        # memo every round, so only a *long* zero-hit regime is a signal
        for_rounds=1000,
        severity="warning",
        description="placement memo no longer absorbing proposals",
    ),
    Rule(
        name="no-fit-storm",
        signal="starved_rounds",
        op=">=",
        threshold=50.0,
        for_rounds=1,
        severity="warning",
        description="many consecutive rounds placed nothing with jobs waiting",
    ),
    Rule(
        name="postponement-pileup",
        signal="postponements_total",
        op=">=",
        threshold=250.0,
        for_rounds=1,
        severity="warning",
        description="TOPO-AWARE-P deferrals piling up",
    ),
)


def load_rules(path: Path | str) -> tuple[Rule, ...]:
    """Load rules from a JSON or TOML file.

    Both formats share one shape: a top-level ``rules`` array of
    objects with the :class:`Rule` fields.  TOML needs the stdlib
    ``tomllib`` (Python >= 3.11); on older interpreters a ``.toml``
    file is a clear error rather than a silent fallback.
    """
    path = Path(path)
    text = path.read_text()
    if path.suffix == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # pragma: no cover - py<3.11 only
            raise ValueError(
                f"{path}: TOML rules need Python >= 3.11 (no tomllib); "
                "use the JSON format instead"
            ) from exc
        try:
            doc = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ValueError(f"{path}: not TOML: {exc}") from None
    else:
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not JSON: {exc}") from None
    if not isinstance(doc, dict) or not isinstance(doc.get("rules"), list):
        raise ValueError(f"{path}: expected a top-level 'rules' array")
    rules = []
    for i, raw in enumerate(doc["rules"]):
        if not isinstance(raw, dict):
            raise ValueError(f"{path}: rules[{i}] is not an object")
        unknown = set(raw) - {
            "name", "signal", "op", "threshold", "for_rounds",
            "severity", "description", "window", "agg", "nan",
        }
        if unknown:
            raise ValueError(
                f"{path}: rules[{i}] has unknown fields {sorted(unknown)}"
            )
        try:
            rules.append(Rule(**raw))
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{path}: rules[{i}]: {exc}") from None
    if not rules:
        raise ValueError(f"{path}: 'rules' array is empty")
    return tuple(rules)


class _RuleState:
    """Mutable evaluation state for one rule."""

    __slots__ = ("violating_rounds", "active", "fired_count", "window")

    def __init__(self, rule: Rule) -> None:
        self.violating_rounds = 0
        self.active = False
        self.fired_count = 0
        #: trailing signal samples the rule's aggregate sees
        self.window: deque = deque(maxlen=rule.window)


class Watchdog(BaseObserver):
    """Evaluate SLO rules at decision-round boundaries.

    Shares the :class:`MetricsRegistry` with the
    :class:`~repro.obs.telemetry.TelemetryObserver` (attach the
    telemetry observer *first* so gauges are fresh when rules run —
    the CLI wiring guarantees this) and optionally emits ``alert``
    events into the shared :class:`EventLog`.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        event_log: EventLog | None = None,
        rules: Sequence[Rule] = DEFAULT_RULES,
        *,
        scheduler: str = "",
    ) -> None:
        self.registry = registry
        self.events = event_log
        self.rules = tuple(rules)
        names = [r.name for r in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {names}")
        self.scheduler = scheduler
        self.fired: list[dict] = []
        self._state = {rule.name: _RuleState(rule) for rule in self.rules}
        # hot-loop pairing: on_decision_round runs every rule every
        # round, so skip the per-rule dict lookup there
        self._pairs = tuple(
            (rule, self._state[rule.name]) for rule in self.rules
        )
        self._rounds = 0
        self._starved_rounds = 0
        self._postponements: dict[str, int] = {}
        self._postponements_total = 0
        self._requeues = 0
        self._cluster = None
        self._total_gpus = 0
        # p95 is only recomputed after a placement lands in the waiting
        # histogram; between placements the cached value is exact
        self._wait_p95_cache = math.nan
        self._waits_dirty = True
        #: immutable dict swapped whole on fire/resolve transitions;
        #: the introspection server's /alerts endpoint reads it lock-free
        self._published: dict = self._publish()
        self._fired_counter = (
            registry.counter(
                "repro_alerts_fired_total",
                "SLO watchdog rule activations.",
                ("scheduler", "rule"),
            )
            if registry is not None
            else None
        )

    # ------------------------------------------------------------------
    def bind_simulation(self, sim) -> None:
        """Runner wiring: read cluster-derived signals directly."""
        self._cluster = sim.cluster
        self._total_gpus = len(sim.topo.gpus())
        if not self.scheduler:
            self.scheduler = sim.scheduler.name
        self._published = self._publish()  # pick up the scheduler name

    # ------------------------------------------------------------------
    # signal derivation
    # ------------------------------------------------------------------
    def _registry_value(self, name: str, default: float = math.nan) -> float:
        if self.registry is None or name not in self.registry:
            return default
        instrument = self.registry.get(name)
        try:
            return instrument.value(scheduler=self.scheduler)
        except (AttributeError, ValueError):
            return default

    def _wait_p95(self) -> float:
        if not self._waits_dirty:
            return self._wait_p95_cache
        self._waits_dirty = False
        self._wait_p95_cache = math.nan
        if self.registry is None or "repro_job_waiting_seconds" not in self.registry:
            return math.nan
        hist = self.registry.get("repro_job_waiting_seconds")
        if not isinstance(hist, Histogram):
            return math.nan
        try:
            self._wait_p95_cache = hist.quantile(0.95, scheduler=self.scheduler)
        except ValueError:
            pass
        return self._wait_p95_cache

    def signals(self, queued: int) -> dict[str, float]:
        """All rule-visible signals at the current round boundary."""
        if self._cluster is not None:
            stats = self._cluster.engine.stats
            proposals = stats.hits + stats.misses
            hit_rate = stats.hit_rate if proposals else math.nan
            busy = self._cluster.alloc.busy_count()
            total = self._total_gpus
            utilization = busy / total if total else math.nan
            running = float(len(self._cluster.running))
        else:
            hit_rate = self._registry_value("repro_placement_cache_hit_rate")
            utilization = self._registry_value("repro_gpu_utilization")
            running = self._registry_value("repro_running_jobs", 0.0)
        return {
            "queue_depth": float(queued),
            "queue_wait_p95": self._wait_p95(),
            "utilization": utilization,
            "cache_hit_rate": hit_rate,
            "starved_rounds": float(self._starved_rounds),
            "postponements_total": float(self._postponements_total),
            "requeues_total": float(self._requeues),
            "running_jobs": running,
        }

    # ------------------------------------------------------------------
    # SimObserver hooks
    # ------------------------------------------------------------------
    def on_place(self, t, job, solution, solo_exec_time, postponements):
        self._waits_dirty = True
        if postponements:
            seen = self._postponements.get(job.job_id, 0)
            self._postponements_total += postponements - seen
            self._postponements[job.job_id] = postponements

    def on_requeue(self, t, job):
        self._requeues += 1

    def on_decision_round(self, t, placed, queued, elapsed_s):
        self._rounds += 1
        if queued > 0 and not placed:
            self._starved_rounds += 1
        else:
            self._starved_rounds = 0
        signals = self.signals(queued)
        for rule, state in self._pairs:
            window = state.window
            window.append(signals[rule.signal])
            value, action = rule.evaluate(window)
            if action == "skip":
                continue  # no data: neither healthy nor violating
            if action == "violate" or rule.violated(value):
                state.violating_rounds += 1
                if not state.active and state.violating_rounds >= rule.for_rounds:
                    state.active = True
                    state.fired_count += 1
                    self._fire(rule, value, t)
            else:
                was_active = state.active
                state.violating_rounds = 0
                state.active = False
                if was_active:
                    self._resolve(rule, value, t)

    # ------------------------------------------------------------------
    # alert lifecycle
    # ------------------------------------------------------------------
    def _alert_doc(self, rule: Rule, value: float, t: float, state: str) -> dict:
        return {
            "rule": rule.name,
            "signal": rule.signal,
            "op": rule.op,
            "value": value if not math.isnan(value) else None,
            "threshold": rule.threshold,
            "severity": rule.severity,
            "state": state,
            "t": t,
            "round": self._rounds,
            "window": rule.window,
            "agg": rule.agg,
            "description": rule.description,
        }

    def _fire(self, rule: Rule, value: float, t: float) -> None:
        doc = self._alert_doc(rule, value, t, "firing")
        self.fired.append(doc)
        if self._fired_counter is not None:
            self._fired_counter.inc(scheduler=self.scheduler, rule=rule.name)
        self._emit(doc)
        self._published = self._publish()

    def _resolve(self, rule: Rule, value: float, t: float) -> None:
        self._emit(self._alert_doc(rule, value, t, "resolved"))
        self._published = self._publish()

    def _emit(self, doc: dict) -> None:
        if self.events is not None:
            fields = {k: v for k, v in doc.items() if k != "t"}
            self.events.emit("alert", doc["t"], scheduler=self.scheduler,
                             **fields)

    # ------------------------------------------------------------------
    # read-side surfaces
    # ------------------------------------------------------------------
    def _publish(self) -> dict:
        # rebuilt only on fire/resolve transitions (rare), never on the
        # per-round hot path; rounds_evaluated is merged at read time
        return {
            "enabled": True,
            "scheduler": self.scheduler,
            "rules": [rule.name for rule in self.rules],
            "active": [
                name for name, st in self._state.items() if st.active
            ],
            "fired_total": len(self.fired),
            "fired": list(self.fired[-20:]),
        }

    def published_state(self) -> dict:
        """Latest atomically-swapped state (the /alerts endpoint body).

        ``rounds_evaluated`` is read live off the watchdog (a single
        int attribute read, atomic under the GIL); everything composite
        comes from the immutable published dict.
        """
        return {**self._published, "rounds_evaluated": self._rounds}

    def summary(self) -> list[dict]:
        """Every fired alert, in firing order (end-of-run digest)."""
        return list(self.fired)

    def finalize_result(self, result) -> None:
        """Runner wiring: attach the digest to the simulation result."""
        result.alerts = self.summary()
        self._published = self._publish()


# re-exported for rule files shipped next to configs
__all__ = [
    "AGGREGATES",
    "DEFAULT_RULES",
    "NAN_POLICIES",
    "Rule",
    "SIGNALS",
    "Watchdog",
    "load_rules",
]
