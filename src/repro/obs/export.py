"""Metric exposition: Prometheus text format and JSON.

``render_prometheus`` emits the classic text exposition format
(``# HELP`` / ``# TYPE`` headers, one sample per line, escaped label
values) so the registry can be scraped or dropped into ``promtool``.
``render_json`` is the same data as a machine-friendly document for
dashboards and tests.  ``parse_prometheus`` round-trips the text
format back into families — the CI smoke test and the unit tests use
it to prove the output is well-formed rather than merely non-empty.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Mapping

from repro.obs.metrics import MetricsRegistry


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Serialise the registry in Prometheus text exposition format."""
    lines: list[str] = []
    for instrument in registry.collect():
        lines.append(f"# HELP {instrument.name} {_escape_help(instrument.help)}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        for series_name, labels, value in instrument.samples():
            if labels:
                rendered = ",".join(
                    f'{name}="{_escape_label_value(value_)}"'
                    for name, value_ in labels
                )
                lines.append(f"{series_name}{{{rendered}}} {_format_value(value)}")
            else:
                lines.append(f"{series_name} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def render_json(registry: MetricsRegistry) -> str:
    """Serialise the registry as a JSON document."""
    families = []
    for instrument in registry.collect():
        families.append(
            {
                "name": instrument.name,
                "type": instrument.kind,
                "help": instrument.help,
                "samples": [
                    {"series": series_name, "labels": dict(labels), "value": value}
                    for series_name, labels, value in instrument.samples()
                ],
            }
        )
    return json.dumps({"families": families}, indent=2, sort_keys=False)


def write_metrics(registry: MetricsRegistry, path: Path | str) -> Path:
    """Write the registry to ``path``; ``.json`` selects JSON format,
    anything else the Prometheus text format."""
    path = Path(path)
    if path.suffix == ".json":
        path.write_text(render_json(registry) + "\n")
    else:
        path.write_text(render_prometheus(registry))
    return path


# ---------------------------------------------------------------------------
# parsing (validation-side)
# ---------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(text):
        m = _LABEL_PAIR_RE.match(text, pos)
        if m is None:
            raise ValueError(f"malformed label block {text!r}")
        raw = m.group("value")
        labels[m.group("name")] = (
            raw.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        pos = m.end()
    return labels


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse text exposition into ``{family: {type, help, samples}}``.

    Raises :class:`ValueError` on any malformed line, on samples that
    appear before their ``# TYPE`` header, and on unknown metric types
    — strict on purpose, it backs the CI format validation.
    """
    families: dict[str, dict] = {}

    def family_of(series_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            base = series_name.removesuffix(suffix)
            if base != series_name and base in families:
                if families[base]["type"] == "histogram":
                    return base
        return series_name

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            try:
                _, _, name, help_text = line.split(" ", 3)
            except ValueError:
                name = line.split(" ", 3)[2]
                help_text = ""
            families.setdefault(name, {"type": None, "help": None, "samples": []})
            families[name]["help"] = help_text
        elif line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: unknown metric type {kind!r}")
            families.setdefault(name, {"type": None, "help": None, "samples": []})
            if families[name]["type"] not in (None, kind):
                raise ValueError(f"line {lineno}: conflicting TYPE for {name}")
            families[name]["type"] = kind
        elif line.startswith("#"):
            continue  # free-form comment
        else:
            m = _SAMPLE_RE.match(line)
            if m is None:
                raise ValueError(f"line {lineno}: malformed sample {line!r}")
            series_name = m.group("name")
            family = family_of(series_name)
            if family not in families or families[family]["type"] is None:
                raise ValueError(
                    f"line {lineno}: sample {series_name!r} has no TYPE header"
                )
            families[family]["samples"].append(
                {
                    "series": series_name,
                    "labels": _parse_labels(m.group("labels") or ""),
                    "value": _parse_value(m.group("value")),
                }
            )
    return families


def sample_value(
    families: Mapping[str, dict],
    family: str,
    series: str | None = None,
    labels: Mapping[str, str] | None = None,
) -> float:
    """Look up one parsed sample's value (test/validation helper)."""
    series = series or family
    labels = dict(labels or {})
    for sample in families[family]["samples"]:
        if sample["series"] == series and sample["labels"] == labels:
            return sample["value"]
    raise KeyError(f"no sample {series!r} with labels {labels} in {family!r}")
