"""Trace analytics: Perfetto export and a critical-path profiler.

Span JSONL written by ``--trace-out`` is exact but unreadable at
fig11 scale (10k jobs -> hundreds of thousands of spans).  Two views
fix that:

* :func:`to_chrome_trace` converts spans to the Chrome Trace Event
  format (``{"traceEvents": [...]}`` with complete ``"X"`` events),
  which loads directly into Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing`` — ``repro trace export --format chrome``;
* :func:`profile_spans` aggregates the span forest into per-phase
  self/total time tables (``sched.propose`` → ``drb.*`` → ``fm.*`` →
  ``utility.*``), per-job decision critical paths, and the top-N
  slowest decision rounds — ``repro trace profile``.

Self time is a span's duration minus the summed durations of its
direct children; totals are plain duration sums, so a parent's total
double-counts its children by design (as in any profiler's
inclusive/exclusive split).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

#: Chrome Trace Event JSON works in microseconds
_US = 1e6


# ---------------------------------------------------------------------------
# Chrome Trace Event export
# ---------------------------------------------------------------------------

def to_chrome_trace(spans: Sequence[dict], *, pid: int = 1) -> dict:
    """Render spans as a Chrome Trace Event document.

    Every span becomes one complete event (``ph="X"``) with
    microsecond ``ts``/``dur``, its attributes under ``args`` and its
    dotted-name prefix as the category.  The recorder's stack
    discipline guarantees proper nesting, so a single synthetic thread
    per trace renders the full tree; a thread-name metadata event
    labels it.  Events are sorted by ``ts`` (monotonic — Perfetto and
    ``chrome://tracing`` both require it).
    """
    events: list[dict] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": 1,
            "args": {"name": "scheduler decision path"},
        }
    ]
    for span in sorted(spans, key=lambda s: (s["start_s"], s["span_id"])):
        name = span["name"]
        events.append(
            {
                "name": name,
                "cat": name.split(".", 1)[0],
                "ph": "X",
                "ts": span["start_s"] * _US,
                "dur": max(0.0, span["dur_s"]) * _US,
                "pid": pid,
                "tid": 1,
                "args": dict(span.get("attrs", {})),
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro trace export", "spans": len(spans)},
    }


def write_chrome_trace(spans: Sequence[dict], path: Path | str) -> Path:
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(spans)) + "\n")
    return path


# ---------------------------------------------------------------------------
# profiler
# ---------------------------------------------------------------------------

@dataclass
class PhaseStats:
    """Aggregate timing for one span name across the whole trace."""

    name: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


@dataclass
class RoundProfile:
    """One ``sched.propose`` root: a single decision for a single job."""

    job_id: str
    start_s: float
    dur_s: float
    outcome: str
    #: (name, dur_s) pairs from root to leaf along the slowest chain
    critical_path: tuple[tuple[str, float], ...] = ()


@dataclass
class TraceProfile:
    """Everything ``repro trace profile`` reports."""

    phases: list[PhaseStats] = field(default_factory=list)
    rounds: list[RoundProfile] = field(default_factory=list)
    #: per-job total decision time (sum over that job's rounds)
    per_job_s: dict[str, float] = field(default_factory=dict)
    span_count: int = 0

    def slowest_rounds(self, n: int = 10) -> list[RoundProfile]:
        return sorted(self.rounds, key=lambda r: -r.dur_s)[:n]


def _critical_path(
    span: dict, children: dict[int | None, list[dict]]
) -> tuple[tuple[str, float], ...]:
    """Root-to-leaf chain maximising cumulative duration."""
    path = [(span["name"], span["dur_s"])]
    node = span
    while True:
        kids = children.get(node["span_id"])
        if not kids:
            return tuple(path)
        node = max(kids, key=lambda s: (s["dur_s"], -s["span_id"]))
        path.append((node["name"], node["dur_s"]))


def profile_spans(spans: Sequence[dict], job_id: str | None = None) -> TraceProfile:
    """Aggregate a span list into a :class:`TraceProfile`.

    ``job_id`` restricts the per-round/per-job sections to one job;
    the per-phase table always covers the whole trace (phase costs are
    only meaningful in aggregate).
    """
    children: dict[int | None, list[dict]] = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)

    phases: dict[str, PhaseStats] = {}
    for span in spans:
        stats = phases.get(span["name"])
        if stats is None:
            stats = phases[span["name"]] = PhaseStats(span["name"])
        dur = span["dur_s"]
        stats.count += 1
        stats.total_s += dur
        stats.max_s = max(stats.max_s, dur)
        child_time = sum(
            c["dur_s"] for c in children.get(span["span_id"], ())
        )
        stats.self_s += max(0.0, dur - child_time)

    rounds: list[RoundProfile] = []
    per_job: dict[str, float] = {}
    for span in spans:
        if span["name"] != "sched.propose":
            continue
        jid = span["attrs"].get("job_id", "?")
        per_job[jid] = per_job.get(jid, 0.0) + span["dur_s"]
        if job_id is not None and jid != job_id:
            continue
        rounds.append(
            RoundProfile(
                job_id=jid,
                start_s=span["start_s"],
                dur_s=span["dur_s"],
                outcome=span["attrs"].get("outcome", ""),
                critical_path=_critical_path(span, children),
            )
        )
    rounds.sort(key=lambda r: r.start_s)
    if job_id is not None:
        per_job = {job_id: per_job.get(job_id, 0.0)}

    ordered = sorted(phases.values(), key=lambda p: -p.total_s)
    return TraceProfile(
        phases=ordered,
        rounds=rounds,
        per_job_s=per_job,
        span_count=len(spans),
    )


# ---------------------------------------------------------------------------
# text rendering (the CLI body)
# ---------------------------------------------------------------------------

def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}"


def format_profile(profile: TraceProfile, *, top: int = 10) -> str:
    """Human-readable tables for ``repro trace profile``."""
    if profile.span_count == 0:
        return "(empty trace: no spans)"
    lines: list[str] = []
    lines.append(f"trace: {profile.span_count} spans, "
                 f"{len(profile.rounds)} decision rounds, "
                 f"{len(profile.per_job_s)} jobs")
    lines.append("")
    lines.append("per-phase aggregate (sorted by total):")
    lines.append(
        f"  {'phase':<20} {'calls':>7} {'total ms':>10} {'self ms':>10} "
        f"{'mean ms':>9} {'max ms':>9}"
    )
    for phase in profile.phases:
        lines.append(
            f"  {phase.name:<20} {phase.count:>7} {_ms(phase.total_s):>10} "
            f"{_ms(phase.self_s):>10} {_ms(phase.mean_s):>9} "
            f"{_ms(phase.max_s):>9}"
        )
    slowest = profile.slowest_rounds(top)
    if slowest:
        lines.append("")
        lines.append(f"top {len(slowest)} slowest decision rounds:")
        for i, rnd in enumerate(slowest, start=1):
            chain = " > ".join(
                f"{name} {_ms(dur)}ms" for name, dur in rnd.critical_path
            )
            outcome = f" [{rnd.outcome}]" if rnd.outcome else ""
            lines.append(
                f"  {i:>2}. {rnd.job_id:<10} +{rnd.start_s:.6f}s "
                f"{_ms(rnd.dur_s):>9} ms{outcome}"
            )
            lines.append(f"      critical path: {chain}")
    heaviest = sorted(profile.per_job_s.items(), key=lambda kv: -kv[1])[:top]
    if heaviest:
        lines.append("")
        lines.append(f"top {len(heaviest)} jobs by total decision time:")
        for jid, total in heaviest:
            lines.append(f"  {jid:<12} {_ms(total):>10} ms")
    return "\n".join(lines)
