"""Live introspection endpoint for running simulations.

A stdlib :class:`~http.server.ThreadingHTTPServer` started on a
daemon thread by ``repro simulate/compare --serve PORT``.  Four
endpoints:

* ``GET /metrics`` — the shared :class:`MetricsRegistry` in Prometheus
  text exposition format (scrape-ready);
* ``GET /healthz`` — liveness document: uptime, age of the last
  published snapshot, run phase (``idle``/``running``/``finished``);
* ``GET /state``   — JSON dump of the latest :class:`RunSnapshot`
  (sim clock, queue depth, running/queued jobs, per-machine free
  GPUs, allocation epoch, placement-cache counters);
* ``GET /alerts``  — the SLO watchdog's current state (active alerts,
  fired history), or ``{"enabled": false}`` without a watchdog.

Handlers only ever read atomically-swapped immutable objects — the
publisher's snapshot slot and the watchdog's published state — so a
scrape can never block or perturb the simulation thread; results stay
bit-identical with the server attached (pinned by the fast-path A/B
equivalence test).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.state import SnapshotPublisher


class IntrospectionServer:
    """Owns the HTTP server thread and the read-only data sources."""

    def __init__(
        self,
        publisher: SnapshotPublisher,
        registry: MetricsRegistry | None = None,
        watchdog=None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.publisher = publisher
        self.registry = registry
        self.watchdog = watchdog
        self._started_at = time.time()
        outer = self

        class Handler(BaseHTTPRequestHandler):
            # one introspection server per process is the normal case;
            # closing over `outer` keeps the handler stateless
            def log_message(self, format, *args):  # noqa: A002 - stdlib signature
                pass  # silence per-request stderr chatter

            def do_GET(self) -> None:
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    self._send(200, outer.render_metrics(),
                               "text/plain; version=0.0.4; charset=utf-8")
                elif path == "/healthz":
                    body, code = outer.render_health()
                    self._send(code, body, "application/json")
                elif path == "/state":
                    self._send(200, outer.render_state(), "application/json")
                elif path == "/alerts":
                    self._send(200, outer.render_alerts(), "application/json")
                else:
                    self._send(404, json.dumps({"error": f"no route {path}"}),
                               "application/json")

            def _send(self, code: int, body: str, content_type: str) -> None:
                payload = body.encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "IntrospectionServer":
        self._started_at = time.time()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-introspection",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "IntrospectionServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # endpoint bodies (also the library/test surface; no HTTP needed)
    # ------------------------------------------------------------------
    def render_metrics(self) -> str:
        if self.registry is None:
            return "# no metrics registry attached\n"
        return render_prometheus(self.registry)

    def render_health(self) -> tuple[str, int]:
        now = time.time()
        snapshot = self.publisher.snapshot
        if snapshot is None:
            phase = "idle"
            last_event_age = None
        else:
            phase = "finished" if snapshot.finished else "running"
            last_event_age = max(0.0, now - snapshot.wall_time)
        doc = {
            "status": "ok",
            "phase": phase,
            "uptime_s": round(now - self._started_at, 6),
            "last_event_age_s": last_event_age,
            "events_seen": snapshot.events_seen if snapshot else 0,
        }
        return json.dumps(doc), 200

    def render_state(self) -> str:
        snapshot = self.publisher.snapshot
        if snapshot is None:
            return json.dumps({"phase": "idle", "snapshot": None})
        return json.dumps(snapshot.to_dict())

    def render_alerts(self) -> str:
        if self.watchdog is None:
            return json.dumps({"enabled": False, "active": [], "fired": []})
        return json.dumps(self.watchdog.published_state())
