"""Live introspection endpoint for running simulations.

A stdlib :class:`~http.server.ThreadingHTTPServer` started on a
daemon thread by ``repro simulate/compare --serve PORT``.  Endpoints:

* ``GET /metrics`` — the shared :class:`MetricsRegistry` in Prometheus
  text exposition format (scrape-ready);
* ``GET /healthz`` — liveness document: uptime, age of the last
  published snapshot, run phase (``idle``/``running``/``finished``);
* ``GET /state``   — JSON dump of the latest :class:`RunSnapshot`
  (sim clock, queue depth, running/queued jobs, per-machine free
  GPUs, allocation epoch, placement-cache counters);
* ``GET /alerts``  — the SLO watchdog's current state (active alerts,
  fired history), or ``{"enabled": false}`` without a watchdog;
* ``GET /decisions`` — the decision-provenance ring (recorder counters
  + the buffered decision records), or ``{"enabled": false}``;
* ``GET /explain/<job_id>`` — the decision chain for one job;
* ``GET /events`` — Server-Sent-Events stream of decision /
  job-state-change / round events, with ``Last-Event-ID`` replay from
  the recorder's ring buffer, so clients stop polling ``/jobs``.
  Idle streams emit a ``: keepalive`` comment frame every
  :attr:`IntrospectionServer.SSE_KEEPALIVE_S` seconds so proxies and
  client timeouts do not reap quiet connections;
* ``GET /timeseries`` — the continuous-telemetry store
  (:mod:`repro.obs.timeseries`): every cluster and per-machine series
  across all three downsampling tiers, or ``{"enabled": false}``
  without a sampler attached;
* ``GET /cluster`` — the latest per-machine heatmap values (GPU
  occupancy, Eq. 5 fragmentation, link-sharing load), the data the
  ``repro top`` dashboard renders.

Handlers only ever read atomically-swapped immutable objects or
lock-protected recorder entries — a scrape can never block or perturb
the simulation thread; results stay bit-identical with the server
attached (pinned by the fast-path A/B equivalence test).

Routing is table-driven and overridable: subclasses (the scheduler
service daemon) register additional GET routes and POST verbs via
:meth:`IntrospectionServer.get_routes` / :meth:`post_routes` without
re-implementing the HTTP plumbing.  Connections are HTTP/1.1 with
keep-alive, so a replay driver can push thousands of submissions per
second over a handful of sockets; the SSE stream alone closes its
connection when the client disconnects or the server stops.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.state import SnapshotPublisher

#: (status code, body, content type) triple every route handler returns
Response = tuple[int, str, str]

JSON = "application/json"
PROM = "text/plain; version=0.0.4; charset=utf-8"

#: refuse request bodies beyond this (a submit manifest is ~500 bytes)
MAX_BODY_BYTES = 1 << 20


def json_response(code: int, doc: dict) -> Response:
    return code, json.dumps(doc), JSON


class _Handler(BaseHTTPRequestHandler):
    """Stateless HTTP plumbing; all routing lives on the server object.

    ``ThreadingHTTPServer`` instantiates one of these per connection;
    ``self.server.owner`` points back at the
    :class:`IntrospectionServer` that carries the route tables.
    """

    protocol_version = "HTTP/1.1"  # keep-alive: one socket, many verbs
    # headers and body go out as separate writes; without TCP_NODELAY
    # Nagle holds the second one hostage to the client's delayed ACK
    # (~40 ms per request — three orders of magnitude off the replay
    # driver's submission-rate target)
    disable_nagle_algorithm = True

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # silence per-request stderr chatter

    def do_GET(self) -> None:
        path = self.path.split("?", 1)[0]
        stream = self.server.owner.stream_routes().get(path)
        if stream is not None:
            stream(self)
            return
        handler = self.server.owner.get_routes().get(path)
        if handler is not None:
            self._send(*handler())
            return
        response = self.server.owner.dispatch_get(path)
        if response is None:
            self._send(*json_response(404, {"error": f"no route {path}"}))
        else:
            self._send(*response)

    def do_POST(self) -> None:
        path = self.path.split("?", 1)[0]
        handler = self.server.owner.post_routes().get(path)
        if handler is None:
            self._send(*json_response(404, {"error": f"no route {path}"}))
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._send(*json_response(400, {"error": "bad Content-Length"}))
            return
        if length > MAX_BODY_BYTES:
            self._send(*json_response(413, {"error": "body too large"}))
            return
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw) if raw else {}
        except ValueError:
            self._send(*json_response(400, {"error": "body is not JSON"}))
            return
        if not isinstance(body, dict):
            self._send(*json_response(400, {"error": "body must be an object"}))
            return
        self._send(*handler(body))

    def _send(self, code: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)


class IntrospectionServer:
    """Owns the HTTP server thread and the read-only data sources."""

    def __init__(
        self,
        publisher: SnapshotPublisher,
        registry: MetricsRegistry | None = None,
        watchdog=None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        recorder=None,
        timeseries=None,
    ) -> None:
        self.publisher = publisher
        self.registry = registry
        self.watchdog = watchdog
        #: decision flight recorder (repro.obs.provenance) backing
        #: /decisions, /explain/<id> and the /events SSE stream
        self.recorder = recorder
        #: continuous-telemetry store (repro.obs.timeseries) backing
        #: /timeseries and /cluster
        self.timeseries = timeseries
        self._started_at = time.time()
        self._stopping = threading.Event()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.owner = self  # route lookups go through this back-ref
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # routing tables (subclass extension point)
    # ------------------------------------------------------------------
    def get_routes(self) -> dict[str, Callable[[], Response]]:
        """Path -> handler for GET; subclasses extend the dict."""
        return {
            "/metrics": lambda: (200, self.render_metrics(), PROM),
            "/healthz": self._healthz,
            "/state": lambda: (200, self.render_state(), JSON),
            "/alerts": lambda: (200, self.render_alerts(), JSON),
            "/decisions": lambda: (200, self.render_decisions(), JSON),
            "/timeseries": lambda: (200, self.render_timeseries(), JSON),
            "/cluster": lambda: (200, self.render_cluster(), JSON),
        }

    def stream_routes(self) -> dict[str, Callable]:
        """Path -> streaming handler (receives the raw request
        handler; writes its own headers and body, no Content-Length).
        Checked before the plain GET table."""
        return {"/events": self._stream_events}

    def post_routes(self) -> dict[str, Callable[[dict], Response]]:
        """Path -> handler for POST (handler receives the JSON body).

        Empty in the read-only introspection server; the service
        daemon's subclass adds its write verbs here.
        """
        return {}

    def dispatch_get(self, path: str) -> Response | None:
        """Fallback for GET paths missing from the route table —
        subclasses implement parameterised routes (``/jobs/<id>``)
        here.  ``None`` means 404."""
        if path.startswith("/explain/"):
            return self._explain(path[len("/explain/"):])
        return None

    def _explain(self, job_id: str) -> Response:
        if self.recorder is None:
            return json_response(
                404, {"error": "no decision recorder attached"}
            )
        decisions = self.recorder.for_job(job_id)
        if not decisions:
            return json_response(
                404,
                {"error": f"no recorded decisions for job {job_id!r}"},
            )
        return json_response(
            200, self.explain_document(job_id, decisions)
        )

    def explain_document(self, job_id: str, decisions: list[dict]) -> dict:
        """The ``/explain/<id>`` body; subclasses may enrich it."""
        return {
            "job_id": job_id,
            "count": len(decisions),
            "decisions": decisions,
        }

    def _healthz(self) -> Response:
        body, code = self.render_health()
        return code, body, JSON

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "IntrospectionServer":
        self._started_at = time.time()
        self._stopping.clear()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-introspection",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        # unblock SSE streamers first so their handler threads exit
        # their wait loops instead of holding sockets open
        self._stopping.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "IntrospectionServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # endpoint bodies (also the library/test surface; no HTTP needed)
    # ------------------------------------------------------------------
    def render_metrics(self) -> str:
        if self.registry is None:
            return "# no metrics registry attached\n"
        return render_prometheus(self.registry)

    def render_health(self) -> tuple[str, int]:
        now = time.time()
        snapshot = self.publisher.snapshot
        if snapshot is None:
            phase = "idle"
            last_event_age = None
        else:
            phase = "finished" if snapshot.finished else "running"
            last_event_age = max(0.0, now - snapshot.wall_time)
        doc = {
            "status": "ok",
            "phase": phase,
            "uptime_s": round(now - self._started_at, 6),
            "last_event_age_s": last_event_age,
            "events_seen": snapshot.events_seen if snapshot else 0,
        }
        return json.dumps(doc), 200

    def render_state(self) -> str:
        snapshot = self.publisher.snapshot
        if snapshot is None:
            return json.dumps({"phase": "idle", "snapshot": None})
        return json.dumps(snapshot.to_dict())

    def render_alerts(self) -> str:
        if self.watchdog is None:
            return json.dumps({"enabled": False, "active": [], "fired": []})
        return json.dumps(self.watchdog.published_state())

    def render_timeseries(self) -> str:
        if self.timeseries is None:
            return json.dumps({"enabled": False, "cluster": {},
                               "machines": {}})
        return json.dumps(self.timeseries.document())

    def render_cluster(self) -> str:
        if self.timeseries is None:
            return json.dumps({"enabled": False, "machines": {}})
        return json.dumps(self.timeseries.cluster_document())

    def render_decisions(self) -> str:
        recorder = self.recorder
        if recorder is None:
            return json.dumps(
                {"enabled": False, "recorded": 0, "dropped": 0,
                 "decisions": []}
            )
        counts = recorder.counts()
        return json.dumps(
            {
                "enabled": True,
                "recorded": counts["recorded"],
                "dropped": counts["dropped"],
                "last_seq": recorder.last_seq,
                "decisions": recorder.decisions(),
            }
        )

    # ------------------------------------------------------------------
    # the SSE stream (runs on the per-connection handler thread)
    # ------------------------------------------------------------------
    #: how long one wait-for-events cycle blocks before re-checking the
    #: stopping flag (bounds shutdown latency for idle streams)
    SSE_WAIT_S = 0.25

    #: idle gap after which the stream emits a ``: keepalive`` comment
    #: frame (SSE comments are ignored by clients but keep proxies and
    #: socket timeouts from reaping a quiet connection); override on
    #: the instance to tune, <= 0 disables
    SSE_KEEPALIVE_S = 15.0

    def _stream_events(self, handler) -> None:
        """``GET /events``: push recorder entries as they arrive.

        Frames follow the SSE protocol: ``id:`` carries the record's
        ring sequence number, ``event:`` its kind (``decision`` /
        ``job`` / ``round``) and ``data:`` the JSON line — the *same*
        serialised string a ``--decisions-out`` journal holds, so
        streamed decisions byte-match journaled records.  A client
        reconnecting with a ``Last-Event-ID`` header resumes from the
        ring without duplicates (entries already evicted are gone —
        ``/decisions`` reports the drop counter).  Between data frames
        an idle stream heartbeats with ``: keepalive`` comments every
        :attr:`SSE_KEEPALIVE_S` seconds.
        """
        recorder = self.recorder
        if recorder is None:
            handler._send(
                *json_response(404, {"error": "no decision recorder attached"})
            )
            return
        try:
            cursor = int(handler.headers.get("Last-Event-ID") or 0)
        except ValueError:
            cursor = 0
        handler.send_response(200)
        handler.send_header("Content-Type", "text/event-stream")
        handler.send_header("Cache-Control", "no-cache")
        handler.send_header("Connection", "close")
        handler.end_headers()
        handler.close_connection = True
        wfile = handler.wfile
        try:
            wfile.write(b": stream open\n\n")
            wfile.flush()
            last_write = time.monotonic()
            while not self._stopping.is_set():
                entries = recorder.entries_after(cursor)
                for seq, kind, line in entries:
                    wfile.write(
                        f"id: {seq}\nevent: {kind}\ndata: {line}\n\n".encode()
                    )
                    cursor = seq
                if entries:
                    wfile.flush()
                    last_write = time.monotonic()
                else:
                    recorder.wait_beyond(cursor, self.SSE_WAIT_S)
                    keepalive = self.SSE_KEEPALIVE_S
                    if (
                        keepalive > 0
                        and time.monotonic() - last_write >= keepalive
                    ):
                        wfile.write(b": keepalive\n\n")
                        wfile.flush()
                        last_write = time.monotonic()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away: normal stream teardown
