"""Decision provenance: the scheduler's bounded flight recorder.

The scheduler pipeline (Algorithm 1) is a chain of judgments — filter
hosts, DRB-map, score with the utility function, enforce or postpone —
and the rest of the obs stack records *when* each phase ran but not
*why* it chose what it chose.  :class:`DecisionRecorder` captures one
schema-versioned record per scheduling decision:

* candidate pool sizes and prune reasons from ``filter_hosts`` and the
  scheduler's O(1) capacity pruning (see :data:`PRUNE_REASONS`;
  includes the top-k candidate prefilter's skip tally);
* memo hit/miss provenance from ``PlacementEngine.propose``;
* the per-term utility breakdown (communication cost, interference,
  fragmentation, each with its normalisation bounds and weighted
  contribution) from :func:`repro.core.utility.utility_breakdown`;
* the enforce/postpone/no-fit verdict with the SLO-check inputs from
  ``TopoAwareScheduler._acceptable`` (which predicate failed, and any
  anti-starvation override).

It is also a :class:`~repro.sim.hooks.SimObserver`: job-state-change
events (arrival, placement, finish, failure requeue) and round
boundaries are recorded alongside decisions so a Server-Sent-Events
client gets a live feed without polling ``/jobs``.

Tap-only by construction: the recorder only ever *receives* data the
hot path already computed (the provenance dicts it is handed are built
solely when a recorder is attached), so results are bit-identical with
or without it — pinned by the fast-path A/B equivalence tests — and
the per-decision cost is pinned below 3 % of a bare Scenario 1 run by
``benchmarks/test_obs_overhead.py``.

Storage is a bounded ring of entries ``[seq, kind, payload, line]``.
The write side captures only a tuple of references (~1 µs: the hot
path must stay under 3 % of a bare run); the record dict and its JSON
line are materialised lazily on first read and cached back into the
entry, so the ``data:`` payload an SSE client streams is the *same
string object* as the journaled ``--decisions-out`` record with the
same ``seq`` — byte-match by construction.  Deferral is safe because
every reference captured is frozen at decision time: the provenance
and SLO dicts are built fresh per decision and never touched again by
the scheduler, ``PlacementSolution`` is a frozen dataclass, and the
engine's topology/parameters (all ``utility_breakdown`` reads) are
static for the run.  Overflow evicts the oldest entry and counts
evicted decisions in ``dropped_total`` (surfaced as the
``repro_decisions_dropped_total`` metric family) so provenance loss is
visible rather than silent.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Iterable

from repro.core.utility import utility_breakdown
from repro.obs.io import open_text
from repro.sim.hooks import BaseObserver

#: version stamped on every record ("schema" field)
PROVENANCE_SCHEMA_VERSION = 1

#: verdicts a decision record may carry; ``"evict"`` marks a
#: preemption/migration decision — the record's ``evict`` dict carries
#: the utility-delta justification (victim, penalty, net gain)
DECISION_VERDICTS = ("placed", "postponed", "no-fit", "evict")

#: prune reasons a decision's candidate-pool report may tally, i.e.
#: the keys of ``pools["pruned"]``.  ``"prefilter"`` counts
#: capacity-eligible hosts the top-k candidate prefilter never probed
#: (skipped by the capacity-dominance argument, not by a constraint
#: check); the others count hosts a constraint actively rejected.
#: When the prefilter ran, the report also carries a ``"prefilter"``
#: sub-dict (``k`` / ``considered`` / ``pruned``) so ``repro explain``
#: can show why hosts were excluded from DRB evaluation.
PRUNE_REASONS = (
    "free-gpus",
    "bus-bandwidth",
    "anti-collocation",
    "prefilter",
)

#: fields every decision-kind record must carry (reader validation)
_DECISION_REQUIRED = ("seq", "round", "t", "scheduler", "job_id", "verdict")


class DecisionRecorder(BaseObserver):
    """Bounded flight recorder for scheduler decisions + job events.

    ``ring_size`` bounds the replay buffer (oldest entries evicted);
    ``journal=True`` additionally keeps every *decision* line unbounded
    for ``--decisions-out`` export; ``registry`` (optional) registers
    the ``repro_decisions_recorded_total`` /
    ``repro_decisions_dropped_total`` counter families.

    Thread model: single writer — all writes happen on the
    simulation/loop thread (the only place observers run), and every
    container operation on the write path is atomic under the GIL, so
    the hot path takes no lock.  SSE handler threads snapshot the ring
    with ``list()`` and only block (in :meth:`wait_beyond`) on the
    condition variable; the writer touches it solely when a waiter is
    registered.
    """

    #: duck-typed flag the simulation kernel looks for when deciding
    #: whether to thread a recorder through the SchedulingContext
    wants_decision_provenance = True

    def __init__(
        self,
        *,
        ring_size: int = 4096,
        journal: bool = False,
        registry=None,
        scheduler: str = "",
    ) -> None:
        if ring_size < 1:
            raise ValueError("ring_size must be >= 1")
        self.ring_size = ring_size
        self.scheduler = scheduler
        #: ring entries are mutable ``[seq, kind, payload, line]`` lists;
        #: ``line`` starts as None and caches the JSON on first read
        self._ring: deque[list] = deque()
        self._cond = threading.Condition()
        self._waiters = 0
        self._seq = 0
        self._round = 0
        self.recorded_total = 0
        self.dropped_total = 0
        self._journal: list[list] | None = [] if journal else None
        self._recorded_ctr = None
        self._dropped_ctr = None
        if registry is not None:
            self._recorded_ctr = registry.counter(
                "repro_decisions_recorded_total",
                "Scheduling decisions captured by the provenance recorder",
                ("scheduler",),
            )
            self._dropped_ctr = registry.counter(
                "repro_decisions_dropped_total",
                "Decision records evicted from the provenance ring buffer",
                ("scheduler",),
            )

    # ------------------------------------------------------------------
    # the write side (simulation/loop thread only)
    # ------------------------------------------------------------------
    def _append(self, kind: str, payload: tuple) -> None:
        # single-writer hot path: no lock — every container operation
        # here is atomic under the GIL, readers only snapshot.  The
        # condition variable is touched solely when an SSE reader is
        # parked in wait_beyond (a missed-registration race costs that
        # reader one wait timeout, nothing more).
        self._seq += 1
        ring = self._ring
        ring.append([self._seq, kind, payload, None])
        if len(ring) > self.ring_size:
            old = ring.popleft()
            if old[1] == "decision":
                self.dropped_total += 1
                if self._dropped_ctr is not None:
                    self._dropped_ctr.inc(scheduler=self.scheduler)
        if kind == "decision":
            self.recorded_total += 1
            if self._recorded_ctr is not None:
                self._recorded_ctr.inc(scheduler=self.scheduler)
            if self._journal is not None:
                self._journal.append(ring[-1])
        elif (kind == "job" and self._journal is not None
                and len(payload) > 6 and payload[6] is not None):
            # evictions are decisions too: the job-kind record carrying
            # an evict_reason (operator /evict, policy preempt/migrate)
            # belongs in the durable journal, not just the SSE ring
            self._journal.append(ring[-1])
        if self._waiters:
            with self._cond:
                self._cond.notify_all()

    def decision(
        self,
        *,
        t: float,
        scheduler: str,
        job,
        queued: int,
        verdict: str,
        reason: str | None = None,
        solution=None,
        engine=None,
        propose: dict | None = None,
        slo: dict | None = None,
        postponements: int = 0,
        capacity: dict | None = None,
        evict: dict | None = None,
    ) -> None:
        """Record one scheduling decision.

        ``propose`` is the provenance dict ``PlacementEngine.propose``
        filled (memo hit/miss, candidate pools, per-pool candidates);
        ``slo`` is the detail dict ``_acceptable`` filled (predicate
        inputs and any anti-starvation override); ``capacity`` carries
        the O(1) pruning inputs when the job never reached the engine;
        ``evict`` carries the preemption/migration justification
        (victim id, both utilities, migration penalty, net gain) for
        ``verdict="evict"`` records.

        Hot-path cost is one tuple capture plus a ring append; the
        record dict (including the utility breakdown) and its JSON
        line are built lazily on first read.  Callers must therefore
        hand over dicts they will not mutate afterwards — the
        scheduler builds ``propose``/``slo``/``capacity`` fresh per
        decision, which is what makes the deferral sound.
        """
        if verdict not in DECISION_VERDICTS:
            raise ValueError(f"unknown verdict {verdict!r}")
        if not self.scheduler:
            self.scheduler = scheduler
        self._append(
            "decision",
            (
                self._round,
                t,
                scheduler,
                job.job_id,
                job.num_gpus,
                queued,
                verdict,
                reason,
                propose,
                slo,
                postponements,
                capacity,
                solution,
                engine,
                evict,
            ),
        )

    # ------------------------------------------------------------------
    # SimObserver hooks: job-state-change + round-boundary events
    # ------------------------------------------------------------------
    def on_arrival(self, t, job):
        self._append("job", (t, job.job_id, "QUEUED", None, None, False))

    def on_place(self, t, job, solution, solo_exec_time, postponements):
        self._append(
            "job", (t, job.job_id, "RUNNING", solution, postponements, False)
        )

    def on_finish(self, t, job, gpus):
        self._append("job", (t, job.job_id, "FINISHED", None, None, False))

    def on_requeue(self, t, job):
        self._append("job", (t, job.job_id, "QUEUED", None, None, True))

    def on_evict(self, t, job, gpus, reason):
        # cancel is terminal; preempt/migrate put the job back in play
        state = "CANCELLED" if reason == "cancel" else "QUEUED"
        self._append("job", (t, job.job_id, state, None, None, False, reason))

    def on_decision_round(self, t, placed, queued, elapsed_s):
        self._append("round", (self._round, t, len(placed), queued))
        self._round += 1

    # ------------------------------------------------------------------
    # lazy materialisation (read threads; cached back into the entry)
    # ------------------------------------------------------------------
    def _line(self, entry: list) -> str:
        line = entry[3]
        if line is None:
            # a racing reader builds the same deterministic record, so
            # last-write-wins caching needs no lock
            line = json.dumps(self._build(entry), sort_keys=False)
            entry[3] = line
        return line

    def _build(self, entry: list) -> dict:
        seq, kind, payload = entry[0], entry[1], entry[2]
        if kind == "decision":
            (
                round_no,
                t,
                scheduler,
                job_id,
                num_gpus,
                queued,
                verdict,
                reason,
                propose,
                slo,
                postponements,
                capacity,
                solution,
                engine,
                evict,
            ) = payload
            propose = propose or {}
            record = {
                "schema": PROVENANCE_SCHEMA_VERSION,
                "seq": seq,
                "kind": "decision",
                "round": round_no,
                "t": t,
                "scheduler": scheduler,
                "job_id": job_id,
                "num_gpus": num_gpus,
                "queued": queued,
                "verdict": verdict,
                "reason": reason,
                "memo": propose.get("memo"),
                "pools": propose.get("pools"),
                "candidates": propose.get("candidates"),
                "capacity": capacity,
                "utility": None,
                "slo": slo,
                "gpus": None,
                "p2p": None,
                "postponements": postponements,
            }
            if evict is not None:
                record["evict"] = evict
            if solution is not None:
                record["gpus"] = sorted(solution.gpus)
                record["p2p"] = solution.p2p
                if engine is not None:
                    record["utility"] = utility_breakdown(
                        engine.topo,
                        len(solution.gpus),
                        solution.metrics,
                        engine.params,
                    )
            return record
        if kind == "job":
            t, job_id, state, solution, postponements, restart = payload[:6]
            evict_reason = payload[6] if len(payload) > 6 else None
            record = {
                "schema": PROVENANCE_SCHEMA_VERSION,
                "seq": seq,
                "kind": "job",
                "t": t,
                "job_id": job_id,
                "state": state,
            }
            if solution is not None:
                record["gpus"] = sorted(solution.gpus)
                record["utility"] = solution.utility
                record["postponements"] = postponements
            if restart:
                record["restart"] = True
            if evict_reason is not None:
                record["evict_reason"] = evict_reason
            return record
        round_no, t, n_placed, queued = payload
        return {
            "schema": PROVENANCE_SCHEMA_VERSION,
            "seq": seq,
            "kind": "round",
            "round": round_no,
            "t": t,
            "placed": n_placed,
            "queued": queued,
        }

    # ------------------------------------------------------------------
    # the read side (HTTP/SSE threads, CLI, tests)
    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        return self._seq

    def counts(self) -> dict:
        return {"recorded": self.recorded_total, "dropped": self.dropped_total}

    @property
    def journal(self) -> list[str] | None:
        """The kept decision lines (``None`` unless ``journal=True``)."""
        if self._journal is None:
            return None
        return [self._line(e) for e in list(self._journal)]

    def entries_after(self, cursor: int) -> list[tuple[int, str, str]]:
        """``(seq, kind, line)`` ring entries with ``seq > cursor``
        (the SSE replay read).  ``list(deque)`` is one C-level call,
        so the snapshot is consistent without taking a lock."""
        return [
            (e[0], e[1], self._line(e))
            for e in list(self._ring)
            if e[0] > cursor
        ]

    def wait_beyond(self, cursor: int, timeout: float) -> bool:
        """Block until an entry beyond ``cursor`` exists (or timeout)."""
        if self._seq > cursor:
            return True
        with self._cond:
            self._waiters += 1
            try:
                if self._seq > cursor:
                    return True
                return self._cond.wait(timeout)
            finally:
                self._waiters -= 1

    def decisions(self) -> list[dict]:
        """Decision records currently in the ring, oldest first (fresh
        parsed copies — callers may mutate them freely)."""
        return [
            json.loads(self._line(e))
            for e in list(self._ring)
            if e[1] == "decision"
        ]

    def for_job(self, job_id: str) -> list[dict]:
        """The decision chain for one job (journal if kept, else ring)."""
        if self._journal is not None:
            entries = list(self._journal)
        else:
            entries = [e for e in list(self._ring) if e[1] == "decision"]
        records = (json.loads(self._line(e)) for e in entries)
        return [r for r in records if r.get("job_id") == job_id]

    def write_journal(self, path: Path | str) -> Path:
        """Write the kept decision journal as JSONL (gzip for ``.gz``)."""
        if self._journal is None:
            raise ValueError("recorder was built without journal=True")
        path = Path(path)
        lines = [self._line(e) for e in list(self._journal)]
        with open_text(path, "w") as fp:
            for line in lines:
                fp.write(line + "\n")
        return path


# ---------------------------------------------------------------------------
# reading journals back (the `repro explain` loader)
# ---------------------------------------------------------------------------

def validate_decision(record: dict) -> dict:
    """Schema-check one provenance record; returns it unchanged."""
    if record.get("schema") != PROVENANCE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported provenance schema {record.get('schema')!r}"
        )
    kind = record.get("kind")
    if kind == "decision":
        for field in _DECISION_REQUIRED:
            if field not in record:
                raise ValueError(f"decision record missing {field!r}")
        if record["verdict"] not in DECISION_VERDICTS:
            raise ValueError(f"unknown verdict {record['verdict']!r}")
    elif kind not in ("job", "round"):
        raise ValueError(f"unknown record kind {kind!r}")
    return record


def read_decisions(path: Path | str) -> list[dict]:
    """Load a ``--decisions-out`` journal (``.jsonl`` or ``.jsonl.gz``)."""
    records: list[dict] = []
    with open_text(path) as fp:
        for lineno, line in enumerate(fp, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from None
            try:
                records.append(validate_decision(record))
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
    return records


def decision_records(records: Iterable[dict]) -> list[dict]:
    """Filter a record stream down to decision-kind records."""
    return [r for r in records if r.get("kind") == "decision"]
