"""Labelled metric instruments and the registry that owns them.

A deliberately small, dependency-free re-implementation of the
Prometheus client-library data model (the container image bakes no
``prometheus_client``):

* :class:`Counter` — monotonically increasing totals;
* :class:`Gauge` — instantaneous values that move both ways;
* :class:`Histogram` — cumulative-bucket distributions with ``_sum``
  and ``_count`` series, the shape scrape-side tooling expects;
* :class:`MetricsRegistry` — the namespace instruments register into
  and exporters (:mod:`repro.obs.export`) walk.

Instruments are cheap to update (a dict lookup + float add) so the
:class:`~repro.obs.telemetry.TelemetryObserver` can drive them from
every simulation event without perturbing the run.  Label values are
free-form strings; each distinct label combination materialises one
time series, exactly like the Prometheus exposition model.
"""

from __future__ import annotations

import math
import re
from typing import Iterable, Mapping, Sequence

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default latency buckets (seconds), tuned for scheduler decisions
#: that range from microseconds (greedy policies, empty queues) to the
#: paper's ~3 s topology-aware evaluations.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _check_labelnames(labelnames: Sequence[str]) -> tuple[str, ...]:
    names = tuple(labelnames)
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names {names}")
    for label in names:
        if not _LABEL_RE.match(label) or label.startswith("__"):
            raise ValueError(f"invalid label name {label!r}")
    return names


class _Instrument:
    """Shared machinery: name, help text, per-label-combination series."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames = _check_labelnames(labelnames)
        # label-value tuple -> series state (float or bucket list)
        self._series: dict[tuple[str, ...], object] = {}

    def _key(self, labels: Mapping[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: got labels {sorted(labels)}, "
                f"declared {sorted(self.labelnames)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def samples(self) -> Iterable[tuple[str, tuple[tuple[str, str], ...], float]]:
        """Yield ``(series_name, ((label, value), ...), value)`` rows."""
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonic total; by convention the name ends in ``_total``."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters cannot decrease ({amount})")
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return float(self._series.get(self._key(labels), 0.0))

    def samples(self):
        for key in sorted(self._series):
            yield self.name, tuple(zip(self.labelnames, key)), self._series[key]


class Gauge(_Instrument):
    """Instantaneous value (queue depth, busy GPUs, utilization)."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        self._series[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        return float(self._series.get(self._key(labels), 0.0))

    def samples(self):
        for key in sorted(self._series):
            yield self.name, tuple(zip(self.labelnames, key)), self._series[key]


class _HistogramSeries:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Cumulative-bucket distribution (Prometheus histogram semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"{name}: need at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"{name}: bucket bounds must be strictly increasing")
        if math.isinf(bounds[-1]):
            bounds = bounds[:-1]  # +Inf is implicit
        self.buckets = bounds

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                series.bucket_counts[i] += 1
        series.sum += value
        series.count += 1

    def count(self, **labels: str) -> int:
        series = self._series.get(self._key(labels))
        return series.count if series is not None else 0

    def quantile(self, q: float, **labels: str) -> float:
        """Bucket-based quantile estimate (Prometheus semantics).

        Finds the first bucket whose cumulative count covers the
        ``q``-th observation and linearly interpolates within it.  Like
        ``histogram_quantile``, the first bucket's lower edge is taken
        as 0 (or its bound, when that bound is negative), and targets
        falling in the implicit ``+Inf`` bucket clamp to the highest
        finite bound.  Returns ``nan`` for an empty series so callers
        (the SLO watchdog) can treat "no data yet" as "no violation".
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"{self.name}: quantile {q} outside [0, 1]")
        series = self._series.get(self._key(labels))
        if series is None or series.count == 0:
            return math.nan
        target = q * series.count
        for i, bound in enumerate(self.buckets):
            cum = series.bucket_counts[i]
            if cum >= target:
                lower_cum = series.bucket_counts[i - 1] if i > 0 else 0
                if cum == lower_cum:
                    # target rounds onto the bucket edge (q == running
                    # fraction exactly); the value is at the lower edge
                    continue
                lower = self.buckets[i - 1] if i > 0 else min(0.0, bound)
                return lower + (bound - lower) * (target - lower_cum) / (
                    cum - lower_cum
                )
        return self.buckets[-1]

    def sum(self, **labels: str) -> float:
        series = self._series.get(self._key(labels))
        return series.sum if series is not None else 0.0

    def samples(self):
        for key in sorted(self._series):
            series = self._series[key]
            base = tuple(zip(self.labelnames, key))
            # bucket_counts are maintained cumulatively (observe() adds
            # to every bucket whose bound covers the value)
            for bound, in_bucket in zip(self.buckets, series.bucket_counts):
                yield (
                    f"{self.name}_bucket",
                    base + (("le", _format_bound(bound)),),
                    float(in_bucket),
                )
            yield f"{self.name}_bucket", base + (("le", "+Inf"),), float(series.count)
            yield f"{self.name}_sum", base, series.sum
            yield f"{self.name}_count", base, float(series.count)


def _format_bound(bound: float) -> str:
    """Render a bucket bound the way Prometheus clients do (no trailing
    noise: 0.5 not 0.50000)."""
    if bound == int(bound):
        return f"{bound:.1f}"
    return repr(bound)


class MetricsRegistry:
    """Namespace of instruments; the unit exporters serialise.

    ``counter``/``gauge``/``histogram`` create-or-get: asking twice for
    the same name returns the same instrument, but redeclaring it with
    a different type or label set is an error (mirrors the Prometheus
    client's duplicate-registration guard).
    """

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}

    def _register(self, cls, name: str, help: str, labelnames, **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}{existing.labelnames}"
                )
            return existing
        instrument = cls(name, help, labelnames, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, labelnames, buckets=buckets)

    def get(self, name: str) -> _Instrument:
        return self._instruments[name]

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def collect(self) -> list[_Instrument]:
        """All instruments in registration order (exporter input)."""
        return list(self._instruments.values())
