"""Span-based tracing for the scheduler's hot decision path.

Trace points live inside :mod:`repro.schedulers.topo` (per-job DRB
invocation), :mod:`repro.core.drb` (recursion shape),
:mod:`repro.core.fm` (passes / cut) and :mod:`repro.core.utility`
(Eq. 1–5 term breakdown).  They are written as::

    with span("drb.map", job_id=..., tasks=...) as sp:
        ...
        sp.set(extra_attr=...)

``span()`` consults the module-level :data:`ACTIVE` recorder.  When no
recorder is installed — the default — it returns a shared no-op span
(:data:`NULL_SPAN`), so the uninstrumented path costs one global read,
one ``is None`` test and a discarded kwargs dict; the overhead
benchmark (``benchmarks/test_obs_overhead.py``) pins this below 3 % of
a Scenario 1 run.  Tracing therefore never perturbs simulation
results; the golden-equivalence tests run with and without a recorder.

Spans nest via an explicit stack in the recorder (parent ids), carry a
wall-clock start offset and duration from an injectable ``clock``
callable, and serialise to JSONL (one span object per line, schema
versioned like :mod:`repro.obs.events`).  ``summarize`` renders the
per-job decision timeline the ``repro trace summarize`` subcommand
prints.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Iterable, Sequence

TRACE_SCHEMA_VERSION = 1


class Span:
    """One recorded span: name, timing, attributes, tree links."""

    __slots__ = ("name", "span_id", "parent_id", "start_s", "dur_s", "attrs",
                 "_recorder")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        start_s: float,
        attrs: dict,
        recorder: "SpanRecorder | None" = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.dur_s = 0.0
        self.attrs = attrs
        self._recorder = recorder

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._recorder is not None:
            self._recorder._close(self)
        return False

    def to_dict(self) -> dict:
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "kind": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "dur_s": self.dur_s,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class SpanRecorder:
    """Collects a span tree; one instance per traced run.

    ``clock`` is any monotonic float-returning callable
    (``time.perf_counter`` by default; tests inject deterministic
    counters).  Start offsets are relative to recorder creation so
    serialised traces are small and comparable.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self._t0 = clock()
        self.spans: list[Span] = []
        self._stack: list[int] = []
        self._next_id = 1

    def span(self, name: str, **attrs) -> Span:
        span = Span(
            name,
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else None,
            start_s=self.clock() - self._t0,
            attrs=attrs,
            recorder=self,
        )
        self._next_id += 1
        self._stack.append(span.span_id)
        self.spans.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.dur_s = self.clock() - self._t0 - span.start_s
        # tolerate mis-nested exits: pop back to this span
        while self._stack:
            top = self._stack.pop()
            if top == span.span_id:
                break

    # ------------------------------------------------------------------
    def dump(self, fp) -> int:
        for span in self.spans:
            fp.write(json.dumps(span.to_dict(), sort_keys=False) + "\n")
        return len(self.spans)

    def write(self, path: Path | str) -> Path:
        path = Path(path)
        with path.open("w") as fp:
            self.dump(fp)
        return path


# ---------------------------------------------------------------------------
# module-level activation (the hot-path seam)
# ---------------------------------------------------------------------------

#: the currently installed recorder, or None (tracing disabled)
ACTIVE: SpanRecorder | None = None


def span(name: str, **attrs) -> Span | _NullSpan:
    """Open a span on the active recorder, or a no-op when disabled."""
    recorder = ACTIVE
    if recorder is None:
        return NULL_SPAN
    return recorder.span(name, **attrs)


def install(recorder: SpanRecorder | None) -> None:
    """Install (or, with ``None``, remove) the process-wide recorder."""
    global ACTIVE
    ACTIVE = recorder


class recording:
    """Context manager: trace everything inside the block.

    ::

        with recording() as rec:
            sim.run()
        rec.write("trace.jsonl")
    """

    def __init__(self, recorder: SpanRecorder | None = None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.recorder = recorder or SpanRecorder(clock=clock)
        self._previous: SpanRecorder | None = None

    def __enter__(self) -> SpanRecorder:
        self._previous = ACTIVE
        install(self.recorder)
        return self.recorder

    def __exit__(self, exc_type, exc, tb) -> bool:
        install(self._previous)
        return False


# ---------------------------------------------------------------------------
# reading + summarising
# ---------------------------------------------------------------------------

def read_trace(path: Path | str) -> list[dict]:
    """Load span dicts from a JSONL trace file, validating the schema.

    ``.jsonl.gz`` files are decompressed transparently.
    """
    from repro.obs.io import open_text

    spans: list[dict] = []
    with open_text(Path(path)) as fp:
        for lineno, line in enumerate(fp, start=1):
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from None
            if obj.get("schema") != TRACE_SCHEMA_VERSION:
                raise ValueError(
                    f"{path}:{lineno}: unsupported trace schema "
                    f"{obj.get('schema')!r}"
                )
            for field in ("span_id", "name", "start_s", "dur_s", "attrs"):
                if field not in obj:
                    raise ValueError(f"{path}:{lineno}: span missing {field!r}")
            spans.append(obj)
    return spans


def _children_index(spans: Sequence[dict]) -> dict[int | None, list[dict]]:
    children: dict[int | None, list[dict]] = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s["start_s"], s["span_id"]))
    return children


def _fmt_attrs(attrs: dict, skip: tuple[str, ...] = ()) -> str:
    parts = []
    for key in sorted(attrs):
        if key in skip:
            continue
        value = attrs[key]
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def _render_tree(span: dict, children: dict, lines: list[str], depth: int) -> None:
    indent = "  " * depth
    lines.append(
        f"{indent}{span['name']:<{max(2, 24 - 2 * depth)}} "
        f"{span['dur_s'] * 1e3:>9.3f} ms  "
        f"{_fmt_attrs(span['attrs'], skip=('job_id', 'scheduler'))}".rstrip()
    )
    for child in children.get(span["span_id"], ()):
        _render_tree(child, children, lines, depth + 1)


def summarize(spans: Sequence[dict], job_id: str | None = None) -> str:
    """Per-job decision timeline: the ``repro trace summarize`` body.

    Groups the scheduler's per-job root spans (``sched.propose``) by
    job, prints each decision round's span tree with durations, the
    chosen utility and outcome, and a per-job rollup of FM invocations
    and cut weights.
    """
    roots = [s for s in spans if s["name"] == "sched.propose"]
    if job_id is not None:
        roots = [s for s in roots if s["attrs"].get("job_id") == job_id]
    if not roots:
        scope = f" for job {job_id!r}" if job_id else ""
        return f"(no scheduler decision spans{scope} in trace)"
    children = _children_index(spans)

    def descendants(span: dict) -> Iterable[dict]:
        for child in children.get(span["span_id"], ()):
            yield child
            yield from descendants(child)

    by_job: dict[str, list[dict]] = {}
    for root in roots:
        by_job.setdefault(root["attrs"].get("job_id", "?"), []).append(root)

    lines: list[str] = []
    for jid in sorted(by_job):
        rounds = by_job[jid]
        scheduler = rounds[0]["attrs"].get("scheduler", "")
        header = f"=== {jid}" + (f"  [{scheduler}]" if scheduler else "")
        lines.append(header)
        fm_cuts: list[float] = []
        utilities: list[float] = []
        for i, root in enumerate(rounds):
            lines.append(f"  decision round {i + 1}/{len(rounds)} "
                         f"at +{root['start_s']:.6f}s:")
            sub: list[str] = []
            _render_tree(root, children, sub, depth=2)
            lines.extend(sub)
            for desc in descendants(root):
                if desc["name"] == "fm.bipartition" and "cut" in desc["attrs"]:
                    fm_cuts.append(desc["attrs"]["cut"])
            if "utility" in root["attrs"]:
                utilities.append(root["attrs"]["utility"])
        rollup = [f"rounds={len(rounds)}", f"fm_calls={len(fm_cuts)}"]
        if fm_cuts:
            rollup.append(f"fm_cut_min={min(fm_cuts):.4g}")
            rollup.append(f"fm_cut_max={max(fm_cuts):.4g}")
        if utilities:
            rollup.append(f"chosen_utility={utilities[-1]:.4g}")
        outcome = rounds[-1]["attrs"].get("outcome")
        if outcome:
            rollup.append(f"final_outcome={outcome}")
        lines.append("  rollup: " + " ".join(rollup))
        lines.append("")
    return "\n".join(lines).rstrip()
