"""Observability layer: metrics, structured events, decision tracing.

The production-facing telemetry the ROADMAP's north star requires and
the evaluation used to recover post-hoc from ``JobRecord`` lists:

* :mod:`repro.obs.metrics` — labelled Counter/Gauge/Histogram
  instruments in a :class:`MetricsRegistry`;
* :mod:`repro.obs.export` — Prometheus text-format and JSON
  exposition (plus a strict parser used for validation);
* :mod:`repro.obs.events` — versioned JSONL event log covering every
  :class:`~repro.sim.hooks.SimObserver` lifecycle event and scheduler
  internals;
* :mod:`repro.obs.trace` — span tracer with no-op-by-default trace
  points inside the DRB/FM/utility hot path;
* :mod:`repro.obs.telemetry` — :class:`TelemetryObserver`, the bridge
  from simulation hooks into the registry and event log.

Everything here is tap-only: attaching telemetry must never change
simulation results (enforced by the golden-equivalence tests) and the
disabled trace points stay within 3 % of the uninstrumented runtime
(enforced by ``benchmarks/test_obs_overhead.py``).
"""

from repro.obs.events import (
    EVENT_TYPES,
    SCHEMA_VERSION,
    EventLog,
    iter_events,
    read_events,
    validate_event,
    validate_events,
)
from repro.obs.export import (
    parse_prometheus,
    render_json,
    render_prometheus,
    sample_value,
    write_metrics,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NULL_SPAN,
    TRACE_SCHEMA_VERSION,
    SpanRecorder,
    install,
    read_trace,
    recording,
    span,
    summarize,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EVENT_TYPES",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "SCHEMA_VERSION",
    "SpanRecorder",
    "TRACE_SCHEMA_VERSION",
    "TelemetryObserver",
    "install",
    "iter_events",
    "parse_prometheus",
    "read_events",
    "read_trace",
    "recording",
    "render_json",
    "render_prometheus",
    "sample_value",
    "span",
    "summarize",
    "validate_event",
    "validate_events",
    "write_metrics",
]


def __getattr__(name: str):
    # TelemetryObserver pulls in repro.sim.hooks, whose import chain
    # reaches back into repro.core.* — the very modules that import
    # this package for their trace points.  Loading it lazily keeps
    # the hot-path import (repro.obs.trace) cycle-free.
    if name == "TelemetryObserver":
        from repro.obs.telemetry import TelemetryObserver

        return TelemetryObserver
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
