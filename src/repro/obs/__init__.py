"""Observability layer: metrics, structured events, decision tracing.

The production-facing telemetry the ROADMAP's north star requires and
the evaluation used to recover post-hoc from ``JobRecord`` lists:

* :mod:`repro.obs.metrics` — labelled Counter/Gauge/Histogram
  instruments in a :class:`MetricsRegistry`;
* :mod:`repro.obs.export` — Prometheus text-format and JSON
  exposition (plus a strict parser used for validation);
* :mod:`repro.obs.events` — versioned JSONL event log covering every
  :class:`~repro.sim.hooks.SimObserver` lifecycle event and scheduler
  internals;
* :mod:`repro.obs.trace` — span tracer with no-op-by-default trace
  points inside the DRB/FM/utility hot path;
* :mod:`repro.obs.telemetry` — :class:`TelemetryObserver`, the bridge
  from simulation hooks into the registry and event log;
* :mod:`repro.obs.state` — atomically-published immutable
  :class:`RunSnapshot` of the live run;
* :mod:`repro.obs.server` — the ``--serve`` introspection endpoint
  (``/metrics``, ``/healthz``, ``/state``, ``/alerts``);
* :mod:`repro.obs.profile` — Chrome Trace Event (Perfetto) export and
  the per-phase/critical-path profiler;
* :mod:`repro.obs.alerts` — the declarative SLO watchdog (point-in-
  time and windowed rules with explicit NaN policies);
* :mod:`repro.obs.timeseries` — the in-process tiered ring-buffer
  time-series store and its sampling observer (cluster- and per-
  machine series behind ``/timeseries`` and ``/cluster``);
* :mod:`repro.obs.provenance` — the decision flight recorder: one
  schema-versioned "why" record per scheduling decision (candidate
  pools, per-term utility breakdown, SLO verdicts), backing
  ``repro explain``, ``/decisions``, ``/explain/<id>`` and the
  ``/events`` SSE stream;
* :mod:`repro.obs.io` — tiny shared IO helpers (gzip-transparent
  ``open_text``).

Everything here is tap-only: attaching telemetry must never change
simulation results (enforced by the golden-equivalence tests) and the
disabled trace points stay within 3 % of the uninstrumented runtime
(enforced by ``benchmarks/test_obs_overhead.py``).
"""

from repro.obs.events import (
    EVENT_TYPES,
    SCHEMA_VERSION,
    EventLog,
    iter_events,
    read_events,
    validate_event,
    validate_events,
)
from repro.obs.export import (
    parse_prometheus,
    render_json,
    render_prometheus,
    sample_value,
    write_metrics,
)
from repro.obs.io import is_gzip_path, open_text
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import (
    PhaseStats,
    RoundProfile,
    TraceProfile,
    format_profile,
    profile_spans,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.trace import (
    NULL_SPAN,
    TRACE_SCHEMA_VERSION,
    SpanRecorder,
    install,
    read_trace,
    recording,
    span,
    summarize,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_RULES",
    "DecisionRecorder",
    "EVENT_TYPES",
    "EventLog",
    "Gauge",
    "Histogram",
    "IntrospectionServer",
    "MetricsRegistry",
    "NULL_SPAN",
    "PROVENANCE_SCHEMA_VERSION",
    "PhaseStats",
    "RoundProfile",
    "Rule",
    "RunSnapshot",
    "SCHEMA_VERSION",
    "SnapshotObserver",
    "SnapshotPublisher",
    "SpanRecorder",
    "TIMESERIES_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "TelemetryObserver",
    "TieredSeries",
    "TimeSeriesSampler",
    "TimeSeriesStore",
    "TraceProfile",
    "Watchdog",
    "format_profile",
    "install",
    "is_gzip_path",
    "iter_events",
    "load_rules",
    "open_text",
    "parse_prometheus",
    "profile_spans",
    "read_decisions",
    "read_events",
    "read_trace",
    "recording",
    "render_json",
    "render_prometheus",
    "sample_value",
    "span",
    "summarize",
    "to_chrome_trace",
    "validate_event",
    "validate_events",
    "write_chrome_trace",
    "write_metrics",
]

#: lazily-resolved names -> home module.  These all pull in
#: repro.sim.hooks, whose import chain reaches back into repro.core.*
#: — the very modules that import this package for their trace points.
#: Loading them lazily keeps the hot-path import (repro.obs.trace)
#: cycle-free.
_LAZY = {
    "TelemetryObserver": "repro.obs.telemetry",
    "SnapshotObserver": "repro.obs.state",
    "SnapshotPublisher": "repro.obs.state",
    "RunSnapshot": "repro.obs.state",
    "IntrospectionServer": "repro.obs.server",
    "Watchdog": "repro.obs.alerts",
    "Rule": "repro.obs.alerts",
    "DEFAULT_RULES": "repro.obs.alerts",
    "load_rules": "repro.obs.alerts",
    "DecisionRecorder": "repro.obs.provenance",
    "PROVENANCE_SCHEMA_VERSION": "repro.obs.provenance",
    "read_decisions": "repro.obs.provenance",
    "TimeSeriesStore": "repro.obs.timeseries",
    "TimeSeriesSampler": "repro.obs.timeseries",
    "TieredSeries": "repro.obs.timeseries",
    "TIMESERIES_SCHEMA_VERSION": "repro.obs.timeseries",
}


def __getattr__(name: str):
    home = _LAZY.get(name)
    if home is not None:
        import importlib

        return getattr(importlib.import_module(home), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
