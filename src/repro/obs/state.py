"""Live run snapshots for the introspection server.

The simulation runs in one thread; the introspection server
(:mod:`repro.obs.server`) answers HTTP requests from others.  Rather
than locking the mutable :class:`~repro.sim.cluster.ClusterState` —
which would make readers perturb the simulation and break the
bit-identical guarantee — the sim thread periodically *publishes* an
immutable :class:`RunSnapshot` into a :class:`SnapshotPublisher`.
Publishing is a single attribute assignment (atomic under the GIL), so
readers always see either the previous complete snapshot or the next
one, never a half-built state, and the sim thread never blocks on a
reader.

:class:`SnapshotObserver` is the :class:`~repro.sim.hooks.SimObserver`
that builds snapshots.  It is bound to the run by the runner
(``bind_simulation``) so it can read queue depth, per-machine free
GPUs, the allocation epoch and placement-cache counters directly from
the live cluster, and it republishes at every decision-round boundary
— the same cadence Algorithm 1 wakes the scheduler on.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

from repro.sim.hooks import BaseObserver

#: snapshot document version served under ``/state`` (2: job_states
#: table added for service mode; 3: decision_stats — provenance
#: recorder recorded/dropped counters)
STATE_SCHEMA_VERSION = 3


@dataclass(frozen=True)
class RunSnapshot:
    """One immutable point-in-time view of a simulation run.

    Everything the ``/state`` and ``/healthz`` endpoints serve; the
    ``wall_time`` stamp is *observer-side* wall clock (used only for
    liveness ages, never fed back into the simulation).
    """

    scheduler: str = ""
    sim_time: float = 0.0
    wall_time: float = 0.0
    decision_rounds: int = 0
    queue_depth: int = 0
    running_jobs: tuple[str, ...] = ()
    queued_jobs: tuple[str, ...] = ()
    gpus_busy: int = 0
    total_gpus: int = 0
    free_gpus_by_machine: tuple[tuple[str, int], ...] = ()
    allocation_epoch: int = 0
    placement_cache: tuple[tuple[str, float], ...] = ()
    events_seen: int = 0
    finished: bool = False
    makespan: float = 0.0
    #: service-mode job table: (job_id, lifecycle state) pairs from the
    #: daemon's state machine; empty for plain one-shot simulations
    job_states: tuple[tuple[str, str], ...] = ()
    #: provenance-recorder counters ((name, value) pairs: recorded and
    #: dropped decision records); empty without a recorder attached
    decision_stats: tuple[tuple[str, int], ...] = ()

    def to_dict(self) -> dict:
        doc = asdict(self)
        doc["schema"] = STATE_SCHEMA_VERSION
        doc["running_jobs"] = list(self.running_jobs)
        doc["queued_jobs"] = list(self.queued_jobs)
        doc["free_gpus_by_machine"] = dict(self.free_gpus_by_machine)
        doc["placement_cache"] = dict(self.placement_cache)
        doc["job_states"] = dict(self.job_states)
        doc["decision_stats"] = dict(self.decision_stats)
        return doc


class SnapshotPublisher:
    """Single-slot atomic handoff between the sim thread and readers.

    ``publish`` swaps in a complete immutable snapshot; ``snapshot``
    reads whatever was last published (or ``None`` before the run
    starts).  Both are single reference operations — no locks, no
    copies on the read side.
    """

    def __init__(self) -> None:
        self._snapshot: RunSnapshot | None = None

    @property
    def snapshot(self) -> RunSnapshot | None:
        return self._snapshot

    def publish(self, snapshot: RunSnapshot) -> None:
        self._snapshot = snapshot


class SnapshotObserver(BaseObserver):
    """Publish a fresh :class:`RunSnapshot` at decision-round cadence.

    A pure tap: it reads cluster/scheduler state inside the sim thread
    (where every other observer already runs) and only ever *writes*
    the publisher slot.  ``clock`` is the wall-time source for
    liveness stamps and is injectable for deterministic tests.

    Rebuilding a full snapshot costs microseconds, which adds up when
    decision rounds tick far faster than any scraper reads — so
    rebuilds are throttled to one per ``min_publish_interval_s`` of
    wall clock (default 50 ms, i.e. at most ~20 rebuilds/s no matter
    the round rate).  Throttling consults only the observer-side wall
    clock and the publisher slot, never simulation state, so results
    stay bit-identical.  The bind-time and end-of-run snapshots always
    publish.
    """

    def __init__(
        self,
        publisher: SnapshotPublisher | None = None,
        *,
        scheduler: str = "",
        total_gpus: int | None = None,
        clock=time.time,
        min_publish_interval_s: float = 0.05,
        job_states_source=None,
    ) -> None:
        self.publisher = publisher if publisher is not None else SnapshotPublisher()
        self.scheduler = scheduler
        self.total_gpus = total_gpus
        self.clock = clock
        self.min_publish_interval_s = min_publish_interval_s
        #: optional callable returning ((job_id, state), ...) — the
        #: service daemon points this at its state-machine table so
        #: ``/state`` carries the full lifecycle view
        self.job_states_source = job_states_source
        self._last_publish = float("-inf")
        self._events_seen = 0
        self._rounds = 0
        self._cluster = None
        self._sched = None
        self._sim = None

    # ------------------------------------------------------------------
    def bind_simulation(self, sim) -> None:
        """Called by the runner once the Simulator exists."""
        self._cluster = sim.cluster
        self._sched = sim.scheduler
        # the decision recorder is discovered by Simulator.start(),
        # which may run after this bind: keep the sim handle and read
        # the recorder's counters lazily at build time
        self._sim = sim
        if not self.scheduler:
            self.scheduler = sim.scheduler.name
        if self.total_gpus is None:
            self.total_gpus = len(sim.topo.gpus())
        self._publish()

    def _decision_stats(self) -> tuple[tuple[str, int], ...]:
        recorder = getattr(self._sim, "decision_recorder", None)
        if recorder is None:
            return ()
        counts = recorder.counts()
        return (
            ("recorded", counts["recorded"]),
            ("dropped", counts["dropped"]),
        )

    # ------------------------------------------------------------------
    def _build(self, *, finished: bool = False, makespan: float = 0.0) -> RunSnapshot:
        job_states = (
            tuple(self.job_states_source())
            if self.job_states_source is not None
            else ()
        )
        cluster = self._cluster
        if cluster is None:
            return RunSnapshot(
                scheduler=self.scheduler,
                wall_time=self.clock(),
                total_gpus=self.total_gpus or 0,
                events_seen=self._events_seen,
                finished=finished,
                makespan=makespan,
                job_states=job_states,
                decision_stats=self._decision_stats(),
            )
        alloc = cluster.alloc
        free_by_machine = tuple(
            (m, alloc.free_count(m)) for m in sorted(cluster.topo.machines())
        )
        busy = sum(len(run.gpus) for run in cluster.running.values())
        stats = cluster.engine.stats.as_dict()
        queued = (
            tuple(j.job_id for j in self._sched.queued_jobs())
            if self._sched is not None
            else ()
        )
        return RunSnapshot(
            scheduler=self.scheduler,
            sim_time=cluster.now,
            wall_time=self.clock(),
            decision_rounds=self._rounds,
            queue_depth=len(queued),
            running_jobs=tuple(sorted(cluster.running)),
            queued_jobs=queued,
            gpus_busy=busy,
            total_gpus=self.total_gpus or len(cluster.topo.gpus()),
            free_gpus_by_machine=free_by_machine,
            allocation_epoch=alloc.version,
            placement_cache=tuple(sorted(stats.items())),
            events_seen=self._events_seen,
            finished=finished,
            makespan=makespan,
            job_states=job_states,
            decision_stats=self._decision_stats(),
        )

    def _publish(self, **kwargs) -> None:
        self._last_publish = self.clock()
        self.publisher.publish(self._build(**kwargs))

    def publish_now(self) -> None:
        """Force an immediate republish, bypassing the throttle.

        The service daemon calls this when its loop goes idle, so
        ``/state`` always reflects the settled system even when the
        last burst finished inside one throttle window."""
        self._publish()

    # ------------------------------------------------------------------
    # SimObserver hooks: count traffic, republish at round boundaries
    # ------------------------------------------------------------------
    def on_arrival(self, t, job):
        self._events_seen += 1

    def on_place(self, t, job, solution, solo_exec_time, postponements):
        self._events_seen += 1

    def on_finish(self, t, job, gpus):
        self._events_seen += 1

    def on_failure(self, t, machine, victims):
        self._events_seen += 1

    def on_requeue(self, t, job):
        self._events_seen += 1

    def on_decision_round(self, t, placed, queued, elapsed_s):
        self._events_seen += 1
        self._rounds += 1
        if self.clock() - self._last_publish >= self.min_publish_interval_s:
            self._publish()

    # ------------------------------------------------------------------
    def finalize_result(self, result) -> None:
        """Publish the terminal snapshot once the run has a result."""
        self._publish(finished=True, makespan=result.makespan)
