"""Continuous telemetry: an in-process ring-buffer time-series store.

The point-in-time surfaces (``/metrics``, ``/state``) answer "what is
the cluster doing *now*"; this module answers "how did it get there".
A :class:`TimeSeriesStore` holds one :class:`TieredSeries` per signal —
cluster-wide scalars (queue depth, running jobs, busy GPUs,
utilization, Eq. 5 fragmentation) plus three **per-machine** series
(GPU occupancy, fragmentation score, link-sharing load) — and the
:class:`TimeSeriesSampler` observer feeds them at decision-round
cadence from inside the sim/loop thread.

Tiered downsampling keeps a multi-hour soak in bounded memory.  Each
series is three rings:

* **raw** — the last ``capacity`` samples as ``(t, value)`` points;
* **mid** — every ``fanout`` raw samples collapse into one
  ``(t, min, mean, max)`` point (10x compression by default);
* **coarse** — every ``fanout`` mid points collapse again (100x).

Retention math with the defaults (capacity 512, fanout 10): the coarse
tier alone spans ``512 * 100 = 51_200`` samples — at the sampler's
50 ms wall-clock floor that is over 40 minutes of full-rate history
and *hours* at any realistic round rate, in ``3 * 512`` tuples per
series, forever.  Memory never grows with run length.

Thread model (the provenance-ring idiom): the sim/loop thread is the
only writer; ``deque.append`` with a ``maxlen`` is atomic under the
GIL, and HTTP reader threads snapshot with ``list(deque)`` — no locks,
no reader ever perturbs the simulation.  The sampler is a pure tap:
its throttle consults only observer-side wall clock, never simulation
state, so results stay bit-identical with it attached (pinned by the
fast-path A/B equivalence test) and its per-sample cost is pinned
< 3 % by ``benchmarks/test_obs_overhead.py``.
"""

from __future__ import annotations

import time
from collections import deque

from repro.sim.hooks import BaseObserver

#: document version served under ``/timeseries`` and ``/cluster``
TIMESERIES_SCHEMA_VERSION = 1

#: tier names, finest first (also the serving order)
TIERS = ("raw", "mid", "coarse")

#: per-machine series names the sampler maintains
MACHINE_SERIES = ("occupancy", "fragmentation", "link_load")

#: cluster-wide series names the sampler maintains
CLUSTER_SERIES = (
    "queue_depth",
    "running_jobs",
    "gpus_busy",
    "utilization",
    "fragmentation",
)


class TieredSeries:
    """One signal's history: raw ring + 10x and 100x aggregate rings.

    Single-writer: only the sampling thread calls :meth:`append`.
    Readers call :meth:`points` / :attr:`latest`, which touch nothing
    but the deques (snapshot via ``list``, atomic under the GIL).
    """

    __slots__ = ("raw", "mid", "coarse", "_mid_bucket", "_coarse_bucket",
                 "fanout")

    def __init__(self, capacity: int = 512, fanout: int = 10) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.fanout = fanout
        self.raw: deque = deque(maxlen=capacity)
        self.mid: deque = deque(maxlen=capacity)
        self.coarse: deque = deque(maxlen=capacity)
        # writer-only accumulation state for the next aggregate point
        self._mid_bucket: list = []
        self._coarse_bucket: list = []

    def append(self, t: float, value: float) -> None:
        self.raw.append((t, value))
        bucket = self._mid_bucket
        bucket.append(value)
        if len(bucket) >= self.fanout:
            point = (
                t,
                min(bucket),
                sum(bucket) / len(bucket),
                max(bucket),
            )
            self.mid.append(point)
            bucket.clear()
            coarse = self._coarse_bucket
            coarse.append(point)
            if len(coarse) >= self.fanout:
                self.coarse.append((
                    t,
                    min(p[1] for p in coarse),
                    sum(p[2] for p in coarse) / len(coarse),
                    max(p[3] for p in coarse),
                ))
                coarse.clear()

    @property
    def latest(self) -> tuple[float, float] | None:
        """The newest raw ``(t, value)`` point, or ``None`` if empty."""
        try:
            return self.raw[-1]
        except IndexError:
            return None

    def points(self, tier: str = "raw") -> list:
        """Snapshot one tier's ring, oldest first."""
        if tier not in TIERS:
            raise ValueError(f"unknown tier {tier!r} (known: {TIERS})")
        return list(getattr(self, tier))

    def to_dict(self) -> dict:
        """All three tiers as JSON-ready lists of lists."""
        return {tier: [list(p) for p in self.points(tier)] for tier in TIERS}

    def __len__(self) -> int:
        return len(self.raw)


class TimeSeriesStore:
    """All series of one run/daemon, keyed ``(name, machine)``.

    ``machine == ""`` marks a cluster-wide series.  The writer creates
    series lazily on first append; readers iterate a shallow snapshot
    of the key table, so concurrent creation never trips them.
    """

    def __init__(self, capacity: int = 512, fanout: int = 10) -> None:
        self.capacity = capacity
        self.fanout = fanout
        self.samples_taken = 0
        self._series: dict[tuple[str, str], TieredSeries] = {}

    # ------------------------------------------------------------------
    # write side (sampling thread only)
    # ------------------------------------------------------------------
    def series(self, name: str, machine: str = "") -> TieredSeries:
        key = (name, machine)
        existing = self._series.get(key)
        if existing is None:
            existing = TieredSeries(self.capacity, self.fanout)
            self._series[key] = existing
        return existing

    def record(self, t: float, name: str, value: float,
               machine: str = "") -> None:
        self.series(name, machine).append(t, value)

    # ------------------------------------------------------------------
    # read side (any thread)
    # ------------------------------------------------------------------
    def get(self, name: str, machine: str = "") -> TieredSeries | None:
        return self._series.get((name, machine))

    def machines(self) -> list[str]:
        return sorted({m for _, m in list(self._series) if m})

    def document(self) -> dict:
        """The full ``/timeseries`` body: every series, every tier."""
        cluster: dict[str, dict] = {}
        machines: dict[str, dict] = {}
        for (name, machine), series in list(self._series.items()):
            target = cluster if not machine else machines.setdefault(
                machine, {}
            )
            target[name] = series.to_dict()
        return {
            "schema": TIMESERIES_SCHEMA_VERSION,
            "enabled": True,
            "capacity": self.capacity,
            "fanout": self.fanout,
            "samples": self.samples_taken,
            "tiers": list(TIERS),
            "cluster": cluster,
            "machines": machines,
        }

    def cluster_document(self) -> dict:
        """The ``/cluster`` body: latest per-machine heatmap values."""
        machines: dict[str, dict] = {}
        t_latest = 0.0
        for (name, machine), series in list(self._series.items()):
            if not machine:
                continue
            latest = series.latest
            if latest is None:
                continue
            t_latest = max(t_latest, latest[0])
            machines.setdefault(machine, {})[name] = latest[1]
        return {
            "schema": TIMESERIES_SCHEMA_VERSION,
            "enabled": True,
            "t": t_latest,
            "samples": self.samples_taken,
            "machines": {m: machines[m] for m in sorted(machines)},
        }


class TimeSeriesSampler(BaseObserver):
    """Feed the store from the decision-round stream.  A pure tap.

    Samples at round cadence, throttled two ways: ``every_rounds``
    skips rounds outright (deterministic, for dense scenarios) and
    ``min_interval_s`` rate-limits on *observer-side* wall clock (so a
    storm of sub-millisecond rounds cannot make sampling the hot path).
    Neither consults simulation state, preserving bit-identity.  Sample
    timestamps are **simulation** time, so recorded series are
    reproducible run-to-run when the wall throttle is disabled.

    ``machine_series=False`` drops the per-machine sweep (the O(1)
    cluster scalars remain) for fleets so large that even throttled
    per-machine sampling would matter.
    """

    def __init__(
        self,
        store: TimeSeriesStore | None = None,
        *,
        every_rounds: int = 1,
        min_interval_s: float = 0.05,
        machine_series: bool = True,
        clock=time.monotonic,
    ) -> None:
        if every_rounds < 1:
            raise ValueError("every_rounds must be >= 1")
        self.store = store if store is not None else TimeSeriesStore()
        self.every_rounds = every_rounds
        self.min_interval_s = min_interval_s
        self.machine_series = machine_series
        self.clock = clock
        self._rounds = 0
        self._last_sample = float("-inf")
        self._cluster = None
        self._machines: tuple[str, ...] = ()
        self._machine_gpus: dict[str, int] = {}
        self._total_gpus = 0

    # ------------------------------------------------------------------
    def bind_simulation(self, sim) -> None:
        """Runner wiring: read cluster-derived signals directly."""
        self._cluster = sim.cluster
        topo = sim.topo
        self._machines = tuple(sorted(topo.machines()))
        self._machine_gpus = {
            m: len(topo.gpus(machine=m)) for m in self._machines
        }
        self._total_gpus = len(topo.gpus())

    # ------------------------------------------------------------------
    def _link_load(self, alloc, machine: str) -> float:
        """Link-sharing load: mean excess multiplicity of bus links.

        For the jobs holding GPUs on ``machine``, charge each job's bus
        footprint (:meth:`AllocationState.links_used`, LRU-cached) to
        its links and report ``total_claims / distinct_links - 1`` —
        0 when no link is shared, rising as co-located jobs pile onto
        the same buses (the contention channel Eq. 2's penalty models).
        """
        jobs = alloc.jobs_on_machine(machine)
        if len(jobs) < 2:
            return 0.0
        claims = 0
        distinct: set = set()
        for job_id in jobs:
            links = alloc.links_used(alloc.gpus_of(job_id))
            claims += len(links)
            distinct.update(links)
        if not distinct:
            return 0.0
        return claims / len(distinct) - 1.0

    def sample(self, t: float, queued: int) -> None:
        """Take one sample now (bypasses both throttles)."""
        cluster = self._cluster
        if cluster is None:
            return
        store = self.store
        alloc = cluster.alloc
        busy = alloc.busy_count()
        total = self._total_gpus
        store.record(t, "queue_depth", float(queued))
        store.record(t, "running_jobs", float(len(cluster.running)))
        store.record(t, "gpus_busy", float(busy))
        store.record(t, "utilization", busy / total if total else 0.0)
        store.record(t, "fragmentation", alloc.fragmentation())
        if self.machine_series:
            for machine in self._machines:
                m_total = self._machine_gpus[machine]
                free = alloc.free_count(machine)
                store.record(
                    t, "occupancy",
                    (m_total - free) / m_total if m_total else 0.0,
                    machine=machine,
                )
                store.record(
                    t, "fragmentation", alloc.fragmentation(machine),
                    machine=machine,
                )
                store.record(
                    t, "link_load", self._link_load(alloc, machine),
                    machine=machine,
                )
        store.samples_taken += 1

    # ------------------------------------------------------------------
    # SimObserver hooks
    # ------------------------------------------------------------------
    def on_decision_round(self, t, placed, queued, elapsed_s):
        self._rounds += 1
        if self._rounds % self.every_rounds:
            return
        now = self.clock()
        if now - self._last_sample < self.min_interval_s:
            return
        self._last_sample = now
        self.sample(t, queued)

    def finalize_result(self, result) -> None:
        """Runner wiring: always capture the terminal state, so even a
        run shorter than one throttle window has history."""
        if self._cluster is not None:
            queue_series = self.store.get("queue_depth")
            latest = queue_series.latest if queue_series is not None else None
            # the queue is empty at a normal end of run; preserve the
            # last observed depth only if the clock has not advanced
            queued = 0
            if latest is not None and latest[0] >= result.makespan:
                queued = int(latest[1])
            self.sample(result.makespan, queued)


__all__ = [
    "CLUSTER_SERIES",
    "MACHINE_SERIES",
    "TIERS",
    "TIMESERIES_SCHEMA_VERSION",
    "TieredSeries",
    "TimeSeriesSampler",
    "TimeSeriesStore",
]
