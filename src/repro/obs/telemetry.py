"""Bridge from simulation hooks to metrics and the event log.

:class:`TelemetryObserver` is a :class:`~repro.sim.hooks.SimObserver`
that drives a :class:`~repro.obs.metrics.MetricsRegistry` (live
cluster gauges, lifecycle counters, a decision-latency histogram) and
an :class:`~repro.obs.events.EventLog` (one structured event per
lifecycle notification) from the simulation event stream.  It is a
pure tap: it never mutates cluster or scheduler state, so attaching it
cannot change simulation results (pinned by the golden-equivalence
tests).

Metric families (all labelled ``scheduler``):

======================================  =========  =============================
name                                    type       meaning
======================================  =========  =============================
repro_jobs_arrived_total                counter    jobs submitted to the queue
repro_jobs_placed_total                 counter    placements enforced
repro_jobs_finished_total               counter    jobs completed
repro_jobs_requeued_total               counter    failure victims resubmitted
repro_evictions_total                   counter    jobs evicted mid-run, by
                                                   reason (cancel/preempt/
                                                   migrate); also labelled
                                                   ``reason``
repro_migrations_total                  counter    defragmentation migrations
repro_machine_failures_total            counter    fail-stop machine events
repro_job_postponements_total           counter    TOPO-AWARE-P postponements
repro_slo_violations_total              counter    placements below min_utility
repro_decision_rounds_total             counter    scheduler invocations
repro_queue_depth                       gauge      jobs waiting after a round
repro_running_jobs                      gauge      jobs currently executing
repro_gpus_busy                         gauge      GPUs currently allocated
repro_gpu_utilization                   gauge      busy fraction of all GPUs
repro_decision_latency_seconds          histogram  wall-clock per decision round
repro_job_waiting_seconds               histogram  arrival -> placement delay
repro_placement_utility                 histogram  chosen normalised utility
repro_placement_prefilter_considered_total  counter  hosts probed by the top-k
                                                     candidate prefilter
repro_placement_prefilter_pruned_total  counter    capacity-eligible hosts the
                                                   prefilter never probed
repro_drb_splits_reused_total           counter    physical bipartitions served
                                                   from the incremental cache
repro_drb_splits_computed_total         counter    physical bipartitions solved
                                                   from scratch
repro_drb_rounds_rebuilt_total          counter    cache syncs that fell back to
                                                   a full split-tree rebuild
======================================  =========  =============================
"""

from __future__ import annotations

from repro.core.utility import SLO_EPS
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.sim.hooks import BaseObserver

#: buckets for normalised utility in [0, 1]
_UTILITY_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0)
#: buckets for queueing delay (simulation seconds)
_WAIT_BUCKETS = (0.0, 1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0)
#: buckets for daemon submission latency (wall seconds: the replay
#: driver targets thousands of submissions/s, so sub-millisecond bins)
_SUBMIT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.05, 0.25, 1.0,
)


class TelemetryObserver(BaseObserver):
    """Feed sim lifecycle events into a registry and/or an event log."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        event_log: EventLog | None = None,
        *,
        scheduler: str = "",
        total_gpus: int | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.events = event_log
        self.scheduler = scheduler
        self.total_gpus = total_gpus
        self._busy = 0
        self._running = 0
        self._held: dict[str, int] = {}  # job id -> GPUs it occupies
        self._postponements_seen: dict[str, int] = {}
        self._ended = False

        reg = self.registry
        labels = ("scheduler",)
        self._arrived = reg.counter(
            "repro_jobs_arrived_total", "Jobs submitted to the scheduler queue.",
            labels)
        self._placed = reg.counter(
            "repro_jobs_placed_total", "Placements enforced on the cluster.",
            labels)
        self._finished = reg.counter(
            "repro_jobs_finished_total", "Jobs that ran to completion.", labels)
        self._requeued = reg.counter(
            "repro_jobs_requeued_total",
            "Failure victims resubmitted to the queue.", labels)
        self._evictions = reg.counter(
            "repro_evictions_total",
            "Jobs evicted mid-run (cancelled, preempted or migrated).",
            ("scheduler", "reason"))
        self._migrations = reg.counter(
            "repro_migrations_total",
            "Running jobs moved to a better allocation by defragmentation.",
            labels)
        self._failures = reg.counter(
            "repro_machine_failures_total", "Fail-stop machine events.", labels)
        self._postponed = reg.counter(
            "repro_job_postponements_total",
            "Placements deferred by the postponing policy.", labels)
        self._slo_violations = reg.counter(
            "repro_slo_violations_total",
            "Placements whose utility fell below the job's min_utility.",
            labels)
        self._rounds = reg.counter(
            "repro_decision_rounds_total", "Scheduler invocations.", labels)
        self._queue_depth = reg.gauge(
            "repro_queue_depth", "Jobs waiting after the last decision round.",
            labels)
        self._running_jobs = reg.gauge(
            "repro_running_jobs", "Jobs currently executing.", labels)
        self._gpus_busy = reg.gauge(
            "repro_gpus_busy", "GPUs currently allocated to running jobs.",
            labels)
        self._utilization = reg.gauge(
            "repro_gpu_utilization",
            "Allocated fraction of all cluster GPUs.", labels)
        self._decision_latency = reg.histogram(
            "repro_decision_latency_seconds",
            "Wall-clock scheduler time per decision round.", labels)
        self._waiting = reg.histogram(
            "repro_job_waiting_seconds",
            "Simulated delay between a job's arrival and its placement.",
            labels, buckets=_WAIT_BUCKETS)
        self._utility = reg.histogram(
            "repro_placement_utility",
            "Normalised utility of enforced placements (Eq. 1).",
            labels, buckets=_UTILITY_BUCKETS)
        self._memo_hits = reg.counter(
            "repro_placement_cache_hits_total",
            "Placement-memo hits (proposals replayed from cache).", labels)
        self._memo_misses = reg.counter(
            "repro_placement_cache_misses_total",
            "Placement-memo misses (proposals solved from scratch).", labels)
        self._memo_invalidations = reg.counter(
            "repro_placement_cache_invalidations_total",
            "Placement-memo flushes caused by allocation-state deltas.",
            labels)
        self._memo_hit_rate = reg.gauge(
            "repro_placement_cache_hit_rate",
            "Fraction of proposals served from the placement memo.", labels)
        self._prefilter_considered = reg.counter(
            "repro_placement_prefilter_considered_total",
            "Hosts probed by the top-k candidate prefilter.", labels)
        self._prefilter_pruned = reg.counter(
            "repro_placement_prefilter_pruned_total",
            "Capacity-eligible hosts the prefilter never had to probe.",
            labels)
        self._drb_reused = reg.counter(
            "repro_drb_splits_reused_total",
            "Physical bipartitions served from the incremental DRB cache.",
            labels)
        self._drb_computed = reg.counter(
            "repro_drb_splits_computed_total",
            "Physical bipartitions solved from scratch.", labels)
        self._drb_rebuilt = reg.counter(
            "repro_drb_rounds_rebuilt_total",
            "DRB cache syncs that fell back to a full split-tree rebuild.",
            labels)

    # ------------------------------------------------------------------
    def _gpu_gauges(self) -> None:
        self._gpus_busy.set(self._busy, scheduler=self.scheduler)
        self._running_jobs.set(self._running, scheduler=self.scheduler)
        if self.total_gpus:
            self._utilization.set(
                self._busy / self.total_gpus, scheduler=self.scheduler
            )

    def _emit(self, type: str, t: float, **fields) -> None:
        if self.events is not None:
            self.events.emit(type, t, scheduler=self.scheduler, **fields)

    # ------------------------------------------------------------------
    # run envelope (called by the CLI wiring, not by the engine)
    # ------------------------------------------------------------------
    def run_start(self, jobs: int) -> None:
        self._emit("run_start", 0.0, jobs=jobs, total_gpus=self.total_gpus or 0)

    def run_end(self, result) -> None:
        # idempotent: the runner finalizes observers automatically, but
        # pre-existing callers (examples, tests) still call run_end by
        # hand — the second call must not double-count memo stats or
        # emit a second run_end event.
        if self._ended:
            return
        self._ended = True
        finished = sum(1 for r in result.records if r.finished_at is not None)
        unplaceable = sum(1 for r in result.records if r.unplaceable)
        stats = getattr(result, "placement_stats", None) or {}
        if stats:
            sched = self.scheduler
            self._memo_hits.inc(stats.get("hits", 0), scheduler=sched)
            self._memo_misses.inc(stats.get("misses", 0), scheduler=sched)
            self._memo_invalidations.inc(
                stats.get("invalidations", 0), scheduler=sched
            )
            self._memo_hit_rate.set(stats.get("hit_rate", 0.0), scheduler=sched)
        pf_stats = getattr(result, "prefilter_stats", None) or {}
        if pf_stats:
            sched = self.scheduler
            self._prefilter_considered.inc(
                pf_stats.get("considered", 0), scheduler=sched
            )
            self._prefilter_pruned.inc(
                pf_stats.get("pruned", 0), scheduler=sched
            )
        drb_stats = getattr(result, "drb_stats", None) or {}
        if drb_stats:
            sched = self.scheduler
            self._drb_reused.inc(
                drb_stats.get("splits_reused", 0), scheduler=sched
            )
            self._drb_computed.inc(
                drb_stats.get("splits_computed", 0), scheduler=sched
            )
            self._drb_rebuilt.inc(
                drb_stats.get("rounds_rebuilt", 0), scheduler=sched
            )
        self._emit(
            "run_end",
            result.makespan,
            makespan=result.makespan,
            finished=finished,
            unplaceable=unplaceable,
            **({"placement_cache": stats} if stats else {}),
            **({"prefilter": pf_stats} if pf_stats else {}),
            **({"drb_cache": drb_stats} if drb_stats else {}),
        )

    def finalize_result(self, result) -> None:
        """Runner wiring (:func:`repro.sim.runner.run_with_observers`):
        emit the run_end envelope once the result exists."""
        self.run_end(result)

    # ------------------------------------------------------------------
    # SimObserver hooks
    # ------------------------------------------------------------------
    def on_arrival(self, t, job):
        self._arrived.inc(scheduler=self.scheduler)
        self._emit("arrival", t, job_id=job.job_id, num_gpus=job.num_gpus)

    def on_place(self, t, job, solution, solo_exec_time, postponements):
        sched = self.scheduler
        self._placed.inc(scheduler=sched)
        self._waiting.observe(max(0.0, t - job.arrival_time), scheduler=sched)
        self._utility.observe(solution.utility, scheduler=sched)
        new_postponements = postponements - self._postponements_seen.get(
            job.job_id, 0
        )
        if new_postponements > 0:
            self._postponed.inc(new_postponements, scheduler=sched)
            self._postponements_seen[job.job_id] = postponements
            self._emit(
                "postponed", t, job_id=job.job_id, postponements=postponements
            )
        if solution.utility < job.min_utility - SLO_EPS:
            self._slo_violations.inc(scheduler=sched)
            self._emit(
                "slo_violation",
                t,
                job_id=job.job_id,
                utility=solution.utility,
                min_utility=job.min_utility,
            )
        self._held[job.job_id] = len(solution.gpus)
        self._busy += len(solution.gpus)
        self._running += 1
        self._gpu_gauges()
        self._emit(
            "place",
            t,
            job_id=job.job_id,
            gpus=sorted(solution.gpus),
            utility=solution.utility,
            p2p=solution.p2p,
            postponements=postponements,
        )

    def on_finish(self, t, job, gpus):
        self._finished.inc(scheduler=self.scheduler)
        self._busy -= self._held.pop(job.job_id, 0)
        self._running -= 1
        self._gpu_gauges()
        self._emit("finish", t, job_id=job.job_id, gpus=sorted(gpus))

    def on_failure(self, t, machine, victims):
        self._failures.inc(scheduler=self.scheduler)
        for job in victims:
            self._busy -= self._held.pop(job.job_id, 0)
            self._running -= 1
        self._gpu_gauges()
        self._emit(
            "failure", t, machine=machine, victims=[j.job_id for j in victims]
        )

    def on_requeue(self, t, job):
        self._requeued.inc(scheduler=self.scheduler)
        self._emit("requeue", t, job_id=job.job_id)

    def on_evict(self, t, job, gpus, reason):
        sched = self.scheduler
        self._evictions.inc(scheduler=sched, reason=reason)
        if reason == "migrate":
            self._migrations.inc(scheduler=sched)
        # guarded pop: a cancel may catch a job that never ran (queued
        # or pending phase) — the gauges then have nothing to release
        freed = self._held.pop(job.job_id, None)
        if freed is not None:
            self._busy -= freed
            self._running -= 1
            self._gpu_gauges()
        self._emit(
            "evict", t, job_id=job.job_id, gpus=sorted(gpus), reason=reason
        )

    def on_decision_round(self, t, placed, queued, elapsed_s):
        sched = self.scheduler
        self._rounds.inc(scheduler=sched)
        self._decision_latency.observe(elapsed_s, scheduler=sched)
        self._queue_depth.set(queued, scheduler=sched)
        self._emit(
            "decision_round",
            t,
            placed=[s.job_id for s in placed],
            queued=queued,
            elapsed_s=elapsed_s,
        )


class ServiceTelemetry:
    """Metric families for the scheduler service daemon.

    Counts the *service-side* traffic — what crossed the submission API
    and how the admission controller ruled — as opposed to
    :class:`TelemetryObserver`'s simulation-side lifecycle families.
    Shares the daemon's :class:`MetricsRegistry` so ``GET /metrics``
    exports both in one scrape:

    ==========================================  =========  ======================
    name                                        type       meaning
    ==========================================  =========  ======================
    repro_service_submissions_total             counter    POST /submit requests
    repro_service_admissions_total{decision}    counter    admitted / rejected-*
    repro_service_cancellations_total{phase}    counter    cancels by job phase
    repro_service_evictions_total               counter    POST /evict preemptions
                                                           applied to the engine
    repro_service_queue_depth                   gauge      jobs waiting (service)
    repro_service_inbox_depth                   gauge      admitted jobs not yet
                                                           fed to the engine
                                                           (admission backlog)
    repro_service_jobs{state}                   gauge      jobs per lifecycle state
    repro_service_submission_latency_seconds    histogram  submit wall latency
    repro_service_journal_write_latency_seconds histogram  one sqlite journal
                                                           write (stall detector)
    ==========================================  =========  ======================
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._submissions = reg.counter(
            "repro_service_submissions_total",
            "Submission requests received by the daemon.")
        self._admissions = reg.counter(
            "repro_service_admissions_total",
            "Admission-control decisions (admitted or a rejection reason).",
            ("decision",))
        self._cancellations = reg.counter(
            "repro_service_cancellations_total",
            "Cancellations applied, by the phase the job was caught in.",
            ("phase",))
        self._evictions = reg.counter(
            "repro_service_evictions_total",
            "Operator evictions (POST /evict) applied to the engine.")
        self._queue_depth = reg.gauge(
            "repro_service_queue_depth",
            "Jobs waiting in the service queue (admitted, not yet placed).")
        self._inbox_depth = reg.gauge(
            "repro_service_inbox_depth",
            "Admitted jobs sitting in the priority inbox, not yet fed to "
            "the engine (admission backpressure).")
        self._jobs_by_state = reg.gauge(
            "repro_service_jobs",
            "Jobs currently in each lifecycle state.", ("state",))
        self._submit_latency = reg.histogram(
            "repro_service_submission_latency_seconds",
            "Wall-clock latency of one submission (receipt to journaled).",
            buckets=_SUBMIT_BUCKETS)
        self._journal_latency = reg.histogram(
            "repro_service_journal_write_latency_seconds",
            "Wall-clock latency of one sqlite journal write (submission "
            "or state transition) — the soak harness's stall detector.",
            buckets=_SUBMIT_BUCKETS)

    def submission(self, decision: str, latency_s: float) -> None:
        """Record one POST /submit: its ruling and its wall latency."""
        self._submissions.inc()
        self._admissions.inc(decision=decision)
        self._submit_latency.observe(latency_s)

    def cancellation(self, phase: str) -> None:
        self._cancellations.inc(phase=phase)

    def eviction(self) -> None:
        self._evictions.inc()

    def set_queue_depth(self, depth: int) -> None:
        self._queue_depth.set(depth)

    def set_inbox_depth(self, depth: int) -> None:
        self._inbox_depth.set(depth)

    def journal_write(self, latency_s: float) -> None:
        """Record one sqlite journal write's wall-clock latency."""
        self._journal_latency.observe(latency_s)

    def set_jobs_by_state(self, counts: dict) -> None:
        for state, n in counts.items():
            self._jobs_by_state.set(n, state=state)

