"""Synthetic workload generation (paper Section 5.3).

"For generating the workloads, a Poisson distribution with arrival rate
lambda = 10 is used.  To create the job's configuration, we used a
Binomial distribution generating integer values between 0 and 3 to
define the batch size (0=tiny .. 3=big), and also a Binomial
distribution generating integer values between 0 and 2 to determine the
NN type (0=AlexNet, 1=CaffeRef, 2=GoogLeNet)."

The paper leaves the GPU-count mix unspecified beyond "jobs have varied
GPU requirements: some need a single GPU ... others multiple"
(Section 5.2); :class:`GeneratorConfig` exposes it as a categorical
distribution defaulting to mostly 1-2 GPU jobs like Table 1.
Minimum-utility SLOs follow Table 1's convention: 0.3 for single-GPU
jobs, 0.5 for multi-GPU jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.workload.job import BatchClass, Job, ModelType

_MODEL_ORDER = (ModelType.ALEXNET, ModelType.CAFFEREF, ModelType.GOOGLENET)


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the synthetic workload generator."""

    arrival_rate_per_min: float = 10.0  # Poisson lambda (jobs/minute)
    batch_binomial_p: float = 0.5  # Binomial(3, p) -> class index 0..3
    model_binomial_p: float = 0.5  # Binomial(2, p) -> model index 0..2
    gpu_counts: tuple[int, ...] = (1, 2, 4)
    gpu_count_probs: tuple[float, ...] = (0.40, 0.45, 0.15)
    #: fixed iteration count per job; None derives iterations from a
    #: target duration instead (the paper's trace-driven jobs all run
    #: for minutes regardless of model/batch, so duration-targeting is
    #: the realistic default -- a fixed 4000 iterations would make a
    #: big-batch GoogLeNet run for hours while AlexNet-tiny takes 100 s)
    iterations: int | None = None
    duration_range_s: tuple[float, float] = (60.0, 300.0)
    min_utility_single_gpu: float = 0.3
    min_utility_multi_gpu: float = 0.5
    #: burstiness > 1 switches to a two-state Markov-modulated process:
    #: burst-phase arrivals come ``burstiness`` times faster than the
    #: overall mean rate, idle-phase arrivals correspondingly slower so
    #: the mean rate is preserved.  1.0 = the paper's plain Poisson.
    burstiness: float = 1.0
    burst_fraction: float = 0.3  # fraction of arrivals landing in bursts

    def __post_init__(self) -> None:
        if self.arrival_rate_per_min <= 0:
            raise ValueError("arrival rate must be positive")
        if not 0.0 <= self.batch_binomial_p <= 1.0:
            raise ValueError("batch_binomial_p must be in [0, 1]")
        if not 0.0 <= self.model_binomial_p <= 1.0:
            raise ValueError("model_binomial_p must be in [0, 1]")
        if len(self.gpu_counts) != len(self.gpu_count_probs):
            raise ValueError("gpu_counts and gpu_count_probs lengths differ")
        if abs(sum(self.gpu_count_probs) - 1.0) > 1e-9:
            raise ValueError("gpu_count_probs must sum to 1")
        if any(c < 1 for c in self.gpu_counts):
            raise ValueError("gpu counts must be >= 1")
        lo, hi = self.duration_range_s
        if lo <= 0 or hi < lo:
            raise ValueError("duration_range_s must be 0 < lo <= hi")
        if self.iterations is not None and self.iterations < 1:
            raise ValueError("iterations must be >= 1 when fixed")
        if self.burstiness < 1.0:
            raise ValueError("burstiness must be >= 1.0")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1)")


class WorkloadGenerator:
    """Deterministic (seeded) job-stream generator."""

    def __init__(self, config: GeneratorConfig | None = None, seed: int = 0) -> None:
        self.config = config or GeneratorConfig()
        self._rng = np.random.default_rng(seed)

    def generate(self, n_jobs: int, id_prefix: str = "job") -> list[Job]:
        """Generate ``n_jobs`` jobs with Poisson arrivals, sorted by arrival."""
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        cfg = self.config
        mean_gap_s = 60.0 / cfg.arrival_rate_per_min
        if cfg.burstiness == 1.0:
            gaps = self._rng.exponential(mean_gap_s, size=n_jobs)
        else:
            gaps = self._mmpp_gaps(n_jobs, mean_gap_s)
        arrivals = np.cumsum(gaps)
        batch_idx = self._rng.binomial(3, cfg.batch_binomial_p, size=n_jobs)
        model_idx = self._rng.binomial(2, cfg.model_binomial_p, size=n_jobs)
        gpu_counts = self._rng.choice(
            cfg.gpu_counts, size=n_jobs, p=cfg.gpu_count_probs
        )
        durations = self._rng.uniform(
            cfg.duration_range_s[0], cfg.duration_range_s[1], size=n_jobs
        )
        jobs = []
        for i in range(n_jobs):
            n_gpus = int(gpu_counts[i])
            batch_class = BatchClass.from_index(int(batch_idx[i]))
            model = _MODEL_ORDER[int(model_idx[i])]
            if cfg.iterations is not None:
                iterations = cfg.iterations
            else:
                iterations = self._iterations_for(
                    model, batch_class, float(durations[i])
                )
            jobs.append(
                Job(
                    job_id=f"{id_prefix}{i}",
                    model=model,
                    batch_size=batch_class.representative_batch,
                    num_gpus=n_gpus,
                    min_utility=(
                        cfg.min_utility_single_gpu
                        if n_gpus == 1
                        else cfg.min_utility_multi_gpu
                    ),
                    arrival_time=float(arrivals[i]),
                    iterations=iterations,
                )
            )
        return jobs

    def _mmpp_gaps(self, n_jobs: int, mean_gap_s: float) -> np.ndarray:
        """Two-state Markov-modulated interarrival gaps.

        The burst state arrives ``burstiness`` times faster than the
        base rate, the idle state correspondingly slower so the overall
        mean rate is preserved; the chain dwells in each state for a
        handful of arrivals (switch constant 0.2), producing the
        correlated arrival clumps real cloud traces show.
        """
        cfg = self.config
        f = cfg.burst_fraction  # fraction of *arrivals* in the burst state
        burst_gap = mean_gap_s / cfg.burstiness
        # choose the idle gap so f*burst_gap + (1-f)*idle_gap == mean_gap
        idle_gap = mean_gap_s * (1.0 - f / cfg.burstiness) / (1.0 - f)
        switch = 0.2
        p_idle_to_burst = switch * f
        p_burst_to_idle = switch * (1.0 - f)
        gaps = np.empty(n_jobs)
        in_burst = self._rng.random() < f
        for i in range(n_jobs):
            gaps[i] = self._rng.exponential(burst_gap if in_burst else idle_gap)
            flip = self._rng.random()
            if in_burst and flip < p_burst_to_idle:
                in_burst = False
            elif not in_burst and flip < p_idle_to_burst:
                in_burst = True
        return gaps

    @staticmethod
    def _iterations_for(
        model: ModelType, batch_class: BatchClass, duration_s: float
    ) -> int:
        """Iterations giving roughly ``duration_s`` of packed solo run."""
        from repro.workload.profiles import default_database

        profile = default_database().get(model, batch_class)
        return max(1, round(duration_s / profile.solo_iter_pack_s))
