"""Job communication graphs (paper Section 4.1.1).

Vertices are the job's tasks (one per requested GPU); edges carry a
weight denoting communication volume.  For the data-parallel Caffe
workloads of the paper all GPUs exchange gradients with each other at
the same rate, so the graph is a uniform clique whose weight is derived
from the batch-size class: "for different batch sizes, different
weights are used, ranging from 4 to 1, where 4 represents the smallest
batch size and 1 the largest one" (Section 5.1).

Model-parallel chain/ring generators are provided as well: the paper
motivates topology-awareness as even more critical for those (Section
2), and they exercise non-uniform graphs in the mapping algorithm.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping

from repro.workload.job import BatchClass, CommPattern, Job

#: Batch-class -> clique edge weight (Section 5.1).
_BATCH_WEIGHTS: Mapping[BatchClass, float] = {
    BatchClass.TINY: 4.0,
    BatchClass.SMALL: 3.0,
    BatchClass.MEDIUM: 2.0,
    BatchClass.BIG: 1.0,
}


def comm_weight(batch_class: BatchClass) -> float:
    """Communication weight for a batch class (4 = tiny ... 1 = big)."""
    return _BATCH_WEIGHTS[batch_class]


class JobGraph:
    """Undirected weighted graph over a job's tasks.

    Tasks are integers ``0..n_tasks-1``.  During mapping, edge weights
    are normalised by the total available bandwidth of the target
    machine (Section 4.1.1); :meth:`normalised` performs that scaling.
    """

    def __init__(self, n_tasks: int, edges: Iterable[tuple[int, int, float]] = ()) -> None:
        if n_tasks < 1:
            raise ValueError("a job graph needs at least one task")
        self.n_tasks = n_tasks
        self._w: dict[tuple[int, int], float] = {}
        self._degrees: list[float] | None = None
        for u, v, w in edges:
            self.add_edge(u, v, w)

    @staticmethod
    def _key(u: int, v: int) -> tuple[int, int]:
        return (u, v) if u < v else (v, u)

    def add_edge(self, u: int, v: int, weight: float) -> None:
        if u == v:
            raise ValueError(f"self-loop on task {u}")
        for t in (u, v):
            if not 0 <= t < self.n_tasks:
                raise ValueError(f"task {t} out of range 0..{self.n_tasks - 1}")
        if weight < 0:
            raise ValueError("edge weight must be non-negative")
        self._w[self._key(u, v)] = float(weight)
        self._degrees = None

    def weight(self, u: int, v: int) -> float:
        if u == v:
            return 0.0
        return self._w.get(self._key(u, v), 0.0)

    def edges(self) -> list[tuple[int, int, float]]:
        return [(u, v, w) for (u, v), w in sorted(self._w.items())]

    def n_edges(self) -> int:
        return len(self._w)

    def tasks(self) -> range:
        return range(self.n_tasks)

    def total_weight(self) -> float:
        return sum(self._w.values())

    def degree(self, task: int) -> float:
        """Sum of edge weights incident to ``task``.

        All degrees are materialised in one pass over the edge dict
        (and invalidated on mutation); per-task accumulation follows
        the same insertion order as the direct scan, so the cached
        floats are identical to it.
        """
        if not 0 <= task < self.n_tasks:
            return 0.0
        degrees = self._degrees
        if degrees is None:
            degrees = [0.0] * self.n_tasks
            for (u, v), w in self._w.items():
                degrees[u] += w
                degrees[v] += w
            self._degrees = degrees
        return degrees[task]

    def weight_to(self, task: int, others: Iterable[int]) -> float:
        """Total edge weight from ``task`` into the set ``others``."""
        others = set(others)
        return sum(self.weight(task, o) for o in others if o != task)

    def normalised(self, total_bandwidth_gbs: float) -> "JobGraph":
        """Scale edge weights by the machine's total bandwidth.

        Produces the 0..1-ish communication levels the mapping stage
        consumes; weights of 0 mean no communication.
        """
        if total_bandwidth_gbs <= 0:
            raise ValueError("total bandwidth must be positive")
        out = JobGraph(self.n_tasks)
        for (u, v), w in self._w.items():
            out._w[(u, v)] = w / total_bandwidth_gbs
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JobGraph):
            return NotImplemented
        return self.n_tasks == other.n_tasks and self._w == other._w

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobGraph(tasks={self.n_tasks}, edges={len(self._w)})"


def data_parallel_graph(job: Job) -> JobGraph:
    """Uniform all-to-all gradient-exchange graph (Caffe data parallelism)."""
    w = comm_weight(job.batch_class)
    g = JobGraph(job.num_gpus)
    for u, v in itertools.combinations(range(job.num_gpus), 2):
        g.add_edge(u, v, w)
    return g


def model_parallel_chain(n_tasks: int, weight: float = 4.0) -> JobGraph:
    """Layer-pipeline chain: task i talks only to i+1."""
    g = JobGraph(n_tasks)
    for i in range(n_tasks - 1):
        g.add_edge(i, i + 1, weight)
    return g


def model_parallel_ring(n_tasks: int, weight: float = 4.0) -> JobGraph:
    """Ring all-reduce pattern: chain plus a closing edge."""
    g = model_parallel_chain(n_tasks, weight)
    if n_tasks > 2:
        g.add_edge(n_tasks - 1, 0, weight)
    return g


#: Model-parallel traffic moves whole layer activations instead of
#: averaged gradients, so its per-edge weight is scaled up relative to
#: the data-parallel clique of the same batch class (Section 2: "the
#: model-based parallelism is expected to be more communication
#: intensive").
MODEL_PARALLEL_WEIGHT_FACTOR = 1.5


def job_graph_for(job: Job) -> JobGraph:
    """The communication graph implied by a job's declared pattern."""
    if job.comm_pattern is CommPattern.DATA_PARALLEL:
        return data_parallel_graph(job)
    w = comm_weight(job.batch_class) * MODEL_PARALLEL_WEIGHT_FACTOR
    if job.comm_pattern is CommPattern.MODEL_PARALLEL_CHAIN:
        return model_parallel_chain(job.num_gpus, w)
    if job.comm_pattern is CommPattern.MODEL_PARALLEL_RING:
        return model_parallel_ring(job.num_gpus, w)
    raise ValueError(f"unhandled pattern {job.comm_pattern}")  # pragma: no cover
