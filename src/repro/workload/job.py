"""Job specifications.

A :class:`Job` is what the paper's scheduler receives from a JSON
manifest: the neural network being trained, the per-GPU batch size, the
number of requested GPUs, the minimum acceptable (normalised) utility
that encodes its SLO, and arrival metadata.  Placement constraints
follow Section 4.4: jobs are packed on one node unless they declare
``anti_collocation`` (spread my tasks) and must set
``single_node=False`` to be allowed to span machines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class ModelType(enum.Enum):
    """Neural networks evaluated in the paper (Section 2)."""

    ALEXNET = "alexnet"
    CAFFEREF = "cafferef"
    GOOGLENET = "googlenet"

    @classmethod
    def from_string(cls, value: str) -> "ModelType":
        try:
            return cls(value.strip().lower())
        except ValueError:
            aliases = {"a": cls.ALEXNET, "c": cls.CAFFEREF, "g": cls.GOOGLENET}
            try:
                return aliases[value.strip().lower()]
            except KeyError:
                raise ValueError(f"unknown model type {value!r}") from None

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class CommPattern(enum.Enum):
    """How a job's tasks exchange data (Section 2).

    Caffe-style data parallelism is a uniform all-to-all gradient
    exchange; model parallelism partitions the network over GPUs so
    traffic follows the layer pipeline (chain) or a ring all-reduce.
    The paper evaluates data parallelism and calls topology-awareness
    "even more critical" for model parallelism -- both are supported.
    """

    DATA_PARALLEL = "data-parallel"
    MODEL_PARALLEL_CHAIN = "model-parallel-chain"
    MODEL_PARALLEL_RING = "model-parallel-ring"

    @classmethod
    def from_string(cls, value: str) -> "CommPattern":
        try:
            return cls(value.strip().lower())
        except ValueError:
            raise ValueError(f"unknown communication pattern {value!r}") from None

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class BatchClass(enum.Enum):
    """The four batch-size classes of the evaluation (tiny..big).

    The integer value is the representative per-GPU batch size used
    when only the class is known (the simulator's Binomial workload
    generator draws classes, Section 5.3).
    """

    TINY = 1
    SMALL = 4
    MEDIUM = 32
    BIG = 128

    @property
    def representative_batch(self) -> int:
        return self.value

    @classmethod
    def from_string(cls, value: str) -> "BatchClass":
        try:
            return cls[value.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown batch class {value!r}") from None

    @classmethod
    def from_index(cls, index: int) -> "BatchClass":
        """Map the generator's Binomial draw 0..3 to tiny..big."""
        order = (cls.TINY, cls.SMALL, cls.MEDIUM, cls.BIG)
        if not 0 <= index < len(order):
            raise ValueError(f"batch class index out of range: {index}")
        return order[index]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()


def batch_class_of(batch_size: int) -> BatchClass:
    """Classify a concrete per-GPU batch size into tiny/small/medium/big.

    Thresholds bracket the paper's representative sizes (1, 4, 32, 128).
    """
    if batch_size < 1:
        raise ValueError(f"batch size must be >= 1, got {batch_size}")
    if batch_size <= 2:
        return BatchClass.TINY
    if batch_size <= 8:
        return BatchClass.SMALL
    if batch_size <= 48:
        return BatchClass.MEDIUM
    return BatchClass.BIG


@dataclass(frozen=True)
class Job:
    """An immutable job specification.

    ``min_utility`` is the SLO threshold in [0, 1] against the
    *normalised* utility of a placement (see
    :mod:`repro.core.utility`); TOPO-AWARE-P postpones placements whose
    utility falls below it.
    """

    job_id: str
    model: ModelType
    batch_size: int
    num_gpus: int
    min_utility: float = 0.0
    arrival_time: float = 0.0
    iterations: int = 4000
    anti_collocation: bool = False
    single_node: bool = True
    p2p: bool | None = None  # None = derive from batch class (see requires_p2p)
    comm_pattern: CommPattern = CommPattern.DATA_PARALLEL
    tags: tuple[str, ...] = field(default=())
    #: preemption rank: a preempting scheduler may evict a running job
    #: only for a queued job with strictly higher priority.  0 (the
    #: default) makes every job equal — nothing is ever preempted.
    priority: int = 0

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError(f"{self.job_id}: num_gpus must be >= 1")
        if self.batch_size < 1:
            raise ValueError(f"{self.job_id}: batch_size must be >= 1")
        if not 0.0 <= self.min_utility <= 1.0:
            raise ValueError(f"{self.job_id}: min_utility must be in [0, 1]")
        if self.arrival_time < 0:
            raise ValueError(f"{self.job_id}: arrival_time must be >= 0")
        if self.iterations < 1:
            raise ValueError(f"{self.job_id}: iterations must be >= 1")

    @property
    def batch_class(self) -> BatchClass:
        return batch_class_of(self.batch_size)

    @property
    def requires_p2p(self) -> bool:
        """Whether the job's SLO is only fully satisfied with P2P GPUs.

        The paper's cloud mix includes jobs "requiring P2P to be fully
        satisfied" (Section 5.2).  When not declared explicitly in the
        manifest, multi-GPU jobs with communication-heavy batch classes
        (tiny/small) are treated as P2P-requiring -- exactly the jobs
        for which Figure 4 shows pack placement matters.
        """
        if self.p2p is not None:
            return self.p2p and self.num_gpus > 1
        return self.num_gpus > 1 and self.batch_class in (
            BatchClass.TINY,
            BatchClass.SMALL,
        )

    def with_arrival(self, arrival_time: float) -> "Job":
        return replace(self, arrival_time=arrival_time)

    def describe(self) -> str:
        return (
            f"{self.job_id}: {self.model} batch={self.batch_size}"
            f" ({self.batch_class}) gpus={self.num_gpus}"
            f" min_utility={self.min_utility} arrival={self.arrival_time:.2f}s"
        )
