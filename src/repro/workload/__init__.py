"""Deep-learning job model: specs, communication graphs, profiles, traces."""

from repro.workload.job import BatchClass, CommPattern, Job, ModelType, batch_class_of
from repro.workload.jobgraph import (
    JobGraph,
    comm_weight,
    data_parallel_graph,
    job_graph_for,
    model_parallel_chain,
    model_parallel_ring,
)
from repro.workload.profiles import JobProfile, ProfileDatabase, default_database
from repro.workload.manifest import ManifestError, dump_manifest, load_manifest, dumps_manifest, loads_manifest
from repro.workload.generator import WorkloadGenerator, GeneratorConfig

__all__ = [
    "BatchClass",
    "CommPattern",
    "GeneratorConfig",
    "Job",
    "JobGraph",
    "JobProfile",
    "ManifestError",
    "ModelType",
    "ProfileDatabase",
    "WorkloadGenerator",
    "batch_class_of",
    "comm_weight",
    "data_parallel_graph",
    "default_database",
    "dump_manifest",
    "dumps_manifest",
    "job_graph_for",
    "load_manifest",
    "loads_manifest",
    "model_parallel_chain",
    "model_parallel_ring",
]
