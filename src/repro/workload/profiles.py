"""Job profiles (paper Section 4.2).

A :class:`JobProfile` is the scheduler-facing summary the paper builds
from historical runs: solo iteration times under the best (pack) and a
sub-optimal (spread) allocation on the reference machine, the
communication fraction, the average bus bandwidth demand, and the
interference *sensitivity* / *pressure* coefficients feeding Eq. 4.

:class:`ProfileDatabase` holds one profile per (model, batch class).
:func:`default_database` builds it from the default calibration over
the Minsky reference topology -- the synthetic stand-in for the paper's
"95th percentile of the execution time from five executions of each
workload within different scenarios".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.workload.job import BatchClass, Job, ModelType
from repro.workload.jobgraph import comm_weight


@dataclass(frozen=True)
class JobProfile:
    """Per-(model, batch class) performance summary on the reference machine."""

    model: ModelType
    batch_class: BatchClass
    comm_weight: float  # job-graph edge weight (4=tiny .. 1=big)
    solo_iter_pack_s: float  # per-iteration time, 2 GPUs packed
    solo_iter_spread_s: float  # per-iteration time, 2 GPUs spread
    comm_fraction: float  # comm share of iteration time (pack)
    avg_demand_gbs: float  # average bus demand (pack)
    sensitivity: float  # victim coefficient (Eq. 4 inputs)
    pressure: float  # aggressor coefficient

    @property
    def pack_speedup(self) -> float:
        """Pack-vs-spread speedup of this class (Figure 4's metric)."""
        return self.solo_iter_spread_s / self.solo_iter_pack_s

    def solo_time(self, iterations: int, packed: bool = True) -> float:
        per_iter = self.solo_iter_pack_s if packed else self.solo_iter_spread_s
        return iterations * per_iter


class ProfileDatabase:
    """Lookup of :class:`JobProfile` by (model, batch class)."""

    def __init__(self, profiles: Mapping[tuple[ModelType, BatchClass], JobProfile]) -> None:
        self._profiles = dict(profiles)

    def get(self, model: ModelType, batch_class: BatchClass) -> JobProfile:
        try:
            return self._profiles[(model, batch_class)]
        except KeyError:
            raise KeyError(
                f"no profile for ({model}, {batch_class}); "
                "extend the database or recalibrate"
            ) from None

    def for_job(self, job: Job) -> JobProfile:
        return self.get(job.model, job.batch_class)

    def __iter__(self) -> Iterator[JobProfile]:
        return iter(self._profiles.values())

    def __len__(self) -> int:
        return len(self._profiles)

    @classmethod
    def from_calibration(cls, calibration=None) -> "ProfileDatabase":
        """Build profiles by 'profiling' the reference Minsky machine.

        Runs the performance model for a 2-GPU job of every (model,
        batch class) under the canonical pack and spread placements --
        the synthetic analogue of the paper's profiling experiments.
        """
        # imported here to keep repro.workload importable without repro.perf
        from repro.perf import bandwidth as _bandwidth
        from repro.perf import interference as _interference
        from repro.perf.calibration import DEFAULT_CALIBRATION
        from repro.perf.model import PerformanceModel, Placement
        from repro.topology.builders import power8_minsky

        cal = calibration or DEFAULT_CALIBRATION
        topo = power8_minsky()
        perf = PerformanceModel(topo, cal)
        profiles: dict[tuple[ModelType, BatchClass], JobProfile] = {}
        for model in ModelType:
            for batch_class in BatchClass:
                job = Job(
                    job_id=f"profile-{model}-{batch_class}",
                    model=model,
                    batch_size=batch_class.representative_batch,
                    num_gpus=2,
                )
                pack = perf.placement_gpus(job, Placement.PACK)
                spread = perf.placement_gpus(job, Placement.SPREAD)
                bd_pack = perf.iteration_breakdown(job, pack)
                bd_spread = perf.iteration_breakdown(job, spread)
                profiles[(model, batch_class)] = JobProfile(
                    model=model,
                    batch_class=batch_class,
                    comm_weight=comm_weight(batch_class),
                    solo_iter_pack_s=bd_pack.total_s,
                    solo_iter_spread_s=bd_spread.total_s,
                    comm_fraction=bd_pack.comm_fraction,
                    avg_demand_gbs=_bandwidth.average_demand_gbs(job, perf, pack),
                    sensitivity=_interference.sensitivity(cal, model, batch_class),
                    pressure=_interference.pressure(cal, model, batch_class),
                )
        return cls(profiles)


_DEFAULT: ProfileDatabase | None = None


def default_database() -> ProfileDatabase:
    """Process-wide default profile database (built once, cached)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ProfileDatabase.from_calibration()
    return _DEFAULT
