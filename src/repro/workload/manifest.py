"""JSON job manifests.

The paper's prototype "continuously loads JSON files containing the
necessary information about the submitted jobs" (Section 5.1).  This
module defines that interchange format:

.. code-block:: json

    {
      "jobs": [
        {
          "id": "job0",
          "model": "alexnet",
          "batch_size": 1,
          "num_gpus": 2,
          "min_utility": 0.5,
          "arrival_time": 0.51,
          "iterations": 4000,
          "anti_collocation": false,
          "single_node": true
        }
      ]
    }

Unknown keys are rejected so typos fail loudly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.workload.job import CommPattern, Job, ModelType


class ManifestError(ValueError):
    """Raised for malformed manifests."""


_REQUIRED = {"id", "model", "batch_size", "num_gpus"}
_OPTIONAL = {
    "min_utility": 0.0,
    "arrival_time": 0.0,
    "iterations": 4000,
    "anti_collocation": False,
    "single_node": True,
    "p2p": None,
    "comm_pattern": "data-parallel",
    "tags": (),
    "priority": 0,
}


def _job_from_dict(entry: dict[str, Any], index: int) -> Job:
    if not isinstance(entry, dict):
        raise ManifestError(f"job #{index}: expected an object, got {type(entry).__name__}")
    missing = _REQUIRED - entry.keys()
    if missing:
        raise ManifestError(f"job #{index}: missing keys {sorted(missing)}")
    unknown = entry.keys() - _REQUIRED - _OPTIONAL.keys()
    if unknown:
        raise ManifestError(f"job #{index}: unknown keys {sorted(unknown)}")
    values = {**_OPTIONAL, **entry}
    try:
        return Job(
            job_id=str(values["id"]),
            model=ModelType.from_string(str(values["model"])),
            batch_size=int(values["batch_size"]),
            num_gpus=int(values["num_gpus"]),
            min_utility=float(values["min_utility"]),
            arrival_time=float(values["arrival_time"]),
            iterations=int(values["iterations"]),
            anti_collocation=bool(values["anti_collocation"]),
            single_node=bool(values["single_node"]),
            p2p=None if values["p2p"] is None else bool(values["p2p"]),
            comm_pattern=CommPattern.from_string(str(values["comm_pattern"])),
            tags=tuple(values["tags"]),
            priority=int(values["priority"]),
        )
    except (TypeError, ValueError) as exc:
        raise ManifestError(f"job #{index}: {exc}") from exc


def _job_to_dict(job: Job) -> dict[str, Any]:
    out: dict[str, Any] = {
        "id": job.job_id,
        "model": job.model.value,
        "batch_size": job.batch_size,
        "num_gpus": job.num_gpus,
        "min_utility": job.min_utility,
        "arrival_time": job.arrival_time,
        "iterations": job.iterations,
    }
    if job.anti_collocation:
        out["anti_collocation"] = True
    if not job.single_node:
        out["single_node"] = False
    if job.p2p is not None:
        out["p2p"] = job.p2p
    if job.comm_pattern is not CommPattern.DATA_PARALLEL:
        out["comm_pattern"] = job.comm_pattern.value
    if job.tags:
        out["tags"] = list(job.tags)
    if job.priority:
        out["priority"] = job.priority
    return out


def job_from_dict(entry: dict[str, Any], index: int = 0) -> Job:
    """Parse one manifest-format job object (the service submit body).

    Same validation as a manifest entry: required keys, unknown-key
    rejection, typed coercions.  Raises :class:`ManifestError`.
    """
    return _job_from_dict(entry, index)


def job_to_dict(job: Job) -> dict[str, Any]:
    """Serialise one job to its manifest object (round-trips with
    :func:`job_from_dict`; used by the service store and API)."""
    return _job_to_dict(job)


def loads_manifest(text: str) -> list[Job]:
    """Parse a manifest JSON string into jobs sorted by arrival time."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ManifestError(f"invalid JSON: {exc}") from exc
    if not isinstance(doc, dict) or "jobs" not in doc:
        raise ManifestError('manifest must be an object with a "jobs" array')
    jobs_raw = doc["jobs"]
    if not isinstance(jobs_raw, list):
        raise ManifestError('"jobs" must be an array')
    jobs = [_job_from_dict(entry, i) for i, entry in enumerate(jobs_raw)]
    ids = [j.job_id for j in jobs]
    if len(set(ids)) != len(ids):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise ManifestError(f"duplicate job ids: {dupes}")
    return sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))


def load_manifest(path: str | Path) -> list[Job]:
    """Load a manifest file."""
    return loads_manifest(Path(path).read_text())


def dumps_manifest(jobs: Iterable[Job]) -> str:
    """Serialise jobs to manifest JSON (round-trips with ``loads_manifest``)."""
    return json.dumps({"jobs": [_job_to_dict(j) for j in jobs]}, indent=2) + "\n"


def dump_manifest(jobs: Sequence[Job], path: str | Path) -> None:
    Path(path).write_text(dumps_manifest(jobs))
