"""The prototype system (paper Section 5.1 and Appendix A).

The paper's artifact is driven by INI configuration files
(``etc/configs/sys-config.ini`` plus one config per scheduling
algorithm), JSON job manifests, and a main loop that discovers the
topology, schedules arriving jobs and enforces decisions by launching
Caffe with ``CUDA_VISIBLE_DEVICES``/``numactl``.  This package
reproduces that system end to end; with no GPUs present, enforcement
produces the exact command lines (asserted in tests) and execution is
delegated to the simulator clock.
"""

from repro.prototype.config import (
    AlgorithmConfig,
    ConfigError,
    SystemConfig,
    load_algorithm_config,
    load_system_config,
)
from repro.prototype.enforcement import launch_command, launch_environment
from repro.prototype.monitors import NVLinkCounterMonitor, DRAMBandwidthMonitor
from repro.prototype.system import PrototypeSystem, PrototypeRun

__all__ = [
    "AlgorithmConfig",
    "ConfigError",
    "DRAMBandwidthMonitor",
    "NVLinkCounterMonitor",
    "PrototypeRun",
    "PrototypeSystem",
    "SystemConfig",
    "launch_command",
    "launch_environment",
    "load_algorithm_config",
    "load_system_config",
]
