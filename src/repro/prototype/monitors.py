"""Simulated hardware counters (paper Section 5.1).

The prototype samples two counter families:

* NVLink transmit counters via ``nvidia-smi nvlink -i $gpu_id``, from
  which per-link bandwidth is derived;
* DRAM bandwidth via the Power8 PMU events accessed through Perfmon2.

Here the counters are backed by the performance model: a monitor is
attached to a running job and integrates the model's bandwidth series,
so ``read()`` returns monotonically increasing byte counts exactly like
the real tools, and ``bandwidth_gbs()`` differentiates them over the
sampling window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.perf.bandwidth import dram_bandwidth_series, nvlink_bandwidth_series
from repro.perf.model import PerformanceModel
from repro.workload.job import Job


@dataclass
class _CounterSeries:
    times: np.ndarray
    gbs: np.ndarray

    def bytes_until(self, t: float) -> float:
        """Integrated traffic (GB) from 0 to ``t``."""
        if t <= 0:
            return 0.0
        dt = float(self.times[1] - self.times[0]) if len(self.times) > 1 else 1.0
        full = int(min(t / dt, len(self.gbs)))
        total = float(np.sum(self.gbs[:full]) * dt)
        if full < len(self.gbs):
            total += float(self.gbs[full]) * (t - full * dt)
        return total


class NVLinkCounterMonitor:
    """Per-job NVLink transmit counter, sampled like ``nvidia-smi nvlink``."""

    def __init__(
        self,
        perf: PerformanceModel,
        job: Job,
        gpus: tuple[str, ...],
        horizon_s: float = 600.0,
    ) -> None:
        self.job = job
        self.gpus = gpus
        times, gbs = nvlink_bandwidth_series(job, perf, list(gpus), duration_s=horizon_s)
        self._series = _CounterSeries(times, gbs)
        self._last_t = 0.0
        self._last_bytes = 0.0

    def read(self, t: float) -> float:
        """Cumulative transmitted gigabytes at simulated time ``t``."""
        if t < self._last_t:
            raise ValueError("counter read moved backwards in time")
        return self._series.bytes_until(t)

    def bandwidth_gbs(self, t: float) -> float:
        """Average bandwidth since the previous read (the tool's output)."""
        now_bytes = self.read(t)
        dt = t - self._last_t
        if dt <= 0:
            return 0.0
        bw = (now_bytes - self._last_bytes) / dt
        self._last_t = t
        self._last_bytes = now_bytes
        return bw


class DRAMBandwidthMonitor:
    """Per-job DRAM bandwidth derived from simulated Perfmon2 counters."""

    def __init__(
        self,
        perf: PerformanceModel,
        job: Job,
        gpus: tuple[str, ...],
        horizon_s: float = 600.0,
    ) -> None:
        times, gbs = dram_bandwidth_series(job, perf, list(gpus), duration_s=horizon_s)
        self._series = _CounterSeries(times, gbs)

    def bandwidth_gbs(self, t: float) -> float:
        """Instantaneous DRAM bandwidth at time ``t`` (GB/s)."""
        if len(self._series.times) < 2:
            return 0.0
        dt = float(self._series.times[1] - self._series.times[0])
        idx = int(t / dt)
        if not 0 <= idx < len(self._series.gbs):
            return 0.0
        return float(self._series.gbs[idx])
