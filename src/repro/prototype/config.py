"""INI configuration files (paper Appendix A.3).

``sys-config.ini`` selects simulation vs prototype mode, the machine
model and the manifest to load; one ``<algo>-config.ini`` per scheduler
selects the policy and its utility weights.  "If many are provided, the
system will execute multiple runs configured with different schedule
algorithms."
"""

from __future__ import annotations

import configparser
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.utility import UtilityParams


class ConfigError(ValueError):
    """Raised for malformed configuration files."""


@dataclass(frozen=True)
class SystemConfig:
    """Contents of ``sys-config.ini``."""

    simulation: bool = True
    machine: str = "power8-minsky"  # power8-minsky | dgx1 | power8-pcie-k80
    n_machines: int = 1
    manifest_path: str | None = None
    scheduler_interval_s: float = 1.0

    def topology_factory(self):
        """Builder callable for the configured machine/cluster."""
        from repro.topology import builders

        per_machine = {
            "power8-minsky": builders.power8_minsky,
            "dgx1": builders.dgx1,
            "power8-pcie-k80": builders.power8_pcie_k80,
        }
        try:
            base = per_machine[self.machine]
        except KeyError:
            raise ConfigError(f"unknown machine model {self.machine!r}") from None
        if self.n_machines == 1:
            return base
        return lambda: builders.cluster(self.n_machines, base)


@dataclass(frozen=True)
class AlgorithmConfig:
    """Contents of one ``<algo>-config.ini``."""

    name: str  # FCFS | BF | TOPO-AWARE | TOPO-AWARE-P | RANDOM
    alpha_cc: float = 1.0 / 3.0
    alpha_b: float = 1.0 / 3.0
    alpha_d: float = 1.0 / 3.0
    max_postponements: int | None = None

    def utility_params(self) -> UtilityParams:
        return UtilityParams(
            alpha_cc=self.alpha_cc, alpha_b=self.alpha_b, alpha_d=self.alpha_d
        )

    def make_scheduler(self):
        from repro.schedulers import make_scheduler

        kwargs = {}
        if self.name.upper().replace("_", "-") == "TOPO-AWARE-P":
            kwargs["max_postponements"] = self.max_postponements
        return make_scheduler(self.name, **kwargs)


def _read_ini(path: str | Path) -> configparser.ConfigParser:
    parser = configparser.ConfigParser()
    text = Path(path).read_text()
    try:
        parser.read_string(text)
    except configparser.Error as exc:
        raise ConfigError(f"{path}: {exc}") from exc
    return parser


def load_system_config(path: str | Path) -> SystemConfig:
    """Parse ``sys-config.ini``."""
    parser = _read_ini(path)
    if not parser.has_section("system"):
        raise ConfigError(f"{path}: missing [system] section")
    section = parser["system"]
    try:
        return SystemConfig(
            simulation=section.getboolean("simulation", fallback=True),
            machine=section.get("machine", fallback="power8-minsky"),
            n_machines=section.getint("machines", fallback=1),
            manifest_path=section.get("manifest", fallback=None),
            scheduler_interval_s=section.getfloat(
                "scheduler_interval", fallback=1.0
            ),
        )
    except ValueError as exc:
        raise ConfigError(f"{path}: {exc}") from exc


def load_algorithm_config(path: str | Path) -> AlgorithmConfig:
    """Parse one ``<algo>-config.ini``."""
    parser = _read_ini(path)
    if not parser.has_section("scheduler"):
        raise ConfigError(f"{path}: missing [scheduler] section")
    section = parser["scheduler"]
    name = section.get("algorithm", fallback=None)
    if not name:
        raise ConfigError(f"{path}: [scheduler] needs an 'algorithm' key")
    try:
        alphas = (
            section.getfloat("alpha_cc", fallback=1.0 / 3.0),
            section.getfloat("alpha_b", fallback=1.0 / 3.0),
            section.getfloat("alpha_d", fallback=1.0 / 3.0),
        )
        max_post = section.getint("max_postponements", fallback=0) or None
    except ValueError as exc:
        raise ConfigError(f"{path}: {exc}") from exc
    cfg = AlgorithmConfig(
        name=name,
        alpha_cc=alphas[0],
        alpha_b=alphas[1],
        alpha_d=alphas[2],
        max_postponements=max_post,
    )
    cfg.utility_params()  # validate weights eagerly
    return cfg


def write_sample_configs(directory: str | Path) -> list[Path]:
    """Write the sample config set the paper ships with its artifact."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    sys_path = directory / "sys-config.ini"
    sys_path.write_text(
        "[system]\n"
        "simulation = true\n"
        "machine = power8-minsky\n"
        "machines = 1\n"
        "scheduler_interval = 1.0\n"
    )
    out = [sys_path]
    for algo in ("fcfs", "bf", "topo-aware", "topo-aware-p"):
        p = directory / f"{algo}-config.ini"
        p.write_text(
            "[scheduler]\n"
            f"algorithm = {algo.upper()}\n"
            "alpha_cc = 0.3333333333\n"
            "alpha_b = 0.3333333333\n"
            "alpha_d = 0.3333333334\n"
        )
        out.append(p)
    return out
