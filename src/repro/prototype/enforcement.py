"""Placement enforcement (paper Section 5.1).

"For enforcing the decisions, before executing any application, the
system first defines the order of the GPU IDs by exporting
``CUDA_DEVICE_ORDER=PCI_BUS_ID``, and then, for each application, it
exposes only the specified GPU list from the scheduler decisions using
``CUDA_VISIBLE_DEVICES=$gpu_list``.  For preventing performance
variability related to NUMA remote memory access, the applications with
only GPUs in the same socket are bound to the socket using
``numactl``."

With no GPUs present the command lines are generated but not executed;
tests assert them literally.
"""

from __future__ import annotations

import shlex
from typing import Mapping, Sequence

from repro.topology.graph import TopologyGraph
from repro.workload.job import Job

#: Caffe invocation template used by the workload manifest scripts.
DEFAULT_TRAIN_COMMAND = "caffe train --solver=solvers/{model}_b{batch}.prototxt"


def launch_environment(
    topo: TopologyGraph, gpus: Sequence[str]
) -> dict[str, str]:
    """Environment variables enforcing a GPU allocation."""
    if not gpus:
        raise ValueError("empty GPU allocation")
    indices = sorted(topo.gpu_index_of(g) for g in gpus)
    return {
        "CUDA_DEVICE_ORDER": "PCI_BUS_ID",
        "CUDA_VISIBLE_DEVICES": ",".join(str(i) for i in indices),
    }


def numa_binding(topo: TopologyGraph, gpus: Sequence[str]) -> str | None:
    """``numactl`` prefix when all GPUs share one socket, else ``None``."""
    sockets = {topo.socket_of(g) for g in gpus}
    if len(sockets) != 1:
        return None
    socket = sockets.pop()
    machine = topo.machine_of(socket)
    node_index = topo.sockets(machine=machine).index(socket)
    return f"numactl --cpunodebind={node_index} --membind={node_index}"


def launch_command(
    topo: TopologyGraph,
    job: Job,
    gpus: Sequence[str],
    command_template: str = DEFAULT_TRAIN_COMMAND,
) -> str:
    """Full shell line launching a job on its allocation.

    ``command_template`` may reference ``{model}``, ``{batch}``,
    ``{gpus}`` and ``{iterations}``.
    """
    env = launch_environment(topo, gpus)
    body = command_template.format(
        model=job.model.value,
        batch=job.batch_size,
        gpus=env["CUDA_VISIBLE_DEVICES"],
        iterations=job.iterations,
    )
    if "--gpu" not in body:
        body += f" --gpu={env['CUDA_VISIBLE_DEVICES']}"
    prefix = " ".join(
        f"{k}={shlex.quote(v)}" for k, v in sorted(env.items())
    )
    binding = numa_binding(topo, gpus)
    if binding:
        return f"{prefix} {binding} {body}"
    return f"{prefix} {body}"


def enforcement_plan(
    topo: TopologyGraph,
    placements: Mapping[str, tuple[Job, Sequence[str]]],
) -> dict[str, str]:
    """Command lines for a batch of placements (job id -> shell line)."""
    return {
        job_id: launch_command(topo, job, gpus)
        for job_id, (job, gpus) in sorted(placements.items())
    }
