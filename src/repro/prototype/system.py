"""The prototype main loop (paper Section 5.1 / Appendix A.3).

"After providing the needed configuration files and workload manifests,
to execute the system is only required to run the main file."

:class:`PrototypeSystem` ties everything together: load the system
config, discover (build) the topology, read the job manifest, and run
the configured scheduling algorithm(s).  Execution is delegated to the
simulator clock (the environment has no GPUs), but the prototype and
the simulator share one :class:`~repro.sim.cluster.ClusterState` — the
same allocation, running-job and health bookkeeping — and every
placement flows through :class:`EnforcementObserver`, which emits the
literal launch command line the real system would execute and attaches
a per-job NVLink monitor, so the prototype code path is exercised end
to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.prototype.config import (
    AlgorithmConfig,
    SystemConfig,
    load_algorithm_config,
    load_system_config,
)
from repro.prototype.enforcement import launch_command
from repro.prototype.monitors import NVLinkCounterMonitor
from repro.sim.cluster import ClusterState
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.hooks import BaseObserver
from repro.workload.job import Job
from repro.workload.manifest import load_manifest


class EnforcementObserver(BaseObserver):
    """Turns placements into enforcement commands and monitors, live.

    ``on_place`` renders the ``CUDA_VISIBLE_DEVICES``/``numactl``
    launch line and attaches an NVLink counter monitor; a job killed by
    a machine failure has its command and monitor revoked until it is
    re-placed (cold restart).
    """

    def __init__(self, cluster: ClusterState) -> None:
        self.cluster = cluster
        self.commands: dict[str, str] = {}  # job id -> shell line
        self.monitors: dict[str, NVLinkCounterMonitor] = {}

    def on_place(self, t, job, solution, solo_exec_time, postponements):
        gpus = tuple(sorted(solution.gpus))
        self.commands[job.job_id] = launch_command(self.cluster.topo, job, gpus)
        self.monitors[job.job_id] = NVLinkCounterMonitor(
            self.cluster.perf, job, gpus
        )

    def on_requeue(self, t, job):
        self.commands.pop(job.job_id, None)
        self.monitors.pop(job.job_id, None)


@dataclass
class PrototypeRun:
    """Outcome of one algorithm's run over the manifest."""

    algorithm: AlgorithmConfig
    result: SimulationResult
    commands: dict[str, str] = field(default_factory=dict)  # job id -> shell line
    monitors: dict[str, NVLinkCounterMonitor] = field(default_factory=dict)


class PrototypeSystem:
    """Config-driven runner executing one run per algorithm config."""

    def __init__(
        self,
        system_config: SystemConfig,
        algorithms: Sequence[AlgorithmConfig],
        jobs: Sequence[Job] | None = None,
    ) -> None:
        if not algorithms:
            raise ValueError("at least one algorithm config is required")
        self.system_config = system_config
        self.algorithms = list(algorithms)
        if jobs is None:
            if system_config.manifest_path is None:
                raise ValueError("no jobs given and no manifest configured")
            jobs = load_manifest(system_config.manifest_path)
        self.jobs = list(jobs)

    @classmethod
    def from_config_dir(
        cls, directory: str | Path, jobs: Sequence[Job] | None = None
    ) -> "PrototypeSystem":
        """Load ``sys-config.ini`` + every ``*-config.ini`` in a directory."""
        directory = Path(directory)
        sys_path = directory / "sys-config.ini"
        if not sys_path.exists():
            raise FileNotFoundError(sys_path)
        system_config = load_system_config(sys_path)
        algo_paths = sorted(
            p
            for p in directory.glob("*-config.ini")
            if p.name != "sys-config.ini"
        )
        algorithms = [load_algorithm_config(p) for p in algo_paths]
        return cls(system_config, algorithms, jobs)

    def run(self) -> list[PrototypeRun]:
        """Execute every configured algorithm over the same manifest."""
        runs = []
        factory = self.system_config.topology_factory()
        for algo in self.algorithms:
            topo = factory()
            cluster = ClusterState(topo, params=algo.utility_params())
            enforcement = EnforcementObserver(cluster)
            sim = Simulator(
                topo,
                algo.make_scheduler(),
                self.jobs,
                cluster=cluster,
                observers=[enforcement],
            )
            result = sim.run()
            runs.append(
                PrototypeRun(
                    algorithm=algo,
                    result=result,
                    commands=enforcement.commands,
                    monitors=enforcement.monitors,
                )
            )
        return runs
