"""The prototype main loop (paper Section 5.1 / Appendix A.3).

"After providing the needed configuration files and workload manifests,
to execute the system is only required to run the main file."

:class:`PrototypeSystem` ties everything together: load the system
config, discover (build) the topology, read the job manifest, and run
the configured scheduling algorithm(s).  Execution is delegated to the
simulator clock (the environment has no GPUs), but every placement also
produces the literal enforcement command line the real system would
execute, and per-job NVLink monitors are attached, so the prototype
code path is exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.prototype.config import (
    AlgorithmConfig,
    SystemConfig,
    load_algorithm_config,
    load_system_config,
)
from repro.prototype.enforcement import launch_command
from repro.prototype.monitors import NVLinkCounterMonitor
from repro.sim.engine import SimulationResult, Simulator
from repro.workload.job import Job
from repro.workload.manifest import load_manifest


@dataclass
class PrototypeRun:
    """Outcome of one algorithm's run over the manifest."""

    algorithm: AlgorithmConfig
    result: SimulationResult
    commands: dict[str, str] = field(default_factory=dict)  # job id -> shell line
    monitors: dict[str, NVLinkCounterMonitor] = field(default_factory=dict)


class PrototypeSystem:
    """Config-driven runner executing one run per algorithm config."""

    def __init__(
        self,
        system_config: SystemConfig,
        algorithms: Sequence[AlgorithmConfig],
        jobs: Sequence[Job] | None = None,
    ) -> None:
        if not algorithms:
            raise ValueError("at least one algorithm config is required")
        self.system_config = system_config
        self.algorithms = list(algorithms)
        if jobs is None:
            if system_config.manifest_path is None:
                raise ValueError("no jobs given and no manifest configured")
            jobs = load_manifest(system_config.manifest_path)
        self.jobs = list(jobs)

    @classmethod
    def from_config_dir(
        cls, directory: str | Path, jobs: Sequence[Job] | None = None
    ) -> "PrototypeSystem":
        """Load ``sys-config.ini`` + every ``*-config.ini`` in a directory."""
        directory = Path(directory)
        sys_path = directory / "sys-config.ini"
        if not sys_path.exists():
            raise FileNotFoundError(sys_path)
        system_config = load_system_config(sys_path)
        algo_paths = sorted(
            p
            for p in directory.glob("*-config.ini")
            if p.name != "sys-config.ini"
        )
        algorithms = [load_algorithm_config(p) for p in algo_paths]
        return cls(system_config, algorithms, jobs)

    def run(self) -> list[PrototypeRun]:
        """Execute every configured algorithm over the same manifest."""
        runs = []
        factory = self.system_config.topology_factory()
        for algo in self.algorithms:
            topo = factory()
            sim = Simulator(
                topo,
                algo.make_scheduler(),
                self.jobs,
                params=algo.utility_params(),
            )
            result = sim.run()
            commands: dict[str, str] = {}
            monitors: dict[str, NVLinkCounterMonitor] = {}
            for rec in result.records:
                if rec.gpus:
                    commands[rec.job.job_id] = launch_command(
                        topo, rec.job, rec.gpus
                    )
                    monitors[rec.job.job_id] = NVLinkCounterMonitor(
                        sim.perf, rec.job, rec.gpus
                    )
            runs.append(
                PrototypeRun(
                    algorithm=algo,
                    result=result,
                    commands=commands,
                    monitors=monitors,
                )
            )
        return runs
