"""Command-line interface (the paper artifact's ``python main.py``).

Subcommands::

    repro run --config-dir DIR [--manifest FILE]   # prototype workflow
    repro simulate --jobs N --machines M --scheduler NAME [...]
    repro compare --jobs N --machines M [...]      # all four policies
    repro topo --machine NAME [--matrix | --numactl]
    repro figures [--out DIR]                      # regenerate evaluation
    repro serve [--port P --store FILE ...]        # scheduler service daemon
    repro top --url URL [--interval S]             # live terminal dashboard
    repro soak [--minutes N] [--url URL]           # burst-load soak harness
    repro submit MANIFEST --url URL                # POST jobs to a daemon
    repro cancel JOB_ID --url URL                  # cancel a submitted job
    repro status --url URL [--job ID]              # job table / one job
    repro replay [MANIFEST] --url URL              # drive a trace via the API
    repro trace summarize TRACE.jsonl [--job ID]   # decision timelines
    repro trace export TRACE.jsonl [--out F]       # Perfetto/Chrome JSON
    repro trace profile TRACE.jsonl [--top N]      # per-phase profiler
    repro explain job ID DECISIONS.jsonl           # one job's decision chain
    repro explain round N DECISIONS.jsonl          # one round's decisions
    repro explain list DECISIONS.jsonl             # journal index table

``simulate`` and ``compare`` accept telemetry sinks —
``--metrics-out`` (Prometheus text, or JSON with a ``.json`` suffix),
``--events-out`` (schema-versioned JSONL lifecycle events),
``--trace-out`` (JSONL decision spans, fed to ``repro trace
summarize``) and ``--decisions-out`` (per-decision provenance records,
fed to ``repro explain``) — plus the live operational layer:
``--serve PORT`` starts the introspection endpoint (``/metrics``,
``/healthz``, ``/state``, ``/alerts``, and with ``--decisions-out``
also ``/decisions``, ``/explain/<id>`` and the ``/events`` SSE stream)
for the duration of the run, and ``--watchdog`` / ``--slo-rules FILE``
attach the SLO watchdog.  JSONL sinks and readers treat a ``.gz``
suffix as gzip transparently.  Telemetry is tap-only: results are
bit-identical with or without any of these flags (pinned by the
fast-path A/B equivalence tests).

Everything is also available as a library; the CLI is a thin veneer
over :mod:`repro.prototype`, :mod:`repro.sim`, :mod:`repro.obs` and
:mod:`repro.analysis`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

MACHINE_CHOICES = (
    "power8-minsky",
    "dgx1",
    "dgx2",
    "power8-pcie-k80",
    "power9-ac922",
)
SCHEDULER_CHOICES = (
    "FCFS",
    "BF",
    "SJF",
    "EASY-BACKFILL",
    "TOPO-AWARE",
    "TOPO-AWARE-P",
    "TOPO-AWARE-PM",
    "RANDOM",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Topology-aware GPU scheduling (SC'17 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the prototype from a config directory")
    run.add_argument("--config-dir", required=True, type=Path)
    run.add_argument("--manifest", type=Path, default=None)

    for name in ("simulate", "compare"):
        p = sub.add_parser(
            name,
            help=(
                "simulate one scheduler" if name == "simulate"
                else "compare all four schedulers"
            ),
        )
        p.add_argument("--jobs", type=int, default=100)
        p.add_argument("--machines", type=int, default=5)
        p.add_argument("--machine", choices=MACHINE_CHOICES, default="power8-minsky")
        p.add_argument("--seed", type=int, default=42)
        p.add_argument("--arrival-rate", type=float, default=2.2,
                       help="jobs per minute (Poisson lambda)")
        p.add_argument("--gantt", action="store_true",
                       help="also print a live-collected Gantt chart"
                       + (" per policy" if name == "compare" else ""))
        p.add_argument("--metrics-out", type=Path, default=None, metavar="FILE",
                       help="write metrics (Prometheus text; .json for JSON)")
        p.add_argument("--events-out", type=Path, default=None, metavar="FILE",
                       help="write the structured JSONL event log")
        p.add_argument("--trace-out", type=Path, default=None, metavar="FILE",
                       help="record decision-path spans to a JSONL trace")
        p.add_argument("--decisions-out", type=Path, default=None,
                       metavar="FILE",
                       help="journal per-decision provenance records "
                       "(JSONL, for `repro explain`; .gz compresses)")
        p.add_argument("--serve", type=int, default=None, metavar="PORT",
                       help="serve live introspection endpoints "
                       "(/metrics /healthz /state /alerts) on this port "
                       "(0 picks a free port)")
        p.add_argument("--serve-linger", type=float, default=0.0,
                       metavar="SECONDS",
                       help="keep the introspection server up this long "
                       "after the run finishes (scrape window)")
        p.add_argument("--watchdog", action="store_true",
                       help="evaluate the default SLO watchdog rules at "
                       "every decision round")
        p.add_argument("--slo-rules", type=Path, default=None, metavar="FILE",
                       help="JSON/TOML watchdog rule file (implies "
                       "--watchdog)")
        if name == "simulate":
            p.add_argument("--scheduler", choices=SCHEDULER_CHOICES,
                           type=lambda s: s.upper(), default="TOPO-AWARE-P")
            p.add_argument("--no-incremental-drb", action="store_true",
                           help="disable the incremental DRB split cache "
                           "(placements are bit-identical either way)")
            p.add_argument("--no-prefilter", action="store_true",
                           help="disable the top-k candidate prefilter "
                           "(placements are bit-identical either way)")

    topo = sub.add_parser("topo", help="print a machine topology")
    topo.add_argument("--machine", choices=MACHINE_CHOICES, default="power8-minsky")
    group = topo.add_mutually_exclusive_group()
    group.add_argument("--matrix", action="store_true",
                       help="nvidia-smi topo --matrix format")
    group.add_argument("--numactl", action="store_true",
                       help="numactl --hardware format")

    figures = sub.add_parser("figures", help="regenerate the paper's evaluation")
    figures.add_argument("--out", type=Path, default=None,
                         help="directory for result text files")
    figures.add_argument("--svg", type=Path, default=None,
                         help="also render figures 4/5/6 as SVG here")

    bench = sub.add_parser(
        "bench", help="time scheduler decision rounds (perf trajectory)"
    )
    bench.add_argument("--scale", choices=("fig10", "fig11"), default="fig10",
                       help="workload scale (fig10: 100 jobs/5 machines; "
                       "fig11: 300 jobs on the paper's 1000-machine "
                       "scenario-2 cluster)")
    bench.add_argument("--jobs", type=int, default=None,
                       help="override the scale's job count")
    bench.add_argument("--machines", type=int, default=None,
                       help="override the scale's machine count")
    bench.add_argument("--repeats", type=int, default=3,
                       help="runs per scheduler; best is reported")
    bench.add_argument("--schedulers", default=None, metavar="A,B,...",
                       help="comma-separated policies (default: FCFS,BF,"
                       "TOPO-AWARE,TOPO-AWARE-P)")
    bench.add_argument("--quick", action="store_true",
                       help="CI mode: one repeat, TOPO-AWARE + FCFS only")
    bench.add_argument("--no-verify", action="store_true",
                       help="skip the fast-path equivalence check")
    bench.add_argument("--out", type=Path, default=None, metavar="FILE",
                       help="write the BENCH_*.json artifact here")
    bench.add_argument("--check-against", type=Path, default=None,
                       metavar="BENCH.json",
                       help="fail when slower than this committed baseline")
    bench.add_argument("--threshold", type=float, default=3.0,
                       help="allowed slowdown vs the baseline (default 3.0x)")
    bench.add_argument("--no-fastpath", action="store_true",
                       help="skip the incremental-DRB/prefilter on-vs-off "
                       "timing section")
    bench.add_argument("--min-speedup", type=float, default=None,
                       metavar="X",
                       help="with --check-against: fail when the measured "
                       "fast-path on/off speedup falls below X "
                       "(load-independent interleaved ratio)")
    bench.add_argument("--seed-baseline", type=float, default=None,
                       metavar="SECONDS",
                       help="externally measured mean decision time of the "
                       "pre-fast-path engine, recorded in the artifact "
                       "with the derived speedup-vs-seed")

    serve = sub.add_parser(
        "serve", help="run the scheduler service daemon (submission API)"
    )
    serve.add_argument("--machines", type=int, default=5)
    serve.add_argument("--machine", choices=MACHINE_CHOICES,
                       default="power8-minsky")
    serve.add_argument("--scheduler", choices=SCHEDULER_CHOICES,
                       type=lambda s: s.upper(), default="TOPO-AWARE")
    serve.add_argument("--port", type=int, default=8642,
                       help="HTTP port (0 picks a free port)")
    serve.add_argument("--store", type=Path, default=Path("repro_service.db"),
                       help="sqlite journal (queue survives restarts); "
                       "':memory:' disables durability")
    serve.add_argument("--max-queue-depth", type=int, default=100_000,
                       help="admission backpressure threshold")
    serve.add_argument("--decisions-out", type=Path, default=None,
                       metavar="FILE",
                       help="write the decision-provenance journal at "
                       "shutdown (JSONL; .gz compresses)")
    serve.add_argument("--watchdog", action="store_true",
                       help="attach the SLO watchdog (default rules) — "
                       "/alerts carries live state, soak verdicts work")
    serve.add_argument("--slo-rules", type=Path, default=None, metavar="FILE",
                       help="JSON/TOML watchdog rule file (implies "
                       "--watchdog; supports windowed rules)")

    top = sub.add_parser(
        "top", help="htop-style live dashboard for a running daemon"
    )
    top.add_argument("--url", default="http://127.0.0.1:8642",
                     help="daemon base URL")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between repaints")
    top.add_argument("--once", action="store_true",
                     help="render a single frame and exit (no ANSI clear; "
                     "pipe-friendly)")

    soak = sub.add_parser(
        "soak",
        help="replay a bursty trace against a daemon for N wall-clock "
        "minutes under the windowed SLO watchdog",
    )
    soak.add_argument("--minutes", type=float, default=5.0,
                      help="wall-clock soak duration")
    soak.add_argument("--url", default=None,
                      help="drive this daemon (default: start an "
                      "in-process one, watchdog attached)")
    soak.add_argument("--window", type=float, default=10.0,
                      help="seconds per SLO observation window")
    soak.add_argument("--jobs-per-burst", type=int, default=20)
    soak.add_argument("--burst-every", type=float, default=5.0,
                      help="seconds between submission bursts")
    soak.add_argument("--seed", type=int, default=42)
    soak.add_argument("--arrival-rate", type=float, default=2.2,
                      help="jobs per minute (Poisson lambda) inside a burst")
    soak.add_argument("--machines", type=int, default=5,
                      help="in-process daemon cluster size (ignored "
                      "with --url)")
    soak.add_argument("--machine", choices=MACHINE_CHOICES,
                      default="power8-minsky")
    soak.add_argument("--scheduler", choices=SCHEDULER_CHOICES,
                      type=lambda s: s.upper(), default="TOPO-AWARE")
    soak.add_argument("--slo-rules", type=Path, default=None, metavar="FILE",
                      help="JSON/TOML rule file for the in-process "
                      "daemon's watchdog")
    soak.add_argument("--out", type=Path, default=Path("."),
                      help="SOAK_*.json artifact path or directory "
                      "(default: current directory)")

    submit = sub.add_parser(
        "submit", help="submit a job manifest to a running daemon"
    )
    submit.add_argument("manifest", type=Path,
                        help="JSON job manifest (repro.workload.manifest)")
    submit.add_argument("--url", default="http://127.0.0.1:8642",
                        help="daemon base URL")
    submit.add_argument("--priority", type=int, default=0,
                        help="feeding priority (higher drains first)")

    cancel = sub.add_parser("cancel", help="cancel a job on a running daemon")
    cancel.add_argument("job_id")
    cancel.add_argument("--url", default="http://127.0.0.1:8642")

    status = sub.add_parser(
        "status", help="job table (or one job) from a running daemon"
    )
    status.add_argument("--url", default="http://127.0.0.1:8642")
    status.add_argument("--job", default=None, help="only this job id")

    replay = sub.add_parser(
        "replay", help="replay a trace through the daemon's submission API"
    )
    replay.add_argument("manifest", type=Path, nargs="?", default=None,
                        help="JSON job manifest (default: a generated "
                        "fig10-style workload)")
    replay.add_argument("--url", default="http://127.0.0.1:8642")
    replay.add_argument("--jobs", type=int, default=100,
                        help="generated-workload size (no manifest)")
    replay.add_argument("--seed", type=int, default=42)
    replay.add_argument("--arrival-rate", type=float, default=2.2)
    replay.add_argument("--priority", type=int, default=0)
    replay.add_argument("--live", action="store_true",
                        help="submit against the running engine instead of "
                        "pause/submit-all/resume")
    replay.add_argument("--no-wait", action="store_true",
                        help="do not wait for submitted jobs to finish")
    replay.add_argument("--timeout", type=float, default=120.0,
                        help="seconds to wait for terminal states")

    report = sub.add_parser(
        "report", help="generate the markdown reproduction report"
    )
    report.add_argument("--out", type=Path, default=None,
                        help="write to a file instead of stdout")

    trace = sub.add_parser("trace", help="inspect recorded decision traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summarize = trace_sub.add_parser(
        "summarize", help="per-job decision timeline from a trace file"
    )
    trace_summarize.add_argument("trace_file", type=Path,
                                 help="JSONL trace written by --trace-out")
    trace_summarize.add_argument("--job", default=None,
                                 help="only this job id")
    trace_export = trace_sub.add_parser(
        "export",
        help="convert a trace for Perfetto / chrome://tracing",
    )
    trace_export.add_argument("trace_file", type=Path,
                              help="JSONL trace written by --trace-out")
    trace_export.add_argument("--format", choices=("chrome",),
                              default="chrome",
                              help="output format (Chrome Trace Event JSON)")
    trace_export.add_argument("--out", type=Path, default=None, metavar="FILE",
                              help="output file (default: input with a "
                              ".chrome.json suffix)")
    trace_profile = trace_sub.add_parser(
        "profile",
        help="per-phase self/total times, critical paths, slowest rounds",
    )
    trace_profile.add_argument("trace_file", type=Path,
                               help="JSONL trace written by --trace-out")
    trace_profile.add_argument("--top", type=int, default=10,
                               help="rows in the slowest-rounds/heaviest-jobs "
                               "tables")
    trace_profile.add_argument("--job", default=None,
                               help="restrict round details to this job id")

    explain = sub.add_parser(
        "explain",
        help="render decision provenance (why the scheduler chose)",
    )
    explain_sub = explain.add_subparsers(dest="explain_command", required=True)
    explain_job = explain_sub.add_parser(
        "job", help="the full decision chain for one job"
    )
    explain_job.add_argument("job_id")
    explain_job.add_argument("decisions_file", type=Path,
                             help="JSONL journal written by --decisions-out "
                             "(.gz read transparently)")
    explain_round = explain_sub.add_parser(
        "round", help="every decision one scheduling round made"
    )
    explain_round.add_argument("round_no", type=int)
    explain_round.add_argument("decisions_file", type=Path,
                               help="JSONL journal written by --decisions-out "
                               "(.gz read transparently)")
    explain_list = explain_sub.add_parser(
        "list", help="one-line-per-decision index of a journal"
    )
    explain_list.add_argument("decisions_file", type=Path,
                              help="JSONL journal written by --decisions-out "
                              "(.gz read transparently)")
    return parser


def _builder_for(machine: str):
    from repro.topology import builders

    return {
        "power8-minsky": builders.power8_minsky,
        "dgx1": builders.dgx1,
        "dgx2": builders.dgx2,
        "power8-pcie-k80": builders.power8_pcie_k80,
        "power9-ac922": builders.power9_ac922,
    }[machine]


def _generate(args) -> list:
    from repro.workload.generator import GeneratorConfig, WorkloadGenerator

    cfg = GeneratorConfig(arrival_rate_per_min=args.arrival_rate)
    return WorkloadGenerator(cfg, seed=args.seed).generate(args.jobs)


def _topology_factory(args):
    from repro.topology.builders import cluster

    base = _builder_for(args.machine)
    if args.machines == 1:
        return base
    return lambda: cluster(args.machines, base)


def _cmd_run(args) -> int:
    from repro.analysis.tables import format_timeline
    from repro.prototype.system import PrototypeSystem
    from repro.sim.metrics import comparison_table
    from repro.workload.manifest import load_manifest

    jobs = load_manifest(args.manifest) if args.manifest else None
    system = PrototypeSystem.from_config_dir(args.config_dir, jobs=jobs)
    runs = system.run()
    print(comparison_table([r.result for r in runs]))
    print()
    for run in runs:
        print(format_timeline(run.result))
        print()
    return 0


class _TelemetrySinks:
    """CLI-side lifecycle for the telemetry and operational flags.

    Builds one shared registry/event log, hands out per-policy
    :class:`TelemetryObserver` / :class:`Watchdog` / snapshot taps,
    activates span recording only when a trace sink was requested,
    starts the ``--serve`` introspection server for the duration of
    the run, and flushes every requested file once the runs finish.
    With no flags set it stays completely inert (no observers
    attached, tracing disabled, no sockets opened).

    Raises :class:`ValueError` from the constructor when ``--slo-rules``
    names a missing or invalid file (the commands turn that into a
    one-line error and exit code 2).
    """

    def __init__(self, args) -> None:
        from repro.obs import EventLog, MetricsRegistry
        from repro.obs import trace as trace_mod

        self.metrics_out = args.metrics_out
        self.events_out = args.events_out
        self.trace_out = args.trace_out
        self.decisions_out = args.decisions_out
        self.serve_port = args.serve
        self.serve_linger = args.serve_linger
        self.watchdog_enabled = bool(
            args.watchdog or args.slo_rules is not None or args.serve is not None
        )
        self.enabled = (
            any((self.metrics_out, self.events_out, self.trace_out,
                 self.decisions_out))
            or self.watchdog_enabled
            or self.serve_port is not None
        )
        self.registry = MetricsRegistry()
        self.event_log = EventLog()
        self.recorder = (
            trace_mod.SpanRecorder() if self.trace_out is not None else None
        )
        self._trace_mod = trace_mod
        self.rules = None
        if self.watchdog_enabled:
            from repro.obs.alerts import DEFAULT_RULES, load_rules

            if args.slo_rules is not None:
                try:
                    self.rules = load_rules(args.slo_rules)
                except (OSError, ValueError) as exc:
                    raise ValueError(f"--slo-rules: {exc}") from None
            else:
                self.rules = DEFAULT_RULES
        self.publisher = None
        self.server = None
        if self.serve_port is not None:
            from repro.obs.server import IntrospectionServer
            from repro.obs.state import SnapshotPublisher

            self.publisher = SnapshotPublisher()
            self.server = IntrospectionServer(
                self.publisher, self.registry, port=self.serve_port
            )
        self.watchdogs: dict[str, object] = {}
        self.decision_recorders: dict[str, object] = {}

    def observers(self, scheduler: str, total_gpus: int, n_jobs: int) -> tuple:
        if not self.enabled:
            return ()
        from repro.obs.telemetry import TelemetryObserver

        observer = TelemetryObserver(
            self.registry,
            self.event_log,
            scheduler=scheduler,
            total_gpus=total_gpus,
        )
        observer.run_start(n_jobs)
        taps: list = [observer]
        if self.watchdog_enabled:
            from repro.obs.alerts import Watchdog

            # after the telemetry observer, so registry-derived signals
            # are fresh when rules evaluate at each round boundary
            watchdog = Watchdog(
                self.registry,
                self.event_log,
                self.rules,
                scheduler=scheduler,
            )
            self.watchdogs[scheduler] = watchdog
            if self.server is not None:
                # /alerts follows the policy currently running
                self.server.watchdog = watchdog
            taps.append(watchdog)
        if self.decisions_out is not None:
            from repro.obs.provenance import DecisionRecorder

            decision_rec = DecisionRecorder(
                journal=True, registry=self.registry, scheduler=scheduler
            )
            self.decision_recorders[scheduler] = decision_rec
            if self.server is not None:
                # /decisions, /explain/<id> and /events follow the
                # policy currently running, like /alerts
                self.server.recorder = decision_rec
            taps.append(decision_rec)
        if self.publisher is not None:
            from repro.obs.state import SnapshotObserver

            taps.append(
                SnapshotObserver(
                    self.publisher,
                    scheduler=scheduler,
                    total_gpus=total_gpus,
                )
            )
        return tuple(taps)

    def __enter__(self):
        if self.recorder is not None:
            self._trace_mod.install(self.recorder)
        if self.server is not None:
            self.server.start()
            extra = (
                " /decisions /explain/<id> /events"
                if self.decisions_out is not None
                else ""
            )
            print(
                f"introspection server listening on {self.server.url} "
                f"(endpoints: /metrics /healthz /state /alerts{extra})"
            )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.recorder is not None:
            self._trace_mod.install(None)
        if self.server is not None:
            if exc_type is None and self.serve_linger > 0:
                import time

                print(
                    f"introspection server lingering "
                    f"{self.serve_linger:g}s before shutdown"
                )
                time.sleep(self.serve_linger)
            self.server.stop()
        return False

    def flush(self) -> None:
        from repro.obs import write_metrics

        if self.metrics_out is not None:
            write_metrics(self.registry, self.metrics_out)
            print(f"metrics written to {self.metrics_out}")
        if self.events_out is not None:
            self.event_log.write(self.events_out)
            print(f"{len(self.event_log)} events written to {self.events_out}")
        if self.trace_out is not None:
            self.recorder.write(self.trace_out)
            print(
                f"{len(self.recorder.spans)} spans written to {self.trace_out}"
            )
        if self.decisions_out is not None:
            from repro.obs.io import open_text

            total = 0
            with open_text(self.decisions_out, "w") as fp:
                for decision_rec in self.decision_recorders.values():
                    for line in decision_rec.journal:
                        fp.write(line + "\n")
                        total += 1
            print(
                f"{total} decision records written to {self.decisions_out}"
            )

    # ------------------------------------------------------------------
    # end-of-run operational summaries
    # ------------------------------------------------------------------
    def wait_quantiles(self, scheduler: str) -> dict[str, float] | None:
        """p50/p95/p99 of the queue-wait histogram for one policy."""
        if not self.enabled or "repro_job_waiting_seconds" not in self.registry:
            return None
        hist = self.registry.get("repro_job_waiting_seconds")
        if hist.count(scheduler=scheduler) == 0:
            return None
        return {
            f"queue_wait_p{int(q * 100)}_s": hist.quantile(q, scheduler=scheduler)
            for q in (0.5, 0.95, 0.99)
        }

    def alert_lines(self, result) -> list[str]:
        """Printable end-of-run digest of the watchdog's firings."""
        if not self.watchdog_enabled:
            return []
        lines = [f"{'slo_alerts_fired':>22}: {len(result.alerts)}"]
        for alert in result.alerts:
            value = alert["value"]
            shown = f"{value:.4g}" if isinstance(value, (int, float)) else "n/a"
            lines.append(
                f"  ALERT [{alert['severity']}] {alert['rule']}: "
                f"{alert['signal']} {alert['op']} {alert['threshold']:g} "
                f"(value {shown}) at t={alert['t']:.1f}s "
                f"round {alert['round']}"
            )
        return lines


def _cmd_simulate(args) -> int:
    from repro.analysis.gantt import GanttObserver
    from repro.schedulers import make_scheduler
    from repro.sim.metrics import UtilizationObserver, summarize
    from repro.sim.runner import run_with_observers

    from repro.sim.cluster import ClusterState

    topo = _topology_factory(args)()
    jobs = _generate(args)
    state = ClusterState(
        topo,
        incremental_drb=not args.no_incremental_drb,
        prefilter=not args.no_prefilter,
    )
    gantt = GanttObserver(args.scheduler)
    utilization = UtilizationObserver(total_gpus=len(topo.gpus()))
    try:
        sinks = _TelemetrySinks(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    telemetry = sinks.observers(args.scheduler, len(topo.gpus()), len(jobs))
    with sinks:
        result = run_with_observers(
            topo,
            make_scheduler(args.scheduler),
            jobs,
            observers=(gantt, utilization, *telemetry),
            cluster=state,
        )
        for key, value in summarize(result).items():
            print(f"{key:>22}: {value}")
        print(f"{'avg_utilization':>22}: {utilization.average():.3f}")
        quantiles = sinks.wait_quantiles(args.scheduler)
        if quantiles is not None:
            for key, value in quantiles.items():
                print(f"{key:>22}: {value:.1f}")
        for line in sinks.alert_lines(result):
            print(line)
        if args.gantt:
            print()
            print(gantt.chart())
        sinks.flush()
    return 0


def _cmd_compare(args) -> int:
    from repro.analysis.gantt import GanttObserver, comparison_charts
    from repro.sim.metrics import comparison_table
    from repro.sim.runner import COMPARE_POLICIES, run_comparison

    topo_factory = _topology_factory(args)
    total_gpus = len(topo_factory().gpus())
    jobs = _generate(args)
    try:
        sinks = _TelemetrySinks(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    gantts: dict[str, GanttObserver] = {}

    def observer_factory(name: str):
        observers = list(sinks.observers(name, total_gpus, len(jobs)))
        if args.gantt:
            gantts[name] = GanttObserver(name)
            observers.append(gantts[name])
        return observers

    with sinks:
        results = run_comparison(
            topo_factory,
            jobs,
            COMPARE_POLICIES,
            observer_factory=observer_factory,
        )
        print(comparison_table(list(results.values())))
        if sinks.watchdog_enabled:
            for name, result in results.items():
                for line in sinks.alert_lines(result):
                    print(f"[{name}] {line.strip()}")
        if args.gantt:
            print()
            print(comparison_charts(gantts))
        sinks.flush()
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import read_trace

    try:
        spans = read_trace(args.trace_file)
    except (OSError, ValueError) as exc:
        # missing file or schema violation: one line, exit 2, no traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.trace_command == "summarize":
        from repro.obs import summarize as summarize_trace

        print(summarize_trace(spans, job_id=args.job))
    elif args.trace_command == "export":
        from repro.obs.profile import write_chrome_trace

        out = args.out
        if out is None:
            out = args.trace_file.with_suffix(".chrome.json")
        try:
            write_chrome_trace(spans, out)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"{len(spans)} spans exported to {out} "
            "(open in https://ui.perfetto.dev or chrome://tracing)"
        )
    else:  # profile
        from repro.obs.profile import format_profile, profile_spans

        profile = profile_spans(spans, job_id=args.job)
        print(format_profile(profile, top=args.top))
    return 0


def _cmd_explain(args) -> int:
    from repro.analysis.explain import (
        decision_summary_table,
        format_job_explanation,
        format_round_explanation,
    )
    from repro.obs.provenance import read_decisions

    try:
        records = read_decisions(args.decisions_file)
    except (OSError, ValueError) as exc:
        # missing file or schema violation: one line, exit 2, no traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.explain_command == "job":
        print(format_job_explanation(args.job_id, records))
    elif args.explain_command == "round":
        print(format_round_explanation(args.round_no, records))
    else:  # list
        print(decision_summary_table(records))
    return 0


def _cmd_topo(args) -> int:
    from repro.topology.discovery import render_numactl_hardware, render_topo_matrix
    from repro.topology.render import render_gpu_distances, render_tree

    topo = _builder_for(args.machine)()
    if args.numactl:
        print(render_numactl_hardware(topo), end="")
    elif args.matrix:
        print(render_topo_matrix(topo), end="")
    else:
        print(render_tree(topo))
        print(f"\np2p islands: {topo.p2p_island_sizes()}")
        print("\nGPU distance matrix (Eq. 3 input):")
        print(render_gpu_distances(topo))
    return 0


def _cmd_figures(args) -> int:
    from repro.analysis.figures import (
        fig3_breakdown,
        fig4_pack_vs_spread,
        fig6_collocation,
        fig8_prototype,
        sec32_pcie_vs_nvlink,
    )
    from repro.analysis.tables import (
        format_breakdown_table,
        format_collocation_table,
        format_speedup_table,
    )
    from repro.sim.metrics import comparison_table

    sections = {
        "fig3_breakdown": format_breakdown_table(fig3_breakdown()),
        "fig4_pack_vs_spread": format_speedup_table(fig4_pack_vs_spread()),
        "fig6_collocation": format_collocation_table(fig6_collocation()),
        "sec32_pcie_vs_nvlink": str(sec32_pcie_vs_nvlink()),
        "fig8_prototype": comparison_table(list(fig8_prototype().values())),
    }
    for name, text in sections.items():
        print(f"=== {name} ===")
        print(text)
        print()
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(text + "\n")
    if args.svg is not None:
        from repro.plot.figures import render_all_figures

        for path in render_all_figures(args.svg):
            print(f"rendered {path}")
    return 0


def _cmd_bench(args) -> int:
    from repro.analysis.bench import (
        compare_to_baseline,
        format_bench,
        run_bench,
        write_bench,
    )

    if args.schedulers is not None:
        schedulers = tuple(s.strip().upper() for s in args.schedulers.split(","))
    elif args.quick:
        schedulers = ("FCFS", "TOPO-AWARE")
    else:
        schedulers = ("FCFS", "BF", "TOPO-AWARE", "TOPO-AWARE-P")
    bench = run_bench(
        args.scale,
        n_jobs=args.jobs,
        n_machines=args.machines,
        schedulers=schedulers,
        repeats=1 if args.quick else args.repeats,
        verify=not args.no_verify,
        fastpath=not args.no_fastpath,
        seed_baseline_s=args.seed_baseline,
    )
    print(format_bench(bench))
    if args.out is not None:
        path = write_bench(bench, args.out)
        print(f"bench artifact written to {path}")
    if args.check_against is not None:
        try:
            failures = compare_to_baseline(
                bench, args.check_against, args.threshold,
                min_speedup=args.min_speedup,
            )
        except (OSError, ValueError) as exc:
            # missing or malformed baseline: one line, exit 2, no traceback
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if failures:
            for line in failures:
                print(f"REGRESSION: {line}", file=sys.stderr)
            return 1
        print(f"within {args.threshold:.1f}x of {args.check_against}")
    return 0


def _cmd_serve(args) -> int:
    import signal
    import threading

    from repro.service import SchedulerService, ServiceServer

    rules = None
    if args.watchdog or args.slo_rules is not None:
        from repro.obs.alerts import DEFAULT_RULES, load_rules

        if args.slo_rules is not None:
            try:
                rules = load_rules(args.slo_rules)
            except (OSError, ValueError) as exc:
                print(f"error: --slo-rules: {exc}", file=sys.stderr)
                return 2
        else:
            rules = DEFAULT_RULES
    topo = _topology_factory(args)()
    service = SchedulerService(
        topo,
        args.scheduler,
        store_path=str(args.store),
        max_queue_depth=args.max_queue_depth,
        decision_journal=args.decisions_out is not None,
        watchdog_rules=rules,
    )
    if service.recovered_jobs:
        print(
            f"recovered {service.recovered_jobs} unfinished job(s) "
            f"from {args.store}"
        )
    stop = threading.Event()

    def _on_signal(signum, frame):  # noqa: ARG001 - signal signature
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    service.start()
    server = ServiceServer(service, port=args.port).start()
    print(
        f"scheduler service ({args.scheduler}) listening on {server.url}\n"
        "verbs: POST /submit /cancel /pause /resume; "
        "GET /jobs /jobs/<id> /state /metrics /healthz /alerts "
        "/timeseries /cluster /decisions /explain/<id> /events"
    )
    try:
        while not stop.is_set():
            stop.wait(0.5)
    finally:
        server.stop()
        service.stop()
    if args.decisions_out is not None and service.decision_recorder is not None:
        path = service.decision_recorder.write_journal(args.decisions_out)
        count = len(service.decision_recorder.journal or ())
        print(f"{count} decision records written to {path}")
    print("scheduler service stopped")
    return 0


def _cmd_top(args) -> int:
    import time

    from repro.analysis.top import CLEAR, render_dashboard

    client, ReplayError = _service_client(args.url)
    endpoints = (
        ("state", "/state"),
        ("cluster", "/cluster"),
        ("timeseries", "/timeseries"),
        ("alerts", "/alerts"),
    )
    try:
        while True:
            docs = {}
            for name, path in endpoints:
                status, doc = client.request("GET", path)
                if status == 200:
                    docs[name] = doc
            frame = render_dashboard(docs, url=args.url)
            if args.once:
                print(frame)
                return 0
            print(CLEAR + frame, flush=True)
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except ReplayError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()


def _cmd_soak(args) -> int:
    from repro.analysis.soak import format_soak, run_soak, write_soak
    from repro.service.driver import ReplayError

    rules = None
    if args.slo_rules is not None:
        from repro.obs.alerts import load_rules

        try:
            rules = load_rules(args.slo_rules)
        except (OSError, ValueError) as exc:
            print(f"error: --slo-rules: {exc}", file=sys.stderr)
            return 2
    try:
        result = run_soak(
            url=args.url,
            minutes=args.minutes,
            window_s=args.window,
            jobs_per_burst=args.jobs_per_burst,
            burst_every_s=args.burst_every,
            seed=args.seed,
            arrival_rate=args.arrival_rate,
            topo_factory=None if args.url else _topology_factory(args),
            scheduler=args.scheduler,
            rules=rules,
            progress=print,
        )
    except (ReplayError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_soak(result))
    if args.out is not None:
        path = write_soak(result, args.out)
        print(f"soak artifact written to {path}")
    return 0 if result.verdict == "clean" else 1


def _service_client(url: str):
    from repro.service.driver import ReplayError, _Client

    return _Client(url), ReplayError


def _cmd_submit(args) -> int:
    from repro.workload.manifest import ManifestError, job_to_dict, load_manifest

    try:
        jobs = load_manifest(args.manifest)
    except (OSError, ManifestError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    client, ReplayError = _service_client(args.url)
    failures = 0
    try:
        for job in jobs:
            body = job_to_dict(job)
            if args.priority:
                body["priority"] = args.priority
            status, doc = client.request("POST", "/submit", body)
            if status == 202:
                print(f"{job.job_id}: {doc.get('state', 'SUBMITTED')}")
            else:
                failures += 1
                reason = doc.get("rejected") or doc.get("error") or status
                print(f"{job.job_id}: rejected ({reason})", file=sys.stderr)
    except ReplayError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()
    return 1 if failures else 0


def _cmd_cancel(args) -> int:
    client, ReplayError = _service_client(args.url)
    try:
        status, doc = client.request("POST", "/cancel", {"id": args.job_id})
    except ReplayError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()
    if status != 202:
        print(f"error: {doc.get('error', status)}", file=sys.stderr)
        return 1
    print(f"{args.job_id}: cancellation requested (was {doc.get('state')})")
    return 0


def _cmd_status(args) -> int:
    client, ReplayError = _service_client(args.url)
    try:
        if args.job is not None:
            status, doc = client.request("GET", f"/jobs/{args.job}")
            if status != 200:
                print(f"error: {doc.get('error', status)}", file=sys.stderr)
                return 1
            print(f"{doc['id']}: {doc['state']}")
            for key, value in sorted(doc.get("record", {}).items()):
                print(f"{key:>18}: {value}")
            return 0
        status, doc = client.request("GET", "/jobs")
        if status != 200:
            print(f"error: GET /jobs answered {status}", file=sys.stderr)
            return 1
        jobs = doc.get("jobs", {})
        counts: dict[str, int] = {}
        for state in jobs.values():
            counts[state] = counts.get(state, 0) + 1
        print(
            f"{len(jobs)} job(s), queue depth {doc.get('queue_depth')}"
            + (" [paused]" if doc.get("paused") else "")
        )
        for state, n in sorted(counts.items()):
            print(f"{state:>12}: {n}")
        return 0
    except ReplayError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()


def _cmd_replay(args) -> int:
    from repro.service.driver import ReplayError, replay_trace
    from repro.workload.manifest import ManifestError, load_manifest

    if args.manifest is not None:
        try:
            jobs = load_manifest(args.manifest)
        except (OSError, ManifestError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        jobs = _generate(args)
    try:
        report = replay_trace(
            jobs,
            args.url,
            pause=not args.live,
            priority=args.priority,
            wait=not args.no_wait,
            timeout_s=args.timeout,
        )
    except ReplayError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    if not args.no_wait and not report.completed:
        print("error: timed out waiting for terminal states", file=sys.stderr)
        return 1
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import generate_report, write_report

    if args.out is not None:
        path = write_report(args.out)
        print(f"report written to {path}")
    else:
        print(generate_report())
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "simulate": _cmd_simulate,
        "compare": _cmd_compare,
        "topo": _cmd_topo,
        "figures": _cmd_figures,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
        "top": _cmd_top,
        "soak": _cmd_soak,
        "submit": _cmd_submit,
        "cancel": _cmd_cancel,
        "status": _cmd_status,
        "replay": _cmd_replay,
        "report": _cmd_report,
        "trace": _cmd_trace,
        "explain": _cmd_explain,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
