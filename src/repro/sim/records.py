"""Per-job measurement records and run results.

These are the simulator's *outputs*: :class:`JobRecord` captures
everything measured about one job across its simulated life and
:class:`SimulationResult` bundles the records of one run.  They are
deliberately dependency-light so observers (:mod:`repro.sim.hooks`),
metrics (:mod:`repro.sim.metrics`) and analysis code can share them
without importing the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workload.job import Job


@dataclass
class JobRecord:
    """Everything measured about one job across its simulated life."""

    job: Job
    arrival: float
    placed_at: float | None = None
    finished_at: float | None = None
    gpus: tuple[str, ...] = ()
    utility: float | None = None
    p2p: bool | None = None
    solo_exec_time: float | None = None  # placement-determined, no interference
    ideal_exec_time: float = 0.0  # best pack placement on empty cluster
    postponements: int = 0
    unplaceable: bool = False
    restarts: int = 0  # times the job was killed by a machine failure
    #: when the job was cancelled mid-flight (terminal, like finished_at)
    cancelled_at: float | None = None
    preemptions: int = 0  # evictions back to the queue (work checkpointed)
    migrations: int = 0  # live migrations to a better allocation

    @property
    def waiting_time(self) -> float | None:
        if self.placed_at is None:
            return None
        return self.placed_at - self.arrival

    @property
    def exec_time(self) -> float | None:
        if self.finished_at is None or self.placed_at is None:
            return None
        return self.finished_at - self.placed_at

    @property
    def terminal(self) -> bool:
        """Whether the job's simulated life has ended (either way)."""
        return self.finished_at is not None or self.cancelled_at is not None

    @property
    def end_time(self) -> float | None:
        """When the job stopped occupying GPUs (finish or cancel)."""
        if self.finished_at is not None:
            return self.finished_at
        return self.cancelled_at


@dataclass
class SimulationResult:
    """Output of one simulation run."""

    scheduler_name: str
    records: list[JobRecord]
    makespan: float
    decision_time_s: float  # wall-clock spent inside scheduler.schedule
    decision_rounds: int
    #: placement-memo counters (hits/misses/invalidations/hit_rate) as
    #: reported by :class:`repro.core.placement.PlacementStats`; empty
    #: for runs whose engine exposes none.
    placement_stats: dict = field(default_factory=dict)
    #: incremental-DRB reuse counters (splits reused/computed, rounds
    #: patched vs rebuilt, metric memo hits) as reported by
    #: :class:`repro.core.drb.DRBCacheStats`; empty when the fast path
    #: is disabled or the engine exposes none.
    drb_stats: dict = field(default_factory=dict)
    #: top-k candidate-prefilter counters (hosts considered vs pruned)
    #: as reported by :class:`repro.core.constraints.PrefilterStats`;
    #: empty when the fast path is disabled.
    prefilter_stats: dict = field(default_factory=dict)
    #: SLO alerts fired during the run (one dict per firing, as built
    #: by :class:`repro.obs.alerts.Watchdog`); attached by the runner
    #: when a watchdog observer was present, empty otherwise.
    alerts: list = field(default_factory=list)
    _index: dict[str, JobRecord] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def mean_decision_time_s(self) -> float:
        if self.decision_rounds == 0:
            return 0.0
        return self.decision_time_s / self.decision_rounds

    def record_of(self, job_id: str) -> JobRecord:
        """O(1) record lookup backed by a lazily built id index."""
        if self._index is None or len(self._index) != len(self.records):
            self._index = {rec.job.job_id: rec for rec in self.records}
        try:
            return self._index[job_id]
        except KeyError:
            raise KeyError(job_id) from None
