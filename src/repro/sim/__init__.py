"""Trace-driven discrete-event simulation (paper Sections 5.3-5.5).

:class:`Simulator` replays a job trace against a topology under a
scheduling policy.  Execution times come from the calibrated
performance model; co-located jobs slow each other down per the
interference model, with running jobs' progress re-scaled whenever the
allocation changes (the standard progress-conservation DES technique).

The kernel is layered: typed events and the versioned queue live in
:mod:`repro.sim.events`, shared cluster state in
:mod:`repro.sim.cluster`, observer hooks in :mod:`repro.sim.hooks`,
the thin orchestrator in :mod:`repro.sim.engine`, and the
``run_comparison`` / ``run_with_observers`` entry points in
:mod:`repro.sim.runner`.
"""

from repro.sim.cluster import ClusterState, RunningJob
from repro.sim.engine import JobRecord, MachineFailure, SimulationResult, Simulator
from repro.sim.events import (
    Arrival,
    EventQueue,
    Failure,
    Finish,
    Recovery,
)
from repro.sim.hooks import (
    BaseObserver,
    CompositeObserver,
    DecisionAccounting,
    RecordKeeper,
    SimObserver,
)
from repro.sim.metrics import (
    UtilizationObserver,
    cumulative_execution_time,
    mean_utility,
    qos_slowdown,
    slo_violations,
    sorted_slowdowns,
    summarize,
    total_slowdown,
)
from repro.sim.runner import run_comparison, run_with_observers
from repro.sim.trace import load_trace, save_trace, records_to_rows

__all__ = [
    "Arrival",
    "BaseObserver",
    "ClusterState",
    "CompositeObserver",
    "DecisionAccounting",
    "EventQueue",
    "Failure",
    "Finish",
    "JobRecord",
    "MachineFailure",
    "Recovery",
    "RecordKeeper",
    "RunningJob",
    "SimObserver",
    "SimulationResult",
    "Simulator",
    "UtilizationObserver",
    "cumulative_execution_time",
    "load_trace",
    "mean_utility",
    "qos_slowdown",
    "records_to_rows",
    "run_comparison",
    "run_with_observers",
    "save_trace",
    "slo_violations",
    "sorted_slowdowns",
    "summarize",
    "total_slowdown",
]
