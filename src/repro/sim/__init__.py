"""Trace-driven discrete-event simulation (paper Sections 5.3-5.5).

:class:`Simulator` replays a job trace against a topology under a
scheduling policy.  Execution times come from the calibrated
performance model; co-located jobs slow each other down per the
interference model, with running jobs' progress re-scaled whenever the
allocation changes (the standard progress-conservation DES technique).
"""

from repro.sim.engine import JobRecord, MachineFailure, SimulationResult, Simulator
from repro.sim.metrics import (
    cumulative_execution_time,
    mean_utility,
    qos_slowdown,
    slo_violations,
    sorted_slowdowns,
    summarize,
    total_slowdown,
)
from repro.sim.trace import load_trace, save_trace, records_to_rows

__all__ = [
    "JobRecord",
    "MachineFailure",
    "SimulationResult",
    "Simulator",
    "cumulative_execution_time",
    "load_trace",
    "mean_utility",
    "qos_slowdown",
    "records_to_rows",
    "save_trace",
    "slo_violations",
    "sorted_slowdowns",
    "summarize",
    "total_slowdown",
]
