"""Trace persistence.

The paper's simulator is fed by traces recorded from prototype runs
("the trace files are parsed and transformed into a format compatible
with the simulator", Section 5.3).  Here a trace is the job list plus,
optionally, the per-job outcome records of a finished run, serialised
as JSON so prototype logs and simulator inputs round-trip.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.sim.engine import JobRecord
from repro.workload.manifest import dumps_manifest, loads_manifest
from repro.workload.job import Job


def records_to_rows(records: Sequence[JobRecord]) -> list[dict]:
    """Flatten records into JSON-serialisable rows."""
    rows = []
    for r in records:
        rows.append(
            {
                "id": r.job.job_id,
                "arrival": r.arrival,
                "placed_at": r.placed_at,
                "finished_at": r.finished_at,
                "gpus": list(r.gpus),
                "utility": r.utility,
                "p2p": r.p2p,
                "solo_exec_time": r.solo_exec_time,
                "ideal_exec_time": r.ideal_exec_time,
                "postponements": r.postponements,
                "unplaceable": r.unplaceable,
            }
        )
    return rows


def save_trace(
    path: str | Path,
    jobs: Sequence[Job],
    records: Sequence[JobRecord] | None = None,
    scheduler: str | None = None,
) -> None:
    """Write a trace file: the manifest plus optional outcome rows."""
    doc = {
        "manifest": json.loads(dumps_manifest(jobs)),
        "scheduler": scheduler,
        "records": records_to_rows(records) if records is not None else None,
    }
    Path(path).write_text(json.dumps(doc, indent=2) + "\n")


def load_trace(path: str | Path) -> tuple[list[Job], list[dict] | None, str | None]:
    """Load a trace file -> (jobs, outcome rows or None, scheduler name)."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or "manifest" not in doc:
        raise ValueError(f"{path}: not a trace file")
    jobs = loads_manifest(json.dumps(doc["manifest"]))
    return jobs, doc.get("records"), doc.get("scheduler")
