"""Shared cluster state for the simulator and the prototype loop.

:class:`ClusterState` is the single owner of everything "the cluster
knows" at an instant: the topology, the GPU allocation bookkeeping,
the calibrated performance/interference models, machine health, and
the set of running jobs with their progress rates.  The discrete-event
engine (:mod:`repro.sim.engine`) and the prototype main loop
(:mod:`repro.prototype.system`) both operate on this one class instead
of each keeping ad-hoc running-job dicts next to an
:class:`~repro.topology.allocation.AllocationState`.

Progress accounting uses the standard progress-conservation technique:
each running job carries its *remaining solo work* in seconds and a
progress ``rate`` (the inverse of its interference slowdown), so
finish times are re-derived whenever allocations change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.placement import PlacementEngine, PlacementSolution
from repro.core.utility import UtilityParams
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.interference import InterferenceModel
from repro.perf.model import PerformanceModel, Placement
from repro.sim.events import Finish
from repro.topology.allocation import AllocationState
from repro.topology.graph import TopologyGraph
from repro.workload.job import Job
from repro.workload.profiles import ProfileDatabase

#: A job whose remaining solo work is below this is considered done;
#: above it, a pending finish event is provably stale.
REMAINING_EPS = 1e-6

#: Rate changes smaller than this do not reschedule a finish event.
RATE_EPS = 1e-12


@dataclass
class RunningJob:
    """One job currently executing on the cluster."""

    job: Job
    gpus: frozenset[str]
    remaining: float  # solo-work seconds left
    rate: float  # progress per simulated second (1/slowdown)
    #: total solo work under this placement (``remaining`` at start,
    #: before any resume surcharge); lets eviction turn the residual
    #: into a placement-independent progress fraction.
    solo: float = 0.0
    #: stamps Finish events; 0 means "no finish scheduled yet".  Values
    #: are drawn from a cluster-wide monotonic counter so an event from
    #: a job's earlier incarnation (killed by a failure, later
    #: re-placed under the same id) can never collide with the new one.
    version: int = 0


class ClusterState:
    """Mutable cluster snapshot: allocations, running jobs, health."""

    def __init__(
        self,
        topo: TopologyGraph,
        *,
        calibration: Calibration = DEFAULT_CALIBRATION,
        params: UtilityParams = UtilityParams(),
        profiles: ProfileDatabase | None = None,
        incremental_drb: bool = True,
        prefilter: bool = True,
    ) -> None:
        self.topo = topo
        self.calibration = calibration
        self.params = params
        self.alloc = AllocationState(topo)
        self.perf = PerformanceModel(topo, calibration)
        self.interference = InterferenceModel(topo, calibration)
        self.engine = PlacementEngine(
            topo,
            self.alloc,
            params,
            profiles,
            self.interference,
            incremental_drb=incremental_drb,
            prefilter=prefilter,
        )
        self.running: dict[str, RunningJob] = {}
        self.now = 0.0
        self._ideal_cache: dict[tuple, float] = {}
        self._next_version = 0
        #: job id -> progress fraction in [0, 1) checkpointed by
        #: :meth:`preempt`; consumed (popped) by the next :meth:`start`
        #: so a re-placed victim resumes instead of restarting.
        self._checkpoints: dict[str, float] = {}

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def co_runners(self) -> dict[str, tuple[Job, frozenset[str]]]:
        """The running-job view schedulers and models consume."""
        return {
            job_id: (run.job, run.gpus) for job_id, run in self.running.items()
        }

    def machines_of(self, gpus: Iterable[str]) -> set[str]:
        return {self.topo.machine_of(g) for g in gpus}

    def ideal_exec_time(self, job: Job) -> float:
        """Best-pack-on-empty-cluster execution time, memoized.

        The memo holds the per-*iteration* ideal time, keyed by every
        job field the performance model reads — including
        ``comm_pattern``, which :meth:`PerformanceModel.solo_exec_time`
        branches on (model-parallel chains/rings cost differently from
        data-parallel all-reduce) — so jobs that differ only in
        ``iterations`` share one entry instead of colliding or missing.
        """
        key = (job.model, job.batch_size, job.num_gpus, job.comm_pattern)
        cached = self._ideal_cache.get(key)
        if cached is None:
            try:
                gpus = self.perf.placement_gpus(job, Placement.PACK)
                cached = self.perf.iteration_time(job, gpus)
            except ValueError:
                # job larger than the whole topology: it can never be
                # placed, so there is no ideal time (record stays 0 and
                # the job ends up marked unplaceable)
                cached = 0.0
            self._ideal_cache[key] = cached
        return job.iterations * cached

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    def advance_to(self, t: float) -> None:
        """Advance the clock, burning down every running job's work."""
        dt = t - self.now
        if dt < 0:
            raise RuntimeError(f"time went backwards: {self.now} -> {t}")
        if dt > 0:
            for run in self.running.values():
                run.remaining -= dt * run.rate
        self.now = t

    # ------------------------------------------------------------------
    # job lifecycle
    # ------------------------------------------------------------------
    def start(self, job: Job, solution: PlacementSolution) -> tuple[float, set[str]]:
        """Begin executing a placed job.

        The placement's GPUs must already be committed to ``alloc`` (the
        scheduler enforces them during its decision round).  Returns the
        solo execution time under this placement and the set of touched
        machines whose co-runner rates need refreshing.

        A job with a preemption checkpoint (see :meth:`preempt`) resumes
        from its saved progress fraction: the remaining work is the
        unfinished share of the new placement's solo time plus the
        fixed migration cost (checkpoint restore + warm-up) from
        :class:`~repro.core.utility.UtilityParams`.
        """
        gpus = frozenset(solution.gpus)
        # task-indexed GPU order: model-parallel pipelines/rings are
        # charged per the mapping DRB chose, not an arbitrary sort
        by_task = [
            solution.task_mapping[t] for t in sorted(solution.task_mapping)
        ]
        solo = self.perf.solo_exec_time(job, by_task)
        remaining = solo
        progress = self._checkpoints.pop(job.job_id, None)
        if progress is not None:
            remaining = solo * (1.0 - progress) + self.params.migration_cost_s
        self.running[job.job_id] = RunningJob(
            job=job, gpus=gpus, remaining=remaining, rate=1.0,
            solo=solo, version=0,
        )
        return solo, self.machines_of(gpus)

    def finish(self, job_id: str) -> tuple[RunningJob, set[str]]:
        """Complete a job: free its GPUs, return it + touched machines."""
        run = self.running.pop(job_id)
        if run.remaining > REMAINING_EPS:
            raise RuntimeError(
                f"{job_id} finished with {run.remaining:.3f}s work left"
            )
        self.alloc.release(job_id)
        return run, self.machines_of(run.gpus)

    def cancel(self, job_id: str) -> tuple[RunningJob, set[str]]:
        """Kill a running job mid-flight: free its GPUs immediately.

        Unlike :meth:`finish` the job may have arbitrary work left —
        this is the service daemon's cancel verb, not a completion.
        Any pending :class:`~repro.sim.events.Finish` event for the job
        becomes stale automatically (its version no longer matches a
        running job).  Returns the cancelled run and the touched
        machines whose co-runner rates need refreshing.
        """
        run = self.running.pop(job_id)
        self.alloc.release(job_id)
        self._checkpoints.pop(job_id, None)  # cancellation is terminal
        return run, self.machines_of(run.gpus)

    def preempt(self, job_id: str) -> tuple[RunningJob, set[str]]:
        """Evict a running job, checkpointing its progress.

        Frees the job's GPUs like :meth:`cancel`, but saves the fraction
        of work already done so the next :meth:`start` resumes it (plus
        a migration-cost surcharge) instead of restarting from zero.
        Returns the evicted run and the touched machines.
        """
        run = self.running.pop(job_id)
        self.alloc.release(job_id)
        if run.solo > 0:
            progress = 1.0 - run.remaining / run.solo
            # the resume surcharge can push remaining above solo; clamp
            # so progress stays a fraction and never grows work
            self._checkpoints[job_id] = min(1.0, max(0.0, progress))
        return run, self.machines_of(run.gpus)

    def is_stale_finish(self, job_id: str, version: int) -> bool:
        """True when a Finish event no longer matches the running job."""
        run = self.running.get(job_id)
        return run is None or run.version != version

    # ------------------------------------------------------------------
    # machine health
    # ------------------------------------------------------------------
    def fail_machine(self, machine: str) -> tuple[list[RunningJob], set[str]]:
        """Fail-stop a machine: kill its jobs, free their GPUs.

        Returns the killed jobs (arrival order is the sorted job-id
        order ``AllocationState`` reports) and the touched machines —
        a spanning job may hold GPUs on healthy machines too, and its
        neighbours speed back up once it dies.  Resubmission is the
        caller's job: the engine re-queues, observers reset records.
        """
        victim_ids = self.alloc.set_machine_down(machine)
        touched = {machine}
        victims: list[RunningJob] = []
        for job_id in victim_ids:
            run = self.running.pop(job_id, None)
            if run is None:
                continue
            touched |= self.machines_of(run.gpus)
            self.alloc.release(job_id)
            # fail-stop loses in-memory training state: any checkpoint
            # from an earlier preemption is void too (cold restart)
            self._checkpoints.pop(job_id, None)
            victims.append(run)
        return victims, touched

    def recover_machine(self, machine: str) -> None:
        self.alloc.set_machine_up(machine)

    # ------------------------------------------------------------------
    # rate maintenance
    # ------------------------------------------------------------------
    def refresh_rates(self, touched_machines: set[str]) -> list[Finish]:
        """Recompute progress rates for jobs near changed machines.

        Every job whose rate changed (or that just started,
        ``version == 0``) gets its version bumped and a fresh
        :class:`~repro.sim.events.Finish` event returned for the engine
        to enqueue; any previously scheduled finish is thereby stale.
        """
        if not touched_machines:
            return []
        co = self.co_runners()
        affected: set[str] = set()
        for m in touched_machines:
            affected |= self.alloc.jobs_on_machine(m)
        fresh: list[Finish] = []
        for job_id in sorted(affected):
            run = self.running.get(job_id)
            if run is None:
                continue
            factor = self.interference.slowdown_factor(
                run.job, run.gpus, co, self.alloc
            )
            new_rate = 1.0 / factor
            if abs(new_rate - run.rate) > RATE_EPS or run.version == 0:
                run.rate = new_rate
                self._next_version += 1
                run.version = self._next_version
                fresh.append(
                    Finish(
                        time=self.now + run.remaining / run.rate,
                        job_id=job_id,
                        version=run.version,
                    )
                )
        return fresh

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterState(now={self.now:.3f}, running={len(self.running)}, "
            f"alloc={self.alloc!r})"
        )
