"""Typed simulation events and the versioned priority queue.

The seed engine kept bare ``(when, kind, seq, payload)`` heap tuples
with integer kind codes and an *implicit* stale-finish convention
(a finish event was ignored when the job still had work left).  This
module replaces both: events are frozen dataclasses, and
:class:`Finish` carries the running job's rate *version* so staleness
is an explicit equality check instead of a floating-point heuristic.

Ordering is bit-compatible with the seed tuples: events sort by
``(time, kind priority, insertion sequence)`` where the kind priority
preserves the original ``ARRIVAL < FINISH < FAILURE < RECOVERY``
integer codes, and the insertion sequence keeps simultaneous pushes
FIFO.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, Union

#: Two event timestamps closer than this are "simultaneous": the engine
#: drains them in one batch before waking the scheduler.
SIMULTANEITY_EPS = 1e-12


@dataclass(frozen=True)
class Arrival:
    """A job enters the system and joins the scheduler queue."""

    time: float
    job_id: str


@dataclass(frozen=True)
class Finish:
    """A running job's remaining work hits zero.

    ``version`` snapshots the job's rate version when the event was
    scheduled; the event is stale (and must be dropped) unless it still
    matches the running job's current version — every rate change bumps
    the version and enqueues a fresh ``Finish``.
    """

    time: float
    job_id: str
    version: int


@dataclass(frozen=True)
class Failure:
    """A machine fail-stops; its jobs are killed and resubmitted."""

    time: float
    machine: str


@dataclass(frozen=True)
class Recovery:
    """A previously failed machine comes back with empty GPUs."""

    time: float
    machine: str


Event = Union[Arrival, Finish, Failure, Recovery]

#: Same-time tie-break between kinds, matching the seed's integer codes.
_KIND_PRIORITY: dict[type, int] = {Arrival: 0, Finish: 1, Failure: 2, Recovery: 3}


@dataclass(frozen=True)
class MachineFailure:
    """A fail-stop machine outage injected into a simulation.

    Jobs running on the machine at ``at_time`` are killed and
    resubmitted to the scheduler (cold restart: training state is
    lost, as with a checkpoint-free Caffe run).  ``duration_s=None``
    means the machine never comes back.
    """

    machine: str
    at_time: float
    duration_s: float | None = None

    def __post_init__(self) -> None:
        if self.at_time < 0:
            raise ValueError("at_time must be >= 0")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError("duration_s must be positive (or None)")


class EventQueue:
    """Priority queue over typed events with deterministic ordering."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0

    def push(self, event: Event) -> None:
        priority = _KIND_PRIORITY.get(type(event))
        if priority is None:
            raise TypeError(f"not a simulation event: {event!r}")
        self._seq += 1
        heapq.heappush(self._heap, (event.time, priority, self._seq, event))

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def next_time(self) -> float | None:
        """Timestamp of the earliest pending event, or None when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        return heapq.heappop(self._heap)[3]

    def pop_due(self, t: float, eps: float = SIMULTANEITY_EPS) -> Iterator[Event]:
        """Pop every event with timestamp <= ``t + eps``, in order."""
        while self._heap and self._heap[0][0] <= t + eps:
            yield heapq.heappop(self._heap)[3]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventQueue(pending={len(self._heap)})"
