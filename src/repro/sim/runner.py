"""Simulation entry points: observer runs and policy comparisons.

Thin conveniences over :class:`repro.sim.engine.Simulator`:

* :func:`run_with_observers` — run one trace under one scheduler with
  a set of :class:`~repro.sim.hooks.SimObserver` taps attached.
* :func:`run_comparison` — replay the same trace under several
  policies on fresh topologies (the evaluation-section workhorse).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.schedulers.base import Scheduler
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.hooks import SimObserver
from repro.topology.graph import TopologyGraph
from repro.workload.job import Job

DEFAULT_POLICIES = ("BF", "FCFS", "TOPO-AWARE", "TOPO-AWARE-P")

#: the CLI comparison set: the paper's four policies plus the
#: preempting/migrating extension.  Kept separate from
#: :data:`DEFAULT_POLICIES`, which the golden-equivalence suite pins.
COMPARE_POLICIES = DEFAULT_POLICIES + ("TOPO-AWARE-PM",)


def _bind_observers(sim: Simulator, observers: Sequence[SimObserver]) -> None:
    """Give run-aware observers a view of the simulation they tap.

    Observers that expose ``bind_simulation`` (the snapshot publisher,
    the SLO watchdog) receive the :class:`Simulator` before the run so
    they can read cluster/scheduler state directly instead of shadow-
    tracking it from hook arguments.  Binding is read-only wiring; the
    observers stay taps.
    """
    for obs in observers:
        bind = getattr(obs, "bind_simulation", None)
        if callable(bind):
            bind(sim)


def _finalize_observers(
    result: SimulationResult, observers: Sequence[SimObserver]
) -> None:
    """Post-run hook: observers that expose ``finalize_result`` get
    the finished result (the watchdog attaches its alert digest, the
    telemetry observer emits ``run_end``, the snapshot publisher marks
    the run finished)."""
    for obs in observers:
        finalize = getattr(obs, "finalize_result", None)
        if callable(finalize):
            finalize(result)


def run_with_observers(
    topo: TopologyGraph,
    scheduler: Scheduler,
    jobs: Iterable[Job],
    *,
    observers: Sequence[SimObserver] = (),
    **sim_kwargs,
) -> SimulationResult:
    """Run one simulation with observer hooks attached.

    ``sim_kwargs`` are forwarded to :class:`Simulator` (calibration,
    utility params, profiles, failures, a pre-built cluster state).
    """
    sim = Simulator(topo, scheduler, list(jobs), observers=observers, **sim_kwargs)
    _bind_observers(sim, observers)
    result = sim.run()
    _finalize_observers(result, observers)
    return result


def run_comparison(
    topo_factory: Callable[[], TopologyGraph],
    jobs: Sequence[Job],
    scheduler_names: Sequence[str] = DEFAULT_POLICIES,
    *,
    observer_factory: Callable[[str], Sequence[SimObserver]] | None = None,
    **sim_kwargs,
) -> dict[str, SimulationResult]:
    """Run the same trace under several policies on fresh topologies.

    ``topo_factory`` is called once per policy so allocation state and
    caches never leak between runs; each policy likewise gets a fresh
    scheduler instance.  ``observer_factory``, when given, is called
    with each policy name and must return the observers to attach to
    that policy's run.
    """
    from repro.schedulers import make_scheduler

    results: dict[str, SimulationResult] = {}
    for name in scheduler_names:
        topo = topo_factory()
        observers = observer_factory(name) if observer_factory is not None else ()
        sim = Simulator(
            topo,
            make_scheduler(name),
            list(jobs),
            observers=observers,
            **sim_kwargs,
        )
        _bind_observers(sim, observers)
        results[name] = sim.run()
        _finalize_observers(results[name], observers)
    return results
