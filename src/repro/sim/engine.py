"""Discrete-event simulation engine (thin orchestrator).

The kernel is layered (see DESIGN.md §3):

* :mod:`repro.sim.events` — typed events and the versioned
  :class:`~repro.sim.events.EventQueue`;
* :mod:`repro.sim.cluster` — :class:`~repro.sim.cluster.ClusterState`,
  the single owner of allocations, running jobs and progress rates;
* :mod:`repro.sim.hooks` — :class:`~repro.sim.hooks.SimObserver`
  taps for record keeping, accounting, Gantt/metrics timelines;
* this module — :class:`Simulator`, which only wires queue + cluster +
  scheduler + observers together.

The scheduler runs after every batch of simultaneous events (the
paper's Algorithm 1 "wakeup after an event, e.g. a job has finished").
Each running job carries its *remaining solo work* in seconds; its
progress rate is the inverse of its current interference slowdown
factor, so finish times are re-derived whenever allocations change.
Stale finish events are version-guarded.

The event loop is *steppable*: :meth:`Simulator.start` arms the run,
:meth:`Simulator.step` processes one batch of simultaneous events plus
the decision round it triggers, and :meth:`Simulator.finish` builds
the :class:`SimulationResult`.  :meth:`Simulator.run` composes the
three exactly as the pre-refactor monolithic loop did (pinned by the
golden-equivalence tests), while the scheduler service
(:mod:`repro.service.daemon`) drives the same kernel externally:
:meth:`Simulator.submit_job` feeds arrivals that were never part of a
pre-generated trace and :meth:`Simulator.cancel_job` withdraws them
again, so a one-shot batch replay and a long-running daemon share one
event loop.

``JobRecord``, ``SimulationResult`` and ``MachineFailure`` are
re-exported here for backwards compatibility; their homes are
:mod:`repro.sim.records` and :mod:`repro.sim.events`.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Iterable

from repro.core.utility import UtilityParams
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.sim.cluster import ClusterState
from repro.sim.events import (
    Arrival,
    EventQueue,
    Failure,
    Finish,
    MachineFailure,
    Recovery,
)
from repro.sim.hooks import (
    CompositeObserver,
    DecisionAccounting,
    RecordKeeper,
    SimObserver,
)
from repro.sim.records import JobRecord, SimulationResult
from repro.topology.graph import TopologyGraph
from repro.workload.job import Job
from repro.workload.profiles import ProfileDatabase

__all__ = [
    "JobRecord",
    "MachineFailure",
    "SimulationResult",
    "Simulator",
    "run_comparison",
]


class Simulator:
    """Replay a job list under one scheduler on one topology."""

    def __init__(
        self,
        topo: TopologyGraph,
        scheduler: Scheduler,
        jobs: Iterable[Job],
        *,
        calibration: Calibration = DEFAULT_CALIBRATION,
        params: UtilityParams = UtilityParams(),
        profiles: ProfileDatabase | None = None,
        failures: Iterable[MachineFailure] = (),
        cluster: ClusterState | None = None,
        observers: Iterable[SimObserver] = (),
        decision_clock: Callable[[], float] = _time.perf_counter,
    ) -> None:
        self.topo = topo
        self.scheduler = scheduler
        scheduler.attach(self)
        self.jobs: list[Job] = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
        ids = [j.job_id for j in self.jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate job ids in trace")
        if cluster is None:
            cluster = ClusterState(
                topo, calibration=calibration, params=params, profiles=profiles
            )
        elif cluster.topo is not topo:
            raise ValueError("cluster was built for a different topology")
        self.cluster = cluster
        self.calibration = cluster.calibration
        self.observers = list(observers)
        #: wall-clock source for decision-round timing; injectable so
        #: tests can assert exact accounting instead of ``>= 0``
        self.decision_clock = decision_clock
        self.failures = sorted(failures, key=lambda f: f.at_time)
        machines = set(topo.machines())
        for failure in self.failures:
            if failure.machine not in machines:
                raise ValueError(f"failure names unknown machine {failure.machine!r}")
        # steppable-run state, armed by start()
        self._started = False
        self._events: EventQueue | None = None
        self._jobs_by_id: dict[str, Job] = {}
        self._job_order: list[Job] = []
        self._cancelled: set[str] = set()
        self._records: RecordKeeper | None = None
        self._accounting: DecisionAccounting | None = None
        self._notify: CompositeObserver | None = None
        #: decision flight recorder found among the observers (see
        #: start()); threaded through the SchedulingContext so the
        #: scheduler can emit provenance records
        self.decision_recorder = None

    # ------------------------------------------------------------------
    # cluster-state views (back-compat with the pre-layered engine)
    # ------------------------------------------------------------------
    @property
    def alloc(self):
        return self.cluster.alloc

    @property
    def perf(self):
        return self.cluster.perf

    @property
    def interference(self):
        return self.cluster.interference

    @property
    def engine(self):
        return self.cluster.engine

    # ------------------------------------------------------------------
    # steppable event loop
    # ------------------------------------------------------------------
    def start(self) -> "Simulator":
        """Arm the event loop: register trace jobs, queue failures.

        After ``start()`` the loop is driven either by :meth:`run`
        (batch mode) or externally by :meth:`step` / :meth:`submit_job`
        / :meth:`cancel_job` (service mode).
        """
        if self._started:
            raise RuntimeError("Simulator.start() called twice")
        self._started = True
        self._records = RecordKeeper()
        self._accounting = DecisionAccounting()
        self._notify = CompositeObserver(
            [self._records, self._accounting, *self.observers]
        )
        # duck-typed discovery: an attached DecisionRecorder advertises
        # wants_decision_provenance, and run_round threads it through
        # the SchedulingContext (None — the default — keeps the
        # scheduler's hot path provenance-free)
        self.decision_recorder = next(
            (
                o
                for o in self.observers
                if getattr(o, "wants_decision_provenance", False)
            ),
            None,
        )
        self._events = EventQueue()
        for job in self.jobs:
            self._register(job)
        for failure in self.failures:
            self._events.push(Failure(failure.at_time, failure.machine))
            if failure.duration_s is not None:
                self._events.push(
                    Recovery(failure.at_time + failure.duration_s, failure.machine)
                )
        return self

    def _register(self, job: Job) -> None:
        self._jobs_by_id[job.job_id] = job
        self._job_order.append(job)
        self._records.register(job, self.cluster.ideal_exec_time(job))
        self._events.push(Arrival(job.arrival_time, job.job_id))

    @property
    def pending_events(self) -> int:
        """Events still queued (0 means the loop is drained/idle)."""
        return len(self._events) if self._events is not None else 0

    def submit_job(self, job: Job) -> None:
        """Feed one externally submitted job into the armed event loop.

        The service daemon's write path: the job joins the record
        keeper and an :class:`~repro.sim.events.Arrival` is queued at
        its arrival time, exactly as a trace job would have been.  The
        arrival must not lie in the simulated past (callers clamp to
        ``cluster.now``).
        """
        if not self._started:
            raise RuntimeError("submit_job() before start()")
        if job.job_id in self._jobs_by_id:
            raise ValueError(f"duplicate job id {job.job_id!r}")
        if job.arrival_time < self.cluster.now:
            raise ValueError(
                f"job {job.job_id!r} arrives at {job.arrival_time:.6f}, "
                f"before the simulated present {self.cluster.now:.6f}"
            )
        self._register(job)

    def cancel_job(self, job_id: str) -> tuple[str, set[str]]:
        """Withdraw a job from the loop; returns (phase, touched machines).

        ``phase`` reports where the job was caught: ``"pending"`` (its
        arrival event had not fired yet), ``"queued"`` (waiting in the
        scheduler queue), or ``"running"`` (its GPUs were released —
        the returned machines need a :meth:`run_round` so neighbours
        speed back up and the freed slots are reoffered).  Raises
        :class:`KeyError` for unknown or already-terminal jobs.

        Every phase fires ``on_evict(..., reason="cancel")`` so record
        keeping, Gantt, utilization and telemetry observers close the
        job out instead of believing it still occupies its GPUs (or is
        still pending); for non-running phases the GPU set is empty.
        """
        if not self._started:
            raise RuntimeError("cancel_job() before start()")
        if job_id not in self._jobs_by_id or job_id in self._cancelled:
            raise KeyError(job_id)
        if job_id in self.cluster.running:
            self._cancelled.add(job_id)
            run, touched = self.cluster.cancel(job_id)
            self._notify.on_evict(self.cluster.now, run.job, run.gpus, "cancel")
            return "running", touched
        job = self._jobs_by_id[job_id]
        if self.scheduler.withdraw(job_id):
            self._cancelled.add(job_id)
            self._notify.on_evict(self.cluster.now, job, frozenset(), "cancel")
            return "queued", set()
        self._cancelled.add(job_id)  # arrival event still pending
        self._notify.on_evict(self.cluster.now, job, frozenset(), "cancel")
        return "pending", set()

    def preempt_job(self, job_id: str) -> set[str]:
        """Evict a running job back to the queue, keeping its progress.

        The service daemon's operator verb: the job's GPUs are freed,
        its progress fraction is checkpointed
        (:meth:`ClusterState.preempt`), and it is resubmitted to the
        scheduler queue so a later decision round re-places it — the
        resumed run carries only its unfinished work plus the migration
        cost.  Returns the touched machines; callers pass them to
        :meth:`run_round` so neighbours speed up and the freed capacity
        is reoffered immediately.  Raises :class:`KeyError` unless the
        job is currently running.
        """
        if not self._started:
            raise RuntimeError("preempt_job() before start()")
        if job_id in self._cancelled or job_id not in self.cluster.running:
            raise KeyError(job_id)
        run, touched = self.cluster.preempt(job_id)
        self._notify.on_evict(self.cluster.now, run.job, run.gpus, "preempt")
        self.scheduler.submit(run.job)
        return touched

    def step(self) -> bool:
        """Process the next batch of simultaneous events plus the
        decision round it wakes; returns whether events remain."""
        events = self._events
        if not events:
            return False
        cluster = self.cluster
        scheduler = self.scheduler
        notify = self._notify
        t = events.next_time()
        cluster.advance_to(t)
        touched: set[str] = set()
        # drain all events at time t before scheduling
        for event in events.pop_due(t):
            if isinstance(event, Arrival):
                if event.job_id in self._cancelled:
                    continue  # cancelled before its arrival fired
                job = self._jobs_by_id[event.job_id]
                scheduler.submit(job)
                notify.on_arrival(t, job)
            elif isinstance(event, Finish):
                if cluster.is_stale_finish(event.job_id, event.version):
                    continue
                run, machines = cluster.finish(event.job_id)
                touched |= machines
                notify.on_finish(t, run.job, run.gpus)
            elif isinstance(event, Failure):
                victims, machines = cluster.fail_machine(event.machine)
                touched |= machines
                notify.on_failure(t, event.machine, [v.job for v in victims])
                for victim in victims:
                    scheduler.submit(victim.job)
                    notify.on_requeue(t, victim.job)
            else:  # Recovery
                cluster.recover_machine(event.machine)
        self.run_round(touched)
        return bool(events)

    def run_round(self, touched: set[str] | frozenset[str] = frozenset()) -> int:
        """One scheduler decision round at the simulated present.

        ``touched`` carries machines whose co-runner rates must be
        refreshed (finished/failed/cancelled allocations).  The service
        daemon calls this directly after a cancel so freed capacity is
        reoffered without waiting for the next event.  Returns the
        number of placements enforced.
        """
        cluster = self.cluster
        scheduler = self.scheduler
        notify = self._notify
        t = cluster.now
        touched = set(touched)

        def _evict(job_id: str, reason: str) -> None:
            # bound eviction verb for preempting policies: checkpoint
            # and free the victim, notify observers, and (for preempt)
            # re-queue it; a migrating policy re-places the job itself
            # within the same round.
            run, machines = cluster.preempt(job_id)
            touched.update(machines)
            notify.on_evict(t, run.job, run.gpus, reason)
            if reason == "preempt":
                scheduler.submit(run.job)

        ctx = SchedulingContext(
            topo=self.topo,
            alloc=cluster.alloc,
            engine=cluster.engine,
            co_runners=cluster.co_runners(),
            now=t,
            cluster=cluster,
            recorder=self.decision_recorder,
            evict=_evict,
        )
        t0 = self.decision_clock()
        placements = scheduler.schedule(ctx)
        elapsed = self.decision_clock() - t0
        for solution in placements:
            job = self._jobs_by_id[solution.job_id]
            solo, machines = cluster.start(job, solution)
            touched |= machines
            notify.on_place(
                t,
                job,
                solution,
                solo,
                scheduler.postponements.get(job.job_id, 0),
            )
        notify.on_decision_round(
            t, placements, scheduler.queue_length(), elapsed
        )
        for finish in cluster.refresh_rates(touched):
            self._events.push(finish)
        return len(placements)

    def finish(self) -> SimulationResult:
        """Build the result for everything processed so far (pure)."""
        record_list = [
            self._records.record_of(j.job_id) for j in self._job_order
        ]
        makespan = max(
            (r.finished_at for r in record_list if r.finished_at is not None),
            default=0.0,
        )
        return SimulationResult(
            scheduler_name=self.scheduler.name,
            records=record_list,
            makespan=makespan,
            decision_time_s=self._accounting.decision_time_s,
            decision_rounds=self._accounting.rounds,
            placement_stats=self.cluster.engine.stats.as_dict(),
            drb_stats=self.cluster.engine.drb_stats(),
            prefilter_stats=self.cluster.engine.prefilter_stats(),
        )

    def record_of(self, job_id: str) -> JobRecord:
        """Live per-job record (service read side)."""
        return self._records.record_of(job_id)

    def mark_unplaceable(self, job_ids: Iterable[str]) -> None:
        """Flag queued jobs nothing can unblock (drained loop, idle
        cluster) — the service daemon's analogue of :meth:`run`'s
        stuck-queue exit."""
        self._records.mark_unplaceable(job_ids)

    def run(self) -> SimulationResult:
        """Run to completion and return per-job records."""
        self.start()
        while self._events:
            self.step()
            if not self._events and self.scheduler.queue_length() > 0:
                if not self.cluster.running:
                    # nothing can unblock the queue: mark unplaceable
                    self.mark_unplaceable(
                        job.job_id for job in self.scheduler.queued_jobs()
                    )
                    break
        return self.finish()


def __getattr__(name: str):
    # run_comparison moved to repro.sim.runner; keep the old import path
    # working without a circular module-level import.
    if name == "run_comparison":
        from repro.sim.runner import run_comparison

        return run_comparison
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
