"""Discrete-event simulation engine (thin orchestrator).

The kernel is layered (see DESIGN.md §3):

* :mod:`repro.sim.events` — typed events and the versioned
  :class:`~repro.sim.events.EventQueue`;
* :mod:`repro.sim.cluster` — :class:`~repro.sim.cluster.ClusterState`,
  the single owner of allocations, running jobs and progress rates;
* :mod:`repro.sim.hooks` — :class:`~repro.sim.hooks.SimObserver`
  taps for record keeping, accounting, Gantt/metrics timelines;
* this module — :class:`Simulator`, which only wires queue + cluster +
  scheduler + observers together.

The scheduler runs after every batch of simultaneous events (the
paper's Algorithm 1 "wakeup after an event, e.g. a job has finished").
Each running job carries its *remaining solo work* in seconds; its
progress rate is the inverse of its current interference slowdown
factor, so finish times are re-derived whenever allocations change.
Stale finish events are version-guarded.

``JobRecord``, ``SimulationResult`` and ``MachineFailure`` are
re-exported here for backwards compatibility; their homes are
:mod:`repro.sim.records` and :mod:`repro.sim.events`.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Iterable

from repro.core.utility import UtilityParams
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.sim.cluster import ClusterState
from repro.sim.events import (
    Arrival,
    EventQueue,
    Failure,
    Finish,
    MachineFailure,
    Recovery,
)
from repro.sim.hooks import (
    CompositeObserver,
    DecisionAccounting,
    RecordKeeper,
    SimObserver,
)
from repro.sim.records import JobRecord, SimulationResult
from repro.topology.graph import TopologyGraph
from repro.workload.job import Job
from repro.workload.profiles import ProfileDatabase

__all__ = [
    "JobRecord",
    "MachineFailure",
    "SimulationResult",
    "Simulator",
    "run_comparison",
]


class Simulator:
    """Replay a job list under one scheduler on one topology."""

    def __init__(
        self,
        topo: TopologyGraph,
        scheduler: Scheduler,
        jobs: Iterable[Job],
        *,
        calibration: Calibration = DEFAULT_CALIBRATION,
        params: UtilityParams = UtilityParams(),
        profiles: ProfileDatabase | None = None,
        failures: Iterable[MachineFailure] = (),
        cluster: ClusterState | None = None,
        observers: Iterable[SimObserver] = (),
        decision_clock: Callable[[], float] = _time.perf_counter,
    ) -> None:
        self.topo = topo
        self.scheduler = scheduler
        scheduler.attach(self)
        self.jobs: list[Job] = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
        ids = [j.job_id for j in self.jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate job ids in trace")
        if cluster is None:
            cluster = ClusterState(
                topo, calibration=calibration, params=params, profiles=profiles
            )
        elif cluster.topo is not topo:
            raise ValueError("cluster was built for a different topology")
        self.cluster = cluster
        self.calibration = cluster.calibration
        self.observers = list(observers)
        #: wall-clock source for decision-round timing; injectable so
        #: tests can assert exact accounting instead of ``>= 0``
        self.decision_clock = decision_clock
        self.failures = sorted(failures, key=lambda f: f.at_time)
        machines = set(topo.machines())
        for failure in self.failures:
            if failure.machine not in machines:
                raise ValueError(f"failure names unknown machine {failure.machine!r}")

    # ------------------------------------------------------------------
    # cluster-state views (back-compat with the pre-layered engine)
    # ------------------------------------------------------------------
    @property
    def alloc(self):
        return self.cluster.alloc

    @property
    def perf(self):
        return self.cluster.perf

    @property
    def interference(self):
        return self.cluster.interference

    @property
    def engine(self):
        return self.cluster.engine

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Run to completion and return per-job records."""
        cluster = self.cluster
        scheduler = self.scheduler
        records = RecordKeeper()
        accounting = DecisionAccounting()
        notify = CompositeObserver([records, accounting, *self.observers])

        queue = EventQueue()
        jobs_by_id: dict[str, Job] = {}
        for job in self.jobs:
            jobs_by_id[job.job_id] = job
            records.register(job, cluster.ideal_exec_time(job))
            queue.push(Arrival(job.arrival_time, job.job_id))
        for failure in self.failures:
            queue.push(Failure(failure.at_time, failure.machine))
            if failure.duration_s is not None:
                queue.push(
                    Recovery(failure.at_time + failure.duration_s, failure.machine)
                )

        while queue:
            t = queue.next_time()
            cluster.advance_to(t)
            touched: set[str] = set()
            # drain all events at time t before scheduling
            for event in queue.pop_due(t):
                if isinstance(event, Arrival):
                    job = jobs_by_id[event.job_id]
                    scheduler.submit(job)
                    notify.on_arrival(t, job)
                elif isinstance(event, Finish):
                    if cluster.is_stale_finish(event.job_id, event.version):
                        continue
                    run, machines = cluster.finish(event.job_id)
                    touched |= machines
                    notify.on_finish(t, run.job, run.gpus)
                elif isinstance(event, Failure):
                    victims, machines = cluster.fail_machine(event.machine)
                    touched |= machines
                    notify.on_failure(t, event.machine, [v.job for v in victims])
                    for victim in victims:
                        scheduler.submit(victim.job)
                        notify.on_requeue(t, victim.job)
                else:  # Recovery
                    cluster.recover_machine(event.machine)
            ctx = SchedulingContext(
                topo=self.topo,
                alloc=cluster.alloc,
                engine=cluster.engine,
                co_runners=cluster.co_runners(),
                now=cluster.now,
                cluster=cluster,
            )
            t0 = self.decision_clock()
            placements = scheduler.schedule(ctx)
            elapsed = self.decision_clock() - t0
            for solution in placements:
                job = jobs_by_id[solution.job_id]
                solo, machines = cluster.start(job, solution)
                touched |= machines
                notify.on_place(
                    t,
                    job,
                    solution,
                    solo,
                    scheduler.postponements.get(job.job_id, 0),
                )
            notify.on_decision_round(
                t, placements, scheduler.queue_length(), elapsed
            )
            for finish in cluster.refresh_rates(touched):
                queue.push(finish)
            if not queue and scheduler.queue_length() > 0:
                if not cluster.running:
                    # nothing can unblock the queue: mark unplaceable
                    records.mark_unplaceable(
                        job.job_id for job in scheduler.queued_jobs()
                    )
                    break

        record_list = [records.record_of(j.job_id) for j in self.jobs]
        makespan = max(
            (r.finished_at for r in record_list if r.finished_at is not None),
            default=0.0,
        )
        return SimulationResult(
            scheduler_name=scheduler.name,
            records=record_list,
            makespan=makespan,
            decision_time_s=accounting.decision_time_s,
            decision_rounds=accounting.rounds,
            placement_stats=cluster.engine.stats.as_dict(),
        )


def __getattr__(name: str):
    # run_comparison moved to repro.sim.runner; keep the old import path
    # working without a circular module-level import.
    if name == "run_comparison":
        from repro.sim.runner import run_comparison

        return run_comparison
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
