"""Discrete-event simulation engine.

Event kinds: job ARRIVAL and job FINISH.  The scheduler runs after
every batch of simultaneous events (the paper's Algorithm 1 "wakeup
after an event, e.g. a job has finished").  Each running job carries
its *remaining solo work* in seconds; its progress rate is the inverse
of its current interference slowdown factor, so finish times are
re-derived whenever allocations change.  Stale finish events are
version-guarded.
"""

from __future__ import annotations

import heapq
import time as _time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.placement import PlacementEngine, PlacementSolution
from repro.core.utility import UtilityParams
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.interference import InterferenceModel
from repro.perf.model import PerformanceModel
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.topology.allocation import AllocationState
from repro.topology.graph import TopologyGraph
from repro.workload.job import Job
from repro.workload.profiles import ProfileDatabase


@dataclass
class JobRecord:
    """Everything measured about one job across its simulated life."""

    job: Job
    arrival: float
    placed_at: float | None = None
    finished_at: float | None = None
    gpus: tuple[str, ...] = ()
    utility: float | None = None
    p2p: bool | None = None
    solo_exec_time: float | None = None  # placement-determined, no interference
    ideal_exec_time: float = 0.0  # best pack placement on empty cluster
    postponements: int = 0
    unplaceable: bool = False
    restarts: int = 0  # times the job was killed by a machine failure

    @property
    def waiting_time(self) -> float | None:
        if self.placed_at is None:
            return None
        return self.placed_at - self.arrival

    @property
    def exec_time(self) -> float | None:
        if self.finished_at is None or self.placed_at is None:
            return None
        return self.finished_at - self.placed_at


@dataclass
class SimulationResult:
    """Output of one simulation run."""

    scheduler_name: str
    records: list[JobRecord]
    makespan: float
    decision_time_s: float  # wall-clock spent inside scheduler.schedule
    decision_rounds: int

    @property
    def mean_decision_time_s(self) -> float:
        if self.decision_rounds == 0:
            return 0.0
        return self.decision_time_s / self.decision_rounds

    def record_of(self, job_id: str) -> JobRecord:
        for rec in self.records:
            if rec.job.job_id == job_id:
                return rec
        raise KeyError(job_id)


_ARRIVAL = 0
_FINISH = 1
_FAILURE = 2
_RECOVERY = 3


@dataclass(frozen=True)
class MachineFailure:
    """A fail-stop machine outage injected into a simulation.

    Jobs running on the machine at ``at_time`` are killed and
    resubmitted to the scheduler (cold restart: training state is
    lost, as with a checkpoint-free Caffe run).  ``duration_s=None``
    means the machine never comes back.
    """

    machine: str
    at_time: float
    duration_s: float | None = None

    def __post_init__(self) -> None:
        if self.at_time < 0:
            raise ValueError("at_time must be >= 0")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError("duration_s must be positive (or None)")


@dataclass
class _Running:
    job: Job
    gpus: frozenset[str]
    remaining: float  # solo-work seconds left
    rate: float  # progress per simulated second (1/slowdown)
    version: int = 0


class Simulator:
    """Replay a job list under one scheduler on one topology."""

    def __init__(
        self,
        topo: TopologyGraph,
        scheduler: Scheduler,
        jobs: Iterable[Job],
        *,
        calibration: Calibration = DEFAULT_CALIBRATION,
        params: UtilityParams = UtilityParams(),
        profiles: ProfileDatabase | None = None,
        failures: Iterable[MachineFailure] = (),
    ) -> None:
        self.topo = topo
        self.scheduler = scheduler
        self.jobs: list[Job] = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
        ids = [j.job_id for j in self.jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate job ids in trace")
        self.calibration = calibration
        self.alloc = AllocationState(topo)
        self.perf = PerformanceModel(topo, calibration)
        self.interference = InterferenceModel(topo, calibration)
        self.engine = PlacementEngine(
            topo, self.alloc, params, profiles, self.interference
        )
        self._records: dict[str, JobRecord] = {}
        self._running: dict[str, _Running] = {}
        self._heap: list[tuple[float, int, int, str]] = []
        self._seq = 0
        self._now = 0.0
        self._ideal_cache: dict[tuple, float] = {}
        self.failures = sorted(failures, key=lambda f: f.at_time)
        machines = set(topo.machines())
        for failure in self.failures:
            if failure.machine not in machines:
                raise ValueError(f"failure names unknown machine {failure.machine!r}")

    # ------------------------------------------------------------------
    def _push(self, when: float, kind: int, job_id: str) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, kind, self._seq, job_id))

    def _ideal_time(self, job: Job) -> float:
        key = (job.model, job.batch_size, job.num_gpus, job.iterations)
        cached = self._ideal_cache.get(key)
        if cached is None:
            try:
                cached = self.perf.ideal_exec_time(job)
            except ValueError:
                # job larger than the whole topology: it can never be
                # placed, so there is no ideal time (record stays 0 and
                # the job ends up marked unplaceable)
                cached = 0.0
            self._ideal_cache[key] = cached
        return cached

    def _advance_progress(self, t: float) -> None:
        dt = t - self._now
        if dt < 0:
            raise RuntimeError(f"time went backwards: {self._now} -> {t}")
        if dt > 0:
            for run in self._running.values():
                run.remaining -= dt * run.rate
        self._now = t

    def _co_runners(self) -> dict[str, tuple[Job, frozenset[str]]]:
        return {
            job_id: (run.job, run.gpus) for job_id, run in self._running.items()
        }

    def _refresh_rates(self, touched_machines: set[str]) -> None:
        """Recompute rates/finish events for jobs near changed machines."""
        if not touched_machines:
            return
        co = self._co_runners()
        affected: set[str] = set()
        for m in touched_machines:
            affected |= self.alloc.jobs_on_machine(m)
        for job_id in affected:
            run = self._running.get(job_id)
            if run is None:
                continue
            factor = self.interference.slowdown_factor(
                run.job, run.gpus, co, self.alloc
            )
            new_rate = 1.0 / factor
            if abs(new_rate - run.rate) > 1e-12 or run.version == 0:
                run.rate = new_rate
                run.version += 1
                self._push(
                    self._now + run.remaining / run.rate, _FINISH, job_id
                )

    def _start_job(self, solution: PlacementSolution) -> set[str]:
        rec = self._records[solution.job_id]
        job = rec.job
        gpus = frozenset(solution.gpus)
        # task-indexed GPU order: model-parallel pipelines/rings are
        # charged per the mapping DRB chose, not an arbitrary sort
        by_task = [
            solution.task_mapping[t] for t in sorted(solution.task_mapping)
        ]
        solo = self.perf.solo_exec_time(job, by_task)
        rec.placed_at = self._now
        rec.gpus = tuple(sorted(gpus))
        rec.utility = solution.utility
        rec.p2p = solution.p2p
        rec.solo_exec_time = solo
        rec.postponements = self.scheduler.postponements.get(job.job_id, 0)
        self._running[job.job_id] = _Running(
            job=job, gpus=gpus, remaining=solo, rate=1.0, version=0
        )
        return {self.topo.machine_of(g) for g in gpus}

    def _finish_job(self, job_id: str) -> set[str]:
        run = self._running.pop(job_id)
        if run.remaining > 1e-6:
            raise RuntimeError(
                f"{job_id} finished with {run.remaining:.3f}s work left"
            )
        self.alloc.release(job_id)
        rec = self._records[job_id]
        rec.finished_at = self._now
        return {self.topo.machine_of(g) for g in run.gpus}

    def _fail_machine(self, machine: str) -> set[str]:
        """Fail-stop a machine: kill and resubmit its jobs."""
        victims = self.alloc.set_machine_down(machine)
        touched = {machine}
        for job_id in victims:
            run = self._running.pop(job_id, None)
            if run is None:
                continue
            # a spanning job may hold GPUs on healthy machines too;
            # their neighbours speed back up once it dies
            touched |= {self.topo.machine_of(g) for g in run.gpus}
            self.alloc.release(job_id)
            rec = self._records[job_id]
            rec.restarts += 1
            rec.placed_at = None
            rec.gpus = ()
            rec.utility = None
            rec.p2p = None
            rec.solo_exec_time = None
            self.scheduler.submit(run.job)
        return touched

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Run to completion and return per-job records."""
        for job in self.jobs:
            self._records[job.job_id] = JobRecord(
                job=job,
                arrival=job.arrival_time,
                ideal_exec_time=self._ideal_time(job),
            )
            self._push(job.arrival_time, _ARRIVAL, job.job_id)
        for failure in self.failures:
            self._push(failure.at_time, _FAILURE, failure.machine)
            if failure.duration_s is not None:
                self._push(
                    failure.at_time + failure.duration_s,
                    _RECOVERY,
                    failure.machine,
                )

        decision_time = 0.0
        rounds = 0
        while self._heap:
            t = self._heap[0][0]
            self._advance_progress(t)
            touched: set[str] = set()
            # drain all events at time t before scheduling
            while self._heap and self._heap[0][0] <= t + 1e-12:
                _, kind, _, payload = heapq.heappop(self._heap)
                if kind == _ARRIVAL:
                    self.scheduler.submit(self._records[payload].job)
                elif kind == _FAILURE:
                    touched |= self._fail_machine(payload)
                elif kind == _RECOVERY:
                    self.alloc.set_machine_up(payload)
                else:
                    run = self._running.get(payload)
                    if run is None or run.remaining > 1e-6:
                        continue  # stale finish event
                    touched |= self._finish_job(payload)
            ctx = SchedulingContext(
                topo=self.topo,
                alloc=self.alloc,
                engine=self.engine,
                co_runners=self._co_runners(),
                now=self._now,
            )
            t0 = _time.perf_counter()
            placements = self.scheduler.schedule(ctx)
            decision_time += _time.perf_counter() - t0
            rounds += 1
            for solution in placements:
                touched |= self._start_job(solution)
            self._refresh_rates(touched)
            if not self._heap and self.scheduler.queue_length() > 0:
                if not self._running:
                    # nothing can unblock the queue: mark unplaceable
                    for job in self.scheduler.queued_jobs():
                        self._records[job.job_id].unplaceable = True
                    break

        records = [self._records[j.job_id] for j in self.jobs]
        makespan = max(
            (r.finished_at for r in records if r.finished_at is not None),
            default=0.0,
        )
        return SimulationResult(
            scheduler_name=self.scheduler.name,
            records=records,
            makespan=makespan,
            decision_time_s=decision_time,
            decision_rounds=rounds,
        )


def run_comparison(
    topo_factory,
    jobs: Sequence[Job],
    scheduler_names: Sequence[str] = ("BF", "FCFS", "TOPO-AWARE", "TOPO-AWARE-P"),
    **sim_kwargs,
) -> dict[str, SimulationResult]:
    """Run the same trace under several policies on fresh topologies.

    ``topo_factory`` is called once per policy so allocation state and
    caches never leak between runs.
    """
    from repro.schedulers import make_scheduler

    results: dict[str, SimulationResult] = {}
    for name in scheduler_names:
        topo = topo_factory()
        sim = Simulator(topo, make_scheduler(name), list(jobs), **sim_kwargs)
        results[name] = sim.run()
    return results
