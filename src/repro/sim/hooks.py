"""Pluggable observer hooks for the simulation kernel.

The engine emits a small set of lifecycle notifications; everything
that used to be engine-internal record keeping is now an observer:

* :class:`RecordKeeper` builds the per-job :class:`JobRecord` list.
* :class:`DecisionAccounting` accumulates scheduler decision time.
* :class:`repro.analysis.gantt.GanttObserver` collects occupancy
  intervals for the Figure 8 panels.
* :class:`repro.sim.metrics.UtilizationObserver` tracks live GPU
  utilization.

Custom observers implement any subset of the :class:`SimObserver`
protocol (subclass :class:`BaseObserver` for no-op defaults) and are
attached via ``Simulator(..., observers=[...])`` or
:func:`repro.sim.runner.run_with_observers`.  Hooks must not mutate
cluster or scheduler state; they are taps on the event stream.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence, runtime_checkable

from repro.core.placement import PlacementSolution
from repro.sim.records import JobRecord
from repro.workload.job import Job


@runtime_checkable
class SimObserver(Protocol):
    """Lifecycle notifications emitted by the simulation engine."""

    def on_arrival(self, t: float, job: Job) -> None:
        """A job arrived and was submitted to the scheduler queue."""

    def on_place(
        self,
        t: float,
        job: Job,
        solution: PlacementSolution,
        solo_exec_time: float,
        postponements: int,
    ) -> None:
        """A job started executing under ``solution`` at time ``t``."""

    def on_finish(self, t: float, job: Job, gpus: frozenset[str]) -> None:
        """A running job completed and released ``gpus``."""

    def on_failure(self, t: float, machine: str, victims: Sequence[Job]) -> None:
        """A machine fail-stopped, killing ``victims`` (may be empty)."""

    def on_requeue(self, t: float, job: Job) -> None:
        """A failure victim was resubmitted to the scheduler queue."""

    def on_evict(
        self, t: float, job: Job, gpus: frozenset[str], reason: str
    ) -> None:
        """A job was removed from the cluster before finishing.

        ``reason`` is ``"cancel"`` (operator cancellation, terminal),
        ``"preempt"`` (evicted for a higher-priority job, back to the
        queue with progress checkpointed) or ``"migrate"`` (evicted by
        the defragmenter, immediately re-placed elsewhere).  ``gpus``
        is empty when the job was not running.
        """

    def on_decision_round(
        self,
        t: float,
        placed: Sequence[PlacementSolution],
        queued: int,
        elapsed_s: float,
    ) -> None:
        """The scheduler ran once: ``placed`` solutions in ``elapsed_s``
        wall-clock seconds, leaving ``queued`` jobs waiting."""


class BaseObserver:
    """No-op :class:`SimObserver`; subclass and override what you need."""

    def on_arrival(self, t: float, job: Job) -> None:
        pass

    def on_place(
        self,
        t: float,
        job: Job,
        solution: PlacementSolution,
        solo_exec_time: float,
        postponements: int,
    ) -> None:
        pass

    def on_finish(self, t: float, job: Job, gpus: frozenset[str]) -> None:
        pass

    def on_failure(self, t: float, machine: str, victims: Sequence[Job]) -> None:
        pass

    def on_requeue(self, t: float, job: Job) -> None:
        pass

    def on_evict(
        self, t: float, job: Job, gpus: frozenset[str], reason: str
    ) -> None:
        pass

    def on_decision_round(
        self,
        t: float,
        placed: Sequence[PlacementSolution],
        queued: int,
        elapsed_s: float,
    ) -> None:
        pass


class CompositeObserver(BaseObserver):
    """Fan every notification out to child observers in attach order."""

    def __init__(self, observers: Iterable[SimObserver] = ()) -> None:
        self.observers: list[SimObserver] = list(observers)

    def add(self, observer: SimObserver) -> None:
        self.observers.append(observer)

    def on_arrival(self, t, job):
        for obs in self.observers:
            obs.on_arrival(t, job)

    def on_place(self, t, job, solution, solo_exec_time, postponements):
        for obs in self.observers:
            obs.on_place(t, job, solution, solo_exec_time, postponements)

    def on_finish(self, t, job, gpus):
        for obs in self.observers:
            obs.on_finish(t, job, gpus)

    def on_failure(self, t, machine, victims):
        for obs in self.observers:
            obs.on_failure(t, machine, victims)

    def on_requeue(self, t, job):
        for obs in self.observers:
            obs.on_requeue(t, job)

    def on_evict(self, t, job, gpus, reason):
        # getattr guard: on_evict post-dates the protocol, and custom
        # observers written against the original five hooks must keep
        # working unmodified.
        for obs in self.observers:
            hook = getattr(obs, "on_evict", None)
            if hook is not None:
                hook(t, job, gpus, reason)

    def on_decision_round(self, t, placed, queued, elapsed_s):
        for obs in self.observers:
            obs.on_decision_round(t, placed, queued, elapsed_s)


class RecordKeeper(BaseObserver):
    """Builds the per-job :class:`JobRecord` list from the event stream.

    The engine registers every trace job up front (arrival time and
    ideal execution time are known before the run starts); the hooks
    then fill in placement, completion and restart bookkeeping.
    """

    def __init__(self) -> None:
        self.records: dict[str, JobRecord] = {}

    def register(self, job: Job, ideal_exec_time: float) -> None:
        self.records[job.job_id] = JobRecord(
            job=job,
            arrival=job.arrival_time,
            ideal_exec_time=ideal_exec_time,
        )

    def record_of(self, job_id: str) -> JobRecord:
        return self.records[job_id]

    def on_place(self, t, job, solution, solo_exec_time, postponements):
        rec = self.records[job.job_id]
        rec.placed_at = t
        rec.gpus = tuple(sorted(solution.gpus))
        rec.utility = solution.utility
        rec.p2p = solution.p2p
        rec.solo_exec_time = solo_exec_time
        rec.postponements = postponements

    def on_finish(self, t, job, gpus):
        self.records[job.job_id].finished_at = t

    def on_requeue(self, t, job):
        # cold restart: the placement is void and training state is lost
        rec = self.records[job.job_id]
        rec.restarts += 1
        rec.placed_at = None
        rec.gpus = ()
        rec.utility = None
        rec.p2p = None
        rec.solo_exec_time = None

    def on_evict(self, t, job, gpus, reason):
        rec = self.records[job.job_id]
        if reason == "cancel":
            # terminal: keep the placement fields as a record of where
            # the job was running when it died, mirror finished_at.
            rec.cancelled_at = t
            return
        # warm eviction (preempt/migrate): progress is checkpointed, so
        # unlike on_requeue this is not a restart — but the current
        # placement is void until the scheduler re-places the job.
        rec.preemptions += 1
        if reason == "migrate":
            rec.migrations += 1
        rec.placed_at = None
        rec.gpus = ()
        rec.utility = None
        rec.p2p = None
        rec.solo_exec_time = None

    def mark_unplaceable(self, job_ids: Iterable[str]) -> None:
        for job_id in job_ids:
            self.records[job_id].unplaceable = True


class DecisionAccounting(BaseObserver):
    """Accumulates scheduler wall-clock time and round counts.

    The ``elapsed_s`` it receives is measured by the engine's
    ``decision_clock`` (``Simulator(..., decision_clock=...)``), which
    defaults to ``time.perf_counter``; tests inject a deterministic
    counter to assert exact accounting."""

    def __init__(self) -> None:
        self.decision_time_s = 0.0
        self.rounds = 0

    def on_decision_round(self, t, placed, queued, elapsed_s):
        self.decision_time_s += elapsed_s
        self.rounds += 1

    @property
    def mean_decision_time_s(self) -> float:
        if self.rounds == 0:
            return 0.0
        return self.decision_time_s / self.rounds
