"""Metrics over simulation records (the quantities the paper plots).

* QoS slowdown (Figures 8e/9e/10a/11a): execution time under the chosen
  placement and interference, relative to the job's ideal (best pack
  placement, no co-runners) -- strictly the cost of the placement
  decision.
* QoS + waiting slowdown (Figures 8f/9f/10b/11b): the same, but charged
  from arrival, so queueing delay counts too.
* SLO violations: placements whose utility fell below the job's
  ``min_utility``.
* cumulative execution time: the makespan of the whole workload, the
  metric behind the paper's headline "TOPO-AWARE-P affords a speedup of
  ~1.30x" (Section 5.2.2).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.utility import SLO_EPS
from repro.sim.hooks import BaseObserver
from repro.sim.records import JobRecord, SimulationResult


#: how slowdown metrics treat jobs that never finished: ``"skip"``
#: drops them (returns ``None`` for a single record), ``"raise"``
#: turns them into a :class:`ValueError` at the call site.
UNFINISHED_POLICIES = ("skip", "raise")


def _check_unfinished(unfinished: str) -> str:
    if unfinished not in UNFINISHED_POLICIES:
        raise ValueError(
            f"unfinished must be one of {UNFINISHED_POLICIES}, "
            f"got {unfinished!r}"
        )
    return unfinished


def qos_slowdown(record: JobRecord, unfinished: str = "raise") -> float | None:
    """Execution slowdown vs the ideal placement (0 = ideal).

    ``unfinished="raise"`` (default) treats an unfinished job as an
    error; ``"skip"`` returns ``None`` instead so collection-level
    callers can filter uniformly.  A cancelled job is *terminal*, not
    unfinished: it has no slowdown under either policy (``None``, never
    an error) — its life ended by operator choice, not by the run being
    cut short.
    """
    _check_unfinished(unfinished)
    if record.cancelled_at is not None:
        return None
    if record.exec_time is None:
        if unfinished == "skip":
            return None
        raise ValueError(f"{record.job.job_id} did not finish")
    if record.ideal_exec_time <= 0:
        if unfinished == "skip":
            return None
        raise ValueError(f"{record.job.job_id} has no ideal time")
    return max(0.0, record.exec_time / record.ideal_exec_time - 1.0)


def total_slowdown(record: JobRecord, unfinished: str = "raise") -> float | None:
    """Slowdown including scheduler queue waiting time.

    Same ``unfinished`` policy as :func:`qos_slowdown` — including the
    guard against records with no ideal time (e.g. a job marked
    unplaceable caches an ideal of 0.0), which raise a clear
    :class:`ValueError` instead of a bare ``ZeroDivisionError``.
    Cancelled jobs yield ``None`` under both policies, as in
    :func:`qos_slowdown`.
    """
    _check_unfinished(unfinished)
    if record.cancelled_at is not None:
        return None
    if record.finished_at is None:
        if unfinished == "skip":
            return None
        raise ValueError(f"{record.job.job_id} did not finish")
    if record.ideal_exec_time <= 0:
        if unfinished == "skip":
            return None
        raise ValueError(f"{record.job.job_id} has no ideal time")
    span = record.finished_at - record.arrival
    return max(0.0, span / record.ideal_exec_time - 1.0)


def sorted_slowdowns(
    records: Iterable[JobRecord],
    include_waiting: bool = False,
    unfinished: str = "skip",
) -> np.ndarray:
    """Per-job slowdowns ordered worst to best (the figures' x-axis).

    ``unfinished="skip"`` (default, the historical behaviour) drops
    jobs that never finished; ``"raise"`` surfaces them as a
    :class:`ValueError` so evaluation scripts cannot silently plot a
    partial workload.
    """
    _check_unfinished(unfinished)
    fn = total_slowdown if include_waiting else qos_slowdown
    vals = [v for r in records if (v := fn(r, unfinished)) is not None]
    return np.array(sorted(vals, reverse=True))


def slo_violations(records: Iterable[JobRecord]) -> list[str]:
    """Jobs placed below their minimum utility (violated SLOs)."""
    out = []
    for r in records:
        if r.utility is not None and r.utility < r.job.min_utility - SLO_EPS:
            out.append(r.job.job_id)
    return out


def cumulative_execution_time(result: SimulationResult) -> float:
    """Completion time of the whole workload (makespan)."""
    return result.makespan


def mean_utility(records: Iterable[JobRecord]) -> float:
    vals = [r.utility for r in records if r.utility is not None]
    return float(np.mean(vals)) if vals else 0.0


def mean_waiting_time(records: Iterable[JobRecord]) -> float:
    vals = [r.waiting_time for r in records if r.waiting_time is not None]
    return float(np.mean(vals)) if vals else 0.0


def utilization_timeline(
    records: Iterable[JobRecord],
    total_gpus: int,
    n_samples: int = 200,
) -> tuple[np.ndarray, np.ndarray]:
    """GPU-busy fraction over time (the paper's utilization claim)."""
    if total_gpus < 1:
        raise ValueError("total_gpus must be >= 1")
    if n_samples < 2:
        raise ValueError("n_samples must be >= 2")
    placed = [r for r in records if r.placed_at is not None]
    if not placed:
        return np.array([0.0]), np.array([0.0])
    horizon = max(
        r.end_time if r.end_time is not None else r.placed_at
        for r in placed
    )
    times = np.linspace(0.0, max(horizon, 1e-9), n_samples)
    busy = np.zeros(n_samples)
    for r in placed:
        end = r.end_time if r.end_time is not None else horizon
        mask = (times >= r.placed_at) & (times < end)
        busy[mask] += len(r.gpus)
    return times, busy / total_gpus


def average_utilization(records: Iterable[JobRecord], total_gpus: int) -> float:
    """Time-averaged GPU-busy fraction across the whole run."""
    times, util = utilization_timeline(records, total_gpus)
    if len(times) < 2:
        return 0.0
    return float(np.trapezoid(util, times) / (times[-1] - times[0]))


def bandwidth_timeline(
    records: Iterable[JobRecord],
    profiles,
    n_samples: int = 200,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(times, p2p GB/s, host-routed GB/s) across the run.

    Reproduces Figure 8's bottom strips: each running job contributes
    its profile's average bus demand, attributed to the P2P series when
    its placement is peer-to-peer capable and to the routed
    (GPU-CPU-GPU) series otherwise.
    """
    placed = [
        r for r in records if r.placed_at is not None and r.end_time is not None
    ]
    if not placed:
        return np.array([0.0]), np.array([0.0]), np.array([0.0])
    horizon = max(r.end_time for r in placed)
    times = np.linspace(0.0, horizon, n_samples)
    p2p = np.zeros(n_samples)
    routed = np.zeros(n_samples)
    for r in placed:
        if r.job.num_gpus < 2:
            continue  # no GPU-GPU traffic
        demand = profiles.for_job(r.job).avg_demand_gbs
        mask = (times >= r.placed_at) & (times < r.end_time)
        if r.p2p:
            p2p[mask] += demand
        else:
            routed[mask] += demand
    return times, p2p, routed


def summarize(result: SimulationResult) -> dict:
    """One-line comparison row for a simulation run."""
    records = [r for r in result.records if r.finished_at is not None]
    unfinished = [r for r in result.records if not r.terminal]
    return {
        "scheduler": result.scheduler_name,
        "jobs": len(result.records),
        "finished": len(records),
        "cancelled": sum(
            1 for r in result.records if r.cancelled_at is not None
        ),
        "preemptions": sum(r.preemptions for r in result.records),
        "migrations": sum(r.migrations for r in result.records),
        "unplaceable": sum(1 for r in unfinished if r.unplaceable),
        "makespan_s": result.makespan,
        "mean_qos_slowdown": float(np.mean([qos_slowdown(r) for r in records]))
        if records
        else 0.0,
        "max_qos_slowdown": float(np.max([qos_slowdown(r) for r in records]))
        if records
        else 0.0,
        "mean_total_slowdown": float(
            np.mean([total_slowdown(r) for r in records])
        )
        if records
        else 0.0,
        "mean_waiting_s": mean_waiting_time(records),
        "mean_utility": mean_utility(records),
        "slo_violations": len(slo_violations(result.records)),
        "alerts": len(result.alerts),
        "mean_decision_time_s": result.mean_decision_time_s,
    }


class UtilizationObserver(BaseObserver):
    """Live GPU-utilization step series from the simulation event stream.

    Tracks the busy-GPU count at every placement, completion and
    failure, producing the exact step function the sampled
    :func:`utilization_timeline` approximates from records — including
    occupancy by placements a later machine failure voids.
    """

    def __init__(self, total_gpus: int) -> None:
        if total_gpus < 1:
            raise ValueError("total_gpus must be >= 1")
        self.total_gpus = total_gpus
        self._busy = 0
        self._held: dict[str, int] = {}  # job id -> GPUs it occupies
        self.steps: list[tuple[float, float]] = []  # (time, busy fraction)

    def _step(self, t: float) -> None:
        self.steps.append((t, self._busy / self.total_gpus))

    def on_place(self, t, job, solution, solo_exec_time, postponements):
        self._held[job.job_id] = len(solution.gpus)
        self._busy += self._held[job.job_id]
        self._step(t)

    def on_finish(self, t, job, gpus):
        self._busy -= self._held.pop(job.job_id, 0)
        self._step(t)

    def on_failure(self, t, machine, victims):
        for job in victims:
            self._busy -= self._held.pop(job.job_id, 0)
        if victims:
            self._step(t)

    def on_evict(self, t, job, gpus, reason):
        # guarded pop: a cancel may catch a job that never ran
        freed = self._held.pop(job.job_id, None)
        if freed is not None:
            self._busy -= freed
            self._step(t)

    def timeline(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, busy fraction) step series, one point per change."""
        if not self.steps:
            return np.array([0.0]), np.array([0.0])
        times, util = zip(*self.steps)
        return np.array(times), np.array(util)

    def average(self) -> float:
        """Time-weighted mean utilization across the observed span."""
        times, util = self.timeline()
        if len(times) < 2 or times[-1] <= times[0]:
            return 0.0
        # step function: each level holds until the next change point
        widths = np.diff(times)
        return float(np.sum(util[:-1] * widths) / (times[-1] - times[0]))


def comparison_table(results: Sequence[SimulationResult]) -> str:
    """Formatted text table across schedulers (benchmark output)."""
    rows = [summarize(r) for r in results]
    cols = [
        ("scheduler", "{:<14}"),
        ("makespan_s", "{:>10.1f}"),
        ("mean_qos_slowdown", "{:>9.3f}"),
        ("mean_total_slowdown", "{:>9.3f}"),
        ("mean_waiting_s", "{:>9.1f}"),
        ("slo_violations", "{:>6d}"),
        ("alerts", "{:>7d}"),
        ("mean_utility", "{:>8.3f}"),
    ]
    header = (
        f"{'scheduler':<14}{'makespan':>10}{'qos-slow':>9}"
        f"{'tot-slow':>9}{'wait-s':>9}{'viol':>6}{'alerts':>7}{'utility':>8}"
    )
    lines = [header]
    for row in rows:
        lines.append("".join(fmt.format(row[name]) for name, fmt in cols))
    return "\n".join(lines)
