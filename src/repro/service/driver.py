"""Trace replay through the service API (the ``repro replay`` verb).

Pushes a job trace at the daemon the way a bursty client population
would: every job becomes one ``POST /submit`` over a keep-alive
HTTP/1.1 connection, wall-clock submission latency is sampled
client-side, and the driver optionally waits for the whole trace to
reach a terminal state.

Two modes:

* **paused** (default) — ``POST /pause`` first, submit the full trace,
  ``POST /resume``: the engine then drains the burst in virtual-time
  order, which makes daemon output comparable to a one-shot
  ``repro simulate`` of the same manifest (the batch-equivalence
  guarantee);
* **live** (``pause=False``) — submissions race the running engine;
  arrival times in the simulated past are clamped to the virtual
  present.

The driver is deliberately a pure HTTP client (stdlib only): it
exercises exactly the surface an external user sees, so its
throughput number (``ReplayReport.rate_per_s``) measures the real
admission path — parse, admission check, sqlite journal, inbox push —
not an in-process shortcut.
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass, field
from typing import Sequence
from urllib.parse import urlsplit

from repro.workload.job import Job
from repro.workload.manifest import job_to_dict


class ReplayError(RuntimeError):
    """The daemon answered in a way the driver cannot continue from."""


@dataclass
class ReplayReport:
    """What one replay measured."""

    submitted: int = 0
    rejected: dict[str, int] = field(default_factory=dict)
    wall_s: float = 0.0
    #: client-observed wall latency of each accepted submission
    latencies_s: list[float] = field(default_factory=list)
    completed: bool = False  # every submitted job reached terminal state
    final_states: dict[str, str] = field(default_factory=dict)

    @property
    def rate_per_s(self) -> float:
        return self.submitted / self.wall_s if self.wall_s > 0 else 0.0

    def latency_quantile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def summary(self) -> str:
        lines = [
            f"replayed {self.submitted} submissions in {self.wall_s:.3f}s "
            f"({self.rate_per_s:.0f}/s)",
            f"submit latency p50={self.latency_quantile(0.5) * 1e3:.2f}ms "
            f"p99={self.latency_quantile(0.99) * 1e3:.2f}ms",
        ]
        if self.rejected:
            rejected = ", ".join(
                f"{reason}={n}" for reason, n in sorted(self.rejected.items())
            )
            lines.append(f"rejected: {rejected}")
        if self.final_states:
            counts: dict[str, int] = {}
            for state in self.final_states.values():
                counts[state] = counts.get(state, 0) + 1
            states = ", ".join(
                f"{s}={n}" for s, n in sorted(counts.items())
            )
            lines.append(
                f"terminal states: {states}"
                if self.completed
                else f"states at timeout: {states}"
            )
        return "\n".join(lines)


class _Client:
    """Minimal keep-alive JSON client over one stdlib connection."""

    def __init__(self, base_url: str, timeout_s: float = 10.0) -> None:
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.netloc:
            raise ReplayError(f"unsupported daemon url {base_url!r}")
        self._conn = http.client.HTTPConnection(
            parts.netloc, timeout=timeout_s
        )

    def request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        try:
            self._conn.request(method, path, body=payload, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as exc:
            self._conn.close()
            raise ReplayError(f"daemon unreachable: {exc}") from exc
        try:
            doc = json.loads(raw) if raw else {}
        except ValueError:
            doc = {}
        return response.status, doc

    def close(self) -> None:
        self._conn.close()


def replay_trace(
    jobs: Sequence[Job],
    base_url: str,
    *,
    pause: bool = True,
    priority: int = 0,
    wait: bool = True,
    timeout_s: float = 120.0,
    poll_interval_s: float = 0.05,
) -> ReplayReport:
    """Submit a trace through the daemon API; see the module docstring."""
    report = ReplayReport()
    client = _Client(base_url)
    try:
        if pause:
            status, _ = client.request("POST", "/pause")
            if status != 200:
                raise ReplayError(f"POST /pause answered {status}")
        submitted_ids: list[str] = []
        t0 = time.perf_counter()
        for job in jobs:
            body = job_to_dict(job)
            if priority:
                body["priority"] = priority
            t_submit = time.perf_counter()
            status, doc = client.request("POST", "/submit", body)
            latency = time.perf_counter() - t_submit
            if status == 202:
                report.submitted += 1
                report.latencies_s.append(latency)
                submitted_ids.append(job.job_id)
            else:
                reason = doc.get("rejected") or doc.get("error") or str(status)
                report.rejected[reason] = report.rejected.get(reason, 0) + 1
        report.wall_s = time.perf_counter() - t0
        if pause:
            status, _ = client.request("POST", "/resume")
            if status != 200:
                raise ReplayError(f"POST /resume answered {status}")
        if wait and submitted_ids:
            report.completed = _wait_terminal(
                client, submitted_ids, report, timeout_s, poll_interval_s
            )
    finally:
        client.close()
    return report


def _wait_terminal(
    client: _Client,
    job_ids: list[str],
    report: ReplayReport,
    timeout_s: float,
    poll_interval_s: float,
) -> bool:
    """Poll ``GET /jobs`` until every submitted id is terminal."""
    terminal = {"FINISHED", "CANCELLED", "FAILED"}
    wanted = set(job_ids)
    deadline = time.monotonic() + timeout_s
    while True:
        status, doc = client.request("GET", "/jobs")
        if status != 200:
            raise ReplayError(f"GET /jobs answered {status}")
        states = doc.get("jobs", {})
        report.final_states = {
            j: states.get(j, "?") for j in job_ids
        }
        if all(states.get(j) in terminal for j in wanted):
            return True
        if time.monotonic() > deadline:
            return False
        time.sleep(poll_interval_s)
