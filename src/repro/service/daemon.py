"""The scheduler service daemon: one engine, one loop thread, HTTP API.

Threading model (the whole point of the design):

* **HTTP handler threads** (from the stdlib threading server) never
  touch the simulation engine.  A submission is validated, admitted
  (:class:`~repro.service.queue.QueueManager`), journaled
  (:class:`~repro.service.store.ServiceStore`) and pushed onto the
  priority inbox — all thread-safe, all O(1)-ish — then the loop is
  woken.  Reads are served from atomically published snapshots and the
  lifecycle table.
* **The scheduler loop thread** is the *only* mutator of the
  :class:`~repro.sim.engine.Simulator`: it drains the inbox into
  :meth:`~repro.sim.engine.Simulator.submit_job`, applies cancels, and
  steps the event loop.  Single-writer means the engine needs no locks
  and stays bit-identical with its one-shot batch mode.

Pause/resume (``POST /pause`` / ``POST /resume``) stops *stepping*
while commands keep applying: submit a whole trace paused, resume, and
the engine drains it in virtual-time order — byte-for-byte the same
records a one-shot ``repro simulate`` of that trace produces (pinned
by the batch-equivalence golden test).

Lifecycle hops observed from the engine (arrival, placement, finish,
failure requeue) flow through the
:class:`~repro.service.statemachine.LifecycleTable`, which journals
every accepted transition to sqlite; on restart the daemon re-admits
every non-terminal journaled job, so a killed daemon resumes with the
queue it died with.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass

from repro.obs.alerts import Watchdog
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import DecisionRecorder
from repro.obs.server import IntrospectionServer, Response, json_response
from repro.obs.state import SnapshotObserver, SnapshotPublisher
from repro.obs.telemetry import ServiceTelemetry, TelemetryObserver
from repro.obs.timeseries import TimeSeriesSampler, TimeSeriesStore
from repro.schedulers import make_scheduler
from repro.schedulers.base import Scheduler
from repro.service.queue import AdmissionDecision, QueueManager
from repro.service.statemachine import JobState, LifecycleTable
from repro.service.store import ServiceStore
from repro.sim.engine import Simulator
from repro.sim.hooks import BaseObserver
from repro.sim.records import JobRecord, SimulationResult
from repro.topology.graph import TopologyGraph
from repro.workload.manifest import ManifestError, job_from_dict

#: how many inbox entries one loop iteration feeds before stepping —
#: bounds the latency between a burst and the first decision round
#: without letting a flood starve the event loop.
_APPLY_BATCH = 1024

#: wall-clock throttle for the O(jobs) per-state gauge rebuild
_GAUGE_INTERVAL_S = 0.05


@dataclass(frozen=True)
class SubmitResult:
    """What the API returns for one submission."""

    job_id: str
    decision: AdmissionDecision
    state: str | None  # lifecycle state right after admission


class _LifecycleBridge(BaseObserver):
    """Feed engine lifecycle notifications into the state machine.

    Runs inside the loop thread (observers always do).  Uses
    ``advance_if`` for hops restart recovery may have fast-forwarded —
    e.g. the arrival notification of a job restored straight into
    ``QUEUED`` is a no-op, not an error.
    """

    def __init__(self, service: "SchedulerService") -> None:
        self._svc = service

    def on_arrival(self, t, job):
        self._svc.lifecycle.advance_if(job.job_id, JobState.QUEUED)

    def on_place(self, t, job, solution, solo_exec_time, postponements):
        # the kernel places and starts in one decision round; both
        # hops are recorded so the journal shows the full path
        self._svc.lifecycle.advance_if(job.job_id, JobState.PLACED)
        self._svc.lifecycle.advance_if(job.job_id, JobState.RUNNING)

    def on_finish(self, t, job, gpus):
        if self._svc.lifecycle.advance_if(job.job_id, JobState.FINISHED):
            self._svc.queue.retire(job.job_id)

    def on_requeue(self, t, job):
        self._svc.lifecycle.advance_if(job.job_id, JobState.QUEUED)

    def on_evict(self, t, job, gpus, reason):
        # preempt/migrate: the job leaves its GPUs but stays in play —
        # journal the RUNNING -> QUEUED hop (a migrated job's on_place
        # follows in the same round and advances it straight back).
        # Cancel is NOT handled here: _apply_cancels owns the
        # CANCELLED transition and the queue retirement.
        if reason in ("preempt", "migrate"):
            self._svc.lifecycle.advance_if(job.job_id, JobState.QUEUED)


class SchedulerService:
    """Owns the engine, the loop thread, and the service bookkeeping."""

    def __init__(
        self,
        topo: TopologyGraph,
        scheduler: Scheduler | str = "TOPO-AWARE",
        *,
        store_path: str = ":memory:",
        max_queue_depth: int = 100_000,
        registry: MetricsRegistry | None = None,
        event_log: EventLog | None = None,
        extra_observers: tuple = (),
        decision_ring: int = 4096,
        decision_journal: bool = False,
        watchdog_rules=None,
        timeseries_capacity: int = 512,
        sample_interval_s: float = 0.05,
    ) -> None:
        if isinstance(scheduler, str):
            scheduler = make_scheduler(scheduler)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.telemetry = ServiceTelemetry(self.registry)
        self.store = ServiceStore(
            store_path, observe_write=self.telemetry.journal_write
        )
        self.lifecycle = LifecycleTable(journal=self._journal_hook)
        self.queue = QueueManager(
            len(topo.gpus()), max_depth=max_queue_depth
        )
        self.publisher = SnapshotPublisher()
        self._snapshots = SnapshotObserver(
            self.publisher,
            scheduler=scheduler.name,
            job_states_source=self.lifecycle.table,
        )
        sim_telemetry = TelemetryObserver(
            self.registry,
            event_log,
            scheduler=scheduler.name,
            total_gpus=len(topo.gpus()),
        )
        # the decision flight recorder backs /decisions, /explain/<id>
        # and the /events SSE stream; ring-bounded so a long-running
        # daemon's memory stays flat (decision_ring=0 disables it)
        self.decision_recorder = (
            DecisionRecorder(
                ring_size=decision_ring,
                journal=decision_journal,
                registry=self.registry,
                scheduler=scheduler.name,
            )
            if decision_ring > 0
            else None
        )
        provenance_taps = (
            (self.decision_recorder,) if self.decision_recorder else ()
        )
        # the SLO watchdog evaluates after the telemetry observer so
        # registry-derived signals are fresh; windowed rules let a soak
        # run page on trends (growing queues, decaying utilization)
        self.watchdog = (
            Watchdog(
                self.registry,
                event_log,
                watchdog_rules,
                scheduler=scheduler.name,
            )
            if watchdog_rules is not None
            else None
        )
        watchdog_taps = (self.watchdog,) if self.watchdog else ()
        # the continuous-telemetry sampler behind /timeseries and
        # /cluster; capacity 0 disables it (and the endpoints degrade
        # to {"enabled": false})
        self.timeseries = (
            TimeSeriesStore(capacity=timeseries_capacity)
            if timeseries_capacity > 0
            else None
        )
        self.sampler = (
            TimeSeriesSampler(
                self.timeseries, min_interval_s=sample_interval_s
            )
            if self.timeseries is not None
            else None
        )
        sampler_taps = (self.sampler,) if self.sampler is not None else ()
        self.sim = Simulator(
            topo,
            scheduler,
            [],
            observers=[
                _LifecycleBridge(self),
                sim_telemetry,
                *watchdog_taps,
                self._snapshots,
                *sampler_taps,
                *provenance_taps,
                *extra_observers,
            ],
        )
        self._cv = threading.Condition()
        self._cancels: list[str] = []
        self._evictions: list[str] = []
        self._paused = False
        self._stop = False
        self._idle = True
        self._thread: threading.Thread | None = None
        self._gauge_stamp = float("-inf")
        self._recovered = self._recover()
        if self._recovered:
            # the loop has restored work to chew through: drain() must
            # not report idle until it has
            self._idle = False

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def _journal_hook(
        self, job_id: str, frm: JobState | None, to: JobState
    ) -> None:
        # the submission write covers the creation row (frm None)
        if frm is not None:
            self.store.journal_transition(job_id, frm, to)

    def _recover(self) -> int:
        """Re-admit every non-terminal journaled job; returns count."""
        recovered = 0
        for stored in self.store.recover():
            self.lifecycle.create(stored.job.job_id, state=stored.state)
            self.queue.restore(stored.job, stored.priority)
            recovered += 1
        # terminal jobs stay in the journal (and keep their ids
        # reserved, in both the lifecycle table and admission) but
        # need no replay
        for stored in self.store.all_jobs():
            if stored.state.terminal:
                self.lifecycle.create(
                    stored.job.job_id, state=stored.state
                )
                self.queue.reserve(stored.job.job_id)
        if recovered:
            self.telemetry.set_queue_depth(self.queue.depth)
        return recovered

    @property
    def recovered_jobs(self) -> int:
        """Jobs re-admitted from the journal at construction time."""
        return self._recovered

    # ------------------------------------------------------------------
    # lifecycle of the daemon itself
    # ------------------------------------------------------------------
    def start(self) -> "SchedulerService":
        self.sim.start()
        self._snapshots.bind_simulation(self.sim)
        if self.watchdog is not None:
            self.watchdog.bind_simulation(self.sim)
        if self.sampler is not None:
            self.sampler.bind_simulation(self.sim)
        self._thread = threading.Thread(
            target=self._loop, name="repro-scheduler-loop", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        with self._cv:
            self._stop = True
            self._cv.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.store.close()

    def __enter__(self) -> "SchedulerService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # API surface (called from HTTP handler threads and the CLI)
    # ------------------------------------------------------------------
    def submit(self, doc: dict) -> SubmitResult:
        """Validate, admit, journal and enqueue one submission."""
        t0 = time.perf_counter()
        body = dict(doc)
        try:
            job = job_from_dict(body)
        except (ManifestError, TypeError, ValueError) as exc:
            self.telemetry.submission("invalid", time.perf_counter() - t0)
            raise ManifestError(str(exc)) from exc
        # the manifest-level priority doubles as the service queue
        # priority and (via Job.priority) the preemption rank
        priority = job.priority
        # two-phase admission: reserve first, enqueue last — the loop
        # thread must never pop a job whose lifecycle entry and journal
        # row do not exist yet (the engine's observer notifications
        # would hit an untracked id and strand the job in SUBMITTED)
        decision = self.queue.admit_and_reserve(job)
        state: str | None = None
        if decision.admitted:
            self.store.journal_submission(job, priority, JobState.SUBMITTED)
            self.lifecycle.create(job.job_id, JobState.SUBMITTED)
            state = JobState.SUBMITTED.value
            self.telemetry.set_queue_depth(self.queue.depth)
            self.queue.enqueue(job, priority)
            self.telemetry.set_inbox_depth(len(self.queue))
            with self._cv:
                self._idle = False
                self._cv.notify_all()
        self.telemetry.submission(decision.reason, time.perf_counter() - t0)
        return SubmitResult(job.job_id, decision, state)

    def cancel(self, job_id: str) -> str:
        """Request cancellation; returns the state seen at request time.

        The actual engine withdrawal happens on the loop thread; poll
        ``GET /jobs/<id>`` for the terminal ``CANCELLED``.  Raises
        :class:`KeyError` for unknown ids and :class:`ValueError` for
        already-terminal jobs.
        """
        if job_id not in self.lifecycle:
            raise KeyError(job_id)
        state = self.lifecycle.state(job_id)
        if state.terminal:
            raise ValueError(
                f"job {job_id!r} is already {state.value}"
            )
        with self._cv:
            self._cancels.append(job_id)
            self._idle = False
            self._cv.notify_all()
        return state.value

    def evict(self, job_id: str) -> str:
        """Request preemption of a running job; returns its state now.

        The engine-side eviction happens on the loop thread: the job's
        progress is checkpointed, its GPUs are freed and it re-enters
        the scheduler queue (journaled as a RUNNING -> QUEUED hop) for
        a later round to re-place with only its remaining work plus
        the migration cost.  Raises :class:`KeyError` for unknown ids
        and :class:`ValueError` for jobs that are not running.
        """
        if job_id not in self.lifecycle:
            raise KeyError(job_id)
        state = self.lifecycle.state(job_id)
        if state is not JobState.RUNNING:
            raise ValueError(f"job {job_id!r} is {state.value}, not running")
        with self._cv:
            self._evictions.append(job_id)
            self._idle = False
            self._cv.notify_all()
        return state.value

    def pause(self) -> None:
        """Stop stepping the engine; submissions keep applying."""
        with self._cv:
            self._paused = True
            self._cv.notify_all()

    def resume(self) -> None:
        with self._cv:
            self._paused = False
            self._idle = False
            self._cv.notify_all()

    @property
    def paused(self) -> bool:
        return self._paused

    def drain(self, timeout_s: float = 60.0) -> bool:
        """Block until the loop is idle (inbox empty, events drained).

        Test/driver convenience; returns False on timeout.  A paused
        service is idle once the inbox is applied.
        """
        deadline = time.monotonic() + timeout_s
        with self._cv:
            while not self._idle:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cv.wait(min(remaining, 0.2))
        return True

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def jobs_document(self) -> dict:
        return {
            "jobs": dict(self.lifecycle.table()),
            "queue_depth": self.queue.depth,
            "paused": self._paused,
            "idle": self._idle,
        }

    def job_status(self, job_id: str) -> dict:
        """State plus (once the engine knows the job) its live record."""
        state = self.lifecycle.state(job_id)  # KeyError for unknown
        doc: dict = {"id": job_id, "state": state.value}
        try:
            record = self.sim.record_of(job_id)
        except KeyError:
            return doc  # journaled but not yet fed to the engine
        doc["record"] = _record_to_dict(record)
        return doc

    def result(self) -> SimulationResult:
        """Snapshot result over everything processed so far.

        Meaningful when the loop is idle (pair with :meth:`drain`);
        the batch-equivalence test compares this against a one-shot
        ``Simulator.run`` of the same trace.
        """
        return self.sim.finish()

    # ------------------------------------------------------------------
    # the scheduler loop (sole engine mutator)
    # ------------------------------------------------------------------
    def _has_work(self) -> bool:
        if self._cancels or self._evictions or len(self.queue):
            return True
        return not self._paused and self.sim.pending_events > 0

    def _loop(self) -> None:
        while True:
            with self._cv:
                while not self._stop and not self._has_work():
                    if not self._idle:
                        self._idle = True
                        # settle the published snapshot: bursts shorter
                        # than the snapshot throttle window would
                        # otherwise leave /state showing their start
                        self._snapshots.publish_now()
                        self._refresh_gauges(force=True)
                        self._cv.notify_all()
                    self._cv.wait(0.2)
                if self._stop:
                    self._idle = True
                    self._cv.notify_all()
                    return
                cancels = self._cancels
                self._cancels = []
                evictions = self._evictions
                self._evictions = []
            self._apply_submissions()
            self._apply_cancels(cancels)
            self._apply_evictions(evictions)
            if not self._paused and self.sim.pending_events:
                self.sim.step()
                if not self.sim.pending_events:
                    self._handle_stuck_queue()
            self._refresh_gauges()

    def _apply_submissions(self) -> None:
        for entry in self.queue.pop_batch(_APPLY_BATCH):
            job = entry.job
            # a daemon submission may carry a trace arrival time that
            # the virtual clock has already passed: clamp to now, the
            # service analogue of "the job arrives when it arrives"
            if job.arrival_time < self.sim.cluster.now:
                job = dataclasses.replace(
                    job, arrival_time=self.sim.cluster.now
                )
            self.sim.submit_job(job)

    def _apply_cancels(self, job_ids: list[str]) -> None:
        for job_id in job_ids:
            state = self.lifecycle.state(job_id)
            if state.terminal:
                continue  # raced with finish/fail: terminal wins
            try:
                phase, touched = self.sim.cancel_job(job_id)
            except KeyError:
                try:
                    self.sim.record_of(job_id)
                    continue  # engine knows it: a duplicate cancel
                except KeyError:
                    # admitted but still in the (batch-limited) inbox:
                    # retry once the next iteration has fed it
                    with self._cv:
                        self._cancels.append(job_id)
                    continue
            self.lifecycle.advance(job_id, JobState.CANCELLED)
            self.queue.retire(job_id)
            self.telemetry.cancellation(phase)
            self.telemetry.set_queue_depth(self.queue.depth)
            if touched:
                # reoffer the freed capacity without waiting for the
                # next event
                self.sim.run_round(touched)

    def _apply_evictions(self, job_ids: list[str]) -> None:
        for job_id in job_ids:
            try:
                touched = self.sim.preempt_job(job_id)
            except KeyError:
                continue  # finished/cancelled/already evicted: moot
            self.telemetry.eviction()
            # reoffer the freed capacity (and possibly re-place the
            # victim itself) without waiting for the next event
            self.sim.run_round(touched)

    def _handle_stuck_queue(self) -> None:
        """Drained loop + idle cluster + non-empty queue: those jobs
        can never place (same rule as the one-shot run loop)."""
        scheduler = self.sim.scheduler
        if scheduler.queue_length() == 0 or self.sim.cluster.running:
            return
        if len(self.queue) or self._cancels:
            return  # more inbox traffic may still unblock the queue
        stuck = [job.job_id for job in scheduler.queued_jobs()]
        self.sim.mark_unplaceable(stuck)
        for job_id in stuck:
            self.sim.cancel_job(job_id)  # withdraw from the engine
            self.lifecycle.advance(job_id, JobState.FAILED)
            self.queue.retire(job_id)
        self.telemetry.set_queue_depth(self.queue.depth)

    def _refresh_gauges(self, force: bool = False) -> None:
        now = time.monotonic()
        if force or now - self._gauge_stamp >= _GAUGE_INTERVAL_S:
            self._gauge_stamp = now
            self.telemetry.set_jobs_by_state(self.lifecycle.counts())
            self.telemetry.set_queue_depth(self.queue.depth)
            # unpopped inbox entries: admission backpressure distinct
            # from the admitted-minus-retired backlog above
            self.telemetry.set_inbox_depth(len(self.queue))


def _record_to_dict(record: JobRecord) -> dict:
    return {
        "arrival": record.arrival,
        "placed_at": record.placed_at,
        "finished_at": record.finished_at,
        "gpus": list(record.gpus),
        "utility": record.utility,
        "p2p": record.p2p,
        "solo_exec_time": record.solo_exec_time,
        "ideal_exec_time": record.ideal_exec_time,
        "postponements": record.postponements,
        "unplaceable": record.unplaceable,
        "restarts": record.restarts,
        "cancelled_at": record.cancelled_at,
        "preemptions": record.preemptions,
        "migrations": record.migrations,
    }


#: HTTP status for each admission ruling
_REJECTION_STATUS = {
    "duplicate": 409,
    "over-capacity": 422,
    "queue-full": 429,
}


class ServiceServer(IntrospectionServer):
    """The daemon's HTTP face: introspection endpoints + write verbs.

    Inherits ``GET /metrics`` (simulation + service families on one
    registry), ``/healthz``, ``/state`` (now carrying the job-state
    table), ``/alerts``, and — when the service keeps a decision
    recorder — ``/decisions``, ``/explain/<id>`` and the ``/events``
    SSE stream; adds:

    * ``POST /submit`` — manifest-format job object (+ optional
      ``priority``); 202 admitted, 4xx with a reason otherwise;
    * ``POST /cancel`` — ``{"id": ...}``; 202 accepted (poll the job);
    * ``POST /evict`` — ``{"id": ...}``; 202 accepted: the running job
      is checkpointed back to the queue for re-placement;
    * ``POST /pause`` / ``POST /resume`` — gate engine stepping;
    * ``GET /jobs`` — lifecycle table + queue depth;
    * ``GET /jobs/<id>`` — state + live record.
    """

    def __init__(
        self,
        service: SchedulerService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        watchdog=None,
    ) -> None:
        super().__init__(
            service.publisher,
            service.registry,
            watchdog if watchdog is not None else service.watchdog,
            host=host,
            port=port,
            recorder=service.decision_recorder,
            timeseries=service.timeseries,
        )
        self.service = service

    def explain_document(self, job_id: str, decisions: list) -> dict:
        doc = super().explain_document(job_id, decisions)
        # enrich with the daemon's lifecycle view so one GET answers
        # both "why" and "where is it now"
        try:
            doc["state"] = self.service.lifecycle.state(job_id).value
        except KeyError:
            pass
        return doc

    # ------------------------------------------------------------------
    def get_routes(self):
        routes = super().get_routes()
        routes["/jobs"] = lambda: json_response(
            200, self.service.jobs_document()
        )
        return routes

    def dispatch_get(self, path: str) -> Response | None:
        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            try:
                return json_response(200, self.service.job_status(job_id))
            except KeyError:
                return json_response(404, {"error": f"unknown job {job_id!r}"})
        return super().dispatch_get(path)

    def post_routes(self):
        return {
            "/submit": self._post_submit,
            "/cancel": self._post_cancel,
            "/evict": self._post_evict,
            "/pause": self._post_pause,
            "/resume": self._post_resume,
        }

    # ------------------------------------------------------------------
    def _post_submit(self, body: dict) -> Response:
        try:
            result = self.service.submit(body)
        except ManifestError as exc:
            return json_response(400, {"error": str(exc)})
        if not result.decision.admitted:
            code = _REJECTION_STATUS.get(result.decision.reason, 400)
            return json_response(
                code,
                {"id": result.job_id, "rejected": result.decision.reason},
            )
        return json_response(
            202, {"id": result.job_id, "state": result.state}
        )

    def _post_cancel(self, body: dict) -> Response:
        job_id = body.get("id")
        if not isinstance(job_id, str) or not job_id:
            return json_response(400, {"error": 'body needs an "id" string'})
        try:
            seen = self.service.cancel(job_id)
        except KeyError:
            return json_response(404, {"error": f"unknown job {job_id!r}"})
        except ValueError as exc:
            return json_response(409, {"error": str(exc)})
        return json_response(202, {"id": job_id, "state": seen})

    def _post_evict(self, body: dict) -> Response:
        job_id = body.get("id")
        if not isinstance(job_id, str) or not job_id:
            return json_response(400, {"error": 'body needs an "id" string'})
        try:
            seen = self.service.evict(job_id)
        except KeyError:
            return json_response(404, {"error": f"unknown job {job_id!r}"})
        except ValueError as exc:
            return json_response(409, {"error": str(exc)})
        return json_response(202, {"id": job_id, "state": seen})

    def _post_pause(self, body: dict) -> Response:
        self.service.pause()
        return json_response(200, {"paused": True})

    def _post_resume(self, body: dict) -> Response:
        self.service.resume()
        return json_response(200, {"paused": False})
