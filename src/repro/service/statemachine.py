"""Job lifecycle states and the validated transition table.

Every job the service accepts moves through a small state machine:

.. code-block:: text

    SUBMITTED ──> QUEUED ──> PLACED ──> RUNNING ──> FINISHED
        │            │          │  ^        │
        │            │          │  └────────┤  (failure requeue:
        │            │          │           │   RUNNING/PLACED -> QUEUED)
        └────────────┴──────────┴───────────┴──> CANCELLED / FAILED

``SUBMITTED`` is the journaled-but-not-yet-fed state (the HTTP thread
admitted the job; the scheduler loop has not popped it yet).
``QUEUED`` means the engine's scheduler holds it, ``PLACED`` that a
decision round chose GPUs for it, ``RUNNING`` that execution started
(in the simulation kernel these are one decision round apart, but the
distinction survives into the journal so an operator can see *when*
each hop happened).  A machine failure sends victims back to
``QUEUED``.  ``FINISHED``, ``CANCELLED`` and ``FAILED`` are terminal.

Transitions not in the table raise :class:`TransitionError` — state
bugs surface as loud errors, never as silently skipped journal rows.
"""

from __future__ import annotations

import enum
import threading
from typing import Callable, Iterable


class JobState(str, enum.Enum):
    """Lifecycle states; ``str`` mixin so JSON/sqlite round-trips are
    just the value."""

    SUBMITTED = "SUBMITTED"
    QUEUED = "QUEUED"
    PLACED = "PLACED"
    RUNNING = "RUNNING"
    FINISHED = "FINISHED"
    CANCELLED = "CANCELLED"
    FAILED = "FAILED"

    @property
    def terminal(self) -> bool:
        return self in _TERMINAL


_TERMINAL = frozenset(
    {JobState.FINISHED, JobState.CANCELLED, JobState.FAILED}
)

#: the full legal-transition table (source -> allowed targets)
TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.SUBMITTED: frozenset(
        {JobState.QUEUED, JobState.CANCELLED, JobState.FAILED}
    ),
    JobState.QUEUED: frozenset(
        {JobState.PLACED, JobState.CANCELLED, JobState.FAILED}
    ),
    JobState.PLACED: frozenset(
        {JobState.RUNNING, JobState.QUEUED, JobState.CANCELLED, JobState.FAILED}
    ),
    JobState.RUNNING: frozenset(
        {JobState.FINISHED, JobState.QUEUED, JobState.CANCELLED, JobState.FAILED}
    ),
    JobState.FINISHED: frozenset(),
    JobState.CANCELLED: frozenset(),
    JobState.FAILED: frozenset(),
}


class TransitionError(RuntimeError):
    """An illegal lifecycle transition was attempted."""

    def __init__(self, job_id: str, frm: JobState, to: JobState) -> None:
        super().__init__(
            f"job {job_id!r}: illegal transition {frm.value} -> {to.value}"
        )
        self.job_id = job_id
        self.frm = frm
        self.to = to


class LifecycleTable:
    """Current state of every job the service knows, with validation.

    Thread-safe: HTTP threads create/read entries while the scheduler
    loop advances them.  An optional ``journal`` callable receives
    ``(job_id, from_state | None, to_state)`` for every accepted
    mutation — the durable store hooks in there, so the journal can
    never record a transition the table rejected.
    """

    def __init__(
        self,
        journal: Callable[[str, JobState | None, JobState], None] | None = None,
    ) -> None:
        self._states: dict[str, JobState] = {}
        self._lock = threading.Lock()
        self._journal = journal

    # ------------------------------------------------------------------
    def create(self, job_id: str, state: JobState = JobState.SUBMITTED) -> None:
        """Register a new job (recovery may restore a later state)."""
        with self._lock:
            if job_id in self._states:
                raise ValueError(f"job {job_id!r} already tracked")
            self._states[job_id] = state
            if self._journal is not None:
                self._journal(job_id, None, state)

    def advance(self, job_id: str, to: JobState) -> JobState:
        """Validated transition; returns the previous state."""
        with self._lock:
            frm = self._states.get(job_id)
            if frm is None:
                raise KeyError(job_id)
            if to not in TRANSITIONS[frm]:
                raise TransitionError(job_id, frm, to)
            self._states[job_id] = to
            if self._journal is not None:
                self._journal(job_id, frm, to)
            return frm

    def advance_if(self, job_id: str, to: JobState) -> bool:
        """Advance when legal from the current state, else no-op.

        The observer bridge uses this for hops that recovery may have
        fast-forwarded past (e.g. an arrival notification for a job
        restored directly into ``QUEUED``).
        """
        with self._lock:
            frm = self._states.get(job_id)
            if frm is None or to not in TRANSITIONS[frm]:
                return False
            self._states[job_id] = to
            if self._journal is not None:
                self._journal(job_id, frm, to)
            return True

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def state(self, job_id: str) -> JobState:
        with self._lock:
            return self._states[job_id]

    def __contains__(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._states

    def jobs_in(self, states: Iterable[JobState]) -> list[str]:
        wanted = set(states)
        with self._lock:
            return sorted(
                j for j, s in self._states.items() if s in wanted
            )

    def counts(self) -> dict[str, int]:
        """Jobs per state (every state present, zeros included)."""
        out = {s.value: 0 for s in JobState}
        with self._lock:
            for s in self._states.values():
                out[s.value] += 1
        return out

    def table(self) -> tuple[tuple[str, str], ...]:
        """Immutable (job_id, state) rows for snapshots, sorted by id."""
        with self._lock:
            return tuple(
                (j, s.value) for j, s in sorted(self._states.items())
            )
