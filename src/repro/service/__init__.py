"""Long-running scheduler service over the simulation kernel.

The one-shot :class:`~repro.sim.engine.Simulator` replays a fixed
trace; this package wraps the same kernel in a daemon with a
submission API, so jobs arrive over HTTP instead of from a manifest:

* :mod:`repro.service.statemachine` — per-job lifecycle states with
  validated transitions;
* :mod:`repro.service.queue` — admission control and the priority
  inbox between API threads and the scheduler loop;
* :mod:`repro.service.store` — sqlite journal of submissions and
  transitions, replayed on restart;
* :mod:`repro.service.daemon` — :class:`SchedulerService` (the single
  scheduler-loop thread that owns the engine) and
  :class:`ServiceServer` (the HTTP face, extending the read-only
  introspection server with write verbs);
* :mod:`repro.service.driver` — the trace replay driver that pushes
  bursty workloads through the API.
"""

from repro.service.daemon import SchedulerService, ServiceServer
from repro.service.driver import ReplayReport, replay_trace
from repro.service.queue import AdmissionDecision, QueueManager
from repro.service.statemachine import (
    JobState,
    LifecycleTable,
    TransitionError,
)
from repro.service.store import ServiceStore

__all__ = [
    "AdmissionDecision",
    "JobState",
    "LifecycleTable",
    "QueueManager",
    "ReplayReport",
    "SchedulerService",
    "ServiceServer",
    "ServiceStore",
    "TransitionError",
    "replay_trace",
]
